//! Offline stand-in for the subset of the `rand` API used by this workspace.
//!
//! Provides a deterministic, seedable PRNG (SplitMix64 state update feeding a
//! xorshift output mix) behind the familiar `StdRng` / `Rng` / `SeedableRng`
//! / `SliceRandom` names. The statistical quality is more than adequate for
//! synthetic workload generation; sequences differ from the real `rand`
//! crate, but every generator in the workspace is seeded and only relies on
//! determinism, not on specific draws.

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The core sampling interface.
pub trait Rng {
    /// The next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of a supported type (`f64` in `[0, 1)`, full-range
    /// integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from a half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

/// Types drawable from the uniform "standard" distribution.
pub trait Standard {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Integer types supporting uniform range sampling.
pub trait UniformInt: Copy + PartialOrd {
    /// Draws uniformly from `range`.
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift bounded sampling; bias is negligible for the
                // span sizes used by the synthetic generators.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + draw as Self
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8);

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixed point and decorrelate small seeds.
            StdRng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|s| *s), "all values of a small range appear");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
