//! Offline stand-in for the `serde` facade crate.
//!
//! The real `serde` cannot be fetched in this build environment; the
//! workspace only uses the derive syntax (no code path actually serializes),
//! so marker traits plus no-op derives are sufficient. Swapping this for the
//! real crate later requires no source changes in the workspace.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
