//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for
//! downstream users, but never serializes anything itself. These derives
//! accept the same syntax (including `#[serde(...)]` helper attributes) and
//! expand to nothing, so the workspace builds without network access.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
