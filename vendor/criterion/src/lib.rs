//! Offline stand-in for the subset of the `criterion` benchmarking API used
//! by this workspace.
//!
//! The real `criterion` crate cannot be fetched in this build environment.
//! This shim keeps the same source-level API (`Criterion`,
//! `benchmark_group`, `bench_function`, `iter`, `criterion_group!`,
//! `criterion_main!`, `black_box`) and measures wall-clock time with
//! `std::time::Instant`: each benchmark is warmed up once, then run for
//! `sample_size` samples; the mean, minimum and maximum per-iteration times
//! are printed. Statistical analysis, plots and HTML reports are out of
//! scope — swap in the real crate when a registry is available.
//!
//! # JSON trajectory output
//!
//! Passing `--save-json [path]` to a bench binary (i.e.
//! `cargo bench -- --save-json`) additionally writes every benchmark's mean
//! time as nested JSON — `{"group": {"bench": ns_per_iter, ...}, ...}` — to
//! `path`, defaulting to `BENCH_exec.json` next to the workspace
//! `Cargo.lock`. CI uploads the file as a per-push artifact and gates on it
//! (see `sam-bench`'s `bench_gate` binary).

use std::hint;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Mean per-iteration times recorded by every benchmark of this process:
/// `(group, bench, nanoseconds)`.
fn results() -> &'static Mutex<Vec<(String, String, f64)>> {
    static RESULTS: OnceLock<Mutex<Vec<(String, String, f64)>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Where `--save-json` wants the trajectory written, if requested.
fn save_json_path() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--save-json" {
            if let Some(p) = args.next() {
                if !p.starts_with('-') {
                    return Some(PathBuf::from(p));
                }
            }
            return Some(workspace_root().join("BENCH_exec.json"));
        }
    }
    None
}

/// Walks up from the current directory to the first ancestor holding a
/// `Cargo.lock` — the workspace root, regardless of which package cargo
/// launched the bench binary from.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Writes the recorded means as nested JSON when `--save-json` was passed.
/// Invoked by `criterion_main!` after all groups have run.
pub fn finish() {
    let Some(path) = save_json_path() else { return };
    let recorded = results().lock().expect("bench results");
    let mut out = String::from("{\n");
    // Order-preserving unique group names (Vec::dedup only merges
    // neighbours, and a group name may recur non-adjacently).
    let mut groups: Vec<&str> = Vec::new();
    for (g, _, _) in recorded.iter() {
        if !groups.contains(&g.as_str()) {
            groups.push(g);
        }
    }
    for (gi, group) in groups.iter().enumerate() {
        out.push_str(&format!("  {:?}: {{\n", group));
        let members: Vec<&(String, String, f64)> = recorded.iter().filter(|(g, _, _)| g == group).collect();
        for (bi, (_, bench, ns)) in members.iter().enumerate() {
            let sep = if bi + 1 == members.len() { "" } else { "," };
            // Full `Display` precision: one decimal place is fine for
            // nanosecond timings but quantizes ratio-valued metrics (e.g.
            // a 1.04 overhead ratio must not round to 1.0 before a gate
            // compares it against a 1.05 bound). `Display` always emits a
            // digit before any exponent and never a bare `inf`/`NaN` for
            // the finite values benches record, so the JSON stays valid.
            out.push_str(&format!("    {:?}: {}{}\n", bench, ns, sep));
        }
        let sep = if gi + 1 == groups.len() { "" } else { "," };
        out.push_str(&format!("  }}{}\n", sep));
    }
    out.push_str("}\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("wrote benchmark trajectory to {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Records an arbitrary named metric (a counter, not a timing) under a
/// group, so it rides along in the `--save-json` trajectory next to the
/// benchmark means. Not part of the real criterion API — an extension this
/// offline stand-in provides so benches can surface executor counters
/// (e.g. chunked-channel spill events) in CI artifacts.
pub fn record_metric(group: &str, name: &str, value: f64) {
    results().lock().expect("bench results").push((group.to_string(), name.to_string(), value));
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10 }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark("", name, self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.name, &name.to_string(), self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed warm-up execution.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(group: &str, bench: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let name = if group.is_empty() { bench.to_string() } else { format!("{group}/{bench}") };
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {name:<40} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    results().lock().expect("bench results").push((
        group.to_string(),
        bench.to_string(),
        mean.as_nanos() as f64,
    ));
    let min = bencher.samples.iter().min().expect("nonempty");
    let max = bencher.samples.iter().max().expect("nonempty");
    println!(
        "  {name:<40} mean {:>12} min {:>12} max {:>12} ({} samples)",
        format_duration(mean),
        format_duration(*min),
        format_duration(*max),
        bencher.samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a group-runner function from benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions, mirroring
/// `criterion::criterion_main!`. After all groups run, the recorded means
/// are written as JSON when `--save-json` was passed (see the crate docs).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(format_duration(Duration::from_micros(5)), "5.00 us");
        assert_eq!(format_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
