//! Offline stand-in for the subset of the `criterion` benchmarking API used
//! by this workspace.
//!
//! The real `criterion` crate cannot be fetched in this build environment.
//! This shim keeps the same source-level API (`Criterion`,
//! `benchmark_group`, `bench_function`, `iter`, `criterion_group!`,
//! `criterion_main!`, `black_box`) and measures wall-clock time with
//! `std::time::Instant`: each benchmark is warmed up once, then run for
//! `sample_size` samples; the mean, minimum and maximum per-iteration times
//! are printed. Statistical analysis, plots and HTML reports are out of
//! scope — swap in the real crate when a registry is available.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10 }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed warm-up execution.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {name:<40} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("nonempty");
    let max = bencher.samples.iter().max().expect("nonempty");
    println!(
        "  {name:<40} mean {:>12} min {:>12} max {:>12} ({} samples)",
        format_duration(mean),
        format_duration(*min),
        format_duration(*max),
        bencher.samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a group-runner function from benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(format_duration(Duration::from_micros(5)), "5.00 us");
        assert_eq!(format_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
