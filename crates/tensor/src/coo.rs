//! Coordinate-list (COO) staging representation.
//!
//! A [`CooTensor`] is the neutral interchange format used to build
//! fibertrees: an unordered list of `(point, value)` pairs plus a shape.
//! Building a [`crate::Tensor`] sorts the points in the storage mode order,
//! merges duplicates and drops explicit zeros.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An error produced when constructing or manipulating a [`CooTensor`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CooError {
    /// A point has a different number of coordinates than the tensor order.
    RankMismatch {
        /// Expected rank (length of the shape).
        expected: usize,
        /// Rank of the offending point.
        found: usize,
    },
    /// A coordinate lies outside the dimension size.
    OutOfBounds {
        /// Dimension index.
        dim: usize,
        /// Offending coordinate.
        coordinate: u32,
        /// Size of that dimension.
        size: usize,
    },
}

impl fmt::Display for CooError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CooError::RankMismatch { expected, found } => {
                write!(f, "point rank {found} does not match tensor order {expected}")
            }
            CooError::OutOfBounds { dim, coordinate, size } => {
                write!(f, "coordinate {coordinate} out of bounds for dimension {dim} of size {size}")
            }
        }
    }
}

impl std::error::Error for CooError {}

/// A sparse tensor as a list of coordinate points and values.
///
/// ```
/// use sam_tensor::CooTensor;
/// let mut coo = CooTensor::new(vec![4, 4]);
/// coo.push(&[0, 1], 1.0).unwrap();
/// coo.push(&[3, 3], 5.0).unwrap();
/// assert_eq!(coo.nnz(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooTensor {
    shape: Vec<usize>,
    entries: Vec<(Vec<u32>, f64)>,
}

impl CooTensor {
    /// Creates an empty COO tensor with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero-sized dimension.
    pub fn new(shape: Vec<usize>) -> Self {
        assert!(!shape.is_empty(), "tensors must have at least one dimension");
        assert!(shape.iter().all(|&d| d > 0), "dimension sizes must be positive");
        CooTensor { shape, entries: Vec::new() }
    }

    /// Creates a COO tensor directly from entries.
    ///
    /// # Errors
    ///
    /// Returns an error if any point has the wrong rank or an out-of-bounds
    /// coordinate.
    pub fn from_entries(shape: Vec<usize>, entries: Vec<(Vec<u32>, f64)>) -> Result<Self, CooError> {
        let mut coo = CooTensor::new(shape);
        for (point, value) in entries {
            coo.push(&point, value)?;
        }
        Ok(coo)
    }

    /// Appends a point. Duplicate points are allowed; they are summed when a
    /// fibertree is built.
    ///
    /// # Errors
    ///
    /// Returns an error if the point has the wrong rank or an out-of-bounds
    /// coordinate.
    pub fn push(&mut self, point: &[u32], value: f64) -> Result<(), CooError> {
        if point.len() != self.shape.len() {
            return Err(CooError::RankMismatch { expected: self.shape.len(), found: point.len() });
        }
        for (dim, (&c, &size)) in point.iter().zip(&self.shape).enumerate() {
            if c as usize >= size {
                return Err(CooError::OutOfBounds { dim, coordinate: c, size });
            }
        }
        self.entries.push((point.to_vec(), value));
        Ok(())
    }

    /// The tensor shape (dimension sizes in logical mode order).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Tensor order (number of dimensions).
    pub fn order(&self) -> usize {
        self.shape.len()
    }

    /// Number of stored entries (before deduplication).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The raw entries.
    pub fn entries(&self) -> &[(Vec<u32>, f64)] {
        &self.entries
    }

    /// Returns the entries with coordinates permuted into `mode_order`
    /// (storage order), duplicates summed and explicit zeros removed, sorted
    /// lexicographically by the permuted point.
    ///
    /// `mode_order[level]` names the logical mode stored at that level.
    ///
    /// # Panics
    ///
    /// Panics if `mode_order` is not a permutation of `0..order`.
    pub fn canonicalized(&self, mode_order: &[usize]) -> Vec<(Vec<u32>, f64)> {
        assert_eq!(mode_order.len(), self.order(), "mode order length mismatch");
        let mut seen = vec![false; self.order()];
        for &m in mode_order {
            assert!(m < self.order() && !seen[m], "mode order must be a permutation");
            seen[m] = true;
        }
        let mut map: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
        for (point, value) in &self.entries {
            let permuted: Vec<u32> = mode_order.iter().map(|&m| point[m]).collect();
            *map.entry(permuted).or_insert(0.0) += value;
        }
        map.into_iter().filter(|(_, v)| *v != 0.0).collect()
    }

    /// The permuted shape under a mode order.
    pub fn permuted_shape(&self, mode_order: &[usize]) -> Vec<usize> {
        mode_order.iter().map(|&m| self.shape[m]).collect()
    }

    /// Builds a COO tensor from a dense row-major array, keeping only
    /// nonzeros.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of the shape.
    pub fn from_dense(shape: Vec<usize>, data: &[f64]) -> Self {
        let volume: usize = shape.iter().product();
        assert_eq!(data.len(), volume, "dense data length must match shape volume");
        let mut coo = CooTensor::new(shape.clone());
        for (flat, &v) in data.iter().enumerate() {
            if v != 0.0 {
                let mut point = vec![0u32; shape.len()];
                let mut rem = flat;
                for (d, &size) in shape.iter().enumerate().rev() {
                    point[d] = (rem % size) as u32;
                    rem /= size;
                }
                coo.push(&point, v).expect("in-bounds by construction");
            }
        }
        coo
    }

    /// Materializes the tensor as a dense row-major array (duplicates
    /// summed).
    pub fn to_dense(&self) -> Vec<f64> {
        let volume: usize = self.shape.iter().product();
        let mut data = vec![0.0; volume];
        for (point, value) in &self.entries {
            let mut flat = 0usize;
            for (d, &c) in point.iter().enumerate() {
                flat = flat * self.shape[d] + c as usize;
            }
            data[flat] += value;
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_rank_and_bounds() {
        let mut coo = CooTensor::new(vec![2, 3]);
        assert!(coo.push(&[1, 2], 1.0).is_ok());
        assert_eq!(coo.push(&[1], 1.0), Err(CooError::RankMismatch { expected: 2, found: 1 }));
        assert_eq!(coo.push(&[1, 3], 1.0), Err(CooError::OutOfBounds { dim: 1, coordinate: 3, size: 3 }));
    }

    #[test]
    fn canonicalize_sorts_dedups_and_drops_zeros() {
        let coo = CooTensor::from_entries(
            vec![4, 4],
            vec![
                (vec![3, 1], 4.0),
                (vec![0, 1], 1.0),
                (vec![0, 1], 2.0),
                (vec![2, 2], 1.0),
                (vec![2, 2], -1.0),
            ],
        )
        .unwrap();
        let canon = coo.canonicalized(&[0, 1]);
        assert_eq!(canon, vec![(vec![0, 1], 3.0), (vec![3, 1], 4.0)]);
    }

    #[test]
    fn canonicalize_with_mode_permutation() {
        // Column-major ordering swaps the coordinates.
        let coo = CooTensor::from_entries(vec![2, 3], vec![(vec![1, 0], 5.0), (vec![0, 2], 7.0)]).unwrap();
        let canon = coo.canonicalized(&[1, 0]);
        assert_eq!(canon, vec![(vec![0, 1], 5.0), (vec![2, 0], 7.0)]);
        assert_eq!(coo.permuted_shape(&[1, 0]), vec![3, 2]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_mode_order_panics() {
        let coo = CooTensor::new(vec![2, 2]);
        let _ = coo.canonicalized(&[0, 0]);
    }

    #[test]
    fn dense_roundtrip() {
        let data = vec![0.0, 1.0, 0.0, 2.0, 0.0, 3.0];
        let coo = CooTensor::from_dense(vec![2, 3], &data);
        assert_eq!(coo.nnz(), 3);
        assert_eq!(coo.to_dense(), data);
    }

    #[test]
    fn error_display() {
        let e = CooError::OutOfBounds { dim: 1, coordinate: 9, size: 4 };
        assert!(e.to_string().contains("out of bounds"));
        let e = CooError::RankMismatch { expected: 2, found: 3 };
        assert!(e.to_string().contains("rank"));
    }
}
