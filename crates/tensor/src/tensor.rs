//! The in-memory fibertree tensor.

use crate::builder::TensorBuilder;
use crate::coo::CooTensor;
use crate::dense::DenseTensor;
use crate::format::TensorFormat;
use crate::level::Level;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An in-memory sparse tensor stored as a fibertree (paper Section 3.1).
///
/// A tensor has a logical shape, a [`TensorFormat`] describing how each
/// stored level is represented and which logical mode it holds, the level
/// storages themselves, and a flat values array indexed by the last level's
/// child positions.
///
/// ```
/// use sam_tensor::{CooTensor, Tensor, TensorFormat};
/// let coo = CooTensor::from_entries(vec![2, 2], vec![(vec![0, 1], 3.0)]).unwrap();
/// let t = Tensor::from_coo("A", &coo, TensorFormat::dcsr());
/// assert_eq!(t.get(&[0, 1]), 3.0);
/// assert_eq!(t.get(&[1, 1]), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    name: String,
    shape: Vec<usize>,
    format: TensorFormat,
    levels: Vec<Level>,
    vals: Vec<f64>,
}

impl Tensor {
    /// Assembles a tensor from already-built parts. Prefer
    /// [`Tensor::from_coo`] or [`TensorBuilder`].
    ///
    /// # Panics
    ///
    /// Panics when the number of levels does not match the format order or
    /// the values array does not match the last level's child count.
    pub fn from_parts(
        name: &str,
        shape: Vec<usize>,
        format: TensorFormat,
        levels: Vec<Level>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(levels.len(), format.order(), "level count must match format order");
        assert_eq!(shape.len(), format.order(), "shape length must match format order");
        let expected_vals = levels.last().map(Level::num_children).unwrap_or(0);
        assert_eq!(vals.len(), expected_vals, "values array must match last level child count");
        Tensor { name: name.to_string(), shape, format, levels, vals }
    }

    /// Builds a tensor from COO data with the given format.
    pub fn from_coo(name: &str, coo: &CooTensor, format: TensorFormat) -> Self {
        TensorBuilder::new(format).build(name, coo)
    }

    /// Builds a tensor from a dense row-major array.
    pub fn from_dense_data(name: &str, shape: Vec<usize>, data: &[f64], format: TensorFormat) -> Self {
        let coo = CooTensor::from_dense(shape, data);
        Tensor::from_coo(name, &coo, format)
    }

    /// The tensor's name (used in reports and DOT output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logical shape (dimension sizes in logical mode order).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Tensor order (number of dimensions).
    pub fn order(&self) -> usize {
        self.shape.len()
    }

    /// The storage format.
    pub fn format(&self) -> &TensorFormat {
        &self.format
    }

    /// The stored levels, outermost first.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// One stored level.
    pub fn level(&self, level: usize) -> &Level {
        &self.levels[level]
    }

    /// The values array (indexed by last-level child positions).
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Number of stored values that are nonzero.
    pub fn nnz(&self) -> usize {
        self.vals.iter().filter(|v| **v != 0.0).count()
    }

    /// Dimension size of the given *storage* level.
    pub fn storage_dim(&self, level: usize) -> usize {
        self.shape[self.format.mode_order()[level]]
    }

    /// The root fiber reference that starts iteration of this tensor.
    pub fn root_ref(&self) -> usize {
        0
    }

    /// Enumerates stored nonzero points in logical mode order.
    pub fn points(&self) -> Vec<(Vec<u32>, f64)> {
        let mut out = Vec::new();
        if self.levels.is_empty() {
            return out;
        }
        let mut prefix = Vec::with_capacity(self.order());
        self.walk(0, 0, &mut prefix, &mut out);
        // Un-permute storage order back to logical order.
        let mode_order = self.format.mode_order();
        out.into_iter()
            .map(|(stored, v)| {
                let mut logical = vec![0u32; stored.len()];
                for (lvl, &m) in mode_order.iter().enumerate() {
                    logical[m] = stored[lvl];
                }
                (logical, v)
            })
            .collect()
    }

    fn walk(&self, level: usize, fiber: usize, prefix: &mut Vec<u32>, out: &mut Vec<(Vec<u32>, f64)>) {
        for entry in self.levels[level].fiber(fiber) {
            prefix.push(entry.coord);
            if level + 1 == self.levels.len() {
                let v = self.vals[entry.child];
                if v != 0.0 {
                    out.push((prefix.clone(), v));
                }
            } else {
                self.walk(level + 1, entry.child, prefix, out);
            }
            prefix.pop();
        }
    }

    /// Converts back to COO (logical mode order, nonzeros only).
    pub fn to_coo(&self) -> CooTensor {
        CooTensor::from_entries(self.shape.clone(), self.points()).expect("points are in bounds")
    }

    /// Materializes as a dense tensor in logical mode order.
    pub fn to_dense(&self) -> DenseTensor {
        let mut dense = DenseTensor::zeros(self.shape.clone());
        for (point, v) in self.points() {
            *dense.at_mut(&point) += v;
        }
        dense
    }

    /// Looks up one component by its logical coordinates (zero when absent).
    ///
    /// # Panics
    ///
    /// Panics when the point rank does not match the tensor order.
    pub fn get(&self, point: &[u32]) -> f64 {
        assert_eq!(point.len(), self.order(), "point rank mismatch");
        let mode_order = self.format.mode_order();
        let mut fiber = 0usize;
        for (level, &mode) in mode_order.iter().enumerate() {
            match self.levels[level].locate(fiber, point[mode]) {
                Some(child) => fiber = child,
                None => return 0.0,
            }
        }
        self.vals[fiber]
    }

    /// True when the two tensors hold the same nonzero structure and values
    /// up to floating-point tolerance, regardless of format.
    pub fn approx_eq(&self, other: &Tensor) -> bool {
        if self.shape != other.shape {
            return false;
        }
        self.to_dense().approx_eq(&other.to_dense())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: shape={:?} format={} nnz={}", self.name, self.shape, self.format, self.nnz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::LevelFormat;

    fn figure1_tensor(format: TensorFormat) -> Tensor {
        let coo = CooTensor::from_entries(
            vec![4, 4],
            vec![
                (vec![0, 1], 1.0),
                (vec![1, 0], 2.0),
                (vec![1, 2], 3.0),
                (vec![3, 1], 4.0),
                (vec![3, 3], 5.0),
            ],
        )
        .unwrap();
        Tensor::from_coo("B", &coo, format)
    }

    #[test]
    fn points_roundtrip_across_formats() {
        let reference = figure1_tensor(TensorFormat::dcsr()).points();
        for fmt in [
            TensorFormat::csr(),
            TensorFormat::csc(),
            TensorFormat::dcsc(),
            TensorFormat::dense(2),
            TensorFormat::new(vec![LevelFormat::Compressed, LevelFormat::bitvector()]),
        ] {
            let mut pts = figure1_tensor(fmt.clone()).points();
            pts.sort_by(|a, b| a.0.cmp(&b.0));
            let mut expect = reference.clone();
            expect.sort_by(|a, b| a.0.cmp(&b.0));
            assert_eq!(pts, expect, "format {fmt}");
        }
    }

    #[test]
    fn get_by_point() {
        let t = figure1_tensor(TensorFormat::csc());
        assert_eq!(t.get(&[1, 2]), 3.0);
        assert_eq!(t.get(&[2, 2]), 0.0);
        assert_eq!(t.get(&[3, 3]), 5.0);
    }

    #[test]
    fn to_dense_matches_points() {
        let t = figure1_tensor(TensorFormat::dcsr());
        let d = t.to_dense();
        assert_eq!(d.at(&[0, 1]), 1.0);
        assert_eq!(d.at(&[2, 0]), 0.0);
        assert_eq!(d.at(&[3, 3]), 5.0);
    }

    #[test]
    fn approx_eq_ignores_format() {
        let a = figure1_tensor(TensorFormat::dcsr());
        let b = figure1_tensor(TensorFormat::csc());
        assert!(a.approx_eq(&b));
    }

    #[test]
    fn nnz_and_storage_dim() {
        let t = figure1_tensor(TensorFormat::csc());
        assert_eq!(t.nnz(), 5);
        assert_eq!(t.storage_dim(0), 4);
        assert_eq!(t.order(), 2);
        assert_eq!(t.root_ref(), 0);
        assert!(t.to_string().contains("nnz=5"));
    }

    #[test]
    fn csf_three_tensor() {
        let coo = CooTensor::from_entries(
            vec![2, 3, 4],
            vec![(vec![0, 0, 1], 1.0), (vec![0, 2, 3], 2.0), (vec![1, 1, 0], 3.0)],
        )
        .unwrap();
        let t = Tensor::from_coo("T", &coo, TensorFormat::csf(3));
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.get(&[0, 2, 3]), 2.0);
        assert_eq!(t.get(&[1, 2, 3]), 0.0);
        let rt = t.to_coo();
        assert_eq!(rt.nnz(), 3);
    }
}
