//! The tensor format language: per-mode level formats plus a mode ordering.
//!
//! This mirrors the format abstraction of TACO/Custard (paper Sections 2.2
//! and 5): a tensor format assigns each stored level a representation and
//! says which logical mode each level stores.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Storage format of a single fibertree level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LevelFormat {
    /// Uncompressed: the level materializes every coordinate.
    Dense,
    /// Compressed: segment + coordinate arrays (CSR/DCSR/CSF levels).
    Compressed,
    /// Bitvector with the given word width in bits (1..=64).
    Bitvector {
        /// Bits per bitvector word.
        word_width: u8,
    },
}

impl LevelFormat {
    /// The default bitvector format used in the paper's Figure 13 study
    /// (64-bit words).
    pub fn bitvector() -> Self {
        LevelFormat::Bitvector { word_width: 64 }
    }

    /// Short name used in reports ("dense", "comp", "bv").
    pub fn short_name(&self) -> &'static str {
        match self {
            LevelFormat::Dense => "dense",
            LevelFormat::Compressed => "comp",
            LevelFormat::Bitvector { .. } => "bv",
        }
    }
}

impl fmt::Display for LevelFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LevelFormat::Dense => write!(f, "dense"),
            LevelFormat::Compressed => write!(f, "compressed"),
            LevelFormat::Bitvector { word_width } => write!(f, "bitvector({word_width})"),
        }
    }
}

/// A complete tensor format: one [`LevelFormat`] per stored level and the
/// mode order mapping storage levels to logical modes.
///
/// `mode_order[level]` is the logical mode stored at `level`; e.g. a CSC
/// matrix stores mode 1 (columns) at level 0.
///
/// ```
/// use sam_tensor::TensorFormat;
/// let dcsr = TensorFormat::dcsr();
/// assert_eq!(dcsr.order(), 2);
/// assert!(dcsr.is_fully_compressed());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorFormat {
    levels: Vec<LevelFormat>,
    mode_order: Vec<usize>,
}

impl TensorFormat {
    /// Creates a format with the identity mode order.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn new(levels: Vec<LevelFormat>) -> Self {
        assert!(!levels.is_empty(), "a tensor format needs at least one level");
        let order = levels.len();
        TensorFormat { levels, mode_order: (0..order).collect() }
    }

    /// Creates a format with an explicit mode order.
    ///
    /// # Panics
    ///
    /// Panics if `mode_order` is not a permutation of `0..levels.len()`.
    pub fn with_mode_order(levels: Vec<LevelFormat>, mode_order: Vec<usize>) -> Self {
        assert_eq!(levels.len(), mode_order.len(), "mode order length mismatch");
        let mut seen = vec![false; levels.len()];
        for &m in &mode_order {
            assert!(m < levels.len() && !seen[m], "mode order must be a permutation");
            seen[m] = true;
        }
        TensorFormat { levels, mode_order }
    }

    /// All-dense format of the given order.
    pub fn dense(order: usize) -> Self {
        TensorFormat::new(vec![LevelFormat::Dense; order])
    }

    /// Compressed sparse row: dense rows, compressed columns.
    pub fn csr() -> Self {
        TensorFormat::new(vec![LevelFormat::Dense, LevelFormat::Compressed])
    }

    /// Compressed sparse column: CSR of the transposed mode order.
    pub fn csc() -> Self {
        TensorFormat::with_mode_order(vec![LevelFormat::Dense, LevelFormat::Compressed], vec![1, 0])
    }

    /// Doubly compressed sparse rows (both levels compressed), the format of
    /// paper Figure 1c.
    pub fn dcsr() -> Self {
        TensorFormat::new(vec![LevelFormat::Compressed; 2])
    }

    /// Doubly compressed sparse columns.
    pub fn dcsc() -> Self {
        TensorFormat::with_mode_order(vec![LevelFormat::Compressed; 2], vec![1, 0])
    }

    /// Compressed sparse fiber: all levels compressed, identity order.
    pub fn csf(order: usize) -> Self {
        TensorFormat::new(vec![LevelFormat::Compressed; order])
    }

    /// A sparse (compressed) vector.
    pub fn sparse_vec() -> Self {
        TensorFormat::new(vec![LevelFormat::Compressed])
    }

    /// A dense vector.
    pub fn dense_vec() -> Self {
        TensorFormat::new(vec![LevelFormat::Dense])
    }

    /// Number of stored levels (tensor order).
    pub fn order(&self) -> usize {
        self.levels.len()
    }

    /// The per-level formats in storage order.
    pub fn levels(&self) -> &[LevelFormat] {
        &self.levels
    }

    /// The format of one storage level.
    pub fn level(&self, level: usize) -> LevelFormat {
        self.levels[level]
    }

    /// The mode order (`mode_order[level]` = logical mode stored there).
    pub fn mode_order(&self) -> &[usize] {
        &self.mode_order
    }

    /// Replaces the mode order, returning a new format.
    ///
    /// # Panics
    ///
    /// Panics if `mode_order` is not a permutation of `0..order`.
    pub fn reordered(&self, mode_order: Vec<usize>) -> Self {
        TensorFormat::with_mode_order(self.levels.clone(), mode_order)
    }

    /// True when every level is compressed.
    pub fn is_fully_compressed(&self) -> bool {
        self.levels.iter().all(|l| matches!(l, LevelFormat::Compressed))
    }

    /// True when every level is dense.
    pub fn is_fully_dense(&self) -> bool {
        self.levels.iter().all(|l| matches!(l, LevelFormat::Dense))
    }
}

impl fmt::Display for TensorFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", l.short_name())?;
        }
        write!(f, ";order=")?;
        for (i, m) in self.mode_order.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_formats() {
        assert_eq!(TensorFormat::csr().levels(), &[LevelFormat::Dense, LevelFormat::Compressed]);
        assert_eq!(TensorFormat::csc().mode_order(), &[1, 0]);
        assert!(TensorFormat::dcsr().is_fully_compressed());
        assert!(TensorFormat::dense(3).is_fully_dense());
        assert_eq!(TensorFormat::csf(3).order(), 3);
        assert_eq!(TensorFormat::sparse_vec().order(), 1);
        assert_eq!(TensorFormat::dense_vec().level(0), LevelFormat::Dense);
    }

    #[test]
    fn reordering() {
        let f = TensorFormat::dcsr().reordered(vec![1, 0]);
        assert_eq!(f, TensorFormat::dcsc());
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_mode_order_rejected() {
        let _ = TensorFormat::with_mode_order(vec![LevelFormat::Dense; 2], vec![0, 0]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(TensorFormat::csr().to_string(), "(dense,comp;order=0,1)");
        assert_eq!(LevelFormat::bitvector().to_string(), "bitvector(64)");
        assert_eq!(LevelFormat::bitvector().short_name(), "bv");
    }
}
