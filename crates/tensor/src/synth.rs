//! Synthetic workload generators for the evaluation experiments.
//!
//! The paper's Section 6.3 and 6.4 studies use synthetic data: uniformly
//! random sparse matrices and vectors, the `runs` and `blocks` vector
//! patterns of Figure 17, and the ExTensor-style constant-nnz matrices of
//! Figure 15. All generators are seeded and deterministic.

use crate::coo::CooTensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Draws a nonzero value in `[0.5, 1.5)`, keeping products well conditioned.
fn draw_value(rng: &mut StdRng) -> f64 {
    0.5 + rng.gen::<f64>()
}

/// A uniformly random sparse vector with exactly `nnz` nonzeros.
///
/// # Panics
///
/// Panics if `nnz > dim`.
pub fn random_vector(dim: usize, nnz: usize, seed: u64) -> CooTensor {
    assert!(nnz <= dim, "cannot place {nnz} nonzeros in a vector of size {dim}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut positions: Vec<u32> = (0..dim as u32).collect();
    positions.shuffle(&mut rng);
    positions.truncate(nnz);
    positions.sort_unstable();
    let mut coo = CooTensor::new(vec![dim]);
    for p in positions {
        coo.push(&[p], draw_value(&mut rng)).expect("in bounds");
    }
    coo
}

/// A uniformly random sparse matrix with the given fraction of *zero*
/// entries (e.g. `sparsity = 0.95` keeps roughly 5% of entries).
pub fn random_matrix_sparsity(rows: usize, cols: usize, sparsity: f64, seed: u64) -> CooTensor {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be a fraction");
    let nnz = (((rows * cols) as f64) * (1.0 - sparsity)).round() as usize;
    random_matrix_nnz(rows, cols, nnz, seed)
}

/// A uniformly random sparse matrix with exactly `nnz` nonzeros, matching
/// the ExTensor study's "constant number of nonzeros per matrix" setup.
///
/// # Panics
///
/// Panics if `nnz > rows * cols`.
pub fn random_matrix_nnz(rows: usize, cols: usize, nnz: usize, seed: u64) -> CooTensor {
    assert!(nnz <= rows * cols, "cannot place {nnz} nonzeros in a {rows}x{cols} matrix");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooTensor::new(vec![rows, cols]);
    if nnz == 0 {
        return coo;
    }
    // Sample distinct flat positions. For low densities rejection sampling is
    // cheap; fall back to a shuffle when dense.
    let volume = rows * cols;
    if nnz * 4 > volume {
        let mut flats: Vec<usize> = (0..volume).collect();
        flats.shuffle(&mut rng);
        flats.truncate(nnz);
        flats.sort_unstable();
        for flat in flats {
            let point = [(flat / cols) as u32, (flat % cols) as u32];
            coo.push(&point, draw_value(&mut rng)).expect("in bounds");
        }
    } else {
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < nnz {
            chosen.insert(rng.gen_range(0..volume));
        }
        for flat in chosen {
            let point = [(flat / cols) as u32, (flat % cols) as u32];
            coo.push(&point, draw_value(&mut rng)).expect("in bounds");
        }
    }
    coo
}

/// A uniformly random order-3 tensor with exactly `nnz` nonzeros.
///
/// # Panics
///
/// Panics if `nnz` exceeds the tensor volume.
pub fn random_tensor3(dims: [usize; 3], nnz: usize, seed: u64) -> CooTensor {
    let volume = dims[0] * dims[1] * dims[2];
    assert!(nnz <= volume, "cannot place {nnz} nonzeros in volume {volume}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < nnz {
        chosen.insert(rng.gen_range(0..volume));
    }
    let mut coo = CooTensor::new(dims.to_vec());
    for flat in chosen {
        let k = (flat % dims[2]) as u32;
        let j = ((flat / dims[2]) % dims[1]) as u32;
        let i = (flat / (dims[1] * dims[2])) as u32;
        coo.push(&[i, j, k], draw_value(&mut rng)).expect("in bounds");
    }
    coo
}

/// A fully dense matrix with random values.
pub fn dense_matrix(rows: usize, cols: usize, seed: u64) -> CooTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooTensor::new(vec![rows, cols]);
    for i in 0..rows as u32 {
        for j in 0..cols as u32 {
            coo.push(&[i, j], draw_value(&mut rng)).expect("in bounds");
        }
    }
    coo
}

/// A pair of vectors following the paper's `runs` pattern (Figure 17): the
/// two vectors alternate disjoint runs of `run_len` consecutive nonzeros, so
/// one vector's nonzeros are separated by long stretches of the other's.
/// Each vector receives `nnz` nonzeros spread over dimension `dim`.
///
/// # Panics
///
/// Panics if the requested runs cannot fit in the dimension.
pub fn runs_vector_pair(dim: usize, nnz: usize, run_len: usize, seed: u64) -> (CooTensor, CooTensor) {
    assert!(run_len > 0, "run length must be positive");
    assert!(2 * nnz <= dim, "runs pattern needs 2*nnz <= dim");
    let mut rng = StdRng::seed_from_u64(seed);
    let runs_per_vec = nnz.div_ceil(run_len);
    // Each period holds one run of b, one run of c, and an even share of the
    // leftover slack as a gap.
    let total_run_space = 2 * nnz;
    let slack = dim - total_run_space;
    let gap = slack / (2 * runs_per_vec).max(1);
    let mut b = CooTensor::new(vec![dim]);
    let mut c = CooTensor::new(vec![dim]);
    let mut pos = 0usize;
    let mut placed_b = 0usize;
    let mut placed_c = 0usize;
    while (placed_b < nnz || placed_c < nnz) && pos < dim {
        for _ in 0..run_len {
            if placed_b < nnz && pos < dim {
                b.push(&[pos as u32], draw_value(&mut rng)).expect("in bounds");
                placed_b += 1;
                pos += 1;
            }
        }
        pos += gap.min(dim.saturating_sub(pos));
        for _ in 0..run_len {
            if placed_c < nnz && pos < dim {
                c.push(&[pos as u32], draw_value(&mut rng)).expect("in bounds");
                placed_c += 1;
                pos += 1;
            }
        }
        pos += gap.min(dim.saturating_sub(pos));
    }
    (b, c)
}

/// A pair of vectors following the paper's `blocks` pattern (Figure 17):
/// both vectors contain aligned dense blocks of `block_size` nonzeros placed
/// evenly throughout the dimension, so intersections are dense within
/// blocks. Each vector receives `nnz` nonzeros.
///
/// # Panics
///
/// Panics if `nnz > dim` or `block_size` is zero.
pub fn blocks_vector_pair(dim: usize, nnz: usize, block_size: usize, seed: u64) -> (CooTensor, CooTensor) {
    assert!(block_size > 0, "block size must be positive");
    assert!(nnz <= dim, "cannot place {nnz} nonzeros in dimension {dim}");
    let mut rng = StdRng::seed_from_u64(seed);
    let num_blocks = nnz.div_ceil(block_size);
    let stride = dim / num_blocks.max(1);
    let mut b = CooTensor::new(vec![dim]);
    let mut c = CooTensor::new(vec![dim]);
    let mut placed = 0usize;
    for block in 0..num_blocks {
        let start = block * stride;
        for off in 0..block_size {
            if placed >= nnz || start + off >= dim {
                break;
            }
            let p = (start + off) as u32;
            b.push(&[p], draw_value(&mut rng)).expect("in bounds");
            c.push(&[p], draw_value(&mut rng)).expect("in bounds");
            placed += 1;
        }
    }
    (b, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_vector_has_exact_nnz_and_is_deterministic() {
        let a = random_vector(100, 17, 7);
        let b = random_vector(100, 17, 7);
        assert_eq!(a, b);
        assert_eq!(a.nnz(), 17);
        assert!(a.entries().iter().all(|(p, v)| p[0] < 100 && *v != 0.0));
    }

    #[test]
    fn random_matrix_sparsity_fraction() {
        let m = random_matrix_sparsity(50, 40, 0.95, 3);
        let expected = (50.0 * 40.0 * 0.05_f64).round() as usize;
        assert_eq!(m.nnz(), expected);
    }

    #[test]
    fn random_matrix_nnz_exact_both_paths() {
        // Sparse path (rejection sampling).
        let sparse = random_matrix_nnz(100, 100, 50, 1);
        assert_eq!(sparse.nnz(), 50);
        // Dense path (shuffle).
        let dense = random_matrix_nnz(10, 10, 80, 1);
        assert_eq!(dense.nnz(), 80);
        // Points are unique in both.
        let mut pts: Vec<_> = dense.entries().iter().map(|(p, _)| p.clone()).collect();
        pts.sort();
        pts.dedup();
        assert_eq!(pts.len(), 80);
    }

    #[test]
    fn random_tensor3_bounds() {
        let t = random_tensor3([4, 5, 6], 30, 11);
        assert_eq!(t.nnz(), 30);
        for (p, _) in t.entries() {
            assert!(p[0] < 4 && p[1] < 5 && p[2] < 6);
        }
    }

    #[test]
    fn dense_matrix_is_full() {
        let m = dense_matrix(3, 4, 2);
        assert_eq!(m.nnz(), 12);
    }

    #[test]
    fn runs_pattern_is_disjoint() {
        let (b, c) = runs_vector_pair(2000, 400, 10, 5);
        assert_eq!(b.nnz(), 400);
        assert_eq!(c.nnz(), 400);
        let bset: std::collections::BTreeSet<u32> = b.entries().iter().map(|(p, _)| p[0]).collect();
        let cset: std::collections::BTreeSet<u32> = c.entries().iter().map(|(p, _)| p[0]).collect();
        assert!(bset.is_disjoint(&cset), "runs vectors must not overlap");
    }

    #[test]
    fn runs_pattern_has_contiguous_runs() {
        let (b, _) = runs_vector_pair(2000, 400, 8, 5);
        let coords: Vec<u32> = b.entries().iter().map(|(p, _)| p[0]).collect();
        // The first run is contiguous.
        assert_eq!(&coords[..8], &(coords[0]..coords[0] + 8).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn blocks_pattern_overlaps_fully() {
        let (b, c) = blocks_vector_pair(2000, 400, 16, 5);
        assert_eq!(b.nnz(), 400);
        assert_eq!(c.nnz(), 400);
        let bset: std::collections::BTreeSet<u32> = b.entries().iter().map(|(p, _)| p[0]).collect();
        let cset: std::collections::BTreeSet<u32> = c.entries().iter().map(|(p, _)| p[0]).collect();
        assert_eq!(bset, cset, "blocks vectors share their nonzero positions");
    }

    #[test]
    #[should_panic(expected = "2*nnz <= dim")]
    fn runs_rejects_overfull() {
        let _ = runs_vector_pair(100, 60, 4, 0);
    }
}
