//! Dense tensors, used as the functional-correctness oracle.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major tensor of `f64` values.
///
/// Dense tensors are used by the [`crate::reference`] evaluator to compute
/// ground-truth results that simulated SAM graphs are checked against, and to
/// stage dense operands (e.g. the dense matrices of SDDMM).
///
/// ```
/// use sam_tensor::DenseTensor;
/// let mut m = DenseTensor::zeros(vec![2, 3]);
/// *m.at_mut(&[1, 2]) = 4.0;
/// assert_eq!(m.at(&[1, 2]), 4.0);
/// assert_eq!(m.nnz(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseTensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl DenseTensor {
    /// An all-zero tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics when the shape is empty or has a zero-sized dimension.
    pub fn zeros(shape: Vec<usize>) -> Self {
        assert!(!shape.is_empty(), "tensors must have at least one dimension");
        assert!(shape.iter().all(|&d| d > 0), "dimension sizes must be positive");
        let volume = shape.iter().product();
        DenseTensor { shape, data: vec![0.0; volume] }
    }

    /// Builds a tensor from a closure evaluated at every point.
    pub fn from_fn<F: FnMut(&[u32]) -> f64>(shape: Vec<usize>, mut f: F) -> Self {
        let mut t = DenseTensor::zeros(shape);
        let shape = t.shape.clone();
        let mut point = vec![0u32; shape.len()];
        for flat in 0..t.data.len() {
            let mut rem = flat;
            for (d, &size) in shape.iter().enumerate().rev() {
                point[d] = (rem % size) as u32;
                rem /= size;
            }
            t.data[flat] = f(&point);
        }
        t
    }

    /// Builds a tensor from raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics when the data length does not match the shape volume.
    pub fn from_data(shape: Vec<usize>, data: Vec<f64>) -> Self {
        let volume: usize = shape.iter().product();
        assert_eq!(data.len(), volume, "data length must match shape volume");
        DenseTensor { shape, data }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.shape.len()
    }

    /// The raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Number of nonzero components.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    fn flat_index(&self, point: &[u32]) -> usize {
        assert_eq!(point.len(), self.shape.len(), "point rank mismatch");
        let mut flat = 0usize;
        for (d, &c) in point.iter().enumerate() {
            assert!((c as usize) < self.shape[d], "coordinate {c} out of bounds for dim {d}");
            flat = flat * self.shape[d] + c as usize;
        }
        flat
    }

    /// The value at a point.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at(&self, point: &[u32]) -> f64 {
        self.data[self.flat_index(point)]
    }

    /// Mutable access to the value at a point.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at_mut(&mut self, point: &[u32]) -> &mut f64 {
        let idx = self.flat_index(point);
        &mut self.data[idx]
    }

    /// Element-wise approximate equality with a relative tolerance.
    pub fn approx_eq(&self, other: &DenseTensor) -> bool {
        if self.shape != other.shape {
            return false;
        }
        self.data.iter().zip(&other.data).all(|(a, b)| {
            let scale = a.abs().max(b.abs()).max(1.0);
            (a - b).abs() <= 1e-9 * scale
        })
    }

    /// The largest absolute element-wise difference to another tensor.
    ///
    /// # Panics
    ///
    /// Panics when the shapes differ.
    pub fn max_abs_diff(&self, other: &DenseTensor) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }
}

impl fmt::Display for DenseTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dense{:?} nnz={}", self.shape, self.nnz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut t = DenseTensor::zeros(vec![2, 2, 2]);
        assert_eq!(t.data().len(), 8);
        *t.at_mut(&[1, 0, 1]) = 7.0;
        assert_eq!(t.at(&[1, 0, 1]), 7.0);
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.order(), 3);
    }

    #[test]
    fn from_fn_row_major() {
        let t = DenseTensor::from_fn(vec![2, 3], |p| (p[0] * 10 + p[1]) as f64);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn approx_eq_and_diff() {
        let a = DenseTensor::from_data(vec![2], vec![1.0, 2.0]);
        let b = DenseTensor::from_data(vec![2], vec![1.0, 2.0 + 1e-12]);
        assert!(a.approx_eq(&b));
        let c = DenseTensor::from_data(vec![2], vec![1.0, 3.0]);
        assert!(!a.approx_eq(&c));
        assert!((a.max_abs_diff(&c) - 1.0).abs() < 1e-12);
        let d = DenseTensor::zeros(vec![3]);
        assert!(!a.approx_eq(&d));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let t = DenseTensor::zeros(vec![2, 2]);
        let _ = t.at(&[2, 0]);
    }

    #[test]
    fn display() {
        let t = DenseTensor::from_data(vec![2, 2], vec![1.0, 0.0, 0.0, 2.0]);
        assert_eq!(t.to_string(), "dense[2, 2] nnz=2");
    }
}
