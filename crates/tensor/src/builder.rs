//! Construction of fibertrees from coordinate lists.

use crate::coo::CooTensor;
use crate::format::{LevelFormat, TensorFormat};
use crate::level::{BitvectorLevel, CompressedLevel, DenseLevel, Level};
use crate::tensor::Tensor;

/// Builds [`Tensor`] fibertrees from [`CooTensor`] staging data and a
/// [`TensorFormat`].
///
/// The builder walks the sorted, deduplicated coordinate list level by level
/// in storage order, partitioning the points of each parent fiber into child
/// fibers. Dense levels materialize every coordinate (including empty
/// sub-trees); compressed and bitvector levels store only nonempty children.
///
/// ```
/// use sam_tensor::{CooTensor, TensorBuilder, TensorFormat};
/// let coo = CooTensor::from_entries(
///     vec![4, 4],
///     vec![(vec![0, 1], 1.0), (vec![1, 0], 2.0), (vec![1, 2], 3.0), (vec![3, 1], 4.0), (vec![3, 3], 5.0)],
/// ).unwrap();
/// let b = TensorBuilder::new(TensorFormat::dcsr()).build("B", &coo);
/// assert_eq!(b.nnz(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct TensorBuilder {
    format: TensorFormat,
}

impl TensorBuilder {
    /// Creates a builder for the given format.
    pub fn new(format: TensorFormat) -> Self {
        TensorBuilder { format }
    }

    /// The format this builder produces.
    pub fn format(&self) -> &TensorFormat {
        &self.format
    }

    /// Builds a named fibertree from COO data.
    ///
    /// # Panics
    ///
    /// Panics if the COO order does not match the format order.
    pub fn build(&self, name: &str, coo: &CooTensor) -> Tensor {
        assert_eq!(
            coo.order(),
            self.format.order(),
            "tensor order {} does not match format order {}",
            coo.order(),
            self.format.order()
        );
        let mode_order = self.format.mode_order().to_vec();
        let points = coo.canonicalized(&mode_order);
        let storage_shape = coo.permuted_shape(&mode_order);

        // Each fiber is a half-open range into `points` of entries that share
        // the fiber's position prefix. The root has a single fiber covering
        // all points.
        let mut fibers: Vec<(usize, usize)> = vec![(0, points.len())];
        let mut levels = Vec::with_capacity(self.format.order());

        for (depth, (&fmt, &dim)) in self.format.levels().iter().zip(&storage_shape).enumerate() {
            let mut next_fibers = Vec::new();
            let level = match fmt {
                LevelFormat::Dense => {
                    for &(start, end) in &fibers {
                        let mut cursor = start;
                        for c in 0..dim as u32 {
                            let child_start = cursor;
                            while cursor < end && points[cursor].0[depth] == c {
                                cursor += 1;
                            }
                            next_fibers.push((child_start, cursor));
                        }
                        debug_assert_eq!(cursor, end, "points outside dimension bound");
                    }
                    Level::Dense(DenseLevel::new(dim, fibers.len()))
                }
                LevelFormat::Compressed => {
                    let mut builder = CompressedLevel::builder(dim);
                    for &(start, end) in &fibers {
                        let mut cursor = start;
                        while cursor < end {
                            let c = points[cursor].0[depth];
                            let child_start = cursor;
                            while cursor < end && points[cursor].0[depth] == c {
                                cursor += 1;
                            }
                            builder.push_coord(c);
                            next_fibers.push((child_start, cursor));
                        }
                        builder.end_fiber();
                    }
                    Level::Compressed(builder.finish())
                }
                LevelFormat::Bitvector { word_width } => {
                    let mut fiber_coords = Vec::with_capacity(fibers.len());
                    for &(start, end) in &fibers {
                        let mut coords = Vec::new();
                        let mut cursor = start;
                        while cursor < end {
                            let c = points[cursor].0[depth];
                            let child_start = cursor;
                            while cursor < end && points[cursor].0[depth] == c {
                                cursor += 1;
                            }
                            coords.push(c);
                            next_fibers.push((child_start, cursor));
                        }
                        fiber_coords.push(coords);
                    }
                    Level::Bitvector(BitvectorLevel::from_fibers(dim, word_width, &fiber_coords))
                }
            };
            levels.push(level);
            fibers = next_fibers;
        }

        // Each leaf fiber holds at most one (deduplicated) point; empty leaf
        // fibers from dense levels become explicit zeros.
        let vals: Vec<f64> = fibers
            .iter()
            .map(|&(start, end)| {
                debug_assert!(end - start <= 1, "leaf fiber should hold at most one point");
                if end > start {
                    points[start].1
                } else {
                    0.0
                }
            })
            .collect();

        Tensor::from_parts(name, coo.shape().to_vec(), self.format.clone(), levels, vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_coo() -> CooTensor {
        CooTensor::from_entries(
            vec![4, 4],
            vec![
                (vec![0, 1], 1.0),
                (vec![1, 0], 2.0),
                (vec![1, 2], 3.0),
                (vec![3, 1], 4.0),
                (vec![3, 3], 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dcsr_matches_figure1c() {
        let t = TensorBuilder::new(TensorFormat::dcsr()).build("B", &figure1_coo());
        match t.level(0) {
            Level::Compressed(l) => {
                assert_eq!(l.seg, vec![0, 3]);
                assert_eq!(l.crd, vec![0, 1, 3]);
            }
            other => panic!("expected compressed level, got {other:?}"),
        }
        match t.level(1) {
            Level::Compressed(l) => {
                assert_eq!(l.seg, vec![0, 1, 3, 5]);
                assert_eq!(l.crd, vec![1, 0, 2, 1, 3]);
            }
            other => panic!("expected compressed level, got {other:?}"),
        }
        assert_eq!(t.vals(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn csr_has_dense_rows() {
        let t = TensorBuilder::new(TensorFormat::csr()).build("B", &figure1_coo());
        match t.level(0) {
            Level::Dense(l) => {
                assert_eq!(l.size, 4);
                assert_eq!(l.num_fibers, 1);
            }
            other => panic!("expected dense level, got {other:?}"),
        }
        match t.level(1) {
            Level::Compressed(l) => {
                // Row 2 is empty so its segment repeats.
                assert_eq!(l.seg, vec![0, 1, 3, 3, 5]);
                assert_eq!(l.crd, vec![1, 0, 2, 1, 3]);
            }
            other => panic!("expected compressed level, got {other:?}"),
        }
    }

    #[test]
    fn csc_transposes() {
        let t = TensorBuilder::new(TensorFormat::dcsc()).build("B", &figure1_coo());
        // Column-major: columns 0,1,2,3 -> nonempty columns 0,1,2,3 minus col with no nonzeros.
        match t.level(0) {
            Level::Compressed(l) => assert_eq!(l.crd, vec![0, 1, 2, 3]),
            other => panic!("expected compressed level, got {other:?}"),
        }
        // Values appear in column-major order.
        assert_eq!(t.vals(), &[2.0, 1.0, 4.0, 3.0, 5.0]);
    }

    #[test]
    fn dense_format_fills_zeros() {
        let t = TensorBuilder::new(TensorFormat::dense(2)).build("B", &figure1_coo());
        assert_eq!(t.vals().len(), 16);
        assert_eq!(t.vals()[1], 1.0); // (0,1)
        assert_eq!(t.vals()[4], 2.0); // (1,0)
        assert_eq!(t.vals()[15], 5.0); // (3,3)
        assert_eq!(t.vals()[0], 0.0);
    }

    #[test]
    fn bitvector_format_matches_compressed_value_order() {
        let fmt = TensorFormat::new(vec![LevelFormat::Compressed, LevelFormat::bitvector()]);
        let t = TensorBuilder::new(fmt).build("B", &figure1_coo());
        assert_eq!(t.vals(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.level(1).num_children(), 5);
    }

    #[test]
    fn duplicate_entries_are_summed() {
        let coo = CooTensor::from_entries(vec![2, 2], vec![(vec![0, 0], 1.0), (vec![0, 0], 2.5)]).unwrap();
        let t = TensorBuilder::new(TensorFormat::dcsr()).build("A", &coo);
        assert_eq!(t.vals(), &[3.5]);
    }

    #[test]
    #[should_panic(expected = "does not match format order")]
    fn order_mismatch_panics() {
        let coo = CooTensor::new(vec![2, 2, 2]);
        let _ = TensorBuilder::new(TensorFormat::dcsr()).build("A", &coo);
    }
}
