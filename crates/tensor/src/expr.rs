//! The tensor index notation expression AST.
//!
//! This AST is shared between the dense [`crate::reference`] evaluator (the
//! correctness oracle) and the Custard compiler, which parses the textual
//! notation into [`Assignment`] values and lowers them to SAM graphs.
//!
//! Reductions are explicit [`Expr::Reduce`] nodes so that expressions such as
//! `x(i) = b(i) - sum_j C(i,j)*d(j)` are unambiguous.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// An index variable (`i`, `j`, `k`, ...).
pub type IndexVar = char;

/// A tensor algebra expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A tensor access such as `B(i,k)`. A zero-index access is a scalar
    /// tensor.
    Access {
        /// Tensor name.
        tensor: String,
        /// Index variables, one per mode.
        indices: Vec<IndexVar>,
    },
    /// A literal scalar constant.
    Literal(f64),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Summation reduction over the given index variables.
    Reduce {
        /// Reduced index variables.
        vars: Vec<IndexVar>,
        /// Reduced sub-expression.
        body: Box<Expr>,
    },
}

impl Expr {
    /// A tensor access; `indices` is given as a string of index variables
    /// (e.g. `"ik"`).
    pub fn access(tensor: &str, indices: &str) -> Expr {
        Expr::Access { tensor: tensor.to_string(), indices: indices.chars().collect() }
    }

    /// A scalar literal.
    pub fn lit(value: f64) -> Expr {
        Expr::Literal(value)
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// Sums `self` over the index variables in `vars` (e.g. `"jk"`).
    pub fn reduce(self, vars: &str) -> Expr {
        Expr::Reduce { vars: vars.chars().collect(), body: Box::new(self) }
    }

    /// All index variables appearing anywhere in the expression (sorted).
    pub fn index_vars(&self) -> Vec<IndexVar> {
        let mut set = BTreeSet::new();
        self.collect_index_vars(&mut set);
        set.into_iter().collect()
    }

    fn collect_index_vars(&self, out: &mut BTreeSet<IndexVar>) {
        match self {
            Expr::Access { indices, .. } => out.extend(indices.iter().copied()),
            Expr::Literal(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.collect_index_vars(out);
                b.collect_index_vars(out);
            }
            Expr::Reduce { vars, body } => {
                out.extend(vars.iter().copied());
                body.collect_index_vars(out);
            }
        }
    }

    /// Index variables reduced somewhere in the expression (sorted).
    pub fn reduced_vars(&self) -> Vec<IndexVar> {
        let mut set = BTreeSet::new();
        self.collect_reduced_vars(&mut set);
        set.into_iter().collect()
    }

    fn collect_reduced_vars(&self, out: &mut BTreeSet<IndexVar>) {
        match self {
            Expr::Access { .. } | Expr::Literal(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.collect_reduced_vars(out);
                b.collect_reduced_vars(out);
            }
            Expr::Reduce { vars, body } => {
                out.extend(vars.iter().copied());
                body.collect_reduced_vars(out);
            }
        }
    }

    /// All tensor accesses, left to right.
    pub fn accesses(&self) -> Vec<(&str, &[IndexVar])> {
        let mut out = Vec::new();
        self.collect_accesses(&mut out);
        out
    }

    fn collect_accesses<'a>(&'a self, out: &mut Vec<(&'a str, &'a [IndexVar])>) {
        match self {
            Expr::Access { tensor, indices } => out.push((tensor.as_str(), indices.as_slice())),
            Expr::Literal(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.collect_accesses(out);
                b.collect_accesses(out);
            }
            Expr::Reduce { body, .. } => body.collect_accesses(out),
        }
    }

    /// True when the expression contains any addition or subtraction.
    pub fn has_additive_op(&self) -> bool {
        match self {
            Expr::Access { .. } | Expr::Literal(_) => false,
            Expr::Add(..) | Expr::Sub(..) => true,
            Expr::Mul(a, b) => a.has_additive_op() || b.has_additive_op(),
            Expr::Reduce { body, .. } => body.has_additive_op(),
        }
    }

    /// True when the expression contains any multiplication.
    pub fn has_multiplicative_op(&self) -> bool {
        match self {
            Expr::Access { .. } | Expr::Literal(_) => false,
            Expr::Mul(..) => true,
            Expr::Add(a, b) | Expr::Sub(a, b) => a.has_multiplicative_op() || b.has_multiplicative_op(),
            Expr::Reduce { body, .. } => body.has_multiplicative_op(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Access { tensor, indices } => {
                write!(f, "{tensor}(")?;
                for (i, v) in indices.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Reduce { vars, body } => {
                write!(f, "sum_")?;
                for v in vars {
                    write!(f, "{v}")?;
                }
                write!(f, "({body})")
            }
        }
    }
}

/// A full tensor index notation statement `X(i,j) = rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Result tensor name.
    pub target: String,
    /// Result index variables (may be empty for a scalar result).
    pub target_indices: Vec<IndexVar>,
    /// Right-hand-side expression.
    pub rhs: Expr,
}

impl Assignment {
    /// Creates an assignment; `target_indices` is a string of index
    /// variables (e.g. `"ij"`, or `""` for a scalar result).
    pub fn new(target: &str, target_indices: &str, rhs: Expr) -> Self {
        Assignment { target: target.to_string(), target_indices: target_indices.chars().collect(), rhs }
    }

    /// Every index variable in the statement: target indices first (in
    /// order), then the remaining right-hand-side variables sorted.
    pub fn all_index_vars(&self) -> Vec<IndexVar> {
        let mut vars = self.target_indices.clone();
        for v in self.rhs.index_vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        vars
    }

    /// Index variables that are reduced (appear on the right-hand side but
    /// not in the target).
    pub fn reduction_vars(&self) -> Vec<IndexVar> {
        self.rhs.index_vars().into_iter().filter(|v| !self.target_indices.contains(v)).collect()
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.target)?;
        for (i, v) in self.target_indices.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") = {}", self.rhs)
    }
}

/// Pre-built assignments for the paper's Table 1 expressions.
pub mod table1 {
    use super::{Assignment, Expr};

    /// SpMV: `x(i) = sum_j B(i,j) * c(j)`.
    pub fn spmv() -> Assignment {
        Assignment::new("x", "i", Expr::access("B", "ij").mul(Expr::access("c", "j")).reduce("j"))
    }

    /// SpM*SpM: `X(i,j) = sum_k B(i,k) * C(k,j)`.
    pub fn spmm() -> Assignment {
        Assignment::new("X", "ij", Expr::access("B", "ik").mul(Expr::access("C", "kj")).reduce("k"))
    }

    /// SDDMM: `X(i,j) = sum_k B(i,j) * C(i,k) * D(j,k)`.
    pub fn sddmm() -> Assignment {
        Assignment::new(
            "X",
            "ij",
            Expr::access("B", "ij").mul(Expr::access("C", "ik").mul(Expr::access("D", "jk")).reduce("k")),
        )
    }

    /// Inner product of two order-3 tensors: `chi = sum_ijk B(i,j,k) * C(i,j,k)`.
    pub fn inner_prod() -> Assignment {
        Assignment::new("chi", "", Expr::access("B", "ijk").mul(Expr::access("C", "ijk")).reduce("ijk"))
    }

    /// TTV: `X(i,j) = sum_k B(i,j,k) * c(k)`.
    pub fn ttv() -> Assignment {
        Assignment::new("X", "ij", Expr::access("B", "ijk").mul(Expr::access("c", "k")).reduce("k"))
    }

    /// TTM: `X(i,j,k) = sum_l B(i,j,l) * C(k,l)`.
    pub fn ttm() -> Assignment {
        Assignment::new("X", "ijk", Expr::access("B", "ijl").mul(Expr::access("C", "kl")).reduce("l"))
    }

    /// MTTKRP: `X(i,j) = sum_kl B(i,k,l) * C(j,k) * D(j,l)`.
    pub fn mttkrp() -> Assignment {
        Assignment::new(
            "X",
            "ij",
            Expr::access("B", "ikl").mul(Expr::access("C", "jk")).mul(Expr::access("D", "jl")).reduce("kl"),
        )
    }

    /// Residual: `x(i) = b(i) - sum_j C(i,j) * d(j)`.
    pub fn residual() -> Assignment {
        Assignment::new(
            "x",
            "i",
            Expr::access("b", "i").sub(Expr::access("C", "ij").mul(Expr::access("d", "j")).reduce("j")),
        )
    }

    /// MatTransMul: `x(i) = sum_j alpha * B(j,i) * c(j) + beta * d(i)`.
    pub fn mat_trans_mul() -> Assignment {
        Assignment::new(
            "x",
            "i",
            Expr::access("alpha", "")
                .mul(Expr::access("B", "ji"))
                .mul(Expr::access("c", "j"))
                .reduce("j")
                .add(Expr::access("beta", "").mul(Expr::access("d", "i"))),
        )
    }

    /// MMAdd: `X(i,j) = B(i,j) + C(i,j)`.
    pub fn mm_add() -> Assignment {
        Assignment::new("X", "ij", Expr::access("B", "ij").add(Expr::access("C", "ij")))
    }

    /// Plus3: `X(i,j) = B(i,j) + C(i,j) + D(i,j)`.
    pub fn plus3() -> Assignment {
        Assignment::new(
            "X",
            "ij",
            Expr::access("B", "ij").add(Expr::access("C", "ij")).add(Expr::access("D", "ij")),
        )
    }

    /// Plus2 (order-3 addition): `X(i,j,k) = B(i,j,k) + C(i,j,k)`.
    pub fn plus2() -> Assignment {
        Assignment::new("X", "ijk", Expr::access("B", "ijk").add(Expr::access("C", "ijk")))
    }

    /// Matrix identity: `X(i,j) = B(i,j)` (used in the Figure 14 study).
    pub fn identity() -> Assignment {
        Assignment::new("X", "ij", Expr::access("B", "ij"))
    }

    /// Element-wise vector multiplication `x(i) = b(i) * c(i)`
    /// (the Figure 13 kernel).
    pub fn vec_elem_mul() -> Assignment {
        Assignment::new("x", "i", Expr::access("b", "i").mul(Expr::access("c", "i")))
    }

    /// Element-wise vector addition `x(i) = b(i) + c(i)` (the Figure 5 kernel).
    pub fn vec_elem_add() -> Assignment {
        Assignment::new("x", "i", Expr::access("b", "i").add(Expr::access("c", "i")))
    }

    /// All Table 1 rows, in paper order, with their display names.
    pub fn all() -> Vec<(&'static str, Assignment)> {
        vec![
            ("SpMV", spmv()),
            ("SpM*SpM", spmm()),
            ("SDDMM", sddmm()),
            ("InnerProd", inner_prod()),
            ("TTV", ttv()),
            ("TTM", ttm()),
            ("MTTKRP", mttkrp()),
            ("Residual", residual()),
            ("MatTransMul", mat_trans_mul()),
            ("MMAdd", mm_add()),
            ("Plus3", plus3()),
            ("Plus2", plus2()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_var_collection() {
        let a = table1::spmm();
        assert_eq!(a.all_index_vars(), vec!['i', 'j', 'k']);
        assert_eq!(a.reduction_vars(), vec!['k']);
        assert_eq!(a.rhs.index_vars(), vec!['i', 'j', 'k']);
        assert_eq!(a.rhs.reduced_vars(), vec!['k']);
    }

    #[test]
    fn accesses_in_order() {
        let a = table1::sddmm();
        let names: Vec<&str> = a.rhs.accesses().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["B", "C", "D"]);
    }

    #[test]
    fn op_classification() {
        assert!(table1::residual().rhs.has_additive_op());
        assert!(table1::residual().rhs.has_multiplicative_op());
        assert!(!table1::mm_add().rhs.has_multiplicative_op());
        assert!(!table1::spmm().rhs.has_additive_op());
        assert!(!Expr::lit(3.0).has_additive_op());
    }

    #[test]
    fn scalar_result() {
        let a = table1::inner_prod();
        assert!(a.target_indices.is_empty());
        assert_eq!(a.reduction_vars(), vec!['i', 'j', 'k']);
    }

    #[test]
    fn display_forms() {
        assert_eq!(table1::spmv().to_string(), "x(i) = sum_j((B(i,j) * c(j)))");
        assert_eq!(table1::mm_add().to_string(), "X(i,j) = (B(i,j) + C(i,j))");
        assert!(table1::mat_trans_mul().to_string().contains("alpha"));
    }

    #[test]
    fn table1_has_twelve_rows() {
        assert_eq!(table1::all().len(), 12);
    }
}
