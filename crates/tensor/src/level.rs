//! Per-level storage of fibertrees.
//!
//! Each fibertree level is stored independently in one of three formats
//! (paper Sections 3.1 and 4.3):
//!
//! * [`DenseLevel`] (the paper's *uncompressed* level): only the dimension
//!   size is stored; every coordinate in `0..size` is present in every fiber.
//! * [`CompressedLevel`]: a segment array and a coordinate array, the level
//!   format used by CSR/DCSR/CSF.
//! * [`BitvectorLevel`]: fixed-width occupancy words per fiber; child
//!   positions are bit ranks (popcount sums), as described for the bitvector
//!   level scanner.
//!
//! All three expose the same *fiber view* interface so level scanners stay
//! format-agnostic (paper Figure 3).

use serde::{Deserialize, Serialize};

/// A storage-format-agnostic handle to one fiber of a level.
///
/// A fiber is an ordered list of `(coordinate, child position)` pairs; the
/// child position identifies the fiber at the next level (or the value for
/// the last level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiberEntry {
    /// The coordinate within this dimension.
    pub coord: u32,
    /// Position of the child fiber (or value) in the next level.
    pub child: usize,
}

/// One level of a fibertree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Level {
    /// Uncompressed level: all coordinates are materialized.
    Dense(DenseLevel),
    /// Compressed level: segment + coordinate arrays.
    Compressed(CompressedLevel),
    /// Bitvector level: occupancy words.
    Bitvector(BitvectorLevel),
}

impl Level {
    /// Number of fibers stored at this level.
    pub fn num_fibers(&self) -> usize {
        match self {
            Level::Dense(l) => l.num_fibers,
            Level::Compressed(l) => l.seg.len().saturating_sub(1),
            Level::Bitvector(l) => l.words.len().checked_div(l.words_per_fiber).unwrap_or(0),
        }
    }

    /// Total number of child positions this level produces, which equals the
    /// number of fibers of the next level (or the length of the values array
    /// for the last level).
    pub fn num_children(&self) -> usize {
        match self {
            Level::Dense(l) => l.num_fibers * l.size,
            Level::Compressed(l) => l.crd.len(),
            Level::Bitvector(l) => l.words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// The dimension size this level spans.
    pub fn dimension(&self) -> usize {
        match self {
            Level::Dense(l) => l.size,
            Level::Compressed(l) => l.dim,
            Level::Bitvector(l) => l.dim,
        }
    }

    /// The entries of fiber `fiber` in coordinate order.
    ///
    /// # Panics
    ///
    /// Panics if `fiber` is out of range.
    pub fn fiber(&self, fiber: usize) -> Vec<FiberEntry> {
        match self {
            Level::Dense(l) => l.fiber(fiber),
            Level::Compressed(l) => l.fiber(fiber),
            Level::Bitvector(l) => l.fiber(fiber),
        }
    }

    /// Number of entries in fiber `fiber`.
    pub fn fiber_len(&self, fiber: usize) -> usize {
        match self {
            Level::Dense(l) => {
                assert!(fiber < l.num_fibers, "fiber out of range");
                l.size
            }
            Level::Compressed(l) => {
                assert!(fiber + 1 < l.seg.len(), "fiber out of range");
                l.seg[fiber + 1] - l.seg[fiber]
            }
            Level::Bitvector(l) => l.fiber_words(fiber).iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// Finds the child position of `coord` within fiber `fiber`, if that
    /// coordinate is present (iterate-locate, paper Definition 4.1).
    pub fn locate(&self, fiber: usize, coord: u32) -> Option<usize> {
        match self {
            Level::Dense(l) => l.locate(fiber, coord),
            Level::Compressed(l) => l.locate(fiber, coord),
            Level::Bitvector(l) => l.locate(fiber, coord),
        }
    }

    /// The entry at position `idx` of fiber `fiber`, without materializing
    /// the whole fiber. O(1) for dense and compressed levels; bitvector
    /// levels pay a per-word scan.
    ///
    /// # Panics
    ///
    /// Panics if `fiber` or `idx` is out of range.
    pub fn entry_at(&self, fiber: usize, idx: usize) -> FiberEntry {
        match self {
            Level::Dense(l) => {
                assert!(fiber < l.num_fibers && idx < l.size, "entry out of range");
                FiberEntry { coord: idx as u32, child: fiber * l.size + idx }
            }
            Level::Compressed(l) => {
                let p = l.seg[fiber] + idx;
                assert!(p < l.seg[fiber + 1], "entry out of range");
                FiberEntry { coord: l.crd[p], child: p }
            }
            Level::Bitvector(l) => {
                // Select the idx-th set bit: a per-word popcount walk, no
                // fiber materialization (GallopScan calls this per entry).
                let mut remaining = idx;
                let mut rank = l.fiber_rank_base(fiber);
                for (wi, &word) in l.fiber_words(fiber).iter().enumerate() {
                    let pop = word.count_ones() as usize;
                    if remaining < pop {
                        let mut w = word;
                        for _ in 0..remaining {
                            w &= w - 1;
                        }
                        let coord = (wi * l.word_width as usize) + w.trailing_zeros() as usize;
                        return FiberEntry { coord: coord as u32, child: rank + remaining };
                    }
                    remaining -= pop;
                    rank += pop;
                }
                panic!("entry out of range");
            }
        }
    }

    /// The position of the first entry of fiber `fiber`, at index `from` or
    /// later, whose coordinate is at least `target` — the coordinate-skip
    /// gallop of paper Section 4.2. Returns [`Level::fiber_len`] when no
    /// such entry exists. O(1) for dense levels, O(log n) for compressed.
    pub fn gallop_from(&self, fiber: usize, from: usize, target: u32) -> usize {
        let len = self.fiber_len(fiber);
        if from >= len {
            return len;
        }
        match self {
            // Dense fibers index directly: coordinate == position.
            Level::Dense(_) => (target as usize).clamp(from, len),
            Level::Compressed(l) => {
                let slice = &l.crd[l.seg[fiber] + from..l.seg[fiber + 1]];
                from + slice.partition_point(|&c| c < target)
            }
            Level::Bitvector(l) => {
                // The first entry with coordinate >= target sits at the
                // rank of `target` within the fiber: a popcount walk over
                // the words below it, no materialization.
                let ww = l.word_width as usize;
                let wlimit = (target as usize) / ww;
                let mut below = 0usize;
                for (wi, &word) in l.fiber_words(fiber).iter().enumerate() {
                    if wi < wlimit {
                        below += word.count_ones() as usize;
                    } else {
                        if wi == wlimit {
                            let b = (target as usize) % ww;
                            below += (word & ((1u64 << b) - 1)).count_ones() as usize;
                        }
                        break;
                    }
                }
                below.clamp(from, len)
            }
        }
    }

    /// True when this level stores every coordinate (dense iteration space).
    pub fn is_dense(&self) -> bool {
        matches!(self, Level::Dense(_))
    }

    /// The positional index range of fiber `fiber`'s entries whose
    /// coordinates lie in `lo..hi` — the positional-slicing primitive the
    /// tiling subsystem extracts `tile x tile` sub-tensors with. Two
    /// [`Level::gallop_from`] probes: O(1) for dense levels, O(log n) for
    /// compressed, a popcount walk for bitvector levels.
    pub fn coord_range(&self, fiber: usize, lo: u32, hi: u32) -> std::ops::Range<usize> {
        let start = self.gallop_from(fiber, 0, lo);
        let end = self.gallop_from(fiber, start, hi);
        start..end
    }

    /// The entries of fiber `fiber` with coordinates in `lo..hi`, without
    /// materializing the rest of the fiber. Coordinates are returned as
    /// stored (not rebased); child positions index the full next level.
    pub fn slice(&self, fiber: usize, lo: u32, hi: u32) -> Vec<FiberEntry> {
        self.coord_range(fiber, lo, hi).map(|i| self.entry_at(fiber, i)).collect()
    }
}

/// An uncompressed (dense) level: stores only the dimension size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseLevel {
    /// Dimension size (fiber length).
    pub size: usize,
    /// Number of fibers at this level.
    pub num_fibers: usize,
}

impl DenseLevel {
    /// Creates a dense level of `num_fibers` fibers, each spanning `size`
    /// coordinates.
    pub fn new(size: usize, num_fibers: usize) -> Self {
        DenseLevel { size, num_fibers }
    }

    fn fiber(&self, fiber: usize) -> Vec<FiberEntry> {
        assert!(fiber < self.num_fibers, "fiber {fiber} out of range");
        (0..self.size).map(|c| FiberEntry { coord: c as u32, child: fiber * self.size + c }).collect()
    }

    fn locate(&self, fiber: usize, coord: u32) -> Option<usize> {
        if fiber < self.num_fibers && (coord as usize) < self.size {
            Some(fiber * self.size + coord as usize)
        } else {
            None
        }
    }
}

/// A compressed level: `seg[r]..seg[r+1]` delimits fiber `r`'s slice of the
/// coordinate array (paper Figure 1c).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedLevel {
    /// Dimension size spanned by the coordinates.
    pub dim: usize,
    /// Segment array of length `num_fibers + 1`.
    pub seg: Vec<usize>,
    /// Coordinate array; sorted within each fiber.
    pub crd: Vec<u32>,
}

impl CompressedLevel {
    /// Creates a compressed level from raw segment and coordinate arrays.
    ///
    /// # Panics
    ///
    /// Panics if the segment array is empty, unsorted, or does not end at the
    /// coordinate-array length, or if coordinates within a fiber are not
    /// strictly increasing.
    pub fn new(dim: usize, seg: Vec<usize>, crd: Vec<u32>) -> Self {
        assert!(!seg.is_empty(), "segment array must have at least one entry");
        assert!(seg.windows(2).all(|w| w[0] <= w[1]), "segment array must be non-decreasing");
        assert_eq!(
            *seg.last().expect("nonempty"),
            crd.len(),
            "segment array must cover the coordinate array"
        );
        for r in 0..seg.len() - 1 {
            let fiber = &crd[seg[r]..seg[r + 1]];
            assert!(
                fiber.windows(2).all(|w| w[0] < w[1]),
                "coordinates within a fiber must be strictly increasing"
            );
            assert!(fiber.iter().all(|&c| (c as usize) < dim), "coordinate exceeds dimension");
        }
        CompressedLevel { dim, seg, crd }
    }

    /// An empty compressed level (no fibers).
    pub fn empty(dim: usize) -> Self {
        CompressedLevel { dim, seg: vec![0], crd: Vec::new() }
    }

    /// Starts a builder for incremental construction (used by level writers).
    pub fn builder(dim: usize) -> CompressedLevelBuilder {
        CompressedLevelBuilder { dim, seg: vec![0], crd: Vec::new() }
    }

    fn fiber(&self, fiber: usize) -> Vec<FiberEntry> {
        assert!(fiber + 1 < self.seg.len(), "fiber {fiber} out of range");
        (self.seg[fiber]..self.seg[fiber + 1]).map(|p| FiberEntry { coord: self.crd[p], child: p }).collect()
    }

    fn locate(&self, fiber: usize, coord: u32) -> Option<usize> {
        if fiber + 1 >= self.seg.len() {
            return None;
        }
        let slice = &self.crd[self.seg[fiber]..self.seg[fiber + 1]];
        slice.binary_search(&coord).ok().map(|i| self.seg[fiber] + i)
    }
}

/// Incremental builder for [`CompressedLevel`], mirroring the level writer's
/// internal metadata generation (paper Definition 3.8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedLevelBuilder {
    dim: usize,
    seg: Vec<usize>,
    crd: Vec<u32>,
}

impl CompressedLevelBuilder {
    /// Appends one coordinate to the fiber currently being written.
    pub fn push_coord(&mut self, coord: u32) {
        self.crd.push(coord);
    }

    /// Ends the current fiber.
    pub fn end_fiber(&mut self) {
        self.seg.push(self.crd.len());
    }

    /// Number of coordinates written so far.
    pub fn len(&self) -> usize {
        self.crd.len()
    }

    /// True when no coordinates have been written.
    pub fn is_empty(&self) -> bool {
        self.crd.is_empty()
    }

    /// Finishes the level. An unterminated trailing fiber is closed
    /// automatically if it contains coordinates.
    pub fn finish(mut self) -> CompressedLevel {
        if *self.seg.last().expect("nonempty") != self.crd.len() {
            self.seg.push(self.crd.len());
        }
        CompressedLevel { dim: self.dim, seg: self.seg, crd: self.crd }
    }
}

/// A bitvector level: each fiber is a fixed number of occupancy words
/// (paper Section 4.3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitvectorLevel {
    /// Dimension size spanned.
    pub dim: usize,
    /// Bits per word (at most 64).
    pub word_width: u8,
    /// Words per fiber: `ceil(dim / word_width)`.
    pub words_per_fiber: usize,
    /// Occupancy words, fiber-major.
    pub words: Vec<u64>,
}

impl BitvectorLevel {
    /// Creates a bitvector level from per-fiber coordinate lists.
    ///
    /// # Panics
    ///
    /// Panics if `word_width` is zero or exceeds 64, or any coordinate
    /// exceeds the dimension.
    pub fn from_fibers(dim: usize, word_width: u8, fibers: &[Vec<u32>]) -> Self {
        assert!(word_width > 0 && word_width <= 64, "word width must be in 1..=64");
        let words_per_fiber = dim.div_ceil(word_width as usize);
        let mut words = Vec::with_capacity(fibers.len() * words_per_fiber);
        for fiber in fibers {
            let mut fiber_words = vec![0u64; words_per_fiber];
            for &c in fiber {
                assert!((c as usize) < dim, "coordinate exceeds dimension");
                let w = c as usize / word_width as usize;
                let b = c as usize % word_width as usize;
                fiber_words[w] |= 1u64 << b;
            }
            words.extend(fiber_words);
        }
        BitvectorLevel { dim, word_width, words_per_fiber, words }
    }

    /// The occupancy words of fiber `fiber`.
    ///
    /// # Panics
    ///
    /// Panics if `fiber` is out of range.
    pub fn fiber_words(&self, fiber: usize) -> &[u64] {
        let start = fiber * self.words_per_fiber;
        let end = start + self.words_per_fiber;
        assert!(end <= self.words.len(), "fiber {fiber} out of range");
        &self.words[start..end]
    }

    /// Rank of the first bit of fiber `fiber`: the number of set bits in all
    /// preceding fibers. Child positions are global ranks so the values array
    /// is indexed exactly like a compressed level's.
    pub fn fiber_rank_base(&self, fiber: usize) -> usize {
        self.words[..fiber * self.words_per_fiber].iter().map(|w| w.count_ones() as usize).sum()
    }

    fn fiber(&self, fiber: usize) -> Vec<FiberEntry> {
        let base_rank = self.fiber_rank_base(fiber);
        let mut entries = Vec::new();
        let mut rank = base_rank;
        for (wi, &word) in self.fiber_words(fiber).iter().enumerate() {
            for b in 0..self.word_width as usize {
                if (word >> b) & 1 == 1 {
                    let coord = (wi * self.word_width as usize + b) as u32;
                    entries.push(FiberEntry { coord, child: rank });
                    rank += 1;
                }
            }
        }
        entries
    }

    fn locate(&self, fiber: usize, coord: u32) -> Option<usize> {
        if (coord as usize) >= self.dim || (fiber + 1) * self.words_per_fiber > self.words.len() {
            return None;
        }
        let w = coord as usize / self.word_width as usize;
        let b = coord as usize % self.word_width as usize;
        let words = self.fiber_words(fiber);
        if (words[w] >> b) & 1 == 0 {
            return None;
        }
        let mut rank = self.fiber_rank_base(fiber);
        rank += words[..w].iter().map(|x| x.count_ones() as usize).sum::<usize>();
        rank += (words[w] & ((1u64 << b) - 1)).count_ones() as usize;
        Some(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_levels() -> (CompressedLevel, CompressedLevel) {
        // The DCSR matrix of paper Figure 1c.
        let i = CompressedLevel::new(4, vec![0, 3], vec![0, 1, 3]);
        let j = CompressedLevel::new(4, vec![0, 1, 3, 5], vec![1, 0, 2, 1, 3]);
        (i, j)
    }

    #[test]
    fn compressed_fibers_match_figure1() {
        let (i, j) = figure1_levels();
        let li = Level::Compressed(i);
        let lj = Level::Compressed(j);
        assert_eq!(li.num_fibers(), 1);
        assert_eq!(li.num_children(), 3);
        assert_eq!(lj.num_fibers(), 3);
        assert_eq!(lj.num_children(), 5);
        let top: Vec<u32> = li.fiber(0).iter().map(|e| e.coord).collect();
        assert_eq!(top, vec![0, 1, 3]);
        let row1: Vec<u32> = lj.fiber(1).iter().map(|e| e.coord).collect();
        assert_eq!(row1, vec![0, 2]);
        assert_eq!(lj.fiber_len(2), 2);
    }

    #[test]
    fn compressed_locate() {
        let (_, j) = figure1_levels();
        assert_eq!(j.locate(1, 2), Some(2));
        assert_eq!(j.locate(1, 1), None);
        assert_eq!(j.locate(2, 3), Some(4));
        assert_eq!(j.locate(9, 0), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn compressed_rejects_unsorted_fibers() {
        let _ = CompressedLevel::new(4, vec![0, 2], vec![2, 1]);
    }

    #[test]
    fn compressed_builder() {
        let mut b = CompressedLevel::builder(4);
        b.push_coord(1);
        b.end_fiber();
        b.push_coord(0);
        b.push_coord(2);
        b.end_fiber();
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        let level = b.finish();
        assert_eq!(level.seg, vec![0, 1, 3]);
        assert_eq!(level.crd, vec![1, 0, 2]);
    }

    #[test]
    fn dense_level_enumerates_all_coords() {
        let l = Level::Dense(DenseLevel::new(3, 2));
        assert_eq!(l.num_fibers(), 2);
        assert_eq!(l.num_children(), 6);
        assert_eq!(l.dimension(), 3);
        let f1 = l.fiber(1);
        assert_eq!(f1.iter().map(|e| e.coord).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(f1.iter().map(|e| e.child).collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(l.locate(1, 2), Some(5));
        assert_eq!(l.locate(1, 3), None);
        assert!(l.is_dense());
    }

    #[test]
    fn bitvector_level_ranks() {
        // Two fibers over a dimension of 8 with width-4 words.
        let l = BitvectorLevel::from_fibers(8, 4, &[vec![0, 2, 5], vec![1, 7]]);
        assert_eq!(l.words_per_fiber, 2);
        let lvl = Level::Bitvector(l.clone());
        assert_eq!(lvl.num_fibers(), 2);
        assert_eq!(lvl.num_children(), 5);
        let f0 = lvl.fiber(0);
        assert_eq!(f0.iter().map(|e| (e.coord, e.child)).collect::<Vec<_>>(), vec![(0, 0), (2, 1), (5, 2)]);
        let f1 = lvl.fiber(1);
        assert_eq!(f1.iter().map(|e| (e.coord, e.child)).collect::<Vec<_>>(), vec![(1, 3), (7, 4)]);
        assert_eq!(lvl.locate(1, 7), Some(4));
        assert_eq!(lvl.locate(1, 2), None);
        assert_eq!(lvl.locate(0, 5), Some(2));
        assert_eq!(lvl.fiber_len(0), 3);
    }

    #[test]
    fn empty_compressed_level() {
        let l = Level::Compressed(CompressedLevel::empty(10));
        assert_eq!(l.num_fibers(), 0);
        assert_eq!(l.num_children(), 0);
    }

    #[test]
    fn positional_access_matches_materialized_fibers() {
        let levels = [
            Level::Dense(DenseLevel::new(6, 2)),
            Level::Compressed(CompressedLevel::new(10, vec![0, 3, 7], vec![1, 4, 9, 0, 2, 5, 8])),
            Level::Bitvector(BitvectorLevel::from_fibers(8, 4, &[vec![0, 2, 5], vec![1, 7]])),
        ];
        for l in &levels {
            for fiber in 0..l.num_fibers() {
                let entries = l.fiber(fiber);
                assert_eq!(entries.len(), l.fiber_len(fiber));
                for (idx, &e) in entries.iter().enumerate() {
                    assert_eq!(l.entry_at(fiber, idx), e, "entry_at mismatch");
                }
            }
        }
    }

    #[test]
    fn coord_range_and_slice_window_every_format() {
        let levels = [
            Level::Dense(DenseLevel::new(10, 2)),
            Level::Compressed(CompressedLevel::new(100, vec![0, 5], vec![3, 10, 20, 40, 80])),
            Level::Bitvector(BitvectorLevel::from_fibers(12, 4, &[vec![1, 3, 6, 9], vec![0, 11]])),
        ];
        for l in &levels {
            for fiber in 0..l.num_fibers() {
                let all = l.fiber(fiber);
                for (lo, hi) in [(0u32, 4u32), (2, 9), (5, 5), (0, 200), (90, 200)] {
                    let expect: Vec<FiberEntry> =
                        all.iter().copied().filter(|e| e.coord >= lo && e.coord < hi).collect();
                    assert_eq!(l.slice(fiber, lo, hi), expect, "window {lo}..{hi}");
                    assert_eq!(l.coord_range(fiber, lo, hi).len(), expect.len());
                }
            }
        }
    }

    #[test]
    fn gallop_finds_first_coordinate_at_or_past_target() {
        let l = Level::Compressed(CompressedLevel::new(100, vec![0, 5], vec![3, 10, 20, 40, 80]));
        assert_eq!(l.gallop_from(0, 0, 0), 0);
        assert_eq!(l.gallop_from(0, 0, 10), 1);
        assert_eq!(l.gallop_from(0, 0, 11), 2);
        assert_eq!(l.gallop_from(0, 2, 10), 2, "never moves backwards");
        assert_eq!(l.gallop_from(0, 0, 81), 5, "past the end");
        assert_eq!(l.gallop_from(0, 5, 0), 5, "from past the end stays put");

        let d = Level::Dense(DenseLevel::new(50, 1));
        assert_eq!(d.gallop_from(0, 0, 30), 30);
        assert_eq!(d.gallop_from(0, 40, 30), 40);
        assert_eq!(d.gallop_from(0, 0, 99), 50);

        let b = Level::Bitvector(BitvectorLevel::from_fibers(8, 4, &[vec![1, 3, 6]]));
        assert_eq!(b.gallop_from(0, 0, 3), 1);
        assert_eq!(b.gallop_from(0, 0, 7), 3);
    }
}
