//! SuiteSparse-like matrix catalog for the Figure 14 stream-overhead study.
//!
//! The paper's Table 3 lists 15 SuiteSparse matrices (5 each from the
//! smallest, median and largest matrices that fit in memory). We do not ship
//! the SuiteSparse collection; instead each catalog entry records the
//! matrix's name, domain, dimensions and nonzero count from Table 3 and can
//! be *instantiated* as a seeded uniformly random matrix with exactly those
//! statistics. Figure 14 measures stream token composition, which is
//! governed by those shape statistics (see DESIGN.md, substitutions).

use crate::coo::CooTensor;
use crate::synth::random_matrix_nnz;
use serde::{Deserialize, Serialize};

/// One row of the paper's Table 3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixInfo {
    /// SuiteSparse matrix name.
    pub name: &'static str,
    /// Application domain reported by SuiteSparse.
    pub domain: &'static str,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Number of stored nonzeros.
    pub nnz: usize,
    /// Which size class the matrix was sampled from in the paper.
    pub size_class: SizeClass,
}

/// The Table 3 sampling buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SizeClass {
    /// One of the 50 smallest matrices.
    Small,
    /// One of the 50 median matrices.
    Medium,
    /// One of the 50 largest matrices that fit in memory.
    Large,
}

impl MatrixInfo {
    /// Density as a percentage (matches the Table 3 "Density (%)" column).
    pub fn density_percent(&self) -> f64 {
        100.0 * self.nnz as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// Instantiates the catalog entry as a seeded random matrix with the same
    /// dimensions and nonzero count.
    pub fn instantiate(&self, seed: u64) -> CooTensor {
        random_matrix_nnz(self.rows, self.cols, self.nnz, seed)
    }
}

/// The 15 matrices of the paper's Table 3, in table order.
pub fn table3_catalog() -> Vec<MatrixInfo> {
    use SizeClass::*;
    vec![
        MatrixInfo { name: "relat3", domain: "Combinatorics", rows: 8, cols: 5, nnz: 24, size_class: Small },
        MatrixInfo {
            name: "lpi_itest6",
            domain: "Linear Programming",
            rows: 11,
            cols: 17,
            nnz: 29,
            size_class: Small,
        },
        MatrixInfo {
            name: "LFAT5",
            domain: "Model Reduction",
            rows: 14,
            cols: 14,
            nnz: 46,
            size_class: Small,
        },
        MatrixInfo {
            name: "ch4-4-b1",
            domain: "Combinatorics",
            rows: 72,
            cols: 16,
            nnz: 144,
            size_class: Small,
        },
        MatrixInfo {
            name: "ch7-6-b1",
            domain: "Combinatorics",
            rows: 630,
            cols: 42,
            nnz: 1260,
            size_class: Small,
        },
        MatrixInfo {
            name: "bwm2000",
            domain: "Chemical Process Simulation",
            rows: 2000,
            cols: 2000,
            nnz: 7996,
            size_class: Medium,
        },
        MatrixInfo {
            name: "G32",
            domain: "Undirected Weighted Random Graph",
            rows: 2000,
            cols: 2000,
            nnz: 8000,
            size_class: Medium,
        },
        MatrixInfo {
            name: "progas",
            domain: "Linear Programming",
            rows: 1650,
            cols: 1900,
            nnz: 8897,
            size_class: Medium,
        },
        MatrixInfo {
            name: "lp_maros",
            domain: "Linear Programming",
            rows: 846,
            cols: 1966,
            nnz: 10137,
            size_class: Medium,
        },
        MatrixInfo {
            name: "G42",
            domain: "Undirected Weighted Random Graph",
            rows: 2000,
            cols: 2000,
            nnz: 23558,
            size_class: Medium,
        },
        MatrixInfo {
            name: "stormg2-27",
            domain: "Linear Programming",
            rows: 14439,
            cols: 37485,
            nnz: 94274,
            size_class: Large,
        },
        MatrixInfo {
            name: "lpl3",
            domain: "Linear Programming",
            rows: 10828,
            cols: 33686,
            nnz: 100525,
            size_class: Large,
        },
        MatrixInfo {
            name: "nemsemm2",
            domain: "Linear Programming",
            rows: 6943,
            cols: 48878,
            nnz: 182012,
            size_class: Large,
        },
        MatrixInfo {
            name: "rlfdual",
            domain: "Linear Programming",
            rows: 8052,
            cols: 74970,
            nnz: 282031,
            size_class: Large,
        },
        MatrixInfo {
            name: "rail507",
            domain: "Linear Programming",
            rows: 507,
            cols: 63516,
            nnz: 409856,
            size_class: Large,
        },
    ]
}

/// Looks up one catalog entry by name.
pub fn find(name: &str) -> Option<MatrixInfo> {
    table3_catalog().into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_fifteen_rows_in_three_classes() {
        let cat = table3_catalog();
        assert_eq!(cat.len(), 15);
        assert_eq!(cat.iter().filter(|m| m.size_class == SizeClass::Small).count(), 5);
        assert_eq!(cat.iter().filter(|m| m.size_class == SizeClass::Medium).count(), 5);
        assert_eq!(cat.iter().filter(|m| m.size_class == SizeClass::Large).count(), 5);
    }

    #[test]
    fn densities_match_table3() {
        // Spot-check the densities the paper reports.
        let relat3 = find("relat3").unwrap();
        assert!((relat3.density_percent() - 60.0).abs() < 0.5);
        let rail = find("rail507").unwrap();
        assert!((rail.density_percent() - 1.3).abs() < 0.1);
        let g32 = find("G32").unwrap();
        assert!((g32.density_percent() - 0.2).abs() < 0.05);
    }

    #[test]
    fn instantiate_matches_statistics() {
        let info = find("LFAT5").unwrap();
        let m = info.instantiate(42);
        assert_eq!(m.shape(), &[14, 14]);
        assert_eq!(m.nnz(), 46);
    }

    #[test]
    fn unknown_matrix_not_found() {
        assert!(find("not-a-matrix").is_none());
    }
}
