//! # sam-tensor
//!
//! The tensor data substrate of the Sparse Abstract Machine reproduction.
//!
//! The paper's data model (Section 3.1) views every tensor as a *fibertree*:
//! a trie whose levels correspond to tensor dimensions and whose fibers hold
//! the coordinates of children with nonzero sub-trees. Fibertrees can be
//! stored in memory level-by-level with a per-level storage format
//! (uncompressed/dense, compressed, or bitvector) and transmitted level-by-
//! level through SAM streams.
//!
//! This crate provides:
//!
//! * [`CooTensor`] — a sorted coordinate-list staging representation,
//! * [`Level`] and the concrete level storages ([`DenseLevel`],
//!   [`CompressedLevel`], [`BitvectorLevel`]),
//! * [`Tensor`] — an in-memory fibertree (shape, mode order, levels, values),
//! * [`TensorFormat`] / [`LevelFormat`] — the format language (per-mode
//!   storage plus mode ordering) mirroring TACO's format abstraction,
//! * [`DenseTensor`] and [`mod@reference`] — a dense reference evaluator used as
//!   the functional-correctness oracle for every kernel and experiment,
//! * [`expr`] — the tensor-index-notation expression AST shared with the
//!   Custard compiler, and
//! * [`synth`] / [`suitesparse`] — synthetic workload generators (uniform
//!   random, `runs`, `blocks`, ExTensor-style constant-nnz matrices) and the
//!   Table 3 SuiteSparse-like matrix catalog.

pub mod builder;
pub mod coo;
pub mod dense;
pub mod expr;
pub mod format;
pub mod level;
pub mod reference;
pub mod suitesparse;
pub mod synth;
pub mod tensor;

pub use builder::TensorBuilder;
pub use coo::CooTensor;
pub use dense::DenseTensor;
pub use format::{LevelFormat, TensorFormat};
pub use level::{BitvectorLevel, CompressedLevel, DenseLevel, Level};
pub use tensor::Tensor;
