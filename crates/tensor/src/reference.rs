//! Dense reference evaluator: the functional-correctness oracle.
//!
//! Every simulated SAM graph in this repository is checked against this
//! evaluator, which interprets [`Assignment`] ASTs directly over dense
//! tensors. It is deliberately simple (nested loops over full index ranges)
//! so that its correctness is easy to audit.

use crate::dense::DenseTensor;
use crate::expr::{Assignment, Expr, IndexVar};
use std::collections::BTreeMap;
use std::fmt;

/// An error produced while evaluating an assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A tensor named in the expression is not present in the environment.
    UnknownTensor(String),
    /// An index variable has no known dimension size.
    UnknownIndexVar(IndexVar),
    /// A tensor is accessed with the wrong number of indices.
    RankMismatch {
        /// Tensor name.
        tensor: String,
        /// Rank implied by the access.
        access_rank: usize,
        /// Actual tensor rank.
        tensor_rank: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownTensor(name) => write!(f, "unknown tensor `{name}`"),
            EvalError::UnknownIndexVar(v) => write!(f, "unknown index variable `{v}`"),
            EvalError::RankMismatch { tensor, access_rank, tensor_rank } => {
                write!(f, "tensor `{tensor}` of rank {tensor_rank} accessed with {access_rank} indices")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// The evaluation environment: named dense tensors plus index-variable
/// dimension sizes.
///
/// ```
/// use sam_tensor::reference::Environment;
/// use sam_tensor::expr::table1;
/// use sam_tensor::DenseTensor;
///
/// let mut env = Environment::new();
/// env.insert("B", DenseTensor::from_data(vec![2, 2], vec![1.0, 0.0, 0.0, 2.0]));
/// env.insert("c", DenseTensor::from_data(vec![2], vec![3.0, 4.0]));
/// env.bind_dims(&table1::spmv(), &[('i', 2), ('j', 2)]);
/// let x = env.evaluate(&table1::spmv()).unwrap();
/// assert_eq!(x.data(), &[3.0, 8.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Environment {
    tensors: BTreeMap<String, DenseTensor>,
    dims: BTreeMap<IndexVar, usize>,
}

impl Environment {
    /// An empty environment.
    pub fn new() -> Self {
        Environment::default()
    }

    /// Adds (or replaces) a named tensor.
    pub fn insert(&mut self, name: &str, tensor: DenseTensor) {
        self.tensors.insert(name.to_string(), tensor);
    }

    /// Adds a scalar as a rank-0-like 1-element tensor accessed with no
    /// indices.
    pub fn insert_scalar(&mut self, name: &str, value: f64) {
        self.tensors.insert(name.to_string(), DenseTensor::from_data(vec![1], vec![value]));
    }

    /// Sets the dimension size of one index variable.
    pub fn set_dim(&mut self, var: IndexVar, size: usize) {
        self.dims.insert(var, size);
    }

    /// Looks up a tensor.
    pub fn tensor(&self, name: &str) -> Option<&DenseTensor> {
        self.tensors.get(name)
    }

    /// The dimension size bound to an index variable, if any.
    pub fn dim(&self, var: IndexVar) -> Option<usize> {
        self.dims.get(&var).copied()
    }

    /// Binds explicit dimensions and then infers any remaining index-variable
    /// dimensions from the shapes of the assignment's operand tensors.
    pub fn bind_dims(&mut self, assignment: &Assignment, explicit: &[(IndexVar, usize)]) {
        for &(v, d) in explicit {
            self.set_dim(v, d);
        }
        for (name, indices) in assignment.rhs.accesses() {
            if let Some(t) = self.tensors.get(name) {
                for (pos, &var) in indices.iter().enumerate() {
                    if pos < t.shape().len() {
                        self.dims.entry(var).or_insert(t.shape()[pos]);
                    }
                }
            }
        }
    }

    /// Evaluates the assignment, producing a dense result tensor whose shape
    /// follows the target index variables (or shape `[1]` for a scalar
    /// target).
    ///
    /// # Errors
    ///
    /// Returns an error when a tensor or index-variable binding is missing or
    /// an access rank does not match the stored tensor.
    pub fn evaluate(&self, assignment: &Assignment) -> Result<DenseTensor, EvalError> {
        let mut out_shape = Vec::new();
        for &v in &assignment.target_indices {
            out_shape.push(self.dims.get(&v).copied().ok_or(EvalError::UnknownIndexVar(v))?);
        }
        if out_shape.is_empty() {
            out_shape.push(1);
        }
        let mut out = DenseTensor::zeros(out_shape);

        let mut bound = BTreeMap::new();
        self.fill_output(assignment, &mut bound, 0, &mut out)?;
        Ok(out)
    }

    fn fill_output(
        &self,
        assignment: &Assignment,
        bound: &mut BTreeMap<IndexVar, u32>,
        depth: usize,
        out: &mut DenseTensor,
    ) -> Result<(), EvalError> {
        if depth == assignment.target_indices.len() {
            let value = self.eval_expr(&assignment.rhs, bound)?;
            let point: Vec<u32> = if assignment.target_indices.is_empty() {
                vec![0]
            } else {
                assignment.target_indices.iter().map(|v| bound[v]).collect()
            };
            *out.at_mut(&point) += value;
            return Ok(());
        }
        let var = assignment.target_indices[depth];
        let size = self.dims.get(&var).copied().ok_or(EvalError::UnknownIndexVar(var))?;
        for c in 0..size as u32 {
            bound.insert(var, c);
            self.fill_output(assignment, bound, depth + 1, out)?;
        }
        bound.remove(&var);
        Ok(())
    }

    fn eval_expr(&self, expr: &Expr, bound: &BTreeMap<IndexVar, u32>) -> Result<f64, EvalError> {
        match expr {
            Expr::Literal(v) => Ok(*v),
            Expr::Access { tensor, indices } => {
                let t = self.tensors.get(tensor).ok_or_else(|| EvalError::UnknownTensor(tensor.clone()))?;
                if indices.is_empty() {
                    // Scalar tensor stored as a single-element vector.
                    return Ok(t.data()[0]);
                }
                if indices.len() != t.order() {
                    return Err(EvalError::RankMismatch {
                        tensor: tensor.clone(),
                        access_rank: indices.len(),
                        tensor_rank: t.order(),
                    });
                }
                let mut point = Vec::with_capacity(indices.len());
                for v in indices {
                    let c = bound.get(v).copied().ok_or(EvalError::UnknownIndexVar(*v))?;
                    point.push(c);
                }
                Ok(t.at(&point))
            }
            Expr::Add(a, b) => Ok(self.eval_expr(a, bound)? + self.eval_expr(b, bound)?),
            Expr::Sub(a, b) => Ok(self.eval_expr(a, bound)? - self.eval_expr(b, bound)?),
            Expr::Mul(a, b) => Ok(self.eval_expr(a, bound)? * self.eval_expr(b, bound)?),
            Expr::Reduce { vars, body } => {
                let mut bound = bound.clone();
                self.eval_reduce(vars, body, &mut bound)
            }
        }
    }

    fn eval_reduce(
        &self,
        vars: &[IndexVar],
        body: &Expr,
        bound: &mut BTreeMap<IndexVar, u32>,
    ) -> Result<f64, EvalError> {
        match vars.split_first() {
            None => self.eval_expr(body, bound),
            Some((&v, rest)) => {
                let size = self.dims.get(&v).copied().ok_or(EvalError::UnknownIndexVar(v))?;
                let mut acc = 0.0;
                for c in 0..size as u32 {
                    bound.insert(v, c);
                    acc += self.eval_reduce(rest, body, bound)?;
                }
                bound.remove(&v);
                Ok(acc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::table1;

    fn matrix(rows: usize, cols: usize, f: impl Fn(u32, u32) -> f64) -> DenseTensor {
        DenseTensor::from_fn(vec![rows, cols], |p| f(p[0], p[1]))
    }

    #[test]
    fn spmm_matches_manual_matmul() {
        let b = matrix(3, 4, |i, k| if (i + k) % 2 == 0 { (i + k + 1) as f64 } else { 0.0 });
        let c = matrix(4, 2, |k, j| (k * 2 + j) as f64);
        let mut env = Environment::new();
        env.insert("B", b.clone());
        env.insert("C", c.clone());
        env.bind_dims(&table1::spmm(), &[]);
        let x = env.evaluate(&table1::spmm()).unwrap();
        for i in 0..3u32 {
            for j in 0..2u32 {
                let mut expect = 0.0;
                for k in 0..4u32 {
                    expect += b.at(&[i, k]) * c.at(&[k, j]);
                }
                assert!((x.at(&[i, j]) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn residual_is_not_distributed_over_reduction() {
        // x(i) = b(i) - sum_j C(i,j)*d(j): b must be added once, not J times.
        let b = DenseTensor::from_data(vec![2], vec![10.0, 20.0]);
        let c = matrix(2, 3, |i, j| (i + j) as f64);
        let d = DenseTensor::from_data(vec![3], vec![1.0, 1.0, 1.0]);
        let mut env = Environment::new();
        env.insert("b", b);
        env.insert("C", c);
        env.insert("d", d);
        env.bind_dims(&table1::residual(), &[]);
        let x = env.evaluate(&table1::residual()).unwrap();
        assert_eq!(x.data(), &[10.0 - 3.0, 20.0 - 6.0]);
    }

    #[test]
    fn mat_trans_mul_with_scalars() {
        let b = matrix(3, 2, |j, i| (j * 2 + i) as f64); // B is J x I, accessed as B(j,i)
        let c = DenseTensor::from_data(vec![3], vec![1.0, 2.0, 3.0]);
        let d = DenseTensor::from_data(vec![2], vec![5.0, 7.0]);
        let mut env = Environment::new();
        env.insert("B", b.clone());
        env.insert("c", c.clone());
        env.insert("d", d.clone());
        env.insert_scalar("alpha", 2.0);
        env.insert_scalar("beta", 10.0);
        env.bind_dims(&table1::mat_trans_mul(), &[]);
        let x = env.evaluate(&table1::mat_trans_mul()).unwrap();
        for i in 0..2u32 {
            let mut expect = 0.0;
            for j in 0..3u32 {
                expect += 2.0 * b.at(&[j, i]) * c.at(&[j]);
            }
            expect += 10.0 * d.at(&[i]);
            assert!((x.at(&[i]) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn inner_product_scalar_result() {
        let b = DenseTensor::from_fn(vec![2, 2, 2], |p| (p[0] + p[1] + p[2]) as f64);
        let c = DenseTensor::from_fn(vec![2, 2, 2], |p| (p[0] * p[1] * p[2]) as f64 + 1.0);
        let mut env = Environment::new();
        env.insert("B", b.clone());
        env.insert("C", c.clone());
        env.bind_dims(&table1::inner_prod(), &[]);
        let chi = env.evaluate(&table1::inner_prod()).unwrap();
        let mut expect = 0.0;
        for i in 0..2u32 {
            for j in 0..2u32 {
                for k in 0..2u32 {
                    expect += b.at(&[i, j, k]) * c.at(&[i, j, k]);
                }
            }
        }
        assert_eq!(chi.shape(), &[1]);
        assert!((chi.data()[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn missing_tensor_and_dim_errors() {
        let env = Environment::new();
        let err = env.evaluate(&table1::spmv()).unwrap_err();
        assert!(matches!(err, EvalError::UnknownIndexVar(_)));

        let mut env = Environment::new();
        env.insert("B", matrix(2, 2, |_, _| 1.0));
        env.bind_dims(&table1::spmv(), &[]);
        let err = env.evaluate(&table1::spmv()).unwrap_err();
        assert_eq!(err, EvalError::UnknownTensor("c".to_string()));
        assert!(err.to_string().contains("unknown tensor"));
    }

    #[test]
    fn rank_mismatch_detected() {
        let mut env = Environment::new();
        env.insert("B", DenseTensor::from_data(vec![2], vec![1.0, 2.0]));
        env.insert("c", DenseTensor::from_data(vec![2], vec![1.0, 2.0]));
        env.set_dim('i', 2);
        env.set_dim('j', 2);
        let err = env.evaluate(&table1::spmv()).unwrap_err();
        assert!(matches!(err, EvalError::RankMismatch { .. }));
    }

    #[test]
    fn mttkrp_small() {
        let b = DenseTensor::from_fn(vec![2, 2, 2], |p| (p[0] + 2 * p[1] + p[2]) as f64);
        let c = matrix(3, 2, |j, k| (j + k) as f64);
        let d = matrix(3, 2, |j, l| (j * l + 1) as f64);
        let mut env = Environment::new();
        env.insert("B", b.clone());
        env.insert("C", c.clone());
        env.insert("D", d.clone());
        env.bind_dims(&table1::mttkrp(), &[]);
        let x = env.evaluate(&table1::mttkrp()).unwrap();
        for i in 0..2u32 {
            for j in 0..3u32 {
                let mut expect = 0.0;
                for k in 0..2u32 {
                    for l in 0..2u32 {
                        expect += b.at(&[i, k, l]) * c.at(&[j, k]) * d.at(&[j, l]);
                    }
                }
                assert!((x.at(&[i, j]) - expect).abs() < 1e-12, "mismatch at ({i},{j})");
            }
        }
    }
}
