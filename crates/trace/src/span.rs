//! Query-lifecycle spans: per-query stage attribution for a serving path.
//!
//! [`crate::ExecProfile`] attributes cost *inside* one execution; a
//! [`QuerySpan`] attributes cost *around* it — the stages a query passes
//! through between `submit` and resolution in a long-lived service:
//!
//! 1. [`Stage::Queue`] — enqueue to coordinator drain (queue wait),
//! 2. [`Stage::Compile`] — expression → kernel (compile-cache hit or miss),
//! 3. [`Stage::Plan`] — kernel → executable plan (plan-cache hit or miss),
//! 4. [`Stage::Batch`] — prepared to task start (batch formation wait),
//! 5. [`Stage::Execute`] — backend run,
//! 6. [`Stage::Resolve`] — run end to handle resolution.
//!
//! Spans are plain data: the service fills one per query and feeds the
//! durations into its histograms; slow queries additionally serialize the
//! whole span — [`QuerySpan::to_json`] — onto a JSONL event log, one
//! object per line, hand-rolled (the workspace has no JSON dependency).

use std::time::Duration;

/// The lifecycle stages of a served query, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Waiting in a submission lane for the coordinator to drain it.
    Queue,
    /// Compiling the expression to an executable kernel.
    Compile,
    /// Planning the kernel graph (plan-cache lookup or fresh plan).
    Plan,
    /// Waiting between preparation and task start while a batch forms.
    Batch,
    /// Running on the backend.
    Execute,
    /// Delivering the result to the query's handle.
    Resolve,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] =
        [Stage::Queue, Stage::Compile, Stage::Plan, Stage::Batch, Stage::Execute, Stage::Resolve];

    /// The stage's stable lowercase name (metric label / JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Compile => "compile",
            Stage::Plan => "plan",
            Stage::Batch => "batch",
            Stage::Execute => "execute",
            Stage::Resolve => "resolve",
        }
    }

    /// The stage's index into [`QuerySpan::stages_ns`].
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One query's trip through the service: what ran, where the time went,
/// and how the caches treated it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuerySpan {
    /// The query expression as submitted.
    pub expression: String,
    /// The backend label the query executed on (e.g. `fast-threads:4`).
    pub backend: String,
    /// Nanoseconds spent in each stage, indexed by [`Stage::index`].
    pub stages_ns: [u64; 6],
    /// Whether the compile cache already held this expression's kernel.
    pub compile_hit: bool,
    /// Whether the plan cache already held this kernel's plan.
    pub plan_hit: bool,
    /// How many queries shared this query's executed batch (≥ 1).
    pub batch_size: u64,
    /// The execution error, if the query failed.
    pub error: Option<String>,
}

impl QuerySpan {
    /// Nanoseconds spent in `stage`.
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.stages_ns[stage.index()]
    }

    /// Records a duration for `stage` (accumulating, in case a stage is
    /// entered more than once).
    pub fn record(&mut self, stage: Stage, elapsed: Duration) {
        self.stages_ns[stage.index()] =
            self.stages_ns[stage.index()].saturating_add(elapsed.as_nanos() as u64);
    }

    /// Total nanoseconds across all stages.
    pub fn total_ns(&self) -> u64 {
        self.stages_ns.iter().sum()
    }

    /// Serializes the span as a single-line JSON object (one JSONL event).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192);
        out.push_str("{\"expression\":");
        push_json_string(&mut out, &self.expression);
        out.push_str(",\"backend\":");
        push_json_string(&mut out, &self.backend);
        out.push_str(",\"total_ns\":");
        out.push_str(&self.total_ns().to_string());
        out.push_str(",\"stages_ns\":{");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(stage.name());
            out.push_str("\":");
            out.push_str(&self.stage_ns(*stage).to_string());
        }
        out.push_str("},\"compile_hit\":");
        out.push_str(if self.compile_hit { "true" } else { "false" });
        out.push_str(",\"plan_hit\":");
        out.push_str(if self.plan_hit { "true" } else { "false" });
        out.push_str(",\"batch_size\":");
        out.push_str(&self.batch_size.to_string());
        match &self.error {
            Some(err) => {
                out.push_str(",\"error\":");
                push_json_string(&mut out, err);
            }
            None => out.push_str(",\"error\":null"),
        }
        out.push('}');
        out
    }
}

/// Appends `s` as a JSON string literal, escaping quotes, backslashes and
/// control characters.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_index_in_pipeline_order() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        assert_eq!(Stage::Queue.name(), "queue");
        assert_eq!(Stage::Resolve.name(), "resolve");
    }

    #[test]
    fn spans_accumulate_and_total() {
        let mut span = QuerySpan::default();
        span.record(Stage::Queue, Duration::from_nanos(100));
        span.record(Stage::Queue, Duration::from_nanos(50));
        span.record(Stage::Execute, Duration::from_micros(2));
        assert_eq!(span.stage_ns(Stage::Queue), 150);
        assert_eq!(span.stage_ns(Stage::Execute), 2000);
        assert_eq!(span.total_ns(), 2150);
    }

    #[test]
    fn json_is_single_line_and_escaped() {
        let mut span = QuerySpan {
            expression: "X(i,j) = B(i,k) * \"C\"(k,j)\n".to_string(),
            backend: "fast-serial".to_string(),
            compile_hit: true,
            plan_hit: false,
            batch_size: 3,
            error: Some("bad\tinput".to_string()),
            ..QuerySpan::default()
        };
        span.record(Stage::Plan, Duration::from_nanos(42));
        let json = span.to_json();
        assert!(!json.contains('\n'), "JSONL events must be single-line: {json}");
        assert!(json.contains("\\\"C\\\""));
        assert!(json.contains("\\n\""));
        assert!(json.contains("\"plan\":42"));
        assert!(json.contains("\"compile_hit\":true"));
        assert!(json.contains("\"plan_hit\":false"));
        assert!(json.contains("\"batch_size\":3"));
        assert!(json.contains("\"error\":\"bad\\tinput\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn json_null_error_for_success() {
        let json = QuerySpan::default().to_json();
        assert!(json.contains("\"error\":null"));
        assert!(json.contains("\"total_ns\":0"));
    }
}
