//! The trace sink trait and its counter-accumulating implementations.

use crate::counts::TokenCounts;
use crate::profile::{ChannelProfile, ExecProfile, NodeProfile, WorkerProfile};
use std::sync::Mutex;

/// The hook surface the execution backends drive while running a plan.
///
/// Implementations must be [`Sync`]: the parallel fast backend shares one
/// sink across all of its worker threads. Every hook takes `&self`, so
/// accumulating sinks use interior mutability.
///
/// Backends are expected to consult [`TraceSink::enabled`] once up front and
/// skip *all* instrumentation work — timestamping, token classification,
/// channel stats — when it returns `false`, which is what makes tracing
/// zero-cost for the [`NullSink`].
pub trait TraceSink: Sync {
    /// Whether the sink wants data at all. The default is `true`; only
    /// no-op sinks should override this.
    fn enabled(&self) -> bool {
        true
    }

    /// Registers a planned node and its human-readable label. Called once
    /// per node before execution starts.
    fn define_node(&self, _node: usize, _label: &str) {}

    /// Accumulates classified output tokens for a node.
    fn record_tokens(&self, _node: usize, _counts: TokenCounts) {}

    /// Accumulates node executions (e.g. one per tile tuple on the tiled
    /// backend).
    fn record_invocations(&self, _node: usize, _n: u64) {}

    /// Accumulates wall time a node spent executing, nanoseconds. Backends
    /// report *total live* time here; blocked time reported through
    /// [`TraceSink::record_node_blocked`] is subtracted to obtain busy time.
    fn record_node_wall(&self, _node: usize, _ns: u64) {}

    /// Accumulates wall time a node spent blocked on channels, nanoseconds.
    fn record_node_blocked(&self, _node: usize, _ns: u64) {}

    /// Records the final stall stats of one channel.
    fn record_channel(&self, _channel: ChannelProfile) {}

    /// Records the final scheduler counters of one worker (work-stealing
    /// backends only).
    fn record_worker(&self, _worker: WorkerProfile) {}

    /// Records one timeline span on a named track (a worker thread, a
    /// simulated block, a tile tuple). Timestamps are nanoseconds relative
    /// to the start of the run.
    fn record_span(&self, _track: &str, _name: &str, _start_ns: u64, _dur_ns: u64) {}

    /// The rollup accumulated so far, for sinks that keep one. Backends
    /// call this once at the end of a traced run to populate
    /// `Execution::profile`.
    fn snapshot(&self) -> Option<ExecProfile> {
        None
    }
}

/// The disabled sink: reports [`TraceSink::enabled`]` == false` and drops
/// everything. `Executor::run` is equivalent to `run_traced` with this sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
}

#[derive(Default)]
struct NodeAcc {
    label: String,
    tokens: TokenCounts,
    invocations: u64,
    wall_ns: u64,
    blocked_ns: u64,
}

#[derive(Default)]
struct Acc {
    nodes: Vec<NodeAcc>,
    channels: Vec<ChannelProfile>,
    workers: Vec<WorkerProfile>,
}

impl Acc {
    fn node(&mut self, node: usize) -> &mut NodeAcc {
        if self.nodes.len() <= node {
            self.nodes.resize_with(node + 1, NodeAcc::default);
        }
        &mut self.nodes[node]
    }

    fn profile(&self) -> ExecProfile {
        ExecProfile {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(index, n)| NodeProfile {
                    index,
                    label: n.label.clone(),
                    tokens: n.tokens,
                    invocations: n.invocations,
                    busy_ns: n.wall_ns.saturating_sub(n.blocked_ns),
                    blocked_ns: n.blocked_ns,
                })
                .collect(),
            channels: self.channels.clone(),
            workers: {
                let mut workers = self.workers.clone();
                workers.sort_by_key(|w| w.index);
                workers
            },
        }
    }
}

/// Accumulates per-node token counts, invocations, wall/blocked time and
/// per-channel stall stats behind a mutex, and rolls them up into an
/// [`ExecProfile`].
///
/// ```
/// use sam_trace::{CountersSink, TokenCounts, TraceSink};
///
/// let sink = CountersSink::default();
/// sink.define_node(0, "scan B0");
/// sink.record_tokens(0, TokenCounts { crd: 5, stop: 1, ..Default::default() });
/// sink.record_invocations(0, 1);
/// let profile = sink.profile();
/// assert_eq!(profile.nodes[0].label, "scan B0");
/// assert_eq!(profile.nodes[0].tokens.total(), 6);
/// ```
#[derive(Default)]
pub struct CountersSink {
    acc: Mutex<Acc>,
}

impl std::fmt::Debug for CountersSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountersSink").finish_non_exhaustive()
    }
}

impl CountersSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The rollup accumulated so far.
    pub fn profile(&self) -> ExecProfile {
        self.acc.lock().expect("trace accumulator").profile()
    }
}

impl TraceSink for CountersSink {
    fn define_node(&self, node: usize, label: &str) {
        let mut acc = self.acc.lock().expect("trace accumulator");
        acc.node(node).label = label.to_string();
    }

    fn record_tokens(&self, node: usize, counts: TokenCounts) {
        let mut acc = self.acc.lock().expect("trace accumulator");
        acc.node(node).tokens += counts;
    }

    fn record_invocations(&self, node: usize, n: u64) {
        let mut acc = self.acc.lock().expect("trace accumulator");
        acc.node(node).invocations += n;
    }

    fn record_node_wall(&self, node: usize, ns: u64) {
        let mut acc = self.acc.lock().expect("trace accumulator");
        acc.node(node).wall_ns += ns;
    }

    fn record_node_blocked(&self, node: usize, ns: u64) {
        let mut acc = self.acc.lock().expect("trace accumulator");
        acc.node(node).blocked_ns += ns;
    }

    fn record_channel(&self, channel: ChannelProfile) {
        let mut acc = self.acc.lock().expect("trace accumulator");
        acc.channels.push(channel);
    }

    fn record_worker(&self, worker: WorkerProfile) {
        let mut acc = self.acc.lock().expect("trace accumulator");
        acc.workers.push(worker);
    }

    fn snapshot(&self) -> Option<ExecProfile> {
        Some(self.profile())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        assert!(NullSink.snapshot().is_none());
        // The no-op hooks must be callable without effect.
        NullSink.record_tokens(3, TokenCounts::default());
        NullSink.record_span("t", "n", 0, 1);
    }

    #[test]
    fn counters_accumulate_across_calls() {
        let sink = CountersSink::new();
        sink.define_node(1, "reduce");
        sink.record_tokens(1, TokenCounts { val: 2, ..Default::default() });
        sink.record_tokens(1, TokenCounts { val: 3, stop: 1, ..Default::default() });
        sink.record_invocations(1, 2);
        sink.record_node_wall(1, 100);
        sink.record_node_blocked(1, 30);
        let p = sink.profile();
        assert_eq!(p.nodes.len(), 2);
        assert_eq!(p.nodes[1].tokens.val, 5);
        assert_eq!(p.nodes[1].tokens.stop, 1);
        assert_eq!(p.nodes[1].invocations, 2);
        assert_eq!(p.nodes[1].busy_ns, 70);
        assert_eq!(p.nodes[1].blocked_ns, 30);
        // Node 0 was never defined but still appears, unlabeled.
        assert_eq!(p.nodes[0].label, "");
    }

    #[test]
    fn blocked_never_exceeds_wall() {
        let sink = CountersSink::new();
        sink.record_node_wall(0, 10);
        sink.record_node_blocked(0, 25);
        let p = sink.profile();
        assert_eq!(p.nodes[0].busy_ns, 0);
        assert_eq!(p.nodes[0].blocked_ns, 25);
    }

    #[test]
    fn channels_pass_through() {
        let sink = CountersSink::new();
        sink.record_channel(ChannelProfile { label: "a -> b".into(), spills: 3, ..Default::default() });
        let p = sink.snapshot().unwrap();
        assert_eq!(p.channels.len(), 1);
        assert_eq!(p.total_spills(), 3);
    }

    #[test]
    fn workers_sort_by_index() {
        let sink = CountersSink::new();
        sink.record_worker(WorkerProfile { index: 2, tasks: 3, steals: 1, busy_ns: 50 });
        sink.record_worker(WorkerProfile { index: 0, tasks: 5, steals: 0, busy_ns: 90 });
        let p = sink.profile();
        assert_eq!(p.workers.len(), 2);
        assert_eq!(p.workers[0].index, 0);
        assert_eq!(p.workers[1].index, 2);
        assert_eq!(p.total_steals(), 1);
    }
}
