//! # sam-trace
//!
//! The observability layer of the SAM reproduction. The execution engine
//! (`sam-exec`) reduces a whole run to a handful of aggregate scalars —
//! enough for the paper's tables, not enough to say *which node* dominates
//! the critical path or *which channel* backpressures. This crate provides
//! the measurement surface that answers those questions on every backend:
//!
//! * [`TraceSink`] — the hook trait the backends drive. It is designed to be
//!   zero-cost when disabled: every backend checks [`TraceSink::enabled`]
//!   once and skips all instrumentation work (timestamps, token
//!   classification) for the [`NullSink`].
//! * [`TokenCounts`] — per-node token counts split by token type
//!   (value/coordinate/reference/bitvector data plus stop/empty/done control
//!   and skip-lane traffic).
//! * [`CountersSink`] — accumulates per-node counts, invocations, wall and
//!   blocked time, and per-channel stall stats, and rolls them up into an
//!   [`ExecProfile`].
//! * [`ChromeTraceSink`] — everything `CountersSink` does, plus a timeline
//!   of spans exported as Chrome `trace_event` JSON (loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)): one track
//!   per worker thread on the parallel fast backend, per simulated block on
//!   the cycle backend, per tile tuple on the tiled backend.
//! * [`ExecProfile`] — the rollup surfaced as `Execution::profile`:
//!   per-node and per-channel breakdowns, a critical-path estimate, and a
//!   ranked stall table ([`ExecProfile::stall_table`]) — the `samprof`
//!   binary in `sam-bench` is a thin shell around it.
//!
//! Above the single-execution layer, the crate also carries the
//! *service-level* observability surface used by `sam-serve`:
//!
//! * [`metrics`] — lock-cheap counters, gauges and log-bucketed latency
//!   histograms (p50/p90/p99/max estimation) behind a [`MetricsRegistry`]
//!   that renders Prometheus text exposition.
//! * [`QuerySpan`] / [`Stage`] — per-query lifecycle attribution
//!   (queue → compile → plan → batch → execute → resolve) with single-line
//!   JSON serialization for JSONL event logs.
//!
//! Stall *attribution* comes from the bounded chunked channels in
//! `sam_streams::chunked`: each instrumented channel records how long its
//! producer was blocked on send and its consumer blocked on receive, plus
//! an occupancy high-water mark, so a slow node shows up both as blocked
//! time on its own row and as blocked-send time on its upstream channels.

#![warn(missing_docs)]

mod chrome;
mod counts;
pub mod metrics;
mod profile;
mod sink;
mod span;

pub use chrome::ChromeTraceSink;
pub use counts::TokenCounts;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use profile::{ChannelProfile, ExecProfile, NodeProfile, WorkerProfile};
pub use sink::{CountersSink, NullSink, TraceSink};
pub use span::{QuerySpan, Stage};
