//! Chrome `trace_event` JSON export.

use crate::counts::TokenCounts;
use crate::profile::{ChannelProfile, ExecProfile};
use crate::sink::{CountersSink, TraceSink};
use std::fmt::Write as _;
use std::sync::Mutex;

struct Span {
    track: usize,
    name: String,
    start_ns: u64,
    dur_ns: u64,
}

#[derive(Default)]
struct Timeline {
    /// Track names in registration order; the index is the Chrome `tid`.
    tracks: Vec<String>,
    spans: Vec<Span>,
}

impl Timeline {
    fn track_id(&mut self, track: &str) -> usize {
        match self.tracks.iter().position(|t| t == track) {
            Some(i) => i,
            None => {
                self.tracks.push(track.to_string());
                self.tracks.len() - 1
            }
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A [`TraceSink`] that accumulates everything [`CountersSink`] does *and*
/// records timeline spans, exported as Chrome `trace_event` JSON loadable
/// in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
///
/// Each distinct `track` passed to [`TraceSink::record_span`] becomes one
/// timeline row (a Chrome thread with a `thread_name` metadata event): the
/// parallel fast backend uses one track per worker thread, the cycle
/// backend one per simulated block, the tiled backend one per inner node
/// with a span per tile tuple.
///
/// ```
/// use sam_trace::{ChromeTraceSink, TraceSink};
///
/// let sink = ChromeTraceSink::new();
/// sink.record_span("worker-0", "scan B0", 0, 1500);
/// let json = sink.to_json();
/// assert!(json.contains("\"traceEvents\""));
/// assert!(json.contains("scan B0"));
/// ```
#[derive(Default)]
pub struct ChromeTraceSink {
    counters: CountersSink,
    timeline: Mutex<Timeline>,
}

impl std::fmt::Debug for ChromeTraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChromeTraceSink").finish_non_exhaustive()
    }
}

impl ChromeTraceSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter rollup accumulated so far (identical to what a
    /// [`CountersSink`] would have collected).
    pub fn profile(&self) -> ExecProfile {
        self.counters.profile()
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.timeline.lock().expect("trace timeline").spans.len()
    }

    /// Serializes the timeline as Chrome `trace_event` JSON (the "JSON
    /// object format": a `traceEvents` array of `ph:"X"` complete events
    /// plus `thread_name` metadata, timestamps in microseconds).
    pub fn to_json(&self) -> String {
        let timeline = self.timeline.lock().expect("trace timeline");
        let mut out = String::from("{\n  \"traceEvents\": [\n");
        let mut first = true;
        let mut push_event = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("    ");
            out.push_str(&line);
        };
        push_event(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"sam\"}}"
                .to_string(),
            &mut out,
        );
        for (tid, track) in timeline.tracks.iter().enumerate() {
            push_event(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                    tid,
                    json_escape(track)
                ),
                &mut out,
            );
        }
        for span in &timeline.spans {
            push_event(
                format!(
                    "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"sam\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                    json_escape(&span.name),
                    span.track,
                    span.start_ns as f64 / 1e3,
                    span.dur_ns as f64 / 1e3,
                ),
                &mut out,
            );
        }
        out.push_str("\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n");
        out
    }

    /// Writes [`Self::to_json`] to a file.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

impl TraceSink for ChromeTraceSink {
    fn define_node(&self, node: usize, label: &str) {
        self.counters.define_node(node, label);
    }

    fn record_tokens(&self, node: usize, counts: TokenCounts) {
        self.counters.record_tokens(node, counts);
    }

    fn record_invocations(&self, node: usize, n: u64) {
        self.counters.record_invocations(node, n);
    }

    fn record_node_wall(&self, node: usize, ns: u64) {
        self.counters.record_node_wall(node, ns);
    }

    fn record_node_blocked(&self, node: usize, ns: u64) {
        self.counters.record_node_blocked(node, ns);
    }

    fn record_channel(&self, channel: ChannelProfile) {
        self.counters.record_channel(channel);
    }

    fn record_worker(&self, worker: crate::profile::WorkerProfile) {
        self.counters.record_worker(worker);
    }

    fn record_span(&self, track: &str, name: &str, start_ns: u64, dur_ns: u64) {
        let mut timeline = self.timeline.lock().expect("trace timeline");
        let track = timeline.track_id(track);
        timeline.spans.push(Span { track, name: name.to_string(), start_ns, dur_ns });
    }

    fn snapshot(&self) -> Option<ExecProfile> {
        Some(self.profile())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_are_deduplicated_and_named() {
        let sink = ChromeTraceSink::new();
        sink.record_span("worker-0", "a", 0, 10);
        sink.record_span("worker-1", "b", 5, 10);
        sink.record_span("worker-0", "c", 12, 3);
        assert_eq!(sink.span_count(), 3);
        let json = sink.to_json();
        // Two thread_name metadata events, not three.
        assert_eq!(json.matches("thread_name").count(), 2);
        assert!(json.contains("worker-0"));
        assert!(json.contains("worker-1"));
    }

    #[test]
    fn json_is_structurally_sound() {
        let sink = ChromeTraceSink::new();
        sink.record_span("t", "quote\" and \\slash", 1000, 2000);
        let json = sink.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\\\"") && json.contains("\\\\"));
        // ts/dur are microseconds: 1000ns -> 1.000us.
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.000"));
    }

    #[test]
    fn counters_flow_through_to_the_profile() {
        let sink = ChromeTraceSink::new();
        sink.define_node(0, "scan");
        sink.record_tokens(0, TokenCounts { crd: 4, ..Default::default() });
        sink.record_span("worker-0", "scan", 0, 100);
        let p = sink.snapshot().unwrap();
        assert_eq!(p.nodes[0].tokens.crd, 4);
        assert_eq!(p.nodes[0].label, "scan");
    }

    #[test]
    fn empty_timeline_is_still_valid_json() {
        let sink = ChromeTraceSink::new();
        let json = sink.to_json();
        assert!(json.contains("traceEvents"));
        assert!(json.contains("process_name"));
    }
}
