//! Lock-cheap service metrics: counters, gauges, log-bucketed histograms
//! and the [`MetricsRegistry`] that renders them as Prometheus text.
//!
//! The execution-level sinks in this crate ([`crate::CountersSink`] and
//! friends) answer "what happened inside one run". A long-lived service
//! needs the complementary view — "what is happening across *all* runs,
//! right now" — and needs to collect it from many threads without a
//! per-event lock. Every metric here is a handful of atomics:
//!
//! * [`Counter`] — a monotone `u64` (`inc`/`add`).
//! * [`Gauge`] — a settable `u64` with a [`Gauge::record_max`] high-water
//!   mode for things like lane-depth peaks.
//! * [`Histogram`] — a log-linear bucketed distribution (4 sub-buckets per
//!   power of two, exact below 4) with total count, sum, min and max.
//!   Recording is three relaxed atomic adds and one `fetch_max`; quantiles
//!   (p50/p90/p99/…) are estimated from a [`HistogramSnapshot`] by rank
//!   walk with linear interpolation inside the landing bucket, clamped to
//!   the observed min/max so `p50 ≤ p90 ≤ p99 ≤ max` always holds.
//! * [`MetricsRegistry`] — names, helps and (single, optional) labels for
//!   a set of metrics, behind a mutex that is touched only at registration
//!   and render time. [`MetricsRegistry::render_prometheus`] emits the
//!   standard text exposition format (`# HELP`/`# TYPE` plus sample
//!   lines; histograms as cumulative `_bucket{le=…}`/`_sum`/`_count`).
//!
//! Values are unit-agnostic `u64`s; the `sam-serve` telemetry records
//! nanoseconds for latencies and raw counts for batch sizes, and bakes the
//! unit into the metric name.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (also usable as a high-water mark via
/// [`Gauge::record_max`]).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water mark).
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: each power of two splits into `2^SUB_BITS`
/// buckets, bounding quantile interpolation error at ~12.5%.
const SUB_BITS: u32 = 2;
const SUBS: usize = 1 << SUB_BITS;
/// Enough buckets for the full `u64` range under the log-linear scheme
/// (max index is `(62 << SUB_BITS) + 3 = 251`).
const BUCKETS: usize = 256;

/// The bucket a value lands in: exact below [`SUBS`], log-linear above.
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    (((msb - SUB_BITS + 1) as usize) << SUB_BITS) + sub
}

/// The inclusive `(lower, upper)` value range of bucket `index`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUBS {
        return (index as u64, index as u64);
    }
    let octave = (index >> SUB_BITS) as u32;
    let sub = (index & (SUBS - 1)) as u64;
    let msb = octave + SUB_BITS - 1;
    if msb >= u64::BITS {
        // Indices past the top u64 octave (251 is the last reachable one).
        return (u64::MAX, u64::MAX);
    }
    let width = 1u64 << (octave - 1);
    let lower = (1u64 << msb) + sub * width;
    (lower, lower + (width - 1))
}

/// A log-linear bucketed latency/size histogram. Recording is lock-free;
/// see the module docs for the bucket scheme and quantile semantics.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram").field("count", &s.count).field("sum", &s.sum).finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy (relaxed reads; concurrent
    /// recorders may be mid-update, which shifts a quantile by at most one
    /// observation).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_bounds(i).1, n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            buckets,
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: totals plus the nonempty
/// buckets as `(inclusive upper bound, count)` in increasing bound order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Nonempty buckets: `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`): rank walk over the
    /// buckets with linear interpolation inside the landing bucket, clamped
    /// to the observed `[min, max]`. Monotone in `q`, so
    /// `quantile(0.5) ≤ quantile(0.9) ≤ quantile(0.99) ≤ max`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for &(upper, n) in &self.buckets {
            if cum + n >= rank {
                // Interpolate between the bucket's effective bounds by the
                // rank's position within it.
                let lower = bucket_bounds(bucket_index(upper)).0;
                let within = (rank - cum) as f64 / n as f64;
                let est = lower as f64 + (upper.saturating_sub(lower)) as f64 * within;
                return (est.round() as u64).clamp(self.min, self.max);
            }
            cum += n;
        }
        self.max
    }

    /// The median ([`HistogramSnapshot::quantile`] at 0.5).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.9)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// One registered metric instance.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One metric family: a name and help shared by one or more labeled
/// instances of the same kind.
#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    /// `(label key, label value)` per instance; at most one label pair —
    /// enough for per-backend / per-worker / per-stage splits.
    entries: Vec<(Option<(String, String)>, Metric)>,
}

/// A named set of metrics that renders as Prometheus text exposition.
/// Registration and rendering take a mutex; the returned `Arc`s update
/// lock-free. Re-registering a `(name, label)` pair returns the existing
/// instance, so call sites can register lazily.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register(&self, name: &str, help: &str, label: Option<(&str, &str)>, make: Metric) -> Metric {
        let mut families = self.families.lock().expect("metrics registry");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                families.push(Family { name: name.to_string(), help: help.to_string(), entries: Vec::new() });
                families.last_mut().expect("just pushed")
            }
        };
        let label = label.map(|(k, v)| (k.to_string(), v.to_string()));
        if let Some((_, existing)) = family.entries.iter().find(|(l, _)| *l == label) {
            return existing.clone();
        }
        family.entries.push((label, make.clone()));
        make
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        match self.register(name, help, None, Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) a counter labeled `{key="value"}`.
    pub fn counter_with(&self, name: &str, help: &str, key: &str, value: &str) -> Arc<Counter> {
        match self.register(name, help, Some((key, value)), Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        match self.register(name, help, None, Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) a gauge labeled `{key="value"}`.
    pub fn gauge_with(&self, name: &str, help: &str, key: &str, value: &str) -> Arc<Gauge> {
        match self.register(name, help, Some((key, value)), Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        match self.register(name, help, None, Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) a histogram labeled `{key="value"}`.
    pub fn histogram_with(&self, name: &str, help: &str, key: &str, value: &str) -> Arc<Histogram> {
        match self.register(name, help, Some((key, value)), Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Renders every registered metric in the Prometheus text exposition
    /// format (version 0.0.4): `# HELP` and `# TYPE` per family, one sample
    /// line per instance, histograms as cumulative `_bucket{le="…"}` series
    /// plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().expect("metrics registry");
        for family in families.iter() {
            let kind = match family.entries.first() {
                Some((_, m)) => m.kind(),
                None => continue,
            };
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(out, "# TYPE {} {}", family.name, kind);
            for (label, metric) in &family.entries {
                let plain = match label {
                    Some((k, v)) => format!("{{{k}=\"{v}\"}}"),
                    None => String::new(),
                };
                match metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{}{} {}", family.name, plain, c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{}{} {}", family.name, plain, g.get());
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        let extra = |le: String| match label {
                            Some((k, v)) => format!("{{{k}=\"{v}\",le=\"{le}\"}}"),
                            None => format!("{{le=\"{le}\"}}"),
                        };
                        let mut cum = 0u64;
                        for (upper, n) in &snap.buckets {
                            cum += n;
                            let _ =
                                writeln!(out, "{}_bucket{} {}", family.name, extra(upper.to_string()), cum);
                        }
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            family.name,
                            extra("+Inf".to_string()),
                            snap.count
                        );
                        let _ = writeln!(out, "{}_sum{} {}", family.name, plain, snap.sum);
                        let _ = writeln!(out, "{}_count{} {}", family.name, plain, snap.count);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_their_values() {
        for v in (0..4096u64).chain([1 << 20, (1 << 20) + 12345, u64::MAX / 2, u64::MAX]) {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "value {v} outside bucket [{lo}, {hi}]");
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_increasing() {
        let mut prev_hi: Option<u64> = None;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            if let Some(p) = prev_hi {
                if lo <= p {
                    // Buckets past the u64 msb range repeat; stop checking.
                    break;
                }
                assert_eq!(lo, p + 1, "gap before bucket {i}");
            }
            prev_hi = Some(hi);
        }
    }

    #[test]
    fn quantiles_are_monotone_and_clamped() {
        let h = Histogram::new();
        for v in [3u64, 17, 17, 90, 1500, 1501, 70_000, 70_001, 70_002, 2_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.max, 2_000_000);
        assert_eq!(s.min, 3);
        let (p50, p90, p99) = (s.p50(), s.p90(), s.p99());
        assert!(p50 <= p90 && p90 <= p99 && p99 <= s.max, "p50={p50} p90={p90} p99={p99} max={}", s.max);
        assert!(s.quantile(0.0) >= s.min);
        assert_eq!(s.quantile(1.0), s.max);
        // The median of ten values straddles ranks 5 (1500): the estimate
        // must land in that bucket's neighborhood, not another octave.
        assert!((90..=1600).contains(&p50), "median estimate {p50}");
    }

    #[test]
    fn empty_histograms_are_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_value_histograms_pin_every_quantile() {
        let h = Histogram::new();
        h.record(777);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 777);
        }
        assert_eq!(s.mean(), 777.0);
    }

    #[test]
    fn registry_reuses_instances_by_name_and_label() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total", "a counter");
        let b = r.counter("x_total", "a counter");
        assert!(Arc::ptr_eq(&a, &b));
        let fast = r.histogram_with("lat_ns", "latency", "backend", "fast-serial");
        let cyc = r.histogram_with("lat_ns", "latency", "backend", "cycle");
        let fast2 = r.histogram_with("lat_ns", "latency", "backend", "fast-serial");
        assert!(Arc::ptr_eq(&fast, &fast2));
        assert!(!Arc::ptr_eq(&fast, &cyc));
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let r = MetricsRegistry::new();
        r.counter("queries_total", "Total queries").add(7);
        r.gauge_with("depth", "Lane depth", "lane", "0").set(3);
        let h = r.histogram("wait_ns", "Queue wait");
        h.record(10);
        h.record(2000);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP queries_total Total queries\n"));
        assert!(text.contains("# TYPE queries_total counter\n"));
        assert!(text.contains("queries_total 7\n"));
        assert!(text.contains("depth{lane=\"0\"} 3\n"));
        assert!(text.contains("# TYPE wait_ns histogram\n"));
        assert!(text.contains("wait_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("wait_ns_sum 2010\n"));
        assert!(text.contains("wait_ns_count 2\n"));
        // Cumulative bucket counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("wait_ns_bucket")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last, "bucket counts must be cumulative: {line}");
            last = n;
        }
    }

    #[test]
    fn counters_and_gauges_update_lock_free() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(9);
        g.record_max(3);
        assert_eq!(g.get(), 9);
        g.record_max(12);
        assert_eq!(g.get(), 12);
    }
}
