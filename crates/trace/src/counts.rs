//! Per-node token counts split by token type.

use sam_sim::payload::{Payload, SimToken};
use sam_streams::Token;
use std::fmt;
use std::ops::{Add, AddAssign};

/// Counts of the tokens a node emitted, split by token type.
///
/// Data tokens are split by payload kind (the executor's streams carry the
/// simulator's dynamically typed [`Payload`]); control tokens by the SAM
/// token algebra. `skip` counts every token observed on an intersecter's
/// skip lanes — those channels exist only on the cycle backend (the fast
/// backends fuse skip edges into gallop scans), so `skip` is zero there.
///
/// Each emitted token lands in exactly one bucket, so [`TokenCounts::total`]
/// over all nodes of a run equals the run's aggregate token count.
///
/// ```
/// use sam_trace::TokenCounts;
/// use sam_sim::payload::tok;
///
/// let mut c = TokenCounts::default();
/// c.record(&tok::crd(3));
/// c.record(&tok::val(1.5));
/// c.record(&tok::stop(0));
/// c.record(&tok::done());
/// assert_eq!(c.total(), 4);
/// assert_eq!(c.data(), 2);
/// assert_eq!(c.control(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct TokenCounts {
    /// Value data tokens.
    pub val: u64,
    /// Coordinate data tokens.
    pub crd: u64,
    /// Reference data tokens.
    pub refs: u64,
    /// Bitvector data tokens (Section 4.3 stream protocol).
    pub bits: u64,
    /// Hierarchical stop tokens.
    pub stop: u64,
    /// Empty (`N`) tokens.
    pub empty: u64,
    /// Done tokens.
    pub done: u64,
    /// Tokens on intersecter skip lanes (cycle backend only).
    pub skip: u64,
}

impl TokenCounts {
    /// Records one token by its type.
    ///
    /// Inlined because the serial backend classifies every materialized
    /// token through this in one post-run pass; an out-of-line call per
    /// token is the difference between ~3% and ~13% tracing overhead.
    #[inline]
    pub fn record(&mut self, token: &SimToken) {
        match token {
            Token::Val(Payload::Val(_)) => self.val += 1,
            Token::Val(Payload::Crd(_)) => self.crd += 1,
            Token::Val(Payload::Ref(_)) => self.refs += 1,
            Token::Val(Payload::Bits(_)) => self.bits += 1,
            Token::Stop(_) => self.stop += 1,
            Token::Empty => self.empty += 1,
            Token::Done => self.done += 1,
        }
    }

    /// Records one token carried by a skip lane. Skip-lane traffic is
    /// bucketed wholesale (data and control alike) because the lane's whole
    /// purpose is out-of-band: it carries "jump ahead" hints, not stream
    /// content.
    #[inline]
    pub fn record_skip(&mut self, _token: &SimToken) {
        self.skip += 1;
    }

    /// Total tokens recorded, over every bucket.
    pub fn total(&self) -> u64 {
        self.val + self.crd + self.refs + self.bits + self.stop + self.empty + self.done + self.skip
    }

    /// Data tokens (value + coordinate + reference + bitvector).
    pub fn data(&self) -> u64 {
        self.val + self.crd + self.refs + self.bits
    }

    /// Control tokens (stop + empty + done).
    pub fn control(&self) -> u64 {
        self.stop + self.empty + self.done
    }
}

impl Add for TokenCounts {
    type Output = TokenCounts;
    fn add(self, rhs: TokenCounts) -> TokenCounts {
        TokenCounts {
            val: self.val + rhs.val,
            crd: self.crd + rhs.crd,
            refs: self.refs + rhs.refs,
            bits: self.bits + rhs.bits,
            stop: self.stop + rhs.stop,
            empty: self.empty + rhs.empty,
            done: self.done + rhs.done,
            skip: self.skip + rhs.skip,
        }
    }
}

impl AddAssign for TokenCounts {
    fn add_assign(&mut self, rhs: TokenCounts) {
        *self = *self + rhs;
    }
}

impl fmt::Display for TokenCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "val={} crd={} ref={} bits={} stop={} empty={} done={} skip={}",
            self.val, self.crd, self.refs, self.bits, self.stop, self.empty, self.done, self.skip
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_sim::payload::tok;
    use sam_streams::BitVec;

    #[test]
    fn every_token_lands_in_exactly_one_bucket() {
        let mut c = TokenCounts::default();
        c.record(&tok::crd(1));
        c.record(&tok::rf(2));
        c.record(&tok::val(0.5));
        c.record(&tok::bits(BitVec::from_coords(0, 8, [1u32])));
        c.record(&tok::stop(1));
        c.record(&tok::empty());
        c.record(&tok::done());
        assert_eq!(c.total(), 7);
        assert_eq!(c.data(), 4);
        assert_eq!(c.control(), 3);
        assert_eq!(c.crd, 1);
        assert_eq!(c.refs, 1);
        assert_eq!(c.val, 1);
        assert_eq!(c.bits, 1);
        assert_eq!(c.skip, 0);
    }

    #[test]
    fn skip_lane_tokens_are_bucketed_wholesale() {
        let mut c = TokenCounts::default();
        c.record_skip(&tok::crd(4));
        c.record_skip(&tok::done());
        assert_eq!(c.skip, 2);
        assert_eq!(c.total(), 2);
        assert_eq!(c.data(), 0);
    }

    #[test]
    fn add_combines_bucketwise() {
        let mut a = TokenCounts::default();
        a.record(&tok::crd(1));
        let mut b = TokenCounts::default();
        b.record(&tok::stop(0));
        b.record_skip(&tok::crd(9));
        let c = a + b;
        assert_eq!(c.total(), 3);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
        assert_eq!(c.to_string(), "val=0 crd=1 ref=0 bits=0 stop=1 empty=0 done=0 skip=1");
    }
}
