//! The execution profile: per-node and per-channel rollups.

use crate::counts::TokenCounts;
use std::fmt::Write as _;

/// Per-node measurements for one execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeProfile {
    /// The node's index in the planned graph.
    pub index: usize,
    /// The node's human-readable label (e.g. `intersect(j: B,C)`).
    pub label: String,
    /// Tokens the node emitted, split by token type.
    pub tokens: TokenCounts,
    /// How many times the node was executed (tile tuples on the tiled
    /// backend, otherwise one per run; the cycle backend reports simulated
    /// block count instead of invocations and leaves this at zero).
    pub invocations: u64,
    /// Wall time spent actually computing, nanoseconds.
    pub busy_ns: u64,
    /// Wall time attributed to waiting on channels (blocked on send to a
    /// full downstream channel or on receive from an empty upstream one),
    /// nanoseconds.
    pub blocked_ns: u64,
}

impl NodeProfile {
    /// Total wall time the node was live (busy + blocked), nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        self.busy_ns + self.blocked_ns
    }
}

/// Per-channel stall measurements for one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelProfile {
    /// The channel's label: `producer.out{port} -> consumer`.
    pub label: String,
    /// Time the producer spent blocked in send, nanoseconds.
    pub blocked_send_ns: u64,
    /// Time the consumer spent blocked in receive, nanoseconds.
    pub blocked_recv_ns: u64,
    /// High-water mark of queued chunks.
    pub occupancy_peak: u64,
    /// Chunks pushed past the configured depth (the deadlock escape).
    pub spills: u64,
}

/// Per-worker scheduler counters for one execution of the work-stealing
/// backend: how many tasks the worker ran, how many of those it stole from
/// another worker's queue, and how long it spent executing them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerProfile {
    /// The worker's index (0 is the driving thread).
    pub index: usize,
    /// Tasks this worker executed (its own plus stolen ones).
    pub tasks: u64,
    /// Tasks this worker stole from another worker's queue.
    pub steals: u64,
    /// Wall time this worker spent executing tasks, nanoseconds.
    pub busy_ns: u64,
}

/// The rollup of one traced execution, surfaced as `Execution::profile`.
///
/// ```
/// use sam_trace::{ExecProfile, NodeProfile};
///
/// let profile = ExecProfile {
///     nodes: vec![
///         NodeProfile { index: 0, label: "scan B0".into(), busy_ns: 10, blocked_ns: 90, ..Default::default() },
///         NodeProfile { index: 1, label: "reduce".into(), busy_ns: 70, blocked_ns: 5, ..Default::default() },
///     ],
///     ..Default::default()
/// };
/// // The critical path is the longest-lived node, busy or blocked.
/// assert_eq!(profile.critical_path_ns(), 100);
/// assert_eq!(profile.ranked_nodes()[0].label, "scan B0");
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecProfile {
    /// Per-node breakdown, in planned-graph node order.
    pub nodes: Vec<NodeProfile>,
    /// Per-channel stall breakdown (empty on backends that materialize
    /// whole streams instead of using bounded channels).
    pub channels: Vec<ChannelProfile>,
    /// Per-worker scheduler counters (empty on backends without a
    /// work-stealing pool, and on runs where the pool never spun up).
    pub workers: Vec<WorkerProfile>,
}

impl ExecProfile {
    /// Critical-path estimate: the maximum over nodes of busy + blocked
    /// time. On the pipelined parallel backend every node is live for
    /// roughly the whole run, so the slowest node *is* the run.
    pub fn critical_path_ns(&self) -> u64 {
        self.nodes.iter().map(NodeProfile::wall_ns).max().unwrap_or(0)
    }

    /// Total tokens over every node.
    pub fn total_tokens(&self) -> u64 {
        self.nodes.iter().map(|n| n.tokens.total()).sum()
    }

    /// Total blocked time over every node, nanoseconds.
    pub fn total_blocked_ns(&self) -> u64 {
        self.nodes.iter().map(|n| n.blocked_ns).sum()
    }

    /// Total spill events over every channel.
    pub fn total_spills(&self) -> u64 {
        self.channels.iter().map(|c| c.spills).sum()
    }

    /// Nodes ranked most-stalled first (blocked time, then busy time, then
    /// token volume as tie-breakers) — the order the `samprof` table uses.
    pub fn ranked_nodes(&self) -> Vec<&NodeProfile> {
        let mut nodes: Vec<&NodeProfile> = self.nodes.iter().collect();
        nodes.sort_by(|a, b| {
            (b.blocked_ns, b.busy_ns, b.tokens.total()).cmp(&(a.blocked_ns, a.busy_ns, a.tokens.total()))
        });
        nodes
    }

    /// Renders the ranked per-node stall/token table plus, when channel
    /// stats exist, the per-channel stall table — the body of `samprof`'s
    /// report.
    pub fn stall_table(&self) -> String {
        let mut out = String::new();
        let label_w = self
            .nodes
            .iter()
            .map(|n| n.label.len() + 4)
            .chain(std::iter::once("node".len()))
            .max()
            .unwrap_or(4);
        let _ = writeln!(
            out,
            "{:<label_w$} {:>9} {:>8} {:>8} {:>8} {:>8} {:>6} {:>7} {:>12} {:>12}",
            "node", "tokens", "val", "crd", "ref", "stop", "skip", "invocs", "busy_us", "blocked_us",
        );
        for n in self.ranked_nodes() {
            let label = format!("n{}:{}", n.index, n.label);
            let _ = writeln!(
                out,
                "{:<label_w$} {:>9} {:>8} {:>8} {:>8} {:>8} {:>6} {:>7} {:>12.1} {:>12.1}",
                label,
                n.tokens.total(),
                n.tokens.val,
                n.tokens.crd,
                n.tokens.refs,
                n.tokens.stop,
                n.tokens.skip,
                n.invocations,
                n.busy_ns as f64 / 1e3,
                n.blocked_ns as f64 / 1e3,
            );
        }
        if !self.channels.is_empty() {
            let chan_w = self
                .channels
                .iter()
                .map(|c| c.label.len())
                .chain(std::iter::once("channel".len()))
                .max()
                .unwrap_or(7);
            let _ = writeln!(
                out,
                "\n{:<chan_w$} {:>14} {:>14} {:>9} {:>7}",
                "channel", "blk_send_us", "blk_recv_us", "peak", "spills",
            );
            let mut channels: Vec<&ChannelProfile> = self.channels.iter().collect();
            channels.sort_by(|a, b| {
                (b.blocked_send_ns + b.blocked_recv_ns).cmp(&(a.blocked_send_ns + a.blocked_recv_ns))
            });
            for c in channels {
                let _ = writeln!(
                    out,
                    "{:<chan_w$} {:>14.1} {:>14.1} {:>9} {:>7}",
                    c.label,
                    c.blocked_send_ns as f64 / 1e3,
                    c.blocked_recv_ns as f64 / 1e3,
                    c.occupancy_peak,
                    c.spills,
                );
            }
        }
        if !self.workers.is_empty() {
            let _ = writeln!(out, "\n{:<8} {:>8} {:>8} {:>12}", "worker", "tasks", "steals", "busy_us");
            for w in &self.workers {
                let _ = writeln!(
                    out,
                    "{:<8} {:>8} {:>8} {:>12.1}",
                    format!("w{}", w.index),
                    w.tasks,
                    w.steals,
                    w.busy_ns as f64 / 1e3,
                );
            }
        }
        out
    }

    /// Total tasks stolen across every worker.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(index: usize, label: &str, busy: u64, blocked: u64, crd: u64) -> NodeProfile {
        NodeProfile {
            index,
            label: label.to_string(),
            tokens: TokenCounts { crd, ..TokenCounts::default() },
            invocations: 1,
            busy_ns: busy,
            blocked_ns: blocked,
        }
    }

    #[test]
    fn critical_path_is_max_node_wall_time() {
        let p =
            ExecProfile { nodes: vec![node(0, "a", 5, 10, 2), node(1, "b", 40, 1, 3)], ..Default::default() };
        assert_eq!(p.critical_path_ns(), 41);
        assert_eq!(p.total_blocked_ns(), 11);
        assert_eq!(p.total_tokens(), 5);
    }

    #[test]
    fn ranking_puts_most_blocked_first() {
        let p = ExecProfile {
            nodes: vec![node(0, "busy", 100, 0, 1), node(1, "stalled", 1, 100, 1)],
            ..Default::default()
        };
        let ranked = p.ranked_nodes();
        assert_eq!(ranked[0].label, "stalled");
        assert_eq!(ranked[1].label, "busy");
    }

    #[test]
    fn stall_table_lists_every_node_and_channel() {
        let p = ExecProfile {
            nodes: vec![node(3, "intersect(j: B,C)", 10, 20, 7)],
            channels: vec![ChannelProfile {
                label: "n0:scan B0.out0 -> n3".into(),
                blocked_send_ns: 1500,
                blocked_recv_ns: 0,
                occupancy_peak: 4,
                spills: 2,
            }],
            workers: vec![WorkerProfile { index: 0, tasks: 7, steals: 2, busy_ns: 12_000 }],
        };
        let table = p.stall_table();
        assert!(table.contains("n3:intersect(j: B,C)"));
        assert!(table.contains("n0:scan B0.out0 -> n3"));
        assert!(table.contains("blocked_us"));
        assert!(table.contains("spills"));
        assert!(table.contains("steals"));
        assert!(table.contains("w0"));
    }

    #[test]
    fn empty_profile_renders_header_only() {
        let p = ExecProfile::default();
        assert_eq!(p.critical_path_ns(), 0);
        assert!(p.stall_table().contains("node"));
    }
}
