//! Level writers: tensor construction (paper Definition 3.8).

use sam_sim::{Block, BlockStatus, ChannelId, Context};
use sam_streams::Token;
use sam_tensor::level::CompressedLevel;
use std::sync::{Arc, Mutex};

/// Shared sink receiving the level data a [`LevelWriter`] produces.
///
/// The writer builds a compressed level (segment + coordinate arrays); the
/// caller keeps a clone of the sink and reads the level after the simulation
/// has quiesced.
pub type LevelWriterSink = Arc<Mutex<Option<CompressedLevel>>>;

/// Shared sink receiving the values a [`ValWriter`] stores.
pub type ValWriterSink = Arc<Mutex<Option<Vec<f64>>>>;

/// Creates an empty level-writer sink.
pub fn level_sink() -> LevelWriterSink {
    Arc::new(Mutex::new(None))
}

/// Creates an empty value-writer sink.
pub fn val_sink() -> ValWriterSink {
    Arc::new(Mutex::new(None))
}

/// Writes one coordinate stream into a compressed level in memory
/// (Definition 3.8). Every stop token closes the fiber being written; the
/// done token finalizes the level and publishes it to the sink.
#[derive(Debug)]
pub struct LevelWriter {
    name: String,
    dim: usize,
    in_crd: ChannelId,
    sink: LevelWriterSink,
    coords: Vec<u32>,
    seg: Vec<usize>,
    done: bool,
}

impl LevelWriter {
    /// Creates a compressed level writer for a dimension of size `dim`.
    pub fn new(name: impl Into<String>, dim: usize, in_crd: ChannelId, sink: LevelWriterSink) -> Self {
        LevelWriter { name: name.into(), dim, in_crd, sink, coords: Vec::new(), seg: vec![0], done: false }
    }
}

impl Block for LevelWriter {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        let Some(t) = ctx.peek(self.in_crd).cloned() else {
            return BlockStatus::Busy;
        };
        ctx.pop(self.in_crd);
        match t {
            Token::Val(p) => {
                self.coords.push(p.expect_crd());
                BlockStatus::Busy
            }
            Token::Empty => BlockStatus::Busy,
            Token::Stop(_) => {
                self.seg.push(self.coords.len());
                BlockStatus::Busy
            }
            Token::Done => {
                if *self.seg.last().expect("nonempty") != self.coords.len() {
                    self.seg.push(self.coords.len());
                }
                let level = CompressedLevel::new(
                    self.dim,
                    std::mem::take(&mut self.seg),
                    std::mem::take(&mut self.coords),
                );
                *self.sink.lock().expect("poisoned level sink") = Some(level);
                self.done = true;
                BlockStatus::Done
            }
        }
    }
}

/// Writes a value stream into a values array (the store mode of the array
/// block wrapped by a level writer, Definition 3.8). Empty tokens store an
/// explicit zero; stop tokens carry no data.
#[derive(Debug)]
pub struct ValWriter {
    name: String,
    in_val: ChannelId,
    sink: ValWriterSink,
    vals: Vec<f64>,
    done: bool,
}

impl ValWriter {
    /// Creates a values writer.
    pub fn new(name: impl Into<String>, in_val: ChannelId, sink: ValWriterSink) -> Self {
        ValWriter { name: name.into(), in_val, sink, vals: Vec::new(), done: false }
    }
}

impl Block for ValWriter {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        let Some(t) = ctx.peek(self.in_val).cloned() else {
            return BlockStatus::Busy;
        };
        ctx.pop(self.in_val);
        match t {
            Token::Val(p) => {
                self.vals.push(p.expect_val());
                BlockStatus::Busy
            }
            Token::Empty => {
                self.vals.push(0.0);
                BlockStatus::Busy
            }
            Token::Stop(_) => BlockStatus::Busy,
            Token::Done => {
                *self.sink.lock().expect("poisoned value sink") = Some(std::mem::take(&mut self.vals));
                self.done = true;
                BlockStatus::Done
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_sim::payload::tok;
    use sam_sim::Simulator;

    #[test]
    fn level_writer_builds_compressed_level() {
        let mut sim = Simulator::new();
        let c = sim.add_channel("crd");
        let sink = level_sink();
        sim.add_block(Box::new(LevelWriter::new("Xj", 4, c, sink.clone())));
        sim.preload(
            c,
            vec![
                tok::crd(1),
                tok::stop(0),
                tok::crd(0),
                tok::crd(2),
                tok::stop(0),
                tok::crd(1),
                tok::crd(3),
                tok::stop(1),
                tok::done(),
            ],
        );
        sim.run(100).unwrap();
        let level = sink.lock().unwrap().clone().unwrap();
        assert_eq!(level.seg, vec![0, 1, 3, 5]);
        assert_eq!(level.crd, vec![1, 0, 2, 1, 3]);
    }

    #[test]
    fn level_writer_handles_empty_fibers() {
        let mut sim = Simulator::new();
        let c = sim.add_channel("crd");
        let sink = level_sink();
        sim.add_block(Box::new(LevelWriter::new("X", 4, c, sink.clone())));
        sim.preload(c, vec![tok::crd(2), tok::stop(0), tok::stop(0), tok::crd(3), tok::stop(1), tok::done()]);
        sim.run(100).unwrap();
        let level = sink.lock().unwrap().clone().unwrap();
        assert_eq!(level.seg, vec![0, 1, 1, 2]);
        assert_eq!(level.crd, vec![2, 3]);
    }

    #[test]
    fn val_writer_collects_values_and_zeros() {
        let mut sim = Simulator::new();
        let v = sim.add_channel("val");
        let sink = val_sink();
        sim.add_block(Box::new(ValWriter::new("Xvals", v, sink.clone())));
        sim.preload(v, vec![tok::val(1.5), Token::Empty, tok::val(2.5), tok::stop(0), tok::done()]);
        sim.run(100).unwrap();
        assert_eq!(sink.lock().unwrap().clone().unwrap(), vec![1.5, 0.0, 2.5]);
    }

    #[test]
    fn scalar_result_written() {
        let mut sim = Simulator::new();
        let v = sim.add_channel("val");
        let sink = val_sink();
        sim.add_block(Box::new(ValWriter::new("chi", v, sink.clone())));
        sim.preload(v, vec![tok::val(42.0), tok::done()]);
        sim.run(100).unwrap();
        assert_eq!(sink.lock().unwrap().clone().unwrap(), vec![42.0]);
    }
}
