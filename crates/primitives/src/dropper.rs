//! The coordinate dropper (paper Definition 3.9, Figure 8).

use sam_sim::payload::{tok, Payload};
use sam_sim::{Block, BlockStatus, ChannelId, Context, SimToken};
use sam_streams::Token;
use std::collections::VecDeque;

/// Removes outer coordinates whose inner fibers turned out to be ineffectual
/// (empty after intersection, or all-zero after computation), together with
/// those fibers' tokens.
///
/// The dropper buffers one inner fiber at a time; when the fiber ends it
/// either forwards the fiber and emits the owning outer coordinate, or drops
/// both. Trailing stop tokens are held back so that a dropped last fiber can
/// merge its group-closing stop into the previous fiber's stop, exactly as in
/// Figure 8.
#[derive(Debug)]
pub struct CoordDropper {
    name: String,
    in_outer_crd: ChannelId,
    in_inner: ChannelId,
    out_outer_crd: ChannelId,
    out_inner: ChannelId,
    /// Tokens of the inner fiber currently being collected.
    fiber: Vec<SimToken>,
    /// Whether the current fiber has any effectual data token.
    effectual: bool,
    /// Tokens awaiting emission on the inner output.
    pending_inner: VecDeque<SimToken>,
    /// Tokens awaiting emission on the outer output.
    pending_outer: VecDeque<SimToken>,
    finishing: bool,
    done: bool,
}

impl CoordDropper {
    /// Creates a coordinate dropper. The inner stream may carry coordinates
    /// or values; a value of exactly zero counts as ineffectual.
    pub fn new(
        name: impl Into<String>,
        in_outer_crd: ChannelId,
        in_inner: ChannelId,
        out_outer_crd: ChannelId,
        out_inner: ChannelId,
    ) -> Self {
        CoordDropper {
            name: name.into(),
            in_outer_crd,
            in_inner,
            out_outer_crd,
            out_inner,
            fiber: Vec::new(),
            effectual: false,
            pending_inner: VecDeque::new(),
            pending_outer: VecDeque::new(),
            finishing: false,
            done: false,
        }
    }

    /// Appends a token to a pending queue, merging consecutive trailing stop
    /// tokens by keeping the higher level (the Figure 8 upgrade rule).
    fn push_pending(queue: &mut VecDeque<SimToken>, t: SimToken) {
        if let Token::Stop(new_level) = t {
            if let Some(Token::Stop(prev)) = queue.back_mut() {
                *prev = (*prev).max(new_level);
                return;
            }
        }
        queue.push_back(t);
    }

    /// Emits at most one pending token per output per cycle, holding back a
    /// trailing stop until it can no longer be upgraded.
    fn drain_pending(&mut self, ctx: &mut Context) -> bool {
        let mut emitted = false;
        if ctx.can_push(self.out_inner) {
            let emit_ok = match self.pending_inner.front() {
                Some(Token::Stop(_)) => self.pending_inner.len() > 1 || self.finishing,
                Some(_) => true,
                None => false,
            };
            if emit_ok {
                let t = self.pending_inner.pop_front().expect("nonempty");
                ctx.push(self.out_inner, t);
                emitted = true;
            }
        }
        if ctx.can_push(self.out_outer_crd) {
            let emit_ok = match self.pending_outer.front() {
                Some(Token::Stop(_)) => self.pending_outer.len() > 1 || self.finishing,
                Some(_) => true,
                None => false,
            };
            if emit_ok {
                let t = self.pending_outer.pop_front().expect("nonempty");
                ctx.push(self.out_outer_crd, t);
                emitted = true;
            }
        }
        emitted
    }
}

impl Block for CoordDropper {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        let drained = self.drain_pending(ctx);
        if self.finishing {
            if self.pending_inner.is_empty() && self.pending_outer.is_empty() {
                self.done = true;
                return BlockStatus::Done;
            }
            return BlockStatus::Busy;
        }
        let Some(t) = ctx.peek(self.in_inner).cloned() else {
            return BlockStatus::Busy;
        };
        match t {
            Token::Val(p) => {
                ctx.pop(self.in_inner);
                let effectual = match p {
                    Payload::Val(v) => v != 0.0,
                    _ => true,
                };
                self.effectual |= effectual;
                self.fiber.push(Token::Val(p));
                BlockStatus::Busy
            }
            Token::Empty => {
                ctx.pop(self.in_inner);
                BlockStatus::Busy
            }
            Token::Stop(level) => {
                // The end of an inner fiber: consume the owning outer
                // coordinate and decide whether to keep the fiber.
                let Some(outer) = ctx.peek(self.in_outer_crd).cloned() else {
                    return BlockStatus::Busy;
                };
                ctx.pop(self.in_inner);
                match outer {
                    Token::Val(po) => {
                        ctx.pop(self.in_outer_crd);
                        if self.effectual {
                            for ft in self.fiber.drain(..) {
                                Self::push_pending(&mut self.pending_inner, ft);
                            }
                            Self::push_pending(&mut self.pending_inner, tok::stop(level));
                            Self::push_pending(&mut self.pending_outer, Token::Val(po));
                        } else {
                            self.fiber.clear();
                            if level > 0 {
                                Self::push_pending(&mut self.pending_inner, tok::stop(level));
                            }
                        }
                        if level > 0 {
                            // The outer level also closes: its own stop (one
                            // level lower) follows on the outer input.
                            if let Some(Token::Stop(no)) = ctx.peek(self.in_outer_crd).cloned() {
                                ctx.pop(self.in_outer_crd);
                                Self::push_pending(&mut self.pending_outer, tok::stop(no));
                            } else {
                                Self::push_pending(&mut self.pending_outer, tok::stop(level - 1));
                            }
                        }
                        self.effectual = false;
                    }
                    Token::Stop(_) | Token::Empty | Token::Done => {
                        // Structural slack: forward the stop and keep going.
                        Self::push_pending(&mut self.pending_inner, tok::stop(level));
                        if matches!(outer, Token::Stop(_)) {
                            ctx.pop(self.in_outer_crd);
                            Self::push_pending(&mut self.pending_outer, outer);
                        }
                        self.effectual = false;
                        self.fiber.clear();
                    }
                }
                BlockStatus::Busy
            }
            Token::Done => {
                ctx.pop(self.in_inner);
                // Drain the outer stream up to and including its done token.
                while let Some(o) = ctx.peek(self.in_outer_crd).cloned() {
                    ctx.pop(self.in_outer_crd);
                    if o.is_done() {
                        break;
                    }
                    Self::push_pending(&mut self.pending_outer, o);
                }
                Self::push_pending(&mut self.pending_inner, tok::done());
                Self::push_pending(&mut self.pending_outer, tok::done());
                self.finishing = true;
                let _ = drained;
                BlockStatus::Busy
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_sim::Simulator;

    fn to_paper(tokens: &[SimToken]) -> String {
        let mut parts: Vec<String> = tokens
            .iter()
            .map(|t| match t {
                Token::Val(Payload::Crd(c)) => c.to_string(),
                Token::Val(p) => p.to_string(),
                Token::Stop(n) => format!("S{n}"),
                Token::Empty => "N".to_string(),
                Token::Done => "D".to_string(),
            })
            .collect();
        parts.reverse();
        parts.join(", ")
    }

    fn run_dropper(outer: Vec<SimToken>, inner: Vec<SimToken>) -> (String, String) {
        let mut sim = Simulator::new();
        let ic = sim.add_channel("outer");
        let ii = sim.add_channel("inner");
        let oc = sim.add_channel("out_outer");
        let oi = sim.add_channel("out_inner");
        sim.record(oc);
        sim.record(oi);
        sim.add_block(Box::new(CoordDropper::new("drop", ic, ii, oc, oi)));
        sim.preload(ic, outer);
        sim.preload(ii, inner);
        sim.run(1000).unwrap();
        (to_paper(sim.history(oc)), to_paper(sim.history(oi)))
    }

    #[test]
    fn figure8_drops_empty_middle_fiber() {
        // Paper Figure 8: coordinate 2's fiber is empty and is dropped from
        // both streams.
        let outer = vec![tok::crd(0), tok::crd(1), tok::crd(2), tok::crd(3), tok::stop(0), tok::done()];
        let inner = vec![
            tok::crd(1),
            tok::stop(0),
            tok::crd(0),
            tok::crd(2),
            tok::stop(0),
            tok::stop(0),
            tok::crd(1),
            tok::crd(3),
            tok::stop(1),
            tok::done(),
        ];
        let (outer_out, inner_out) = run_dropper(outer, inner);
        assert_eq!(outer_out, "D, S0, 3, 1, 0");
        assert_eq!(inner_out, "D, S1, 3, 1, S0, 2, 0, S0, 1");
    }

    #[test]
    fn trailing_empty_fiber_merges_stop() {
        // The last fiber (outer coordinate 2) is empty: its group-closing
        // stop merges into the previous fiber's stop.
        let outer = vec![tok::crd(0), tok::crd(2), tok::stop(0), tok::done()];
        let inner = vec![tok::crd(1), tok::stop(0), tok::stop(1), tok::done()];
        let (outer_out, inner_out) = run_dropper(outer, inner);
        assert_eq!(outer_out, "D, S0, 0");
        assert_eq!(inner_out, "D, S1, 1");
    }

    #[test]
    fn all_fibers_kept_passes_through() {
        let outer = vec![tok::crd(0), tok::crd(1), tok::stop(0), tok::done()];
        let inner = vec![tok::crd(5), tok::stop(0), tok::crd(6), tok::stop(1), tok::done()];
        let (outer_out, inner_out) = run_dropper(outer.clone(), inner.clone());
        assert_eq!(outer_out, "D, S0, 1, 0");
        assert_eq!(inner_out, "D, S1, 6, S0, 5");
    }

    #[test]
    fn zero_values_count_as_ineffectual() {
        // Value-stream inner input: a fiber of explicit zeros is dropped.
        let outer = vec![tok::crd(0), tok::crd(1), tok::stop(0), tok::done()];
        let inner = vec![tok::val(0.0), tok::stop(0), tok::val(2.0), tok::stop(1), tok::done()];
        let (outer_out, inner_out) = run_dropper(outer, inner);
        assert_eq!(outer_out, "D, S0, 1");
        assert_eq!(inner_out, "D, S1, 2");
    }

    #[test]
    fn everything_dropped_leaves_empty_streams() {
        let outer = vec![tok::crd(0), tok::stop(0), tok::done()];
        let inner = vec![tok::stop(1), tok::done()];
        let (outer_out, inner_out) = run_dropper(outer, inner);
        assert_eq!(outer_out, "D, S0");
        assert_eq!(inner_out, "D, S1");
    }
}
