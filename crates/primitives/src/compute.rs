//! Computation blocks: ALUs and reducers (paper Definitions 3.6 and 3.7).

use sam_sim::payload::tok;
use sam_sim::{Block, BlockStatus, ChannelId, Context, SimToken};
use sam_streams::Token;
use std::collections::{BTreeMap, VecDeque};

/// The arithmetic operation performed by an [`Alu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction (first operand minus second).
    Sub,
    /// Multiplication.
    Mul,
}

impl AluOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            AluOp::Add => a + b,
            AluOp::Sub => a - b,
            AluOp::Mul => a * b,
        }
    }
}

/// A streaming two-input ALU (Definition 3.6).
///
/// Consumes two aligned value streams and produces one value stream,
/// treating empty (`N`) tokens as zeros. Control tokens of the two inputs
/// must agree and are passed through.
#[derive(Debug)]
pub struct Alu {
    name: String,
    op: AluOp,
    in_val: [ChannelId; 2],
    out_val: ChannelId,
    done: bool,
}

impl Alu {
    /// Creates an ALU applying `op`.
    pub fn new(name: impl Into<String>, op: AluOp, in_val: [ChannelId; 2], out_val: ChannelId) -> Self {
        Alu { name: name.into(), op, in_val, out_val, done: false }
    }
}

impl Block for Alu {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        if !ctx.can_push(self.out_val) {
            return BlockStatus::Busy;
        }
        let (Some(a), Some(b)) = (ctx.peek(self.in_val[0]).cloned(), ctx.peek(self.in_val[1]).cloned())
        else {
            return BlockStatus::Busy;
        };
        match (a, b) {
            (Token::Val(pa), Token::Val(pb)) => {
                ctx.pop(self.in_val[0]);
                ctx.pop(self.in_val[1]);
                ctx.push(self.out_val, tok::val(self.op.apply(pa.expect_val(), pb.expect_val())));
                BlockStatus::Busy
            }
            (Token::Val(pa), Token::Empty) => {
                ctx.pop(self.in_val[0]);
                ctx.pop(self.in_val[1]);
                ctx.push(self.out_val, tok::val(self.op.apply(pa.expect_val(), 0.0)));
                BlockStatus::Busy
            }
            (Token::Empty, Token::Val(pb)) => {
                ctx.pop(self.in_val[0]);
                ctx.pop(self.in_val[1]);
                ctx.push(self.out_val, tok::val(self.op.apply(0.0, pb.expect_val())));
                BlockStatus::Busy
            }
            (Token::Empty, Token::Empty) => {
                ctx.pop(self.in_val[0]);
                ctx.pop(self.in_val[1]);
                ctx.push(self.out_val, tok::val(self.op.apply(0.0, 0.0)));
                BlockStatus::Busy
            }
            (Token::Stop(na), Token::Stop(nb)) => {
                debug_assert_eq!(na, nb, "ALU inputs must have matching fiber structure");
                ctx.pop(self.in_val[0]);
                ctx.pop(self.in_val[1]);
                ctx.push(self.out_val, tok::stop(na.max(nb)));
                BlockStatus::Busy
            }
            (Token::Done, Token::Done) => {
                ctx.pop(self.in_val[0]);
                ctx.pop(self.in_val[1]);
                ctx.push(self.out_val, tok::done());
                self.done = true;
                BlockStatus::Done
            }
            // Structural mismatches: wait for the lagging side.
            _ => BlockStatus::Busy,
        }
    }
}

/// A constant-value source: re-emits one scalar for every data token of its
/// shape input stream.
///
/// The shape stream is normally a fork of the value stream the constant
/// combines with in a downstream [`Alu`]; empty (`N`) tokens pass through as
/// empty (the position is absent either way) and control tokens mirror, so
/// the constant stream is always structurally aligned with its sibling.
#[derive(Debug)]
pub struct ConstVal {
    name: String,
    value: f64,
    input: ChannelId,
    output: ChannelId,
    done: bool,
}

impl ConstVal {
    /// Creates a constant source emitting `value`.
    pub fn new(name: impl Into<String>, value: f64, input: ChannelId, output: ChannelId) -> Self {
        ConstVal { name: name.into(), value, input, output, done: false }
    }
}

impl Block for ConstVal {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        if !ctx.can_push(self.output) {
            return BlockStatus::Busy;
        }
        let Some(t) = ctx.pop(self.input) else {
            return BlockStatus::Busy;
        };
        match t {
            Token::Val(_) => {
                ctx.push(self.output, tok::val(self.value));
                BlockStatus::Busy
            }
            Token::Empty => {
                ctx.push(self.output, tok::empty());
                BlockStatus::Busy
            }
            Token::Stop(n) => {
                ctx.push(self.output, tok::stop(n));
                BlockStatus::Busy
            }
            Token::Done => {
                ctx.push(self.output, tok::done());
                self.done = true;
                BlockStatus::Done
            }
        }
    }
}

/// How a reducer treats reductions over empty fibers (Definition 3.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmptyFiberPolicy {
    /// Emit nothing for an empty reduction; downstream coordinate droppers
    /// remove the corresponding outer coordinates (the configuration assumed
    /// by Table 1, note a).
    #[default]
    Drop,
    /// Emit an explicit zero value, keeping the output aligned with the outer
    /// coordinate streams so droppers become optional.
    ExplicitZero,
}

/// A reducer of configurable accumulation order (Definition 3.7).
///
/// * order 0 (scalar): sums each innermost fiber of its value stream into a
///   single value,
/// * order 1 (vector): accumulates `(coordinate, value)` pairs across inner
///   fibers and emits a deduplicated, sorted fiber whenever a stop of level
///   ≥ 1 closes the accumulation (Figure 7),
/// * order 2 (matrix): accumulates `(outer, inner, value)` triples and emits
///   the accumulated matrix when the stream ends (used by outer-product
///   dataflows).
#[derive(Debug)]
pub struct Reducer {
    name: String,
    order: usize,
    policy: EmptyFiberPolicy,
    in_crd: Vec<ChannelId>,
    in_val: ChannelId,
    out_crd: Vec<ChannelId>,
    out_val: ChannelId,
    // Scalar state.
    acc: f64,
    has_data: bool,
    // Vector state.
    vec_acc: BTreeMap<u32, f64>,
    // Matrix state.
    mat_acc: BTreeMap<(u32, u32), f64>,
    current_outer: Option<u32>,
    // Pending emissions, one per cycle: (crd tokens per output, val token).
    pending: VecDeque<(Vec<SimToken>, SimToken)>,
    done: bool,
}

impl Reducer {
    /// Creates a scalar reducer (order 0).
    pub fn scalar(
        name: impl Into<String>,
        in_val: ChannelId,
        out_val: ChannelId,
        policy: EmptyFiberPolicy,
    ) -> Self {
        Self::new(name, 0, policy, vec![], in_val, vec![], out_val)
    }

    /// Creates a vector reducer (order 1).
    pub fn vector(
        name: impl Into<String>,
        in_crd: ChannelId,
        in_val: ChannelId,
        out_crd: ChannelId,
        out_val: ChannelId,
        policy: EmptyFiberPolicy,
    ) -> Self {
        Self::new(name, 1, policy, vec![in_crd], in_val, vec![out_crd], out_val)
    }

    /// Creates a matrix reducer (order 2). The first coordinate channel is
    /// the outer level (one coordinate per inner fiber), the second the inner
    /// level (aligned with the value stream).
    pub fn matrix(
        name: impl Into<String>,
        in_crd: [ChannelId; 2],
        in_val: ChannelId,
        out_crd: [ChannelId; 2],
        out_val: ChannelId,
        policy: EmptyFiberPolicy,
    ) -> Self {
        Self::new(name, 2, policy, in_crd.to_vec(), in_val, out_crd.to_vec(), out_val)
    }

    fn new(
        name: impl Into<String>,
        order: usize,
        policy: EmptyFiberPolicy,
        in_crd: Vec<ChannelId>,
        in_val: ChannelId,
        out_crd: Vec<ChannelId>,
        out_val: ChannelId,
    ) -> Self {
        assert!(order <= 2, "reducers of order {order} are not supported");
        Reducer {
            name: name.into(),
            order,
            policy,
            in_crd,
            in_val,
            out_crd,
            out_val,
            acc: 0.0,
            has_data: false,
            vec_acc: BTreeMap::new(),
            mat_acc: BTreeMap::new(),
            current_outer: None,
            pending: VecDeque::new(),
            done: false,
        }
    }

    /// Queues one output element.
    fn queue(&mut self, crds: Vec<SimToken>, val: SimToken) {
        debug_assert_eq!(crds.len(), self.out_crd.len());
        self.pending.push_back((crds, val));
    }

    fn flush_pending(&mut self, ctx: &mut Context) -> bool {
        if let Some((crds, val)) = self.pending.pop_front() {
            for (chan, t) in self.out_crd.iter().zip(crds) {
                ctx.push(*chan, t);
            }
            ctx.push(self.out_val, val);
            true
        } else {
            false
        }
    }

    fn flush_vector(&mut self, closing_stop: Option<u8>) {
        let acc = std::mem::take(&mut self.vec_acc);
        if acc.is_empty() && self.policy == EmptyFiberPolicy::ExplicitZero {
            // Nothing accumulated and nothing to attach a coordinate to:
            // fall through to emitting just the boundary.
        }
        for (c, v) in acc {
            self.queue(vec![tok::crd(c)], tok::val(v));
        }
        if let Some(level) = closing_stop {
            self.queue(vec![tok::stop(level)], tok::stop(level));
        }
    }

    fn flush_matrix(&mut self, closing_stop: Option<u8>) {
        let acc = std::mem::take(&mut self.mat_acc);
        let mut by_outer: BTreeMap<u32, Vec<(u32, f64)>> = BTreeMap::new();
        for ((o, i), v) in acc {
            by_outer.entry(o).or_default().push((i, v));
        }
        let n = by_outer.len();
        for (idx, (o, inners)) in by_outer.into_iter().enumerate() {
            let last_fiber = idx + 1 == n;
            let m = inners.len();
            for (jdx, (i, v)) in inners.into_iter().enumerate() {
                let last_inner = jdx + 1 == m;
                // The outer coordinate accompanies the first element of its
                // fiber; subsequent elements carry an empty slot on the outer
                // coordinate output so that streams stay aligned one token
                // per cycle.
                let outer_tok = if jdx == 0 { tok::crd(o) } else { tok::empty() };
                self.queue(vec![outer_tok, tok::crd(i)], tok::val(v));
                if last_inner {
                    // Fiber boundaries appear on the inner coordinate and
                    // value outputs; the outer coordinate output is a single
                    // top-level fiber, so it only receives the final stop.
                    let level = if last_fiber { closing_stop.unwrap_or(1) } else { 0 };
                    let outer_boundary =
                        if last_fiber { tok::stop(level.saturating_sub(1)) } else { tok::empty() };
                    self.queue(vec![outer_boundary, tok::stop(level)], tok::stop(level));
                }
            }
        }
        if n == 0 {
            if let Some(level) = closing_stop {
                self.queue(vec![tok::stop(level), tok::stop(level)], tok::stop(level));
            }
        }
    }
}

impl Block for Reducer {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done && self.pending.is_empty() {
            return BlockStatus::Done;
        }
        if !ctx.can_push(self.out_val) || self.out_crd.iter().any(|c| !ctx.can_push(*c)) {
            return BlockStatus::Busy;
        }
        // Drain pending emissions first, one per cycle.
        if self.flush_pending(ctx) {
            if self.pending.is_empty() && self.done {
                return BlockStatus::Done;
            }
            return BlockStatus::Busy;
        }
        if self.done {
            return BlockStatus::Busy;
        }

        match self.order {
            0 => self.tick_scalar(ctx),
            1 => self.tick_vector(ctx),
            _ => self.tick_matrix(ctx),
        }
    }
}

impl Reducer {
    fn tick_scalar(&mut self, ctx: &mut Context) -> BlockStatus {
        let Some(t) = ctx.peek(self.in_val).cloned() else {
            return BlockStatus::Busy;
        };
        ctx.pop(self.in_val);
        match t {
            Token::Val(p) => {
                self.acc += p.expect_val();
                self.has_data = true;
                BlockStatus::Busy
            }
            Token::Empty => BlockStatus::Busy,
            Token::Stop(n) => {
                if self.has_data || self.policy == EmptyFiberPolicy::ExplicitZero {
                    ctx.push(self.out_val, tok::val(self.acc));
                }
                self.acc = 0.0;
                self.has_data = false;
                if n > 0 {
                    self.queue(vec![], tok::stop(n - 1));
                }
                BlockStatus::Busy
            }
            Token::Done => {
                ctx.push(self.out_val, tok::done());
                self.done = true;
                BlockStatus::Done
            }
        }
    }

    fn tick_vector(&mut self, ctx: &mut Context) -> BlockStatus {
        let (Some(c), Some(v)) = (ctx.peek(self.in_crd[0]).cloned(), ctx.peek(self.in_val).cloned()) else {
            return BlockStatus::Busy;
        };
        match (c, v) {
            (Token::Val(pc), Token::Val(pv)) => {
                ctx.pop(self.in_crd[0]);
                ctx.pop(self.in_val);
                *self.vec_acc.entry(pc.expect_crd()).or_insert(0.0) += pv.expect_val();
                BlockStatus::Busy
            }
            (Token::Empty, _) | (_, Token::Empty) => {
                ctx.pop(self.in_crd[0]);
                ctx.pop(self.in_val);
                BlockStatus::Busy
            }
            (Token::Stop(nc), Token::Stop(nv)) => {
                debug_assert_eq!(nc, nv, "reducer inputs must have matching structure");
                ctx.pop(self.in_crd[0]);
                ctx.pop(self.in_val);
                let n = nc.max(nv);
                if n == 0 {
                    // End of one inner fiber: keep accumulating.
                } else {
                    // The accumulation scope closed: emit the reduced fiber.
                    self.flush_vector(Some(n - 1));
                }
                BlockStatus::Busy
            }
            (Token::Done, Token::Done) => {
                ctx.pop(self.in_crd[0]);
                ctx.pop(self.in_val);
                if !self.vec_acc.is_empty() {
                    self.flush_vector(None);
                }
                self.queue(vec![tok::done()], tok::done());
                self.done = true;
                BlockStatus::Busy
            }
            _ => BlockStatus::Busy,
        }
    }

    fn tick_matrix(&mut self, ctx: &mut Context) -> BlockStatus {
        // Keep the current outer coordinate up to date.
        if self.current_outer.is_none() {
            if let Some(Token::Val(p)) = ctx.peek(self.in_crd[0]).cloned() {
                ctx.pop(self.in_crd[0]);
                self.current_outer = Some(p.expect_crd());
            }
        }
        let (Some(c), Some(v)) = (ctx.peek(self.in_crd[1]).cloned(), ctx.peek(self.in_val).cloned()) else {
            return BlockStatus::Busy;
        };
        match (c, v) {
            (Token::Val(pc), Token::Val(pv)) => {
                let Some(outer) = self.current_outer else {
                    return BlockStatus::Busy;
                };
                ctx.pop(self.in_crd[1]);
                ctx.pop(self.in_val);
                *self.mat_acc.entry((outer, pc.expect_crd())).or_insert(0.0) += pv.expect_val();
                BlockStatus::Busy
            }
            (Token::Empty, _) | (_, Token::Empty) => {
                ctx.pop(self.in_crd[1]);
                ctx.pop(self.in_val);
                BlockStatus::Busy
            }
            (Token::Stop(_), Token::Stop(_)) => {
                ctx.pop(self.in_crd[1]);
                ctx.pop(self.in_val);
                // End of one inner fiber: the next fiber belongs to the next
                // outer coordinate. Consume the outer stream's stop tokens
                // opportunistically.
                self.current_outer = None;
                if let Some(Token::Stop(_)) = ctx.peek(self.in_crd[0]) {
                    ctx.pop(self.in_crd[0]);
                }
                BlockStatus::Busy
            }
            (Token::Done, Token::Done) => {
                ctx.pop(self.in_crd[1]);
                ctx.pop(self.in_val);
                while let Some(t) = ctx.peek(self.in_crd[0]) {
                    let finished = t.is_done();
                    ctx.pop(self.in_crd[0]);
                    if finished {
                        break;
                    }
                }
                self.flush_matrix(Some(1));
                self.queue(vec![tok::done(), tok::done()], tok::done());
                self.done = true;
                BlockStatus::Busy
            }
            _ => BlockStatus::Busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_sim::Simulator;

    fn vals(tokens: &[SimToken]) -> Vec<f64> {
        tokens.iter().filter_map(|t| t.value_ref().map(|p| p.expect_val())).collect()
    }

    fn crds(tokens: &[SimToken]) -> Vec<u32> {
        tokens.iter().filter_map(|t| t.value_ref().map(|p| p.expect_crd())).collect()
    }

    #[test]
    fn alu_multiplies_and_handles_empty() {
        let mut sim = Simulator::new();
        let a = sim.add_channel("a");
        let b = sim.add_channel("b");
        let out = sim.add_channel("out");
        sim.record(out);
        sim.add_block(Box::new(Alu::new("mul", AluOp::Mul, [a, b], out)));
        sim.preload(a, vec![tok::val(2.0), tok::val(3.0), Token::Empty, tok::stop(0), tok::done()]);
        sim.preload(b, vec![tok::val(5.0), Token::Empty, tok::val(7.0), tok::stop(0), tok::done()]);
        sim.run(100).unwrap();
        assert_eq!(vals(sim.history(out)), vec![10.0, 0.0, 0.0]);
        assert!(sim.history(out).iter().any(|t| t.is_stop()));
    }

    #[test]
    fn alu_add_and_sub() {
        for (op, expect) in [(AluOp::Add, 7.0), (AluOp::Sub, 3.0)] {
            let mut sim = Simulator::new();
            let a = sim.add_channel("a");
            let b = sim.add_channel("b");
            let out = sim.add_channel("out");
            sim.record(out);
            sim.add_block(Box::new(Alu::new("alu", op, [a, b], out)));
            sim.preload(a, vec![tok::val(5.0), tok::stop(0), tok::done()]);
            sim.preload(b, vec![tok::val(2.0), tok::stop(0), tok::done()]);
            sim.run(100).unwrap();
            assert_eq!(vals(sim.history(out)), vec![expect]);
        }
    }

    #[test]
    fn scalar_reducer_sums_inner_fibers() {
        // Value stream ((1), (2, 3), (4, 5)) reduces to (1, 5, 9).
        let mut sim = Simulator::new();
        let input = sim.add_channel("in");
        let out = sim.add_channel("out");
        sim.record(out);
        sim.add_block(Box::new(Reducer::scalar("red", input, out, EmptyFiberPolicy::Drop)));
        sim.preload(
            input,
            vec![
                tok::val(1.0),
                tok::stop(0),
                tok::val(2.0),
                tok::val(3.0),
                tok::stop(0),
                tok::val(4.0),
                tok::val(5.0),
                tok::stop(1),
                tok::done(),
            ],
        );
        sim.run(100).unwrap();
        assert_eq!(vals(sim.history(out)), vec![1.0, 5.0, 9.0]);
        // The level-1 stop is demoted to level 0.
        assert_eq!(sim.history(out).iter().filter(|t| t.stop_level() == Some(0)).count(), 1);
    }

    #[test]
    fn scalar_reducer_policy_on_empty_fiber() {
        for (policy, expected) in
            [(EmptyFiberPolicy::Drop, vec![3.0]), (EmptyFiberPolicy::ExplicitZero, vec![3.0, 0.0])]
        {
            let mut sim = Simulator::new();
            let input = sim.add_channel("in");
            let out = sim.add_channel("out");
            sim.record(out);
            sim.add_block(Box::new(Reducer::scalar("red", input, out, policy)));
            sim.preload(input, vec![tok::val(1.0), tok::val(2.0), tok::stop(0), tok::stop(1), tok::done()]);
            sim.run(100).unwrap();
            assert_eq!(vals(sim.history(out)), expected, "policy {policy:?}");
        }
    }

    #[test]
    fn figure7_vector_reducer() {
        // Paper Figure 7: accumulate the columns of the Figure 1 matrix.
        let mut sim = Simulator::new();
        let in_crd = sim.add_channel("in_crd");
        let in_val = sim.add_channel("in_val");
        let out_crd = sim.add_channel("out_crd");
        let out_val = sim.add_channel("out_val");
        sim.record(out_crd);
        sim.record(out_val);
        sim.add_block(Box::new(Reducer::vector(
            "red",
            in_crd,
            in_val,
            out_crd,
            out_val,
            EmptyFiberPolicy::Drop,
        )));
        sim.preload(
            in_crd,
            vec![
                tok::crd(1),
                tok::stop(0),
                tok::crd(0),
                tok::crd(2),
                tok::stop(0),
                tok::crd(1),
                tok::crd(3),
                tok::stop(1),
                tok::done(),
            ],
        );
        sim.preload(
            in_val,
            vec![
                tok::val(1.0),
                tok::stop(0),
                tok::val(2.0),
                tok::val(3.0),
                tok::stop(0),
                tok::val(4.0),
                tok::val(5.0),
                tok::stop(1),
                tok::done(),
            ],
        );
        sim.run(100).unwrap();
        assert_eq!(crds(sim.history(out_crd)), vec![0, 1, 2, 3]);
        assert_eq!(vals(sim.history(out_val)), vec![2.0, 5.0, 3.0, 5.0]);
        assert_eq!(sim.history(out_crd).iter().filter(|t| t.is_stop()).count(), 1);
    }

    #[test]
    fn vector_reducer_deduplicates_multiple_groups() {
        // Two accumulation groups separated by a level-1 stop.
        let mut sim = Simulator::new();
        let in_crd = sim.add_channel("in_crd");
        let in_val = sim.add_channel("in_val");
        let out_crd = sim.add_channel("out_crd");
        let out_val = sim.add_channel("out_val");
        sim.record(out_crd);
        sim.record(out_val);
        sim.add_block(Box::new(Reducer::vector(
            "red",
            in_crd,
            in_val,
            out_crd,
            out_val,
            EmptyFiberPolicy::Drop,
        )));
        sim.preload(
            in_crd,
            vec![
                tok::crd(2),
                tok::stop(0),
                tok::crd(2),
                tok::stop(1),
                tok::crd(0),
                tok::stop(2),
                tok::done(),
            ],
        );
        sim.preload(
            in_val,
            vec![
                tok::val(1.0),
                tok::stop(0),
                tok::val(10.0),
                tok::stop(1),
                tok::val(7.0),
                tok::stop(2),
                tok::done(),
            ],
        );
        sim.run(100).unwrap();
        assert_eq!(crds(sim.history(out_crd)), vec![2, 0]);
        assert_eq!(vals(sim.history(out_val)), vec![11.0, 7.0]);
    }

    #[test]
    fn matrix_reducer_accumulates_outer_products() {
        // Two outer-product contributions to the same (i, j) cell.
        let mut sim = Simulator::new();
        let in_i = sim.add_channel("in_i");
        let in_j = sim.add_channel("in_j");
        let in_val = sim.add_channel("in_val");
        let out_i = sim.add_channel("out_i");
        let out_j = sim.add_channel("out_j");
        let out_val = sim.add_channel("out_val");
        sim.record(out_i);
        sim.record(out_j);
        sim.record(out_val);
        sim.add_block(Box::new(Reducer::matrix(
            "red",
            [in_i, in_j],
            in_val,
            [out_i, out_j],
            out_val,
            EmptyFiberPolicy::Drop,
        )));
        // k=0 contributes (i=1, j=2) -> 3.0; k=1 contributes (1,2) -> 4.0 and (1,3) -> 5.0.
        sim.preload(in_i, vec![tok::crd(1), tok::stop(0), tok::crd(1), tok::stop(1), tok::done()]);
        sim.preload(
            in_j,
            vec![tok::crd(2), tok::stop(0), tok::crd(2), tok::crd(3), tok::stop(1), tok::done()],
        );
        sim.preload(
            in_val,
            vec![tok::val(3.0), tok::stop(0), tok::val(4.0), tok::val(5.0), tok::stop(1), tok::done()],
        );
        sim.run(200).unwrap();
        assert_eq!(crds(sim.history(out_j)), vec![2, 3]);
        assert_eq!(vals(sim.history(out_val)), vec![7.0, 5.0]);
        // The outer coordinate 1 appears once, with an empty filler for the
        // second element of its fiber.
        let outer: Vec<u32> = crds(sim.history(out_i));
        assert_eq!(outer, vec![1]);
    }
}
