//! Root reference streams.
//!
//! A SAM graph starts iterating a tensor by feeding its outermost level
//! scanner the *root* reference stream `0, D` (paper Figure 2). Graphs that
//! broadcast a whole tensor (via repeaters) also start from this stream.

use sam_sim::payload::tok;
use sam_sim::SimToken;

/// The root reference stream `D, 0` (in paper right-to-left notation): one
/// reference to the root fiber followed by the done token.
pub fn root_stream() -> Vec<SimToken> {
    vec![tok::rf(0), tok::done()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_stream_shape() {
        let s = root_stream();
        assert_eq!(s.len(), 2);
        assert!(s[1].is_done());
    }
}
