//! Level scanners: tensor iteration (paper Definition 3.1, Section 4.2).

use sam_sim::payload::tok;
use sam_sim::{Block, BlockStatus, ChannelId, Context};
use sam_streams::Token;
use sam_tensor::level::{FiberEntry, Level};
use std::sync::Arc;

/// Internal scanner state machine.
#[derive(Debug)]
enum ScanState {
    /// Waiting for the next input reference token.
    Idle,
    /// Emitting the entries of the current fiber one per cycle.
    Emitting { entries: Vec<FiberEntry>, pos: usize },
    /// The fiber finished; waiting to see the next input token to decide the
    /// level of the trailing stop token (Section 3.3's hierarchical rule).
    NeedStop,
}

/// A level scanner for dense (uncompressed) and compressed levels.
///
/// The scanner consumes a reference stream naming fibers of its level and
/// produces a coordinate stream and a reference stream for the next level
/// (Definition 3.1). It is format agnostic (Figure 3): the same block works
/// for dense and compressed levels because both expose the fiber-view
/// interface of [`Level`].
///
/// Stop-token rule (Section 3.3): after scanning a fiber the scanner looks at
/// its next input token; it emits `S0` when another fiber follows (or the
/// stream ends) and merges into `S(n+1)` when the input carries `Sn`. Input
/// stop tokens arriving outside a fiber are incremented and passed through.
///
/// With a `skip_in` channel connected, the scanner implements coordinate
/// skipping (Section 4.2): skip tokens carry a target coordinate and the
/// scanner fast-forwards past smaller coordinates it has not yet emitted.
/// Two skip-token forms are understood:
///
/// * a bare coordinate token — applied to whatever fiber is in flight
///   (adequate for single-fiber streams, e.g. vector intersections);
/// * an *epoch-tagged pair* `Ref(epoch), Crd(target)` as emitted by
///   [`crate::Intersecter`] — the epoch counts fiber-closing stop tokens,
///   and the pair is applied only while the scanner is still emitting that
///   same fiber. A request that arrives after the fiber closed is stale and
///   dropped; without the tag it could gallop a *later* fiber past
///   coordinates that match (multi-fiber streams lag arbitrarily far behind
///   their consumers in the dataflow).
#[derive(Debug)]
pub struct LevelScanner {
    name: String,
    level: Arc<Level>,
    in_ref: ChannelId,
    out_crd: ChannelId,
    out_ref: ChannelId,
    skip_in: Option<ChannelId>,
    state: ScanState,
    /// Fiber-closing stop tokens emitted so far — the skip epoch.
    stops_emitted: u32,
    done: bool,
}

impl LevelScanner {
    /// Creates a level scanner over `level`.
    pub fn new(
        name: impl Into<String>,
        level: Arc<Level>,
        in_ref: ChannelId,
        out_crd: ChannelId,
        out_ref: ChannelId,
    ) -> Self {
        LevelScanner {
            name: name.into(),
            level,
            in_ref,
            out_crd,
            out_ref,
            skip_in: None,
            state: ScanState::Idle,
            stops_emitted: 0,
            done: false,
        }
    }

    /// Connects a coordinate-skip input channel (Section 4.2).
    pub fn with_skip(mut self, skip_in: ChannelId) -> Self {
        self.skip_in = Some(skip_in);
        self
    }

    fn emit_both(&mut self, ctx: &mut Context, crd_tok: sam_sim::SimToken, ref_tok: sam_sim::SimToken) {
        if matches!(crd_tok, Token::Stop(_)) {
            self.stops_emitted = self.stops_emitted.wrapping_add(1);
        }
        ctx.push(self.out_crd, crd_tok);
        ctx.push(self.out_ref, ref_tok);
    }

    /// Gallops the in-flight fiber cursor past coordinates below `target`.
    fn gallop(&mut self, target: u32) {
        if let ScanState::Emitting { entries, pos } = &mut self.state {
            while *pos < entries.len() && entries[*pos].coord < target {
                *pos += 1;
            }
        }
    }

    /// Applies any pending skip tokens to the in-flight fiber position.
    fn apply_skips(&mut self, ctx: &mut Context) {
        use sam_sim::payload::Payload;
        let Some(skip) = self.skip_in else { return };
        loop {
            match ctx.peek(skip).cloned() {
                Some(Token::Val(Payload::Ref(epoch))) => {
                    // An epoch-tagged (epoch, target) pair; both tokens are
                    // pushed in one producer tick, so the pair is complete.
                    let Some(&Token::Val(p2)) = ctx.peek_nth(skip, 1) else { break };
                    if epoch != self.stops_emitted {
                        // Stale: that fiber already closed, and galloping
                        // would drop a later fiber's data.
                        ctx.pop(skip);
                        ctx.pop(skip);
                        continue;
                    }
                    match self.state {
                        ScanState::Emitting { .. } => {
                            ctx.pop(skip);
                            ctx.pop(skip);
                            self.gallop(p2.expect_crd());
                        }
                        // The fiber just ended; nothing left to skip.
                        ScanState::NeedStop => {
                            ctx.pop(skip);
                            ctx.pop(skip);
                        }
                        // Keep it; it applies to the fiber about to start.
                        ScanState::Idle => break,
                    }
                }
                Some(Token::Val(Payload::Crd(target))) => match self.state {
                    ScanState::Emitting { .. } => {
                        ctx.pop(skip);
                        self.gallop(target);
                    }
                    // Requests for the fiber that just ended are stale.
                    ScanState::NeedStop => {
                        ctx.pop(skip);
                    }
                    // Keep it; it applies to the fiber about to start.
                    ScanState::Idle => break,
                },
                Some(_) => {
                    ctx.pop(skip);
                }
                None => break,
            }
        }
    }
}

impl Block for LevelScanner {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        if !(ctx.can_push(self.out_crd) && ctx.can_push(self.out_ref)) {
            return BlockStatus::Busy;
        }
        self.apply_skips(ctx);
        let state = std::mem::replace(&mut self.state, ScanState::Idle);
        match state {
            ScanState::Emitting { entries, pos } => {
                if pos < entries.len() {
                    let e = entries[pos];
                    self.emit_both(ctx, tok::crd(e.coord), tok::rf(e.child as u32));
                    self.state = if pos + 1 >= entries.len() {
                        ScanState::NeedStop
                    } else {
                        ScanState::Emitting { entries, pos: pos + 1 }
                    };
                } else {
                    self.state = ScanState::NeedStop;
                }
                BlockStatus::Busy
            }
            ScanState::NeedStop => {
                match ctx.peek(self.in_ref) {
                    None => {
                        // Stall until the lookahead token is available.
                        self.state = ScanState::NeedStop;
                        BlockStatus::Busy
                    }
                    Some(Token::Val(_)) | Some(Token::Empty) | Some(Token::Done) => {
                        // Another fiber (or the end of the stream) follows:
                        // close this fiber with a level-0 stop.
                        self.emit_both(ctx, tok::stop(0), tok::stop(0));
                        self.state = ScanState::Idle;
                        BlockStatus::Busy
                    }
                    Some(Token::Stop(n)) => {
                        let level = *n;
                        ctx.pop(self.in_ref);
                        self.emit_both(ctx, tok::stop(level + 1), tok::stop(level + 1));
                        self.state = ScanState::Idle;
                        BlockStatus::Busy
                    }
                }
            }
            ScanState::Idle => {
                let Some(head) = ctx.peek(self.in_ref).cloned() else {
                    return BlockStatus::Busy;
                };
                match head {
                    Token::Val(p) => {
                        ctx.pop(self.in_ref);
                        let fiber = p.expect_ref() as usize;
                        let entries = self.level.fiber(fiber);
                        if entries.is_empty() {
                            // An empty fiber contributes only its trailing stop.
                            self.state = ScanState::NeedStop;
                        } else {
                            // Stay fully pipelined: emit the first entry in the
                            // same cycle the reference is consumed.
                            let e = entries[0];
                            self.emit_both(ctx, tok::crd(e.coord), tok::rf(e.child as u32));
                            self.state = if entries.len() == 1 {
                                ScanState::NeedStop
                            } else {
                                ScanState::Emitting { entries, pos: 1 }
                            };
                        }
                        BlockStatus::Busy
                    }
                    Token::Empty => {
                        // A missing operand reference (from a union) scans as
                        // an empty fiber.
                        ctx.pop(self.in_ref);
                        self.state = ScanState::NeedStop;
                        BlockStatus::Busy
                    }
                    Token::Stop(n) => {
                        ctx.pop(self.in_ref);
                        self.emit_both(ctx, tok::stop(n + 1), tok::stop(n + 1));
                        BlockStatus::Busy
                    }
                    Token::Done => {
                        ctx.pop(self.in_ref);
                        self.emit_both(ctx, tok::done(), tok::done());
                        self.done = true;
                        BlockStatus::Done
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_sim::payload::Payload;
    use sam_sim::Simulator;
    use sam_tensor::level::{CompressedLevel, DenseLevel};

    fn paper_levels() -> (Arc<Level>, Arc<Level>) {
        // The DCSR matrix of paper Figure 1c.
        let i = Level::Compressed(CompressedLevel::new(4, vec![0, 3], vec![0, 1, 3]));
        let j = Level::Compressed(CompressedLevel::new(4, vec![0, 1, 3, 5], vec![1, 0, 2, 1, 3]));
        (Arc::new(i), Arc::new(j))
    }

    fn tokens_to_string(tokens: &[sam_sim::SimToken]) -> String {
        let mut parts: Vec<String> = tokens
            .iter()
            .map(|t| match t {
                Token::Val(Payload::Crd(c)) => c.to_string(),
                Token::Val(Payload::Ref(r)) => r.to_string(),
                Token::Val(Payload::Val(v)) => v.to_string(),
                Token::Val(Payload::Bits(b)) => b.to_string(),
                Token::Stop(n) => format!("S{n}"),
                Token::Empty => "N".to_string(),
                Token::Done => "D".to_string(),
            })
            .collect();
        parts.reverse();
        parts.join(", ")
    }

    #[test]
    fn figure2_scanner_composition() {
        // Two chained scanners over the Figure 1 matrix reproduce the streams
        // of paper Figure 2.
        let (li, lj) = paper_levels();
        let mut sim = Simulator::new();
        let root = sim.add_channel("root");
        let bi_crd = sim.add_channel("bi_crd");
        let bi_ref = sim.add_channel("bi_ref");
        let bj_crd = sim.add_channel("bj_crd");
        let bj_ref = sim.add_channel("bj_ref");
        sim.record(bi_crd);
        sim.record(bj_crd);
        sim.record(bj_ref);
        sim.add_block(Box::new(LevelScanner::new("Bi", li, root, bi_crd, bi_ref)));
        sim.add_block(Box::new(LevelScanner::new("Bj", lj, bi_ref, bj_crd, bj_ref)));
        sim.preload(root, crate::source::root_stream());
        sim.run(1000).unwrap();
        assert_eq!(tokens_to_string(sim.history(bi_crd)), "D, S0, 3, 1, 0");
        assert_eq!(tokens_to_string(sim.history(bj_crd)), "D, S1, 3, 1, S0, 2, 0, S0, 1");
        assert_eq!(tokens_to_string(sim.history(bj_ref)), "D, S1, 4, 3, S0, 2, 1, S0, 0");
    }

    #[test]
    fn dense_level_scan_emits_all_coordinates() {
        let level = Arc::new(Level::Dense(DenseLevel::new(3, 1)));
        let mut sim = Simulator::new();
        let root = sim.add_channel("root");
        let crd = sim.add_channel("crd");
        let rf = sim.add_channel("ref");
        sim.record(crd);
        sim.record(rf);
        sim.add_block(Box::new(LevelScanner::new("d", level, root, crd, rf)));
        sim.preload(root, crate::source::root_stream());
        sim.run(100).unwrap();
        assert_eq!(tokens_to_string(sim.history(crd)), "D, S0, 2, 1, 0");
        assert_eq!(tokens_to_string(sim.history(rf)), "D, S0, 2, 1, 0");
    }

    #[test]
    fn empty_fiber_in_csr_produces_standalone_stop() {
        // CSR storage of the Figure 1 matrix: row 2 is empty.
        let i = Arc::new(Level::Dense(DenseLevel::new(4, 1)));
        let j =
            Arc::new(Level::Compressed(CompressedLevel::new(4, vec![0, 1, 3, 3, 5], vec![1, 0, 2, 1, 3])));
        let mut sim = Simulator::new();
        let root = sim.add_channel("root");
        let bi_crd = sim.add_channel("bi_crd");
        let bi_ref = sim.add_channel("bi_ref");
        let bj_crd = sim.add_channel("bj_crd");
        let bj_ref = sim.add_channel("bj_ref");
        sim.record(bj_crd);
        sim.add_block(Box::new(LevelScanner::new("Bi", i, root, bi_crd, bi_ref)));
        sim.add_block(Box::new(LevelScanner::new("Bj", j, bi_ref, bj_crd, bj_ref)));
        sim.preload(root, crate::source::root_stream());
        sim.run(1000).unwrap();
        // Row 2 contributes only a stop token (an empty fiber), as in Figure 8.
        assert_eq!(tokens_to_string(sim.history(bj_crd)), "D, S1, 3, 1, S0, S0, 2, 0, S0, 1");
    }

    #[test]
    fn empty_ref_token_scans_as_empty_fiber() {
        let (_, lj) = paper_levels();
        let mut sim = Simulator::new();
        let in_ref = sim.add_channel("in_ref");
        let crd = sim.add_channel("crd");
        let rf = sim.add_channel("ref");
        sim.record(crd);
        sim.add_block(Box::new(LevelScanner::new("Bj", lj, in_ref, crd, rf)));
        sim.preload(in_ref, vec![tok::rf(0), Token::Empty, tok::rf(2), tok::stop(0), tok::done()]);
        sim.run(1000).unwrap();
        assert_eq!(tokens_to_string(sim.history(crd)), "D, S1, 3, 1, S0, S0, 1");
    }

    #[test]
    fn coordinate_skipping_reduces_emitted_tokens() {
        // A long fiber with a skip request jumping most of it.
        let level = Arc::new(Level::Compressed(CompressedLevel::new(100, vec![0, 50], (0..50).collect())));
        let mut sim = Simulator::new();
        let root = sim.add_channel("root");
        let crd = sim.add_channel("crd");
        let rf = sim.add_channel("ref");
        let skip = sim.add_channel("skip");
        sim.record(crd);
        sim.add_block(Box::new(LevelScanner::new("b", level, root, crd, rf).with_skip(skip)));
        sim.preload(root, crate::source::root_stream());
        sim.preload(skip, vec![tok::crd(45)]);
        sim.run(1000).unwrap();
        // Coordinates 1..44 were skipped: the first coordinate is emitted
        // before the skip is applied, then the scan resumes at 45.
        let data: Vec<u32> =
            sim.history(crd).iter().filter_map(|t| t.value_ref().map(|p| p.expect_crd())).collect();
        assert!(data.len() <= 7, "expected a handful of coordinates, got {data:?}");
        assert!(data.contains(&45));
    }

    #[test]
    fn stale_epoch_tagged_skip_is_dropped() {
        // Two fibers of three coordinates each. A tagged request for fiber 0
        // (epoch 0) that is only seen while fiber 1 is in flight must NOT
        // gallop fiber 1 — its coordinates could match the other operand.
        let level =
            Arc::new(Level::Compressed(CompressedLevel::new(10, vec![0, 3, 6], vec![1, 2, 3, 1, 2, 3])));
        let mut sim = Simulator::new();
        let in_ref = sim.add_channel("in_ref");
        let crd = sim.add_channel("crd");
        let rf = sim.add_channel("ref");
        let skip = sim.add_channel("skip");
        sim.record(crd);
        sim.add_block(Box::new(LevelScanner::new("b", level, in_ref, crd, rf).with_skip(skip)));
        sim.preload(in_ref, vec![tok::rf(0), tok::rf(1), tok::stop(0), tok::done()]);
        // Epoch 5 never matches: the whole level emits only two stops.
        sim.preload(skip, vec![tok::rf(5), tok::crd(9)]);
        sim.run(1000).unwrap();
        let data: Vec<u32> =
            sim.history(crd).iter().filter_map(|t| t.value_ref().map(|p| p.expect_crd())).collect();
        assert_eq!(data, vec![1, 2, 3, 1, 2, 3], "stale skip must not drop coordinates");
    }

    #[test]
    fn matching_epoch_tagged_skip_gallops_current_fiber() {
        let level = Arc::new(Level::Compressed(CompressedLevel::new(100, vec![0, 50], (0..50).collect())));
        let mut sim = Simulator::new();
        let in_ref = sim.add_channel("in_ref");
        let crd = sim.add_channel("crd");
        let rf = sim.add_channel("ref");
        let skip = sim.add_channel("skip");
        sim.record(crd);
        sim.add_block(Box::new(LevelScanner::new("b", level, in_ref, crd, rf).with_skip(skip)));
        sim.preload(in_ref, vec![tok::rf(0), tok::stop(0), tok::done()]);
        sim.preload(skip, vec![tok::rf(0), tok::crd(45)]);
        sim.run(1000).unwrap();
        let data: Vec<u32> =
            sim.history(crd).iter().filter_map(|t| t.value_ref().map(|p| p.expect_crd())).collect();
        assert!(data.len() <= 7, "expected a galloped scan, got {data:?}");
        assert!(data.contains(&45));
    }

    #[test]
    fn scanner_reports_done() {
        let (li, _) = paper_levels();
        let mut sim = Simulator::new();
        let root = sim.add_channel("root");
        let crd = sim.add_channel("crd");
        let rf = sim.add_channel("ref");
        sim.add_block(Box::new(LevelScanner::new("Bi", li, root, crd, rf)));
        sim.preload(root, crate::source::root_stream());
        let report = sim.run(100).unwrap();
        // 3 coordinates + stop + done = 5 emission cycles (plus lookahead stalls).
        assert!(report.cycles >= 5 && report.cycles <= 8, "cycles = {}", report.cycles);
    }
}
