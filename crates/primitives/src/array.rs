//! Array (memory) blocks: value loads and the locator (paper Definitions
//! 3.5 and 4.1).

use sam_sim::payload::tok;
use sam_sim::{Block, BlockStatus, ChannelId, Context};
use sam_streams::Token;
use sam_tensor::level::Level;
use std::sync::Arc;

/// The array block in load mode (Definition 3.5): converts a reference
/// stream into a value stream by reading a values array.
///
/// Empty (`N`) references — produced by unions for missing operands — pass
/// through as empty tokens so the downstream ALU can treat them as zeros.
#[derive(Debug)]
pub struct ValArray {
    name: String,
    vals: Arc<Vec<f64>>,
    in_ref: ChannelId,
    out_val: ChannelId,
    done: bool,
}

impl ValArray {
    /// Creates a value-load array over `vals`.
    pub fn new(name: impl Into<String>, vals: Arc<Vec<f64>>, in_ref: ChannelId, out_val: ChannelId) -> Self {
        ValArray { name: name.into(), vals, in_ref, out_val, done: false }
    }
}

impl Block for ValArray {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        if !ctx.can_push(self.out_val) {
            return BlockStatus::Busy;
        }
        let Some(t) = ctx.peek(self.in_ref).cloned() else {
            return BlockStatus::Busy;
        };
        ctx.pop(self.in_ref);
        match t {
            Token::Val(p) => {
                let r = p.expect_ref() as usize;
                assert!(r < self.vals.len(), "reference {r} out of bounds for values array `{}`", self.name);
                ctx.push(self.out_val, tok::val(self.vals[r]));
                BlockStatus::Busy
            }
            Token::Empty => {
                ctx.push(self.out_val, tok::empty());
                BlockStatus::Busy
            }
            Token::Stop(n) => {
                ctx.push(self.out_val, tok::stop(n));
                BlockStatus::Busy
            }
            Token::Done => {
                ctx.push(self.out_val, tok::done());
                self.done = true;
                BlockStatus::Done
            }
        }
    }
}

/// The locator block (Definition 4.1): iterate-locate intersection.
///
/// For each input `(coordinate, reference)` pair the locator looks the
/// coordinate up in its bound level within the fiber named by the reference.
/// When present it emits the coordinate, the pass-through reference and the
/// located child reference; when absent it emits empty tokens on all three
/// outputs so downstream streams stay aligned.
#[derive(Debug)]
pub struct Locator {
    name: String,
    level: Arc<Level>,
    in_crd: ChannelId,
    in_ref: ChannelId,
    out_crd: ChannelId,
    out_ref_pass: ChannelId,
    out_ref_located: ChannelId,
    done: bool,
}

impl Locator {
    /// Creates a locator over `level`.
    pub fn new(
        name: impl Into<String>,
        level: Arc<Level>,
        in_crd: ChannelId,
        in_ref: ChannelId,
        out_crd: ChannelId,
        out_ref_pass: ChannelId,
        out_ref_located: ChannelId,
    ) -> Self {
        Locator {
            name: name.into(),
            level,
            in_crd,
            in_ref,
            out_crd,
            out_ref_pass,
            out_ref_located,
            done: false,
        }
    }

    fn emit_all(&self, ctx: &mut Context, t: sam_sim::SimToken) {
        ctx.push(self.out_crd, t);
        ctx.push(self.out_ref_pass, t);
        ctx.push(self.out_ref_located, t);
    }
}

impl Block for Locator {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        if !(ctx.can_push(self.out_crd)
            && ctx.can_push(self.out_ref_pass)
            && ctx.can_push(self.out_ref_located))
        {
            return BlockStatus::Busy;
        }
        let (Some(c), Some(r)) = (ctx.peek(self.in_crd).cloned(), ctx.peek(self.in_ref).cloned()) else {
            return BlockStatus::Busy;
        };
        match (c, r) {
            (Token::Val(pc), Token::Val(pr)) => {
                ctx.pop(self.in_crd);
                ctx.pop(self.in_ref);
                let coord = pc.expect_crd();
                let fiber = pr.expect_ref() as usize;
                match self.level.locate(fiber, coord) {
                    Some(child) => {
                        ctx.push(self.out_crd, tok::crd(coord));
                        ctx.push(self.out_ref_pass, tok::rf(fiber as u32));
                        ctx.push(self.out_ref_located, tok::rf(child as u32));
                    }
                    None => {
                        self.emit_all(ctx, tok::empty());
                    }
                }
                BlockStatus::Busy
            }
            (Token::Empty, _) | (_, Token::Empty) => {
                ctx.pop(self.in_crd);
                ctx.pop(self.in_ref);
                self.emit_all(ctx, tok::empty());
                BlockStatus::Busy
            }
            (Token::Stop(nc), Token::Stop(nr)) => {
                debug_assert_eq!(nc, nr, "locator inputs must have matching structure");
                ctx.pop(self.in_crd);
                ctx.pop(self.in_ref);
                self.emit_all(ctx, tok::stop(nc.max(nr)));
                BlockStatus::Busy
            }
            (Token::Done, Token::Done) => {
                ctx.pop(self.in_crd);
                ctx.pop(self.in_ref);
                self.emit_all(ctx, tok::done());
                self.done = true;
                BlockStatus::Done
            }
            _ => BlockStatus::Busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_sim::payload::Payload;
    use sam_sim::{SimToken, Simulator};
    use sam_tensor::level::{CompressedLevel, DenseLevel};

    fn vals(tokens: &[SimToken]) -> Vec<f64> {
        tokens.iter().filter_map(|t| t.value_ref().map(|p| p.expect_val())).collect()
    }

    #[test]
    fn val_array_loads_and_passes_controls() {
        let mut sim = Simulator::new();
        let r = sim.add_channel("ref");
        let v = sim.add_channel("val");
        sim.record(v);
        sim.add_block(Box::new(ValArray::new("B_vals", Arc::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]), r, v)));
        sim.preload(r, vec![tok::rf(4), tok::rf(0), Token::Empty, tok::stop(1), tok::done()]);
        sim.run(100).unwrap();
        assert_eq!(vals(sim.history(v)), vec![5.0, 1.0]);
        assert_eq!(sim.history(v).iter().filter(|t| t.is_empty_token()).count(), 1);
        assert_eq!(sim.history(v).iter().filter(|t| t.stop_level() == Some(1)).count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn val_array_rejects_bad_reference() {
        let mut sim = Simulator::new();
        let r = sim.add_channel("ref");
        let v = sim.add_channel("val");
        sim.add_block(Box::new(ValArray::new("B", Arc::new(vec![1.0]), r, v)));
        sim.preload(r, vec![tok::rf(7), tok::done()]);
        let _ = sim.run(100);
    }

    #[test]
    fn locator_finds_coordinates_in_dense_level() {
        // Locating into a dense vector always succeeds (SpMV use case).
        let level = Arc::new(Level::Dense(DenseLevel::new(10, 1)));
        let mut sim = Simulator::new();
        let c = sim.add_channel("crd");
        let r = sim.add_channel("ref");
        let oc = sim.add_channel("out_crd");
        let op = sim.add_channel("out_pass");
        let ol = sim.add_channel("out_loc");
        sim.record(ol);
        sim.add_block(Box::new(Locator::new("loc", level, c, r, oc, op, ol)));
        sim.preload(c, vec![tok::crd(3), tok::crd(7), tok::stop(0), tok::done()]);
        sim.preload(r, vec![tok::rf(0), tok::rf(0), tok::stop(0), tok::done()]);
        sim.run(100).unwrap();
        let located: Vec<u32> =
            sim.history(ol).iter().filter_map(|t| t.value_ref().map(|p| p.expect_ref())).collect();
        assert_eq!(located, vec![3, 7]);
    }

    #[test]
    fn locator_emits_empty_on_miss() {
        let level = Arc::new(Level::Compressed(CompressedLevel::new(8, vec![0, 2], vec![1, 5])));
        let mut sim = Simulator::new();
        let c = sim.add_channel("crd");
        let r = sim.add_channel("ref");
        let oc = sim.add_channel("out_crd");
        let op = sim.add_channel("out_pass");
        let ol = sim.add_channel("out_loc");
        sim.record(oc);
        sim.record(ol);
        sim.add_block(Box::new(Locator::new("loc", level, c, r, oc, op, ol)));
        sim.preload(c, vec![tok::crd(1), tok::crd(3), tok::crd(5), tok::stop(0), tok::done()]);
        sim.preload(r, vec![tok::rf(0), tok::rf(0), tok::rf(0), tok::stop(0), tok::done()]);
        sim.run(100).unwrap();
        let located: Vec<u32> =
            sim.history(ol).iter().filter_map(|t| t.value_ref().map(|p| p.expect_ref())).collect();
        assert_eq!(located, vec![0, 1]);
        assert_eq!(sim.history(oc).iter().filter(|t| t.is_empty_token()).count(), 1);
        assert_eq!(sim.history(ol).iter().filter(|t| t.is_empty_token()).count(), 1);
    }

    #[test]
    fn locator_with_payload_checks() {
        // Crd payload check via Payload::Crd round-trip.
        assert_eq!(Payload::Crd(9).expect_crd(), 9);
    }
}
