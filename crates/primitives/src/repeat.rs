//! The repeater block: broadcasting operands across index variables
//! (paper Definition 3.4, Figures 4 and 6).

use sam_sim::payload::tok;
use sam_sim::{Block, BlockStatus, ChannelId, Context, SimToken};
use sam_streams::Token;

/// Repeats each reference of the input reference stream once for every data
/// token of the corresponding fiber of the input coordinate stream.
///
/// The output reference stream mirrors the fiber structure of the input
/// coordinate stream: data tokens are replaced by the current reference and
/// control tokens pass through. Stop tokens on the input *reference* stream
/// are redundant with the coordinate stream's higher-level stops and are
/// absorbed.
///
/// ```text
///  in_crd:  D, S0, 9, 8, 6, 2, 0      (the vector b in Figure 6)
///  in_ref:  D, 0                       (the scalar c's root reference)
///  out_ref: D, S0, 0, 0, 0, 0, 0
/// ```
#[derive(Debug)]
pub struct Repeater {
    name: String,
    in_crd: ChannelId,
    in_ref: ChannelId,
    out_ref: ChannelId,
    current: Option<SimToken>,
    in_ref_done: bool,
    done: bool,
}

impl Repeater {
    /// Creates a repeater.
    pub fn new(name: impl Into<String>, in_crd: ChannelId, in_ref: ChannelId, out_ref: ChannelId) -> Self {
        Repeater {
            name: name.into(),
            in_crd,
            in_ref,
            out_ref,
            current: None,
            in_ref_done: false,
            done: false,
        }
    }
}

impl Block for Repeater {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        if !ctx.can_push(self.out_ref) {
            return BlockStatus::Busy;
        }
        // Fetch the next reference to repeat when none is held.
        if self.current.is_none() && !self.in_ref_done {
            if let Some(t) = ctx.peek(self.in_ref).cloned() {
                match t {
                    Token::Val(_) | Token::Empty => {
                        ctx.pop(self.in_ref);
                        self.current = Some(t);
                    }
                    Token::Stop(_) => {
                        // Redundant with the coordinate stream's hierarchy.
                        ctx.pop(self.in_ref);
                    }
                    Token::Done => {
                        ctx.pop(self.in_ref);
                        self.in_ref_done = true;
                    }
                }
            }
        }
        // Drive the output from the coordinate stream.
        let Some(head) = ctx.peek(self.in_crd).cloned() else {
            return BlockStatus::Busy;
        };
        match head {
            Token::Val(_) => {
                let Some(current) = self.current else {
                    // Wait for the reference to arrive.
                    return BlockStatus::Busy;
                };
                ctx.pop(self.in_crd);
                ctx.push(self.out_ref, current);
                BlockStatus::Busy
            }
            Token::Empty => {
                // An empty coordinate slot repeats nothing.
                ctx.pop(self.in_crd);
                ctx.push(self.out_ref, tok::empty());
                BlockStatus::Busy
            }
            Token::Stop(n) => {
                ctx.pop(self.in_crd);
                ctx.push(self.out_ref, tok::stop(n));
                // The next fiber repeats the next reference.
                self.current = None;
                BlockStatus::Busy
            }
            Token::Done => {
                ctx.pop(self.in_crd);
                ctx.push(self.out_ref, tok::done());
                // Drain whatever remains of the reference stream.
                while let Some(t) = ctx.peek(self.in_ref) {
                    let finished = t.is_done();
                    ctx.pop(self.in_ref);
                    if finished {
                        break;
                    }
                }
                self.done = true;
                BlockStatus::Done
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_sim::payload::Payload;
    use sam_sim::Simulator;

    fn to_paper(tokens: &[SimToken]) -> String {
        let mut parts: Vec<String> = tokens
            .iter()
            .map(|t| match t {
                Token::Val(Payload::Ref(r)) => r.to_string(),
                Token::Val(Payload::Crd(c)) => c.to_string(),
                Token::Val(p) => p.to_string(),
                Token::Stop(n) => format!("S{n}"),
                Token::Empty => "N".to_string(),
                Token::Done => "D".to_string(),
            })
            .collect();
        parts.reverse();
        parts.join(", ")
    }

    #[test]
    fn figure6_scalar_broadcast() {
        let mut sim = Simulator::new();
        let crd = sim.add_channel("b_crd");
        let rf = sim.add_channel("c_root");
        let out = sim.add_channel("out");
        sim.record(out);
        sim.add_block(Box::new(Repeater::new("rep", crd, rf, out)));
        sim.preload(
            crd,
            vec![tok::crd(0), tok::crd(2), tok::crd(6), tok::crd(8), tok::crd(9), tok::stop(0), tok::done()],
        );
        sim.preload(rf, vec![tok::rf(0), tok::done()]);
        sim.run(100).unwrap();
        assert_eq!(to_paper(sim.history(out)), "D, S0, 0, 0, 0, 0, 0");
    }

    #[test]
    fn one_ref_per_fiber() {
        // Two fibers of coordinates, two references: each reference is
        // repeated once per coordinate of its fiber.
        let mut sim = Simulator::new();
        let crd = sim.add_channel("crd");
        let rf = sim.add_channel("ref");
        let out = sim.add_channel("out");
        sim.record(out);
        sim.add_block(Box::new(Repeater::new("rep", crd, rf, out)));
        sim.preload(
            crd,
            vec![tok::crd(1), tok::crd(3), tok::stop(0), tok::crd(0), tok::stop(1), tok::done()],
        );
        sim.preload(rf, vec![tok::rf(7), tok::rf(9), tok::stop(0), tok::done()]);
        sim.run(100).unwrap();
        assert_eq!(to_paper(sim.history(out)), "D, S1, 9, S0, 7, 7");
    }

    #[test]
    fn empty_fiber_repeats_zero_times() {
        let mut sim = Simulator::new();
        let crd = sim.add_channel("crd");
        let rf = sim.add_channel("ref");
        let out = sim.add_channel("out");
        sim.record(out);
        sim.add_block(Box::new(Repeater::new("rep", crd, rf, out)));
        // Middle fiber is empty: its reference is dropped.
        sim.preload(
            crd,
            vec![tok::crd(1), tok::stop(0), tok::stop(0), tok::crd(2), tok::stop(1), tok::done()],
        );
        sim.preload(rf, vec![tok::rf(5), tok::rf(6), tok::rf(7), tok::stop(0), tok::done()]);
        sim.run(100).unwrap();
        assert_eq!(to_paper(sim.history(out)), "D, S1, 7, S0, S0, 5");
    }

    #[test]
    fn empty_reference_is_broadcast_as_empty() {
        let mut sim = Simulator::new();
        let crd = sim.add_channel("crd");
        let rf = sim.add_channel("ref");
        let out = sim.add_channel("out");
        sim.record(out);
        sim.add_block(Box::new(Repeater::new("rep", crd, rf, out)));
        sim.preload(crd, vec![tok::crd(0), tok::crd(1), tok::stop(0), tok::done()]);
        sim.preload(rf, vec![tok::empty(), tok::done()]);
        sim.run(100).unwrap();
        let empties = sim.history(out).iter().filter(|t| t.is_empty_token()).count();
        assert_eq!(empties, 2);
    }
}
