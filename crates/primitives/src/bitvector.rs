//! Bitvector stream blocks (paper Section 4.3).
//!
//! Bitvectors trade asymptotic efficiency for implicit parallelism: an
//! `n`-bit word covering `n` coordinates is processed in a single cycle.
//! This module provides the bitvector level scanner, the coordinate-to-
//! bitvector converter, a word-wise intersecter, and vectorized value units
//! for the element-wise vector-multiply study of Figure 13 (flat bitvector
//! and two-level bit-tree variants).

use sam_sim::payload::{tok, Payload};
use sam_sim::{Block, BlockStatus, ChannelId, Context};
use sam_streams::{BitVec, Token};
use sam_tensor::level::BitvectorLevel;
use std::sync::{Arc, Mutex};

/// Scans a [`BitvectorLevel`], emitting one bitvector word per cycle plus a
/// reference stream of popcount-summed base positions (Section 4.3).
#[derive(Debug)]
pub struct BitvectorScanner {
    name: String,
    level: Arc<BitvectorLevel>,
    in_ref: ChannelId,
    out_bits: ChannelId,
    out_ref: ChannelId,
    current: Option<(usize, usize, usize)>, // (fiber, next word index, running rank)
    done: bool,
}

impl BitvectorScanner {
    /// Creates a bitvector level scanner.
    pub fn new(
        name: impl Into<String>,
        level: Arc<BitvectorLevel>,
        in_ref: ChannelId,
        out_bits: ChannelId,
        out_ref: ChannelId,
    ) -> Self {
        BitvectorScanner { name: name.into(), level, in_ref, out_bits, out_ref, current: None, done: false }
    }
}

impl Block for BitvectorScanner {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        if !(ctx.can_push(self.out_bits) && ctx.can_push(self.out_ref)) {
            return BlockStatus::Busy;
        }
        if let Some((fiber, word_idx, rank)) = self.current {
            let words = self.level.fiber_words(fiber);
            if word_idx < words.len() {
                let word = words[word_idx];
                let bv = BitVec {
                    base: (word_idx * self.level.word_width as usize) as u32,
                    width: self.level.word_width,
                    bits: word,
                };
                ctx.push(self.out_bits, tok::bits(bv));
                ctx.push(self.out_ref, tok::rf(rank as u32));
                self.current = Some((fiber, word_idx + 1, rank + word.count_ones() as usize));
            } else {
                ctx.push(self.out_bits, tok::stop(0));
                ctx.push(self.out_ref, tok::stop(0));
                self.current = None;
            }
            return BlockStatus::Busy;
        }
        let Some(t) = ctx.peek(self.in_ref).cloned() else {
            return BlockStatus::Busy;
        };
        ctx.pop(self.in_ref);
        match t {
            Token::Val(p) => {
                let fiber = p.expect_ref() as usize;
                self.current = Some((fiber, 0, self.level.fiber_rank_base(fiber)));
                BlockStatus::Busy
            }
            Token::Empty => {
                ctx.push(self.out_bits, tok::stop(0));
                ctx.push(self.out_ref, tok::stop(0));
                BlockStatus::Busy
            }
            Token::Stop(n) => {
                ctx.push(self.out_bits, tok::stop(n + 1));
                ctx.push(self.out_ref, tok::stop(n + 1));
                BlockStatus::Busy
            }
            Token::Done => {
                ctx.push(self.out_bits, tok::done());
                ctx.push(self.out_ref, tok::done());
                self.done = true;
                BlockStatus::Done
            }
        }
    }
}

/// Converts a coordinate stream into a bitvector stream by packing `width`
/// coordinates per emitted word (Definition 4.2).
#[derive(Debug)]
pub struct BitvectorConverter {
    name: String,
    width: u8,
    in_crd: ChannelId,
    out_bits: ChannelId,
    current: Option<BitVec>,
    pending: std::collections::VecDeque<sam_sim::SimToken>,
    done: bool,
}

impl BitvectorConverter {
    /// Creates a converter producing words of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics when `width` is zero or exceeds 64.
    pub fn new(name: impl Into<String>, width: u8, in_crd: ChannelId, out_bits: ChannelId) -> Self {
        assert!(width > 0 && width <= 64, "bitvector width must be in 1..=64");
        BitvectorConverter {
            name: name.into(),
            width,
            in_crd,
            out_bits,
            current: None,
            pending: Default::default(),
            done: false,
        }
    }

    fn flush_current(&mut self) {
        if let Some(bv) = self.current.take() {
            self.pending.push_back(tok::bits(bv));
        }
    }
}

impl Block for BitvectorConverter {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done && self.pending.is_empty() {
            return BlockStatus::Done;
        }
        if !ctx.can_push(self.out_bits) {
            return BlockStatus::Busy;
        }
        if let Some(t) = self.pending.pop_front() {
            ctx.push(self.out_bits, t);
            return if self.done && self.pending.is_empty() { BlockStatus::Done } else { BlockStatus::Busy };
        }
        let Some(t) = ctx.peek(self.in_crd).cloned() else {
            return BlockStatus::Busy;
        };
        ctx.pop(self.in_crd);
        match t {
            Token::Val(p) => {
                let c = p.expect_crd();
                let base = (c / self.width as u32) * self.width as u32;
                match &mut self.current {
                    Some(bv) if bv.base == base => {
                        bv.bits |= 1 << (c - base);
                    }
                    _ => {
                        self.flush_current();
                        self.current = Some(BitVec::from_coords(base, self.width, [c]));
                    }
                }
                BlockStatus::Busy
            }
            Token::Empty => BlockStatus::Busy,
            Token::Stop(n) => {
                self.flush_current();
                self.pending.push_back(tok::stop(n));
                BlockStatus::Busy
            }
            Token::Done => {
                self.flush_current();
                self.pending.push_back(tok::done());
                self.done = true;
                BlockStatus::Busy
            }
        }
    }
}

/// Word-wise bitvector intersecter: ANDs aligned words from two bitvector
/// streams, passing each operand's base-rank reference through for value
/// gathering.
#[derive(Debug)]
pub struct BitvectorIntersecter {
    name: String,
    in_bits: [ChannelId; 2],
    in_ref: [ChannelId; 2],
    out_bits: ChannelId,
    out_pairs: ChannelId,
    done: bool,
}

impl BitvectorIntersecter {
    /// Creates a bitvector intersecter. `out_pairs` carries, for each word,
    /// first operand 0's word/ref pair then operand 1's (two tokens per
    /// intersected word are not needed — the intersected word plus both base
    /// ranks are folded into the [`BitvectorVecMul`] block in this
    /// implementation, so `out_pairs` carries operand 0's base rank followed
    /// by operand 1's on alternating cycles).
    pub fn new(
        name: impl Into<String>,
        in_bits: [ChannelId; 2],
        in_ref: [ChannelId; 2],
        out_bits: ChannelId,
        out_pairs: ChannelId,
    ) -> Self {
        BitvectorIntersecter { name: name.into(), in_bits, in_ref, out_bits, out_pairs, done: false }
    }
}

impl Block for BitvectorIntersecter {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        if !(ctx.can_push(self.out_bits) && ctx.can_push(self.out_pairs)) {
            return BlockStatus::Busy;
        }
        let (Some(a), Some(b)) = (ctx.peek(self.in_bits[0]).cloned(), ctx.peek(self.in_bits[1]).cloned())
        else {
            return BlockStatus::Busy;
        };
        match (a, b) {
            (Token::Val(pa), Token::Val(pb)) => {
                ctx.pop(self.in_bits[0]);
                ctx.pop(self.in_bits[1]);
                let ra = ctx.pop(self.in_ref[0]).expect("aligned refs");
                let rb = ctx.pop(self.in_ref[1]).expect("aligned refs");
                let word = pa.expect_bits().intersect(&pb.expect_bits());
                ctx.push(self.out_bits, tok::bits(word));
                // Fold both base ranks into one token pair on the pairs
                // stream (ranks fit in 16 bits each for the studied sizes).
                let base_a = ra.value().map(|p| p.expect_ref()).unwrap_or(0);
                let base_b = rb.value().map(|p| p.expect_ref()).unwrap_or(0);
                ctx.push(self.out_pairs, tok::rf((base_a << 16) | (base_b & 0xFFFF)));
                BlockStatus::Busy
            }
            (Token::Stop(na), Token::Stop(_)) => {
                ctx.pop(self.in_bits[0]);
                ctx.pop(self.in_bits[1]);
                ctx.pop(self.in_ref[0]);
                ctx.pop(self.in_ref[1]);
                ctx.push(self.out_bits, tok::stop(na));
                ctx.push(self.out_pairs, tok::stop(na));
                BlockStatus::Busy
            }
            (Token::Done, Token::Done) => {
                ctx.pop(self.in_bits[0]);
                ctx.pop(self.in_bits[1]);
                ctx.pop(self.in_ref[0]);
                ctx.pop(self.in_ref[1]);
                ctx.push(self.out_bits, tok::done());
                ctx.push(self.out_pairs, tok::done());
                self.done = true;
                BlockStatus::Done
            }
            _ => BlockStatus::Busy,
        }
    }
}

/// Shared sink collecting `(coordinate, value)` results from the vectorized
/// bitvector value units.
pub type BitResultSink = Arc<Mutex<Vec<(u32, f64)>>>;

/// Creates an empty bitvector result sink.
pub fn bit_result_sink() -> BitResultSink {
    Arc::new(Mutex::new(Vec::new()))
}

/// Vectorized element-wise multiply over an intersected bitvector stream:
/// each cycle one word is processed, with all of its lanes' value reads,
/// multiplies and writes happening in parallel (the implicit-parallelism
/// advantage the paper ascribes to bitvectors).
#[derive(Debug)]
pub struct BitvectorVecMul {
    name: String,
    vals_a: Arc<Vec<f64>>,
    vals_b: Arc<Vec<f64>>,
    level_a: Arc<BitvectorLevel>,
    level_b: Arc<BitvectorLevel>,
    in_bits: ChannelId,
    sink: BitResultSink,
    done: bool,
}

impl BitvectorVecMul {
    /// Creates the vectorized multiply unit. Word-local ranks are recomputed
    /// from the operand levels, modelling per-lane popcount logic.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        level_a: Arc<BitvectorLevel>,
        level_b: Arc<BitvectorLevel>,
        vals_a: Arc<Vec<f64>>,
        vals_b: Arc<Vec<f64>>,
        in_bits: ChannelId,
        sink: BitResultSink,
    ) -> Self {
        BitvectorVecMul { name: name.into(), vals_a, vals_b, level_a, level_b, in_bits, sink, done: false }
    }
}

impl Block for BitvectorVecMul {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        let Some(t) = ctx.peek(self.in_bits).cloned() else {
            return BlockStatus::Busy;
        };
        ctx.pop(self.in_bits);
        match t {
            Token::Val(Payload::Bits(word)) => {
                let mut out = self.sink.lock().expect("poisoned sink");
                for c in word.iter_coords() {
                    let (Some(ra), Some(rb)) =
                        (self.level_a.locate_in_fiber0(c), self.level_b.locate_in_fiber0(c))
                    else {
                        continue;
                    };
                    out.push((c, self.vals_a[ra] * self.vals_b[rb]));
                }
                BlockStatus::Busy
            }
            Token::Val(other) => panic!("bitvector multiply expected bits, found {other:?}"),
            Token::Empty | Token::Stop(_) => BlockStatus::Busy,
            Token::Done => {
                self.done = true;
                BlockStatus::Done
            }
        }
    }
}

/// Two-level bit-tree element-wise multiply (the paper's "BV w/ split"):
/// an outer occupancy word gates which inner words are fetched and
/// intersected, so fully empty regions cost a single outer-word cycle.
///
/// The block is self-contained: it owns both operands' bit-tree data and
/// walks them one word per cycle, which keeps the model cycle-faithful while
/// avoiding a bespoke multi-protocol stream wiring.
#[derive(Debug)]
pub struct BitTreeVecMul {
    name: String,
    level_a: Arc<BitvectorLevel>,
    level_b: Arc<BitvectorLevel>,
    vals_a: Arc<Vec<f64>>,
    vals_b: Arc<Vec<f64>>,
    out_progress: ChannelId,
    sink: BitResultSink,
    /// Inner word indices that survive the outer intersection.
    work_list: Option<std::collections::VecDeque<usize>>,
    outer_words_processed: usize,
    done: bool,
}

impl BitTreeVecMul {
    /// Creates the bit-tree multiply unit over two single-fiber bitvector
    /// levels. `out_progress` receives one value token per processed word
    /// (the number of products produced that cycle) and a final done token.
    pub fn new(
        name: impl Into<String>,
        level_a: Arc<BitvectorLevel>,
        level_b: Arc<BitvectorLevel>,
        vals_a: Arc<Vec<f64>>,
        vals_b: Arc<Vec<f64>>,
        out_progress: ChannelId,
        sink: BitResultSink,
    ) -> Self {
        BitTreeVecMul {
            name: name.into(),
            level_a,
            level_b,
            vals_a,
            vals_b,
            out_progress,
            sink,
            work_list: None,
            outer_words_processed: 0,
            done: false,
        }
    }
}

impl Block for BitTreeVecMul {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        if !ctx.can_push(self.out_progress) {
            return BlockStatus::Busy;
        }
        match &mut self.work_list {
            None => {
                // Build the outer level: one bit per inner word, then
                // intersect. Each 64 inner words cost one outer-word cycle;
                // count them all in this state by charging cycles lazily.
                let wa = self.level_a.fiber_words(0);
                let wb = self.level_b.fiber_words(0);
                let n = wa.len().max(wb.len());
                let outer_words = n.div_ceil(64).max(1);
                if self.outer_words_processed + 1 < outer_words {
                    self.outer_words_processed += 1;
                    ctx.push(self.out_progress, tok::val(0.0));
                    return BlockStatus::Busy;
                }
                ctx.push(self.out_progress, tok::val(0.0));
                let mut work = std::collections::VecDeque::new();
                for i in 0..n {
                    let a = wa.get(i).copied().unwrap_or(0);
                    let b = wb.get(i).copied().unwrap_or(0);
                    if a != 0 && b != 0 {
                        work.push_back(i);
                    }
                }
                self.work_list = Some(work);
                BlockStatus::Busy
            }
            Some(work) => {
                if let Some(word_idx) = work.pop_front() {
                    let a = self.level_a.fiber_words(0)[word_idx];
                    let b = self.level_b.fiber_words(0)[word_idx];
                    let both = a & b;
                    let mut produced = 0u32;
                    if both != 0 {
                        let width = self.level_a.word_width as usize;
                        let mut out = self.sink.lock().expect("poisoned sink");
                        for bit in 0..width {
                            if (both >> bit) & 1 == 1 {
                                let c = (word_idx * width + bit) as u32;
                                if let (Some(ra), Some(rb)) =
                                    (self.level_a.locate_in_fiber0(c), self.level_b.locate_in_fiber0(c))
                                {
                                    out.push((c, self.vals_a[ra] * self.vals_b[rb]));
                                    produced += 1;
                                }
                            }
                        }
                    }
                    ctx.push(self.out_progress, tok::val(produced as f64));
                    BlockStatus::Busy
                } else {
                    ctx.push(self.out_progress, tok::done());
                    self.done = true;
                    BlockStatus::Done
                }
            }
        }
    }
}

/// Extension trait used by the vectorized value units: locate a coordinate
/// within fiber 0 of a bitvector level.
trait LocateFiber0 {
    fn locate_in_fiber0(&self, coord: u32) -> Option<usize>;
}

impl LocateFiber0 for BitvectorLevel {
    fn locate_in_fiber0(&self, coord: u32) -> Option<usize> {
        sam_tensor::level::Level::Bitvector(self.clone()).locate(0, coord)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_sim::Simulator;

    fn bv_level(coords: &[u32], dim: usize) -> Arc<BitvectorLevel> {
        Arc::new(BitvectorLevel::from_fibers(dim, 64, &[coords.to_vec()]))
    }

    #[test]
    fn bitvector_scanner_emits_words_and_ranks() {
        // Coordinates 0, 2, 6, 8, 9 over dimension 12 with 4-bit words:
        // words 0101, 0100, 0011 and popcount-summed refs 0, 2, 3 (paper
        // Section 4.3 example).
        let level = Arc::new(BitvectorLevel::from_fibers(12, 4, &[vec![0, 2, 6, 8, 9]]));
        let mut sim = Simulator::new();
        let root = sim.add_channel("root");
        let bits = sim.add_channel("bits");
        let refs = sim.add_channel("refs");
        sim.record(bits);
        sim.record(refs);
        sim.add_block(Box::new(BitvectorScanner::new("bv", level, root, bits, refs)));
        sim.preload(root, crate::source::root_stream());
        sim.run(100).unwrap();
        let words: Vec<u64> =
            sim.history(bits).iter().filter_map(|t| t.value_ref().map(|p| p.expect_bits().bits)).collect();
        assert_eq!(words, vec![0b0101, 0b0100, 0b0011]);
        let ranks: Vec<u32> =
            sim.history(refs).iter().filter_map(|t| t.value_ref().map(|p| p.expect_ref())).collect();
        assert_eq!(ranks, vec![0, 2, 3]);
    }

    #[test]
    fn converter_packs_coordinates() {
        let mut sim = Simulator::new();
        let crd = sim.add_channel("crd");
        let bits = sim.add_channel("bits");
        sim.record(bits);
        sim.add_block(Box::new(BitvectorConverter::new("conv", 4, crd, bits)));
        sim.preload(crd, vec![tok::crd(0), tok::crd(2), tok::crd(6), tok::stop(0), tok::done()]);
        sim.run(100).unwrap();
        let words: Vec<u64> =
            sim.history(bits).iter().filter_map(|t| t.value_ref().map(|p| p.expect_bits().bits)).collect();
        assert_eq!(words, vec![0b0101, 0b0100]);
    }

    #[test]
    fn bitvector_intersect_and_vectorized_multiply() {
        let la = bv_level(&[0, 2, 5], 8);
        let lb = bv_level(&[2, 3, 5], 8);
        let va = Arc::new(vec![10.0, 20.0, 30.0]);
        let vb = Arc::new(vec![1.0, 2.0, 3.0]);
        let mut sim = Simulator::new();
        let root_a = sim.add_channel("root_a");
        let root_b = sim.add_channel("root_b");
        let bits_a = sim.add_channel("bits_a");
        let refs_a = sim.add_channel("refs_a");
        let bits_b = sim.add_channel("bits_b");
        let refs_b = sim.add_channel("refs_b");
        let inter = sim.add_channel("intersected");
        let pairs = sim.add_channel("pairs");
        let sink = bit_result_sink();
        sim.add_block(Box::new(BitvectorScanner::new("a", la.clone(), root_a, bits_a, refs_a)));
        sim.add_block(Box::new(BitvectorScanner::new("b", lb.clone(), root_b, bits_b, refs_b)));
        sim.add_block(Box::new(BitvectorIntersecter::new(
            "int",
            [bits_a, bits_b],
            [refs_a, refs_b],
            inter,
            pairs,
        )));
        sim.add_block(Box::new(BitvectorVecMul::new("mul", la, lb, va, vb, inter, sink.clone())));
        sim.preload(root_a, crate::source::root_stream());
        sim.preload(root_b, crate::source::root_stream());
        let report = sim.run(1000).unwrap();
        let mut results = sink.lock().unwrap().clone();
        results.sort_by_key(|(c, _)| *c);
        assert_eq!(results, vec![(2, 20.0 * 1.0), (5, 30.0 * 3.0)]);
        // One 64-bit word covers the whole dimension: a handful of cycles.
        assert!(report.cycles < 20, "cycles = {}", report.cycles);
    }

    #[test]
    fn bit_tree_skips_empty_regions() {
        // 2000-wide vectors whose nonzeros live in one narrow block: the
        // bit-tree visits only the overlapping inner words.
        let coords: Vec<u32> = (100..140).collect();
        let la = bv_level(&coords, 2000);
        let lb = bv_level(&coords, 2000);
        let vals: Arc<Vec<f64>> = Arc::new(coords.iter().map(|_| 2.0).collect());
        let sink = bit_result_sink();
        let mut sim = Simulator::new();
        let progress = sim.add_channel("progress");
        sim.add_block(Box::new(BitTreeVecMul::new("bt", la, lb, vals.clone(), vals, progress, sink.clone())));
        let report = sim.run(1000).unwrap();
        assert_eq!(sink.lock().unwrap().len(), 40);
        // 32 inner words exist but only ~2 overlap the block; plus one outer word.
        assert!(report.cycles < 10, "cycles = {}", report.cycles);
    }
}
