//! Stream merging: intersection, union and coarse-grained fork/join
//! (paper Definitions 3.2 and 3.3, Section 4.4).

use sam_sim::payload::tok;
use sam_sim::{Block, BlockStatus, ChannelId, Context, SimToken};
use sam_streams::Token;

/// A binary coordinate intersecter (Definition 3.2).
///
/// Two pairs of coordinate and reference streams enter; one coordinate stream
/// and two reference streams leave. A coordinate (with both operands'
/// references) is emitted only when both inputs carry it. Intersection uses a
/// two-finger merge: each cycle at most one token is consumed from each
/// input.
///
/// With skip channels connected (Section 4.2), a mismatch sends the larger
/// coordinate back to the trailing operand's level scanner so it can gallop
/// forward. Skip requests are *epoch-tagged*: each is the token pair
/// `Ref(epoch), Crd(target)` where the epoch counts the stop tokens this
/// block has consumed from that operand — i.e. which fiber the request is
/// about. The scanner drops requests whose fiber already closed, which is
/// what keeps skipping sound on multi-fiber streams (see
/// [`crate::LevelScanner`]).
#[derive(Debug)]
pub struct Intersecter {
    name: String,
    in_crd: [ChannelId; 2],
    in_ref: [ChannelId; 2],
    out_crd: ChannelId,
    out_ref: [ChannelId; 2],
    skip_out: [Option<ChannelId>; 2],
    /// Stop tokens consumed per operand — the skip epoch.
    stops: [u32; 2],
    done: bool,
}

impl Intersecter {
    /// Creates a binary intersecter.
    pub fn new(
        name: impl Into<String>,
        in_crd: [ChannelId; 2],
        in_ref: [ChannelId; 2],
        out_crd: ChannelId,
        out_ref: [ChannelId; 2],
    ) -> Self {
        Intersecter {
            name: name.into(),
            in_crd,
            in_ref,
            out_crd,
            out_ref,
            skip_out: [None, None],
            stops: [0, 0],
            done: false,
        }
    }

    /// Connects coordinate-skip feedback channels towards the two operands'
    /// level scanners.
    pub fn with_skip(self, skip_out: [ChannelId; 2]) -> Self {
        self.with_skip_lanes([Some(skip_out[0]), Some(skip_out[1])])
    }

    /// Connects coordinate-skip feedback lanes individually; `None` leaves
    /// that operand without skip feedback. Used by the `sam-exec` cycle
    /// backend, which lowers whatever subset of skip edges the graph wires.
    pub fn with_skip_lanes(mut self, skip_out: [Option<ChannelId>; 2]) -> Self {
        self.skip_out = skip_out;
        self
    }

    fn emit_all(&self, ctx: &mut Context, t: SimToken) {
        ctx.push(self.out_crd, t);
        ctx.push(self.out_ref[0], t);
        ctx.push(self.out_ref[1], t);
    }
}

impl Block for Intersecter {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        if !(ctx.can_push(self.out_crd) && ctx.can_push(self.out_ref[0]) && ctx.can_push(self.out_ref[1])) {
            return BlockStatus::Busy;
        }
        let (Some(a), Some(b)) = (ctx.peek(self.in_crd[0]).cloned(), ctx.peek(self.in_crd[1]).cloned())
        else {
            return BlockStatus::Busy;
        };
        match (a, b) {
            (Token::Val(pa), Token::Val(pb)) => {
                let ca = pa.expect_crd();
                let cb = pb.expect_crd();
                if ca == cb {
                    ctx.pop(self.in_crd[0]);
                    ctx.pop(self.in_crd[1]);
                    let ra = ctx.pop(self.in_ref[0]).expect("aligned ref stream");
                    let rb = ctx.pop(self.in_ref[1]).expect("aligned ref stream");
                    ctx.push(self.out_crd, tok::crd(ca));
                    ctx.push(self.out_ref[0], ra);
                    ctx.push(self.out_ref[1], rb);
                } else if ca < cb {
                    ctx.pop(self.in_crd[0]);
                    ctx.pop(self.in_ref[0]);
                    if let Some(skip) = self.skip_out[0] {
                        // Epoch-tagged request: both tokens in one tick.
                        ctx.push(skip, tok::rf(self.stops[0]));
                        ctx.push(skip, tok::crd(cb));
                    }
                } else {
                    ctx.pop(self.in_crd[1]);
                    ctx.pop(self.in_ref[1]);
                    if let Some(skip) = self.skip_out[1] {
                        ctx.push(skip, tok::rf(self.stops[1]));
                        ctx.push(skip, tok::crd(ca));
                    }
                }
                BlockStatus::Busy
            }
            (Token::Val(_), _) | (Token::Empty, _) => {
                // The other side's fiber ended (or is missing): drain this side.
                ctx.pop(self.in_crd[0]);
                ctx.pop(self.in_ref[0]);
                BlockStatus::Busy
            }
            (_, Token::Val(_)) | (_, Token::Empty) => {
                ctx.pop(self.in_crd[1]);
                ctx.pop(self.in_ref[1]);
                BlockStatus::Busy
            }
            (Token::Stop(na), Token::Stop(nb)) => {
                debug_assert_eq!(na, nb, "intersect inputs must have matching fiber structure");
                ctx.pop(self.in_crd[0]);
                ctx.pop(self.in_crd[1]);
                ctx.pop(self.in_ref[0]);
                ctx.pop(self.in_ref[1]);
                self.stops[0] = self.stops[0].wrapping_add(1);
                self.stops[1] = self.stops[1].wrapping_add(1);
                self.emit_all(ctx, tok::stop(na.max(nb)));
                BlockStatus::Busy
            }
            (Token::Done, Token::Done) => {
                ctx.pop(self.in_crd[0]);
                ctx.pop(self.in_crd[1]);
                ctx.pop(self.in_ref[0]);
                ctx.pop(self.in_ref[1]);
                self.emit_all(ctx, tok::done());
                self.done = true;
                BlockStatus::Done
            }
            (Token::Stop(_), Token::Done) => {
                // Structurally mismatched inputs; drain the stop side.
                ctx.pop(self.in_crd[0]);
                ctx.pop(self.in_ref[0]);
                self.stops[0] = self.stops[0].wrapping_add(1);
                BlockStatus::Busy
            }
            (Token::Done, Token::Stop(_)) => {
                ctx.pop(self.in_crd[1]);
                ctx.pop(self.in_ref[1]);
                self.stops[1] = self.stops[1].wrapping_add(1);
                BlockStatus::Busy
            }
        }
    }
}

/// A binary coordinate unioner (Definition 3.3).
///
/// Emits a coordinate whenever at least one input carries it; the reference
/// output of an operand that lacks the coordinate carries an empty (`N`)
/// token, as in paper Figure 5.
#[derive(Debug)]
pub struct Unioner {
    name: String,
    in_crd: [ChannelId; 2],
    in_ref: [ChannelId; 2],
    out_crd: ChannelId,
    out_ref: [ChannelId; 2],
    done: bool,
}

impl Unioner {
    /// Creates a binary unioner.
    pub fn new(
        name: impl Into<String>,
        in_crd: [ChannelId; 2],
        in_ref: [ChannelId; 2],
        out_crd: ChannelId,
        out_ref: [ChannelId; 2],
    ) -> Self {
        Unioner { name: name.into(), in_crd, in_ref, out_crd, out_ref, done: false }
    }

    fn emit(&self, ctx: &mut Context, crd: SimToken, r0: SimToken, r1: SimToken) {
        ctx.push(self.out_crd, crd);
        ctx.push(self.out_ref[0], r0);
        ctx.push(self.out_ref[1], r1);
    }
}

impl Block for Unioner {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        if !(ctx.can_push(self.out_crd) && ctx.can_push(self.out_ref[0]) && ctx.can_push(self.out_ref[1])) {
            return BlockStatus::Busy;
        }
        let (Some(a), Some(b)) = (ctx.peek(self.in_crd[0]).cloned(), ctx.peek(self.in_crd[1]).cloned())
        else {
            return BlockStatus::Busy;
        };
        match (a, b) {
            (Token::Val(pa), Token::Val(pb)) => {
                let ca = pa.expect_crd();
                let cb = pb.expect_crd();
                if ca == cb {
                    ctx.pop(self.in_crd[0]);
                    ctx.pop(self.in_crd[1]);
                    let ra = ctx.pop(self.in_ref[0]).expect("aligned ref stream");
                    let rb = ctx.pop(self.in_ref[1]).expect("aligned ref stream");
                    self.emit(ctx, tok::crd(ca), ra, rb);
                } else if ca < cb {
                    ctx.pop(self.in_crd[0]);
                    let ra = ctx.pop(self.in_ref[0]).expect("aligned ref stream");
                    self.emit(ctx, tok::crd(ca), ra, tok::empty());
                } else {
                    ctx.pop(self.in_crd[1]);
                    let rb = ctx.pop(self.in_ref[1]).expect("aligned ref stream");
                    self.emit(ctx, tok::crd(cb), tok::empty(), rb);
                }
                BlockStatus::Busy
            }
            (Token::Val(pa), _) => {
                // Operand 1's fiber ended first: flush operand 0.
                let ca = pa.expect_crd();
                ctx.pop(self.in_crd[0]);
                let ra = ctx.pop(self.in_ref[0]).expect("aligned ref stream");
                self.emit(ctx, tok::crd(ca), ra, tok::empty());
                BlockStatus::Busy
            }
            (_, Token::Val(pb)) => {
                let cb = pb.expect_crd();
                ctx.pop(self.in_crd[1]);
                let rb = ctx.pop(self.in_ref[1]).expect("aligned ref stream");
                self.emit(ctx, tok::crd(cb), tok::empty(), rb);
                BlockStatus::Busy
            }
            (Token::Empty, _) => {
                ctx.pop(self.in_crd[0]);
                ctx.pop(self.in_ref[0]);
                BlockStatus::Busy
            }
            (_, Token::Empty) => {
                ctx.pop(self.in_crd[1]);
                ctx.pop(self.in_ref[1]);
                BlockStatus::Busy
            }
            (Token::Stop(na), Token::Stop(nb)) => {
                debug_assert_eq!(na, nb, "union inputs must have matching fiber structure");
                ctx.pop(self.in_crd[0]);
                ctx.pop(self.in_crd[1]);
                ctx.pop(self.in_ref[0]);
                ctx.pop(self.in_ref[1]);
                self.emit(ctx, tok::stop(na.max(nb)), tok::stop(na.max(nb)), tok::stop(na.max(nb)));
                BlockStatus::Busy
            }
            (Token::Done, Token::Done) => {
                ctx.pop(self.in_crd[0]);
                ctx.pop(self.in_crd[1]);
                ctx.pop(self.in_ref[0]);
                ctx.pop(self.in_ref[1]);
                self.emit(ctx, tok::done(), tok::done(), tok::done());
                self.done = true;
                BlockStatus::Done
            }
            (Token::Stop(_), Token::Done) => {
                ctx.pop(self.in_crd[0]);
                ctx.pop(self.in_ref[0]);
                BlockStatus::Busy
            }
            (Token::Done, Token::Stop(_)) => {
                ctx.pop(self.in_crd[1]);
                ctx.pop(self.in_ref[1]);
                BlockStatus::Busy
            }
        }
    }
}

/// Forks a stream into `n` output streams, dealing out fibers round-robin
/// (Section 4.4).
#[derive(Debug)]
pub struct Parallelizer {
    name: String,
    input: ChannelId,
    outputs: Vec<ChannelId>,
    current: usize,
    done: bool,
}

impl Parallelizer {
    /// Creates a parallelizer with one output per worker lane.
    ///
    /// # Panics
    ///
    /// Panics when `outputs` is empty.
    pub fn new(name: impl Into<String>, input: ChannelId, outputs: Vec<ChannelId>) -> Self {
        assert!(!outputs.is_empty(), "parallelizer needs at least one output");
        Parallelizer { name: name.into(), input, outputs, current: 0, done: false }
    }
}

impl Block for Parallelizer {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        let lane = self.outputs[self.current];
        if !ctx.can_push(lane) {
            return BlockStatus::Busy;
        }
        let Some(t) = ctx.peek(self.input).cloned() else {
            return BlockStatus::Busy;
        };
        match t {
            Token::Done => {
                ctx.pop(self.input);
                for &out in &self.outputs {
                    ctx.push(out, tok::done());
                }
                self.done = true;
                BlockStatus::Done
            }
            Token::Stop(_) => {
                ctx.pop(self.input);
                ctx.push(lane, t);
                self.current = (self.current + 1) % self.outputs.len();
                BlockStatus::Busy
            }
            _ => {
                ctx.pop(self.input);
                ctx.push(lane, t);
                BlockStatus::Busy
            }
        }
    }
}

/// Joins `n` parallel streams back into one by concatenating their fibers in
/// round-robin order (Section 4.4).
#[derive(Debug)]
pub struct Serializer {
    name: String,
    inputs: Vec<ChannelId>,
    output: ChannelId,
    current: usize,
    finished: Vec<bool>,
    done: bool,
}

impl Serializer {
    /// Creates a serializer joining the given lanes.
    ///
    /// # Panics
    ///
    /// Panics when `inputs` is empty.
    pub fn new(name: impl Into<String>, inputs: Vec<ChannelId>, output: ChannelId) -> Self {
        assert!(!inputs.is_empty(), "serializer needs at least one input");
        let lanes = inputs.len();
        Serializer {
            name: name.into(),
            inputs,
            output,
            current: 0,
            finished: vec![false; lanes],
            done: false,
        }
    }
}

impl Block for Serializer {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
        if self.done {
            return BlockStatus::Done;
        }
        if !ctx.can_push(self.output) {
            return BlockStatus::Busy;
        }
        if self.finished.iter().all(|f| *f) {
            ctx.push(self.output, tok::done());
            self.done = true;
            return BlockStatus::Done;
        }
        if self.finished[self.current] {
            self.current = (self.current + 1) % self.inputs.len();
            return BlockStatus::Busy;
        }
        let lane = self.inputs[self.current];
        let Some(t) = ctx.peek(lane).cloned() else {
            return BlockStatus::Busy;
        };
        match t {
            Token::Done => {
                ctx.pop(lane);
                self.finished[self.current] = true;
                self.current = (self.current + 1) % self.inputs.len();
                BlockStatus::Busy
            }
            Token::Stop(_) => {
                ctx.pop(lane);
                ctx.push(self.output, t);
                self.current = (self.current + 1) % self.inputs.len();
                BlockStatus::Busy
            }
            _ => {
                ctx.pop(lane);
                ctx.push(self.output, t);
                BlockStatus::Busy
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_sim::Simulator;

    fn crd_stream(coords: &[u32]) -> Vec<SimToken> {
        let mut v: Vec<SimToken> = coords.iter().map(|&c| tok::crd(c)).collect();
        v.push(tok::stop(0));
        v.push(tok::done());
        v
    }

    fn ref_stream(refs: &[u32]) -> Vec<SimToken> {
        let mut v: Vec<SimToken> = refs.iter().map(|&r| tok::rf(r)).collect();
        v.push(tok::stop(0));
        v.push(tok::done());
        v
    }

    fn data_crds(tokens: &[SimToken]) -> Vec<u32> {
        tokens.iter().filter_map(|t| t.value_ref().map(|p| p.expect_crd())).collect()
    }

    fn setup_merge() -> (Simulator, [ChannelId; 2], [ChannelId; 2], ChannelId, [ChannelId; 2]) {
        let mut sim = Simulator::new();
        let ca = sim.add_channel("crd_a");
        let cb = sim.add_channel("crd_b");
        let ra = sim.add_channel("ref_a");
        let rb = sim.add_channel("ref_b");
        let oc = sim.add_channel("out_crd");
        let o0 = sim.add_channel("out_ref0");
        let o1 = sim.add_channel("out_ref1");
        sim.record(oc);
        sim.record(o0);
        sim.record(o1);
        (sim, [ca, cb], [ra, rb], oc, [o0, o1])
    }

    #[test]
    fn intersect_keeps_common_coordinates() {
        let (mut sim, in_crd, in_ref, oc, or) = setup_merge();
        sim.add_block(Box::new(Intersecter::new("int", in_crd, in_ref, oc, or)));
        sim.preload(in_crd[0], crd_stream(&[0, 2, 4, 6]));
        sim.preload(in_ref[0], ref_stream(&[10, 12, 14, 16]));
        sim.preload(in_crd[1], crd_stream(&[2, 3, 6, 9]));
        sim.preload(in_ref[1], ref_stream(&[20, 23, 26, 29]));
        sim.run(1000).unwrap();
        assert_eq!(data_crds(sim.history(oc)), vec![2, 6]);
        let r0: Vec<u32> =
            sim.history(or[0]).iter().filter_map(|t| t.value_ref().map(|p| p.expect_ref())).collect();
        let r1: Vec<u32> =
            sim.history(or[1]).iter().filter_map(|t| t.value_ref().map(|p| p.expect_ref())).collect();
        assert_eq!(r0, vec![12, 16]);
        assert_eq!(r1, vec![22 - 2, 26]);
        // Fiber structure preserved.
        assert!(sim.history(oc).iter().any(|t| t.is_stop()));
        assert!(sim.history(oc).last().unwrap().is_done());
    }

    #[test]
    fn intersect_empty_result_keeps_stops() {
        let (mut sim, in_crd, in_ref, oc, or) = setup_merge();
        sim.add_block(Box::new(Intersecter::new("int", in_crd, in_ref, oc, or)));
        sim.preload(in_crd[0], crd_stream(&[0, 2]));
        sim.preload(in_ref[0], ref_stream(&[0, 1]));
        sim.preload(in_crd[1], crd_stream(&[1, 3]));
        sim.preload(in_ref[1], ref_stream(&[0, 1]));
        sim.run(1000).unwrap();
        assert!(data_crds(sim.history(oc)).is_empty());
        assert_eq!(sim.history(oc).iter().filter(|t| t.is_stop()).count(), 1);
    }

    #[test]
    fn figure5_union_example() {
        // Paper Figure 5: union of (0,2,6,8,9) and (0,1,2,3,4).
        let (mut sim, in_crd, in_ref, oc, or) = setup_merge();
        sim.add_block(Box::new(Unioner::new("uni", in_crd, in_ref, oc, or)));
        sim.preload(in_crd[0], crd_stream(&[0, 2, 6, 8, 9]));
        sim.preload(in_ref[0], ref_stream(&[0, 1, 2, 3, 4]));
        sim.preload(in_crd[1], crd_stream(&[0, 1, 2, 3, 4]));
        sim.preload(in_ref[1], ref_stream(&[0, 1, 2, 3, 4]));
        sim.run(1000).unwrap();
        assert_eq!(data_crds(sim.history(oc)), vec![0, 1, 2, 3, 4, 6, 8, 9]);
        // Operand 0's reference stream has empty tokens where only operand 1
        // had coordinates (1, 3, 4) and vice versa (6, 8, 9).
        let empties0 = sim.history(or[0]).iter().filter(|t| t.is_empty_token()).count();
        let empties1 = sim.history(or[1]).iter().filter(|t| t.is_empty_token()).count();
        assert_eq!(empties0, 3);
        assert_eq!(empties1, 3);
    }

    #[test]
    fn intersect_with_skip_emits_epoch_tagged_skip_tokens() {
        use sam_sim::payload::Payload;
        let (mut sim, in_crd, in_ref, oc, or) = setup_merge();
        let sk0 = sim.add_channel("skip0");
        let sk1 = sim.add_channel("skip1");
        sim.record(sk1);
        sim.add_block(Box::new(Intersecter::new("int", in_crd, in_ref, oc, or).with_skip([sk0, sk1])));
        sim.preload(in_crd[0], crd_stream(&[50]));
        sim.preload(in_ref[0], ref_stream(&[0]));
        sim.preload(in_crd[1], crd_stream(&[1, 50]));
        sim.preload(in_ref[1], ref_stream(&[0, 1]));
        sim.run(1000).unwrap();
        // Operand 1 trails at coordinate 1 < 50, so a skip to 50 is sent to
        // it, tagged with the current fiber epoch (no stops consumed yet).
        let skip_tokens: Vec<Payload> =
            sim.history(sk1).iter().filter_map(|t| t.value_ref().copied()).collect();
        assert_eq!(skip_tokens, vec![Payload::Ref(0), Payload::Crd(50)]);
        assert_eq!(data_crds(sim.history(oc)), vec![50]);
    }

    #[test]
    fn union_of_disjoint_inputs_is_concatenation() {
        let (mut sim, in_crd, in_ref, oc, or) = setup_merge();
        sim.add_block(Box::new(Unioner::new("uni", in_crd, in_ref, oc, or)));
        sim.preload(in_crd[0], crd_stream(&[0, 1]));
        sim.preload(in_ref[0], ref_stream(&[0, 1]));
        sim.preload(in_crd[1], crd_stream(&[5, 6]));
        sim.preload(in_ref[1], ref_stream(&[0, 1]));
        sim.run(1000).unwrap();
        assert_eq!(data_crds(sim.history(oc)), vec![0, 1, 5, 6]);
    }

    #[test]
    fn parallelize_then_serialize_roundtrip() {
        let mut sim = Simulator::new();
        let input = sim.add_channel("in");
        let l0 = sim.add_channel("lane0");
        let l1 = sim.add_channel("lane1");
        let out = sim.add_channel("out");
        sim.record(out);
        sim.add_block(Box::new(Parallelizer::new("par", input, vec![l0, l1])));
        sim.add_block(Box::new(Serializer::new("ser", vec![l0, l1], out)));
        sim.preload(
            input,
            vec![
                tok::crd(1),
                tok::stop(0),
                tok::crd(2),
                tok::crd(3),
                tok::stop(0),
                tok::crd(4),
                tok::stop(0),
                tok::done(),
            ],
        );
        sim.run(1000).unwrap();
        let out_crds = data_crds(sim.history(out));
        assert_eq!(out_crds, vec![1, 2, 3, 4]);
        assert_eq!(sim.history(out).iter().filter(|t| t.is_stop()).count(), 3);
        assert!(sim.history(out).last().unwrap().is_done());
    }
}
