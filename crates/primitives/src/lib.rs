//! # sam-primitives
//!
//! The SAM dataflow blocks (paper Sections 3 and 4), implemented against the
//! `sam-sim` [`Block`](sam_sim::Block) interface.
//!
//! Core blocks (Section 3):
//!
//! * [`LevelScanner`] — tensor iteration over dense and compressed levels
//!   (Definition 3.1), with optional coordinate skipping (Section 4.2),
//! * [`Intersecter`] and [`Unioner`] — stream merging (Definitions 3.2, 3.3),
//! * [`Repeater`] — broadcasting (Definition 3.4),
//! * [`ValArray`] — the array block in load mode (Definition 3.5),
//! * [`Alu`] — streaming arithmetic (Definition 3.6),
//! * [`Reducer`] — scalar/vector/matrix accumulation (Definition 3.7),
//! * [`LevelWriter`] / [`ValWriter`] — tensor construction (Definition 3.8),
//! * [`CoordDropper`] — result cleanup (Definition 3.9).
//!
//! Optimization blocks (Section 4):
//!
//! * [`Locator`] — iterate-locate intersection (Definition 4.1),
//! * [`BitvectorScanner`], [`BitvectorConverter`], [`BitvectorIntersecter`],
//!   [`BitvectorVecMul`], [`BitTreeVecMul`] — bitvector stream protocol
//!   (Section 4.3),
//! * [`Parallelizer`] and [`Serializer`] — coarse-grained parallelism
//!   (Section 4.4).

pub mod array;
pub mod bitvector;
pub mod compute;
pub mod dropper;
pub mod merge;
pub mod repeat;
pub mod scanner;
pub mod source;
pub mod writer;

pub use array::{Locator, ValArray};
pub use bitvector::{
    BitTreeVecMul, BitvectorConverter, BitvectorIntersecter, BitvectorScanner, BitvectorVecMul,
};
pub use compute::{Alu, AluOp, ConstVal, EmptyFiberPolicy, Reducer};
pub use dropper::CoordDropper;
pub use merge::{Intersecter, Parallelizer, Serializer, Unioner};
pub use repeat::Repeater;
pub use scanner::LevelScanner;
pub use source::root_stream;
pub use writer::{LevelWriter, LevelWriterSink, ValWriter, ValWriterSink};
