//! # sam-tiles
//!
//! The tiling subsystem of the paper's Section 6.4 study ("Modeling
//! Hardware with Finite Constraints", Figure 15): everything needed to run
//! a SAM dataflow graph over tensors far larger than any on-chip buffer by
//! cutting them into `tile x tile` sub-tensors, scheduling the tile tuples
//! with ExTensor-style *sparse tile skipping*, and merging the per-tile
//! partial outputs back into one result.
//!
//! The crate is executor-agnostic — it knows fibertrees
//! ([`sam_tensor::Tensor`]) and graphs ([`sam_core::graph::SamGraph`]) but
//! not how either is evaluated. The `TiledBackend` of `sam-exec` composes
//! these pieces with the fast functional executor to produce *measured*
//! finite-memory counters ([`sam_memory::MemoryCounters`]), the
//! experimental twin of the closed-form `sam_memory` model:
//!
//! * [`extract`] — slices tiles out of any level hierarchy (dense,
//!   compressed, bitvector) through the positional slicing APIs of
//!   [`sam_tensor::level::Level`], and catalogs a tensor's nonempty tiles
//!   in a [`TileGrid`];
//! * [`schedule`] — derives a [`KernelTiling`] from a graph: which index
//!   variables are safe to tile, how each bound tensor's storage levels map
//!   onto them, and which tensors' empty tiles license skipping a whole
//!   tile tuple;
//! * [`llb`] — an LRU model of the last-level buffer that turns the tile
//!   access sequence into measured DRAM traffic, occupancy high-water marks
//!   and capacity-spill counts;
//! * [`merge`] — the tile-merge reducer: accumulates per-tile partial
//!   outputs (offset back into global coordinates) and rebuilds the
//!   canonical CSF output, bit-identical to an untiled run on exactly
//!   summed values.

#![warn(missing_docs)]

pub mod extract;
pub mod llb;
pub mod merge;
pub mod schedule;

pub use extract::{for_each_stored, tile_of, TileGrid};
pub use llb::LlbModel;
pub use merge::TileMerger;
pub use schedule::{KernelTiling, TensorTiling, TiledVar, TilingError, TupleSpace};
