//! An LRU model of the last-level buffer (LLB) of the Section 6.4 memory
//! hierarchy: tiles are fetched from DRAM on miss, kept resident until
//! capacity forces an eviction, and every byte moved is counted.

use std::collections::{BTreeMap, HashMap};

/// Identifies one resident tile: tensor name plus per-level tile indices.
pub type TileKey = (String, Vec<u32>);

/// A byte-accurate LRU cache standing in for the last-level buffer.
///
/// Unlike the closed-form `sam_memory` model, this is driven by the *actual*
/// tile access sequence of a tiled execution, so the DRAM traffic, the
/// occupancy high-water mark and the capacity-spill count it reports are
/// measurements of the schedule, not expectations over random placement.
#[derive(Debug)]
pub struct LlbModel {
    capacity: u64,
    resident: HashMap<TileKey, (u64, u64)>, // key -> (bytes, last-use stamp)
    by_stamp: BTreeMap<u64, TileKey>,
    resident_bytes: u64,
    clock: u64,
    dram_bytes: u64,
    peak_bytes: u64,
    evictions: u64,
}

impl LlbModel {
    /// An empty buffer of `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> LlbModel {
        LlbModel {
            capacity: capacity_bytes,
            resident: HashMap::new(),
            by_stamp: BTreeMap::new(),
            resident_bytes: 0,
            clock: 0,
            dram_bytes: 0,
            peak_bytes: 0,
            evictions: 0,
        }
    }

    /// Touches the tile `key` of `bytes` bytes, returning `true` on a hit.
    /// On a miss the tile streams from DRAM and becomes resident, evicting
    /// least-recently-used tiles until it fits; a tile at least as large as
    /// the whole buffer streams through without displacing anything.
    pub fn access(&mut self, key: TileKey, bytes: u64) -> bool {
        self.clock += 1;
        if let Some((_, stamp)) = self.resident.get_mut(&key) {
            let old = std::mem::replace(stamp, self.clock);
            self.by_stamp.remove(&old);
            self.by_stamp.insert(self.clock, key);
            return true;
        }
        self.dram_bytes += bytes;
        if bytes >= self.capacity {
            return false; // Streams through; never resident.
        }
        while self.resident_bytes + bytes > self.capacity {
            let (&oldest, _) = self.by_stamp.iter().next().expect("resident tiles exist");
            let victim = self.by_stamp.remove(&oldest).expect("stamp present");
            let (vbytes, _) = self.resident.remove(&victim).expect("victim resident");
            self.resident_bytes -= vbytes;
            self.evictions += 1;
        }
        self.resident.insert(key.clone(), (bytes, self.clock));
        self.by_stamp.insert(self.clock, key);
        self.resident_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.resident_bytes);
        false
    }

    /// Counts `bytes` written straight through to DRAM (output tiles).
    pub fn write_through(&mut self, bytes: u64) {
        self.dram_bytes += bytes;
    }

    /// Total bytes moved to or from DRAM so far.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_bytes
    }

    /// High-water mark of resident bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Number of capacity evictions (spill events).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(name: &str, k: u32) -> TileKey {
        (name.to_string(), vec![k])
    }

    #[test]
    fn hits_do_not_move_bytes() {
        let mut llb = LlbModel::new(100);
        assert!(!llb.access(key("B", 0), 40));
        assert!(llb.access(key("B", 0), 40));
        assert_eq!(llb.dram_bytes(), 40);
        assert_eq!(llb.peak_bytes(), 40);
        assert_eq!(llb.evictions(), 0);
    }

    #[test]
    fn lru_evicts_the_coldest_tile() {
        let mut llb = LlbModel::new(100);
        llb.access(key("B", 0), 40);
        llb.access(key("B", 1), 40);
        llb.access(key("B", 0), 40); // B0 is now warmer than B1.
        llb.access(key("C", 0), 40); // Evicts B1.
        assert_eq!(llb.evictions(), 1);
        assert!(llb.access(key("B", 0), 40), "B0 must still be resident");
        assert!(!llb.access(key("B", 1), 40), "B1 was evicted");
        assert_eq!(llb.peak_bytes(), 80);
    }

    #[test]
    fn oversized_tiles_stream_through() {
        let mut llb = LlbModel::new(100);
        llb.access(key("B", 0), 40);
        assert!(!llb.access(key("C", 0), 200));
        assert!(!llb.access(key("C", 0), 200), "oversized tiles are never resident");
        assert_eq!(llb.dram_bytes(), 40 + 400);
        assert_eq!(llb.resident_bytes(), 40);
        llb.write_through(25);
        assert_eq!(llb.dram_bytes(), 465);
    }
}
