//! Tile extraction: cutting `tile x tile` sub-tensors out of a fibertree.
//!
//! Extraction works on any level hierarchy because it only uses the
//! positional slicing interface of [`sam_tensor::level::Level`]:
//! [`coord_range`](sam_tensor::level::Level::coord_range) finds the
//! positional window of a coordinate range (O(1) dense, O(log n)
//! compressed, a popcount walk for bitvector levels) and
//! [`entry_at`](sam_tensor::level::Level::entry_at) reads entries
//! positionally, so a tile touches only the fibers and positions that
//! actually intersect its window.

use sam_tensor::{CooTensor, Tensor};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Walks every *stored* leaf entry of `tensor` in storage order — unlike
/// `Tensor::points`, explicit zeros are visited too (dense levels
/// materialize them) and coordinates are reported in storage order, not
/// logical order.
pub fn for_each_stored(tensor: &Tensor, mut f: impl FnMut(&[u32], f64)) {
    if tensor.levels().is_empty() {
        return;
    }
    let mut prefix = Vec::with_capacity(tensor.order());
    walk_stored(tensor, 0, 0, &mut prefix, &mut f);
}

fn walk_stored(
    tensor: &Tensor,
    level: usize,
    fiber: usize,
    prefix: &mut Vec<u32>,
    f: &mut impl FnMut(&[u32], f64),
) {
    for entry in tensor.level(level).fiber(fiber) {
        prefix.push(entry.coord);
        if level + 1 == tensor.levels().len() {
            f(prefix, tensor.vals()[entry.child]);
        } else {
            walk_stored(tensor, level + 1, entry.child, prefix, f);
        }
        prefix.pop();
    }
}

/// Extracts the sub-tensor of `tensor` spanned by one half-open coordinate
/// window per *storage* level, rebased so the window origin becomes
/// coordinate zero. The tile keeps the original tensor's name and
/// [`sam_tensor::TensorFormat`], so it binds and plans exactly like its
/// parent.
///
/// # Panics
///
/// Panics if `windows.len()` differs from the tensor order or a window is
/// empty (`lo >= hi`).
pub fn tile_of(tensor: &Tensor, windows: &[(u32, u32)]) -> Tensor {
    assert_eq!(windows.len(), tensor.order(), "one window per storage level");
    assert!(windows.iter().all(|&(lo, hi)| lo < hi), "windows must be nonempty");
    let mut entries: Vec<(Vec<u32>, f64)> = Vec::new();
    let mut prefix = Vec::with_capacity(tensor.order());
    gather(tensor, windows, 0, 0, &mut prefix, &mut entries);

    // Storage points -> logical points (from_coo re-permutes them back).
    let mode_order = tensor.format().mode_order();
    let mut logical_shape = vec![0usize; tensor.order()];
    for (level, &m) in mode_order.iter().enumerate() {
        logical_shape[m] = (windows[level].1 - windows[level].0) as usize;
    }
    let logical_entries: Vec<(Vec<u32>, f64)> = entries
        .into_iter()
        .map(|(stored, v)| {
            let mut logical = vec![0u32; stored.len()];
            for (level, &m) in mode_order.iter().enumerate() {
                logical[m] = stored[level];
            }
            (logical, v)
        })
        .collect();
    let coo = CooTensor::from_entries(logical_shape, logical_entries).expect("rebased points in bounds");
    Tensor::from_coo(tensor.name(), &coo, tensor.format().clone())
}

fn gather(
    tensor: &Tensor,
    windows: &[(u32, u32)],
    level: usize,
    fiber: usize,
    prefix: &mut Vec<u32>,
    out: &mut Vec<(Vec<u32>, f64)>,
) {
    let (lo, hi) = windows[level];
    let lvl = tensor.level(level);
    for pos in lvl.coord_range(fiber, lo, hi) {
        let entry = lvl.entry_at(fiber, pos);
        prefix.push(entry.coord - lo);
        if level + 1 == tensor.levels().len() {
            out.push((prefix.clone(), tensor.vals()[entry.child]));
        } else {
            gather(tensor, windows, level + 1, entry.child, prefix, out);
        }
        prefix.pop();
    }
}

/// A tensor cut into a grid of tiles: one tile size per storage level (use
/// the level's full dimension to leave it untiled), with only *nonempty*
/// tiles materialized.
///
/// "Nonempty" means the tile holds at least one stored leaf entry; for
/// fully dense formats every slot is stored, so every tile of a dense
/// operand is present — exactly the occupancy semantics ExTensor's tile
/// skipping keys on.
#[derive(Debug, Clone)]
pub struct TileGrid {
    tile_sizes: Vec<usize>,
    grids: Vec<usize>,
    dims: Vec<usize>,
    tiles: BTreeMap<Vec<u32>, Arc<Tensor>>,
    entry_counts: BTreeMap<Vec<u32>, u64>,
}

/// The clamped coordinate windows of the tile at `key`, one per storage
/// level — the single source of the key → window mapping [`TileGrid`]
/// cuts and reports tiles with.
fn key_windows(key: &[u32], tile_sizes: &[usize], dims: &[usize]) -> Vec<(u32, u32)> {
    key.iter()
        .zip(tile_sizes)
        .zip(dims)
        .map(|((&k, &t), &d)| {
            let lo = k * t as u32;
            (lo, (lo + t as u32).min(d as u32))
        })
        .collect()
}

impl TileGrid {
    /// Cuts `tensor` into tiles of `tile_sizes[level]` coordinates per
    /// storage level. An occupancy pass over the stored entries finds the
    /// nonempty tile keys; each one is then extracted with [`tile_of`].
    ///
    /// # Panics
    ///
    /// Panics if `tile_sizes` has the wrong length or contains a zero.
    pub fn build(tensor: &Tensor, tile_sizes: Vec<usize>) -> TileGrid {
        assert_eq!(tile_sizes.len(), tensor.order(), "one tile size per storage level");
        assert!(tile_sizes.iter().all(|&t| t > 0), "tile sizes must be positive");
        let dims: Vec<usize> = (0..tensor.order()).map(|l| tensor.level(l).dimension()).collect();
        let grids: Vec<usize> = dims.iter().zip(&tile_sizes).map(|(&d, &t)| d.div_ceil(t)).collect();

        let mut entry_counts: BTreeMap<Vec<u32>, u64> = BTreeMap::new();
        for_each_stored(tensor, |point, _| {
            let key: Vec<u32> = point.iter().zip(&tile_sizes).map(|(&c, &t)| c / t as u32).collect();
            *entry_counts.entry(key).or_insert(0) += 1;
        });

        let mut tiles = BTreeMap::new();
        for key in entry_counts.keys() {
            let windows = key_windows(key, &tile_sizes, &dims);
            tiles.insert(key.clone(), Arc::new(tile_of(tensor, &windows)));
        }
        TileGrid { tile_sizes, grids, dims, tiles, entry_counts }
    }

    /// The tile at `key` (per-level tile indices), if it is nonempty.
    pub fn get(&self, key: &[u32]) -> Option<&Tensor> {
        self.tiles.get(key).map(|t| t.as_ref())
    }

    /// Like [`TileGrid::get`], but sharing ownership — binding the tile
    /// into an executor input set is a refcount bump, not a deep copy.
    pub fn get_shared(&self, key: &[u32]) -> Option<&Arc<Tensor>> {
        self.tiles.get(key)
    }

    /// Stored leaf entries of the tile at `key` (zero when empty).
    pub fn stored_entries(&self, key: &[u32]) -> u64 {
        self.entry_counts.get(key).copied().unwrap_or(0)
    }

    /// Number of nonempty tiles.
    pub fn nonempty(&self) -> usize {
        self.tiles.len()
    }

    /// Total number of tiles in the grid (empty ones included).
    pub fn total_tiles(&self) -> u64 {
        self.grids.iter().map(|&g| g as u64).product()
    }

    /// Tiles per storage level.
    pub fn grids(&self) -> &[usize] {
        &self.grids
    }

    /// The per-level tile sizes this grid was cut with.
    pub fn tile_sizes(&self) -> &[usize] {
        &self.tile_sizes
    }

    /// The coordinate windows (per storage level) of the tile at `key`.
    pub fn windows(&self, key: &[u32]) -> Vec<(u32, u32)> {
        key_windows(key, &self.tile_sizes, &self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_tensor::{synth, TensorFormat};

    #[test]
    fn tile_roundtrip_covers_the_matrix() {
        let coo = synth::random_matrix_sparsity(13, 17, 0.7, 21);
        for fmt in [TensorFormat::dcsr(), TensorFormat::csr(), TensorFormat::dcsc()] {
            let t = Tensor::from_coo("B", &coo, fmt.clone());
            let grid = TileGrid::build(&t, vec![4, 4]);
            // Reassemble the dense matrix from the tiles.
            let mut dense = vec![vec![0.0f64; 17]; 13];
            for (key, tile) in grid.tiles.iter() {
                let windows = grid.windows(key);
                for (point, v) in tile.points() {
                    // Points are logical; map windows through the mode order.
                    let mode_order = fmt.mode_order();
                    let mut global = [0u32; 2];
                    for (level, &m) in mode_order.iter().enumerate() {
                        global[m] = point[m] + windows[level].0;
                    }
                    dense[global[0] as usize][global[1] as usize] += v;
                }
            }
            for (point, v) in Tensor::from_coo("B", &coo, TensorFormat::dcsr()).points() {
                assert_eq!(dense[point[0] as usize][point[1] as usize], v, "format {fmt}");
            }
        }
    }

    #[test]
    fn tile_of_rebases_and_keeps_format() {
        let coo = CooTensor::from_entries(
            vec![8, 8],
            vec![(vec![1, 5], 2.0), (vec![2, 6], 3.0), (vec![6, 1], 4.0)],
        )
        .unwrap();
        let t = Tensor::from_coo("B", &coo, TensorFormat::dcsr());
        let tile = tile_of(&t, &[(0, 4), (4, 8)]);
        assert_eq!(tile.name(), "B");
        assert_eq!(tile.format(), t.format());
        assert_eq!(tile.shape(), &[4, 4]);
        assert_eq!(tile.get(&[1, 1]), 2.0);
        assert_eq!(tile.get(&[2, 2]), 3.0);
        assert_eq!(tile.nnz(), 2);
    }

    #[test]
    fn bitvector_levels_slice_too() {
        let coo = synth::random_matrix_sparsity(12, 12, 0.6, 22);
        let fmt = TensorFormat::new(vec![
            sam_tensor::LevelFormat::Compressed,
            sam_tensor::LevelFormat::bitvector(),
        ]);
        let t = Tensor::from_coo("B", &coo, fmt);
        let grid = TileGrid::build(&t, vec![5, 5]);
        let dense_ref = Tensor::from_coo("B", &coo, TensorFormat::dcsr());
        let mut total = 0.0;
        for (key, tile) in grid.tiles.iter() {
            let _ = grid.windows(key);
            total += tile.points().iter().map(|(_, v)| v).sum::<f64>();
        }
        let expect: f64 = dense_ref.points().iter().map(|(_, v)| v).sum();
        assert!((total - expect).abs() < 1e-9);
    }

    #[test]
    fn dense_operands_materialize_every_tile() {
        let coo = synth::dense_matrix(6, 6, 23);
        let t = Tensor::from_coo("C", &coo, TensorFormat::dense(2));
        let grid = TileGrid::build(&t, vec![4, 4]);
        assert_eq!(grid.nonempty(), 4);
        assert_eq!(grid.total_tiles(), 4);
        // Edge tiles clamp to the remaining coordinates.
        assert_eq!(grid.get(&[1, 1]).unwrap().shape(), &[2, 2]);
    }

    #[test]
    fn untiled_levels_use_one_full_window() {
        let coo = synth::random_matrix_sparsity(9, 9, 0.5, 24);
        let t = Tensor::from_coo("B", &coo, TensorFormat::dcsr());
        let grid = TileGrid::build(&t, vec![4, 9]);
        assert_eq!(grid.grids(), &[3, 1]);
        for key in grid.entry_counts.keys() {
            assert_eq!(key[1], 0);
        }
        assert_eq!(grid.tile_sizes(), &[4, 9]);
        let total: u64 = grid.entry_counts.values().sum();
        assert_eq!(total as usize, t.nnz());
    }
}
