//! The tile-merge reducer: accumulates per-tile partial outputs into one
//! global result tensor.
//!
//! Each executed tile yields a small output tensor in local (rebased)
//! coordinates. [`TileMerger::absorb`] offsets those back into the global
//! coordinate space and *adds* colliding values — tiles along contraction
//! variables produce partial sums for the same output point, tiles along
//! output variables land in disjoint windows. Explicit zeros are kept (a
//! stored entry with value `0.0` stays a stored entry), so the rebuilt
//! output is structurally identical to what an untiled run writes.
//!
//! [`TileMerger::finish`] rebuilds the canonical CSF form the executor's
//! output assembly produces: level 0 holds one fiber of all outermost
//! coordinates, and every deeper level holds one fiber per parent entry.

use sam_tensor::level::{CompressedLevel, Level};
use sam_tensor::{Tensor, TensorFormat};
use std::collections::BTreeMap;

use crate::extract::for_each_stored;

/// Accumulates tile outputs keyed by global output coordinates.
#[derive(Debug, Clone, Default)]
pub struct TileMerger {
    acc: BTreeMap<Vec<u32>, f64>,
}

impl TileMerger {
    /// An empty merger.
    pub fn new() -> TileMerger {
        TileMerger::default()
    }

    /// Adds one tile's output. `offsets` holds the global origin of the
    /// tile's window, one per output level (the tile's storage order equals
    /// its logical order — executor outputs are CSF with identity mode
    /// order). Stored entries are visited including explicit zeros.
    pub fn absorb(&mut self, tile_output: &Tensor, offsets: &[u32]) {
        assert_eq!(offsets.len(), tile_output.order(), "one offset per output level");
        for_each_stored(tile_output, |point, v| {
            let global: Vec<u32> = point.iter().zip(offsets).map(|(&c, &o)| c + o).collect();
            *self.acc.entry(global).or_insert(0.0) += v;
        });
    }

    /// Number of accumulated output entries.
    pub fn len(&self) -> usize {
        self.acc.len()
    }

    /// True when nothing has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// Rebuilds the merged output as a canonical CSF tensor of `shape`
    /// (plus the flat values array, in storage order) — the same form the
    /// untiled executor assembles, so equal runs compare bit-identical.
    pub fn finish(self, name: &str, shape: Vec<usize>) -> (Tensor, Vec<f64>) {
        let order = shape.len();
        assert!(order > 0, "merged outputs need at least one level");
        let keys: Vec<&Vec<u32>> = self.acc.keys().collect();
        let mut levels: Vec<Level> = Vec::with_capacity(order);
        for d in 0..order {
            let mut builder = CompressedLevel::builder(shape[d]);
            // Entries at level d are the distinct prefixes of length d+1;
            // fibers close when the length-d prefix changes.
            let mut prev: Option<&[u32]> = None;
            for key in &keys {
                if let Some(p) = prev {
                    if p[..d] != key[..d] {
                        builder.end_fiber();
                    }
                    if p[..=d] == key[..=d] {
                        prev = Some(key);
                        continue;
                    }
                }
                builder.push_coord(key[d]);
                prev = Some(key);
            }
            // The root level always holds exactly one fiber (possibly
            // empty); deeper levels hold one fiber per parent entry.
            if d == 0 || !keys.is_empty() {
                builder.end_fiber();
            }
            levels.push(Level::Compressed(builder.finish()));
        }
        let vals: Vec<f64> = self.acc.values().copied().collect();
        let tensor = Tensor::from_parts(name, shape.clone(), TensorFormat::csf(order), levels, vals.clone());
        (tensor, vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_tensor::CooTensor;

    fn tile(name: &str, shape: Vec<usize>, entries: Vec<(Vec<u32>, f64)>) -> Tensor {
        let coo = CooTensor::from_entries(shape.clone(), entries).unwrap();
        Tensor::from_coo(name, &coo, TensorFormat::csf(shape.len()))
    }

    #[test]
    fn disjoint_tiles_concatenate() {
        let mut m = TileMerger::new();
        m.absorb(&tile("X", vec![2, 2], vec![(vec![0, 1], 1.0), (vec![1, 0], 2.0)]), &[0, 0]);
        m.absorb(&tile("X", vec![2, 2], vec![(vec![0, 0], 3.0)]), &[2, 2]);
        assert_eq!(m.len(), 3);
        let (out, vals) = m.finish("X", vec![4, 4]);
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
        assert_eq!(out.get(&[0, 1]), 1.0);
        assert_eq!(out.get(&[1, 0]), 2.0);
        assert_eq!(out.get(&[2, 2]), 3.0);
        // Canonical CSF: one root fiber, one level-1 fiber per row entry.
        let Level::Compressed(l0) = out.level(0) else { panic!("compressed") };
        assert_eq!(l0.seg, vec![0, 3]);
        assert_eq!(l0.crd, vec![0, 1, 2]);
        let Level::Compressed(l1) = out.level(1) else { panic!("compressed") };
        assert_eq!(l1.seg, vec![0, 1, 2, 3]);
    }

    #[test]
    fn contraction_tiles_accumulate() {
        let mut m = TileMerger::new();
        m.absorb(&tile("x", vec![3], vec![(vec![1], 2.0)]), &[0]);
        m.absorb(&tile("x", vec![3], vec![(vec![1], 3.0), (vec![2], -3.0)]), &[0]);
        let (out, vals) = m.finish("x", vec![3]);
        assert_eq!(vals, vec![5.0, -3.0]);
        assert_eq!(out.get(&[1]), 5.0);
        assert_eq!(out.get(&[2]), -3.0);
    }

    #[test]
    fn explicit_zero_sums_stay_stored() {
        let mut m = TileMerger::new();
        m.absorb(&tile("x", vec![2], vec![(vec![0], 2.0)]), &[0]);
        m.absorb(&tile("x", vec![2], vec![(vec![0], -2.0)]), &[0]);
        assert_eq!(m.len(), 1);
        let (out, vals) = m.finish("x", vec![2]);
        assert_eq!(vals, vec![0.0]);
        let Level::Compressed(l0) = out.level(0) else { panic!("compressed") };
        assert_eq!(l0.crd, vec![0], "a zero-valued sum keeps its coordinate");
    }

    #[test]
    fn empty_merge_builds_an_empty_fiber() {
        let (out, vals) = TileMerger::new().finish("x", vec![5]);
        assert!(vals.is_empty());
        let Level::Compressed(l0) = out.level(0) else { panic!("compressed") };
        assert_eq!(l0.seg, vec![0, 0]);
        assert!(l0.crd.is_empty());
    }
}
