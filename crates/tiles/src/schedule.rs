//! Tile schedule analysis: from a SAM graph to a [`KernelTiling`].
//!
//! The analysis answers three questions about a kernel graph, without
//! executing it:
//!
//! 1. **Which index variables can be tiled?** Output variables always can:
//!    a tile's partial output lands in a disjoint (or additively merged)
//!    coordinate window. Contraction variables can be tiled whenever the
//!    graph accumulates with vector/matrix reducers (which *drop* empty
//!    fibers, so "an entry exists" means "some tile produced a product" —
//!    associative over tile unions). With a scalar reducer the output
//!    carries *explicit zeros* for every visited iteration point, whose set
//!    depends on how the contraction dimension was windowed; tiling it is
//!    only structure-preserving in the single-level-writer, no-dropper case
//!    (SpMV-shaped kernels), which the analysis detects conservatively.
//! 2. **How does each bound tensor map onto those variables?** Every
//!    scanner/locator is traced along its reference chain to the storage
//!    level it reads, giving a per-level index variable per tensor.
//! 3. **When may a tile tuple be skipped?** A tensor belongs to the *skip
//!    set* when an empty tile of it provably produces zero output entries:
//!    its emptiness must reach every level writer's coordinate stream
//!    through "requires" edges (compressed scans require their tensor,
//!    intersections require both operands, unions only what both share).
//!    This is ExTensor's sparse tile skipping, restricted to where it is
//!    bit-exact.

use sam_core::graph::{Edge, NodeKind, SamGraph, StreamKind};
use sam_tensor::Tensor;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why a graph cannot be tiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TilingError {
    /// An edge lacks explicit port wiring, so streams cannot be traced.
    Unported {
        /// Label of the offending edge.
        edge: String,
    },
    /// The graph is structurally unsuitable (cycle, unknown shape).
    Unsupported {
        /// Human-readable reason.
        reason: String,
    },
    /// A node references a tensor the caller did not provide.
    UnknownTensor {
        /// The tensor name.
        name: String,
    },
    /// Two tensors disagree about an index variable's dimension.
    DimMismatch {
        /// The index variable.
        var: char,
        /// One recorded size.
        a: usize,
        /// The conflicting size.
        b: usize,
    },
}

impl fmt::Display for TilingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TilingError::Unported { edge } => {
                write!(f, "edge `{edge}` lacks explicit ports; tiling needs a fully port-wired graph")
            }
            TilingError::Unsupported { reason } => write!(f, "graph cannot be tiled: {reason}"),
            TilingError::UnknownTensor { name } => write!(f, "tensor `{name}` is not bound"),
            TilingError::DimMismatch { var, a, b } => {
                write!(f, "index `{var}` spans both {a} and {b} coordinates")
            }
        }
    }
}

impl std::error::Error for TilingError {}

/// One index variable of the tiled iteration space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TiledVar {
    /// The index variable.
    pub var: char,
    /// Its dimension size.
    pub dim: usize,
    /// Number of tiles along it (1 when untiled).
    pub grid: usize,
    /// Whether the variable is actually cut into tiles.
    pub tiled: bool,
}

/// How one bound tensor's storage levels map onto the index variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorTiling {
    /// The tensor name.
    pub name: String,
    /// The index variable each storage level iterates, outermost first
    /// (`None` when no scanner/locator touches the level — it stays
    /// unwindowed).
    pub level_vars: Vec<Option<char>>,
}

/// A complete tile schedule for one kernel graph: the tiled iteration
/// space, the per-tensor level→variable maps and the skip set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelTiling {
    /// Tile side length (coordinates per tile along every tiled variable).
    pub tile: usize,
    /// The index variables, in first-traced order.
    pub vars: Vec<TiledVar>,
    /// One entry per bound tensor the graph reads.
    pub tensors: Vec<TensorTiling>,
    /// The output level writers' index variables, outermost first.
    pub output_vars: Vec<char>,
    /// Tensors whose empty tile makes the whole tile tuple skippable.
    pub skip_tensors: BTreeSet<String>,
}

impl KernelTiling {
    /// Analyzes `graph` over the bound tensors reachable through `lookup`
    /// and plans tiles of `tile` coordinates per tiled variable.
    ///
    /// # Errors
    ///
    /// Returns a [`TilingError`] when the graph has unported edges, is not
    /// a DAG over its data edges, binds an unknown tensor, or uses one
    /// index variable at two different sizes.
    pub fn from_graph<'a>(
        graph: &SamGraph,
        lookup: impl Fn(&str) -> Option<&'a Tensor>,
        tile: usize,
    ) -> Result<KernelTiling, TilingError> {
        let tile = tile.max(1);
        let nodes = graph.nodes();
        let n = nodes.len();
        let data_edges: Vec<&Edge> = graph.edges().iter().filter(|e| e.kind != StreamKind::Skip).collect();
        for e in &data_edges {
            if e.src_port.is_none() || e.dst_port.is_none() {
                return Err(TilingError::Unported { edge: e.label.clone() });
            }
        }

        // Input wiring and a topological order over the data edges.
        let mut node_inputs: Vec<Vec<Option<(usize, usize)>>> =
            nodes.iter().map(|k| vec![None; k.input_ports().len()]).collect();
        let mut indegree = vec![0usize; n];
        for e in &data_edges {
            let (sp, dp) = (e.src_port.expect("checked"), e.dst_port.expect("checked"));
            if dp >= node_inputs[e.to.0].len() {
                return Err(TilingError::Unsupported {
                    reason: format!("edge `{}` port out of range", e.label),
                });
            }
            node_inputs[e.to.0][dp] = Some((e.from.0, sp));
            indegree[e.to.0] += 1;
        }
        let mut order: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut head = 0;
        while head < order.len() {
            let u = order[head];
            head += 1;
            for e in data_edges.iter().filter(|e| e.from.0 == u) {
                indegree[e.to.0] -= 1;
                if indegree[e.to.0] == 0 {
                    order.push(e.to.0);
                }
            }
        }
        if order.len() != n {
            return Err(TilingError::Unsupported { reason: "graph has a data cycle".to_string() });
        }

        // Trace reference chains (tensor, depth) and "requires" sets per
        // output port, in topological order.
        let mut ref_ann: BTreeMap<(usize, usize), (String, usize)> = BTreeMap::new();
        let mut req: BTreeMap<(usize, usize), BTreeSet<String>> = BTreeMap::new();
        let mut var_dims: BTreeMap<char, usize> = BTreeMap::new();
        let mut var_order: Vec<char> = Vec::new();
        let mut level_vars: BTreeMap<String, BTreeMap<usize, char>> = BTreeMap::new();
        let mut writers: Vec<(usize, char)> = Vec::new();
        let mut has_scalar_reduce = false;
        let mut has_reduce = false;
        let mut has_union = false;
        let mut has_dropper = false;

        let in_req = |req: &BTreeMap<(usize, usize), BTreeSet<String>>,
                      node_inputs: &[Vec<Option<(usize, usize)>>],
                      id: usize,
                      port: usize|
         -> BTreeSet<String> {
            node_inputs[id][port].and_then(|src| req.get(&src).cloned()).unwrap_or_default()
        };

        let record_var = |var_dims: &mut BTreeMap<char, usize>,
                          var_order: &mut Vec<char>,
                          var: char,
                          dim: usize|
         -> Result<(), TilingError> {
            match var_dims.get(&var) {
                Some(&d) if d != dim => Err(TilingError::DimMismatch { var, a: d, b: dim }),
                Some(_) => Ok(()),
                None => {
                    var_dims.insert(var, dim);
                    var_order.push(var);
                    Ok(())
                }
            }
        };

        for &id in &order {
            match &nodes[id] {
                NodeKind::Root { tensor } => {
                    if lookup(tensor).is_none() {
                        return Err(TilingError::UnknownTensor { name: tensor.clone() });
                    }
                    ref_ann.insert((id, 0), (tensor.clone(), 0));
                    req.insert((id, 0), BTreeSet::new());
                }
                NodeKind::LevelScanner { tensor, index, .. } => {
                    let bound = lookup(tensor).ok_or(TilingError::UnknownTensor { name: tensor.clone() })?;
                    let depth = node_inputs[id][0]
                        .and_then(|src| ref_ann.get(&src))
                        .filter(|(t, _)| t == tensor)
                        .map(|(_, d)| *d)
                        .ok_or(TilingError::Unsupported {
                            reason: format!("cannot trace the reference stream feeding `{tensor}`"),
                        })?;
                    if depth >= bound.levels().len() {
                        return Err(TilingError::Unsupported {
                            reason: format!("tensor `{tensor}` has no level {depth}"),
                        });
                    }
                    let level = bound.level(depth);
                    record_var(&mut var_dims, &mut var_order, *index, level.dimension())?;
                    level_vars.entry(tensor.clone()).or_default().insert(depth, *index);
                    ref_ann.insert((id, 1), (tensor.clone(), depth + 1));
                    let mut r = in_req(&req, &node_inputs, id, 0);
                    // Only compressed/bitvector scans vanish with an empty
                    // tile; dense levels emit every coordinate regardless.
                    if !level.is_dense() {
                        r.insert(tensor.clone());
                    }
                    req.insert((id, 0), r.clone());
                    req.insert((id, 1), r);
                }
                NodeKind::Locator { tensor, index } => {
                    let bound = lookup(tensor).ok_or(TilingError::UnknownTensor { name: tensor.clone() })?;
                    let depth = node_inputs[id][1]
                        .and_then(|src| ref_ann.get(&src))
                        .filter(|(t, _)| t == tensor)
                        .map(|(_, d)| *d)
                        .ok_or(TilingError::Unsupported {
                            reason: format!("cannot trace the reference stream feeding `{tensor}`"),
                        })?;
                    if depth >= bound.levels().len() {
                        return Err(TilingError::Unsupported {
                            reason: format!("tensor `{tensor}` has no level {depth}"),
                        });
                    }
                    let level = bound.level(depth);
                    record_var(&mut var_dims, &mut var_order, *index, level.dimension())?;
                    level_vars.entry(tensor.clone()).or_default().insert(depth, *index);
                    ref_ann.insert((id, 1), (tensor.clone(), depth));
                    ref_ann.insert((id, 2), (tensor.clone(), depth + 1));
                    let mut r = in_req(&req, &node_inputs, id, 0);
                    r.extend(in_req(&req, &node_inputs, id, 1));
                    if !level.is_dense() {
                        r.insert(tensor.clone());
                    }
                    for p in 0..3 {
                        req.insert((id, p), r.clone());
                    }
                }
                NodeKind::Repeater { .. } => {
                    if let Some(ann) = node_inputs[id][1].and_then(|src| ref_ann.get(&src)).cloned() {
                        ref_ann.insert((id, 0), ann);
                    }
                    let mut r = in_req(&req, &node_inputs, id, 0);
                    r.extend(in_req(&req, &node_inputs, id, 1));
                    req.insert((id, 0), r);
                }
                NodeKind::Intersecter { .. } => {
                    for (slot, port) in [(2usize, 1usize), (3, 2)] {
                        if let Some(ann) = node_inputs[id][slot].and_then(|src| ref_ann.get(&src)).cloned() {
                            ref_ann.insert((id, port), ann);
                        }
                    }
                    // An intersection emits only where *both* operands do.
                    let mut r = in_req(&req, &node_inputs, id, 0);
                    r.extend(in_req(&req, &node_inputs, id, 1));
                    for p in 0..3 {
                        req.insert((id, p), r.clone());
                    }
                }
                NodeKind::Unioner { .. } => {
                    has_union = true;
                    for (slot, port) in [(2usize, 1usize), (3, 2)] {
                        if let Some(ann) = node_inputs[id][slot].and_then(|src| ref_ann.get(&src)).cloned() {
                            ref_ann.insert((id, port), ann);
                        }
                    }
                    // A union emits when *either* operand does, so only
                    // tensors required by both sides gate it.
                    let a = in_req(&req, &node_inputs, id, 0);
                    let b = in_req(&req, &node_inputs, id, 1);
                    let r: BTreeSet<String> = a.intersection(&b).cloned().collect();
                    for p in 0..3 {
                        req.insert((id, p), r.clone());
                    }
                }
                // A ConstVal mirrors its shape stream token for token, so —
                // like an array — whatever gates its input gates its output.
                // The scalar binding itself is untiled (no storage levels).
                NodeKind::Array { .. } | NodeKind::ConstVal { .. } => {
                    req.insert((id, 0), in_req(&req, &node_inputs, id, 0));
                }
                NodeKind::Alu { .. } => {
                    // ALUs can synthesize values from empty tokens (x + 0),
                    // so only tensors both inputs require gate the output.
                    let a = in_req(&req, &node_inputs, id, 0);
                    let b = in_req(&req, &node_inputs, id, 1);
                    req.insert((id, 0), a.intersection(&b).cloned().collect());
                }
                NodeKind::Reducer { order } => {
                    has_reduce = true;
                    has_scalar_reduce |= *order == 0;
                    match order {
                        // A scalar reducer emits explicit zeros on bare fiber
                        // boundaries, so nothing gates its output.
                        0 => {
                            req.insert((id, 0), BTreeSet::new());
                        }
                        1 => {
                            let r = in_req(&req, &node_inputs, id, 0);
                            req.insert((id, 0), r.clone());
                            req.insert((id, 1), r);
                        }
                        _ => {
                            let mut r = in_req(&req, &node_inputs, id, 0);
                            r.extend(in_req(&req, &node_inputs, id, 1));
                            for p in 0..3 {
                                req.insert((id, p), r.clone());
                            }
                        }
                    }
                }
                NodeKind::CoordDropper { .. } => {
                    has_dropper = true;
                    // Outer coordinates survive only when their inner fiber
                    // holds data: both streams gate the outer output.
                    let mut outer = in_req(&req, &node_inputs, id, 0);
                    let inner = in_req(&req, &node_inputs, id, 1);
                    outer.extend(inner.iter().cloned());
                    req.insert((id, 0), outer);
                    req.insert((id, 1), inner);
                }
                NodeKind::LevelWriter { index, vals, .. } => {
                    if !vals {
                        writers.push((id, *index));
                    }
                }
                NodeKind::Parallelizer | NodeKind::Serializer | NodeKind::BitvectorConverter => {
                    return Err(TilingError::Unsupported {
                        reason: format!("node `{}` is not executable", nodes[id].label()),
                    });
                }
            }
        }

        // Contraction variables are tileable with Drop-policy accumulation
        // (vector/matrix reducers); with a scalar reducer only the
        // single-writer, dropper-free shape preserves the explicit-zero
        // structure (see the module docs). A union alongside any reducer
        // means an additive term sits *outside* the contraction (residual,
        // MatTransMul): tiling the contraction would re-evaluate that term
        // once per contraction tile and the merger would sum the copies, so
        // those graphs keep their contraction variables whole.
        let output_vars: Vec<char> = writers.iter().map(|&(_, v)| v).collect();
        let contraction_tileable =
            !(has_reduce && has_union) && (!has_scalar_reduce || (writers.len() == 1 && !has_dropper));

        let vars: Vec<TiledVar> = var_order
            .iter()
            .map(|&var| {
                let dim = var_dims[&var];
                let tiled = output_vars.contains(&var) || contraction_tileable;
                TiledVar { var, dim, grid: if tiled { dim.div_ceil(tile) } else { 1 }, tiled }
            })
            .collect();

        // Skip set: the intersection of the level writers' requirements.
        let mut skip_tensors: Option<BTreeSet<String>> = None;
        for &(id, _) in &writers {
            let r = in_req(&req, &node_inputs, id, 0);
            skip_tensors = Some(match skip_tensors {
                None => r,
                Some(acc) => acc.intersection(&r).cloned().collect(),
            });
        }
        let skip_tensors = skip_tensors.unwrap_or_default();

        // Per-tensor level→variable maps, in bound-name order.
        let tensors: Vec<TensorTiling> = level_vars
            .iter()
            .map(|(name, by_depth)| {
                let order = lookup(name).map(|t| t.levels().len()).unwrap_or(0);
                TensorTiling {
                    name: name.clone(),
                    level_vars: (0..order).map(|d| by_depth.get(&d).copied()).collect(),
                }
            })
            .collect();

        Ok(KernelTiling { tile, vars, tensors, output_vars, skip_tensors })
    }

    /// The tile-grid size along every variable, in [`KernelTiling::vars`]
    /// order — the tuple space a tiled executor enumerates.
    pub fn tuple_space(&self) -> Vec<usize> {
        self.vars.iter().map(|v| v.grid).collect()
    }

    /// The coordinate window of variable `var_idx` in tile `t`.
    pub fn var_window(&self, var_idx: usize, t: usize) -> (u32, u32) {
        let v = &self.vars[var_idx];
        if !v.tiled {
            return (0, v.dim as u32);
        }
        let lo = (t * self.tile) as u32;
        (lo, ((t + 1) * self.tile).min(v.dim) as u32)
    }

    /// The per-storage-level tile sizes for tensor `tensor_idx` (the full
    /// dimension for untiled or untraced levels), ready for
    /// [`crate::TileGrid::build`].
    pub fn level_tile_sizes(&self, tensor_idx: usize, tensor: &Tensor) -> Vec<usize> {
        self.tensors[tensor_idx]
            .level_vars
            .iter()
            .enumerate()
            .map(|(d, var)| {
                let dim = tensor.level(d).dimension();
                match var.and_then(|v| self.vars.iter().find(|tv| tv.var == v)) {
                    Some(tv) if tv.tiled => self.tile.min(dim),
                    _ => dim,
                }
            })
            .collect()
    }

    /// The per-level tile key of tensor `tensor_idx` under the variable
    /// tile tuple `tuple` (indices into [`KernelTiling::tuple_space`]).
    pub fn tile_key(&self, tensor_idx: usize, tuple: &[usize]) -> Vec<u32> {
        let mut out = Vec::new();
        self.tile_key_into(tensor_idx, tuple, &mut out);
        out
    }

    /// [`KernelTiling::tile_key`] into a reused buffer — the tile-tuple
    /// enumeration calls this millions of times on large sweeps.
    pub fn tile_key_into(&self, tensor_idx: usize, tuple: &[usize], out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.tensors[tensor_idx].level_vars.iter().map(|var| {
            match var.and_then(|v| self.vars.iter().position(|tv| tv.var == v)) {
                Some(vi) if self.vars[vi].tiled => tuple[vi] as u32,
                _ => 0,
            }
        }));
    }

    /// Index of `var` within [`KernelTiling::vars`], if traced.
    pub fn var_index(&self, var: char) -> Option<usize> {
        self.vars.iter().position(|tv| tv.var == var)
    }
}

/// A row-major flat enumeration of a tile tuple space.
///
/// [`KernelTiling::tuple_space`] gives the grid size per traced variable;
/// this wraps it so an executor can address tuples by a single flat index —
/// which is what lets a parallel tiled backend hand out tuple *ranges* as
/// work items without materializing the (possibly enormous) tuple list.
/// Flat order matches the serial backend's odometer: the last variable
/// varies fastest.
#[derive(Debug, Clone)]
pub struct TupleSpace {
    dims: Vec<usize>,
    total: usize,
}

impl TupleSpace {
    /// Wraps a per-variable grid-size vector (see
    /// [`KernelTiling::tuple_space`]). An empty `dims` describes the
    /// zero-variable space, which has exactly one (empty) tuple.
    pub fn new(dims: Vec<usize>) -> Self {
        let total = dims.iter().product();
        TupleSpace { dims, total }
    }

    /// The grid size along every variable.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of tuples in the space.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Writes the odometer tuple for flat index `i` into `out` (reused
    /// across calls; large sweeps visit millions of tuples).
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.total()`.
    pub fn tuple_at(&self, i: usize, out: &mut Vec<usize>) {
        assert!(i < self.total, "tuple index {i} out of {}", self.total);
        out.clear();
        out.resize(self.dims.len(), 0);
        let mut rest = i;
        for d in (0..self.dims.len()).rev() {
            out[d] = rest % self.dims[d];
            rest /= self.dims[d];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_core::graphs;
    use sam_core::kernels::spmm::SpmmDataflow;
    use sam_tensor::{synth, TensorFormat};

    fn bind(pairs: Vec<(&str, Tensor)>) -> BTreeMap<String, Tensor> {
        pairs.into_iter().map(|(n, t)| (n.to_string(), t)).collect()
    }

    #[test]
    fn gustavson_spmm_tiles_all_three_vars_and_skips_both_operands() {
        let b = synth::random_matrix_sparsity(20, 16, 0.8, 31);
        let c = synth::random_matrix_sparsity(16, 24, 0.8, 32);
        let tensors = bind(vec![
            ("B", Tensor::from_coo("B", &b, TensorFormat::dcsr())),
            ("C", Tensor::from_coo("C", &c, TensorFormat::dcsr())),
        ]);
        let graph = graphs::spmm(SpmmDataflow::LinearCombination);
        let t = KernelTiling::from_graph(&graph, |n| tensors.get(n), 4).unwrap();
        assert_eq!(t.output_vars, vec!['i', 'j']);
        for v in &t.vars {
            assert!(v.tiled, "{} should be tiled", v.var);
        }
        assert_eq!(t.skip_tensors, BTreeSet::from(["B".to_string(), "C".to_string()]));
        let k = t.var_index('k').unwrap();
        assert_eq!(t.vars[k].dim, 16);
        assert_eq!(t.vars[k].grid, 4);
    }

    #[test]
    fn scalar_reduce_with_two_writers_leaves_contraction_untiled() {
        let b = synth::random_matrix_sparsity(12, 10, 0.8, 33);
        let c = synth::random_matrix_sparsity(10, 12, 0.8, 34);
        let tensors = bind(vec![
            ("B", Tensor::from_coo("B", &b, TensorFormat::dcsr())),
            ("C", Tensor::from_coo("C", &c, TensorFormat::dcsc())),
        ]);
        let graph = graphs::spmm(SpmmDataflow::InnerProduct);
        let t = KernelTiling::from_graph(&graph, |n| tensors.get(n), 4).unwrap();
        let k = t.var_index('k').unwrap();
        assert!(!t.vars[k].tiled, "inner-product k must stay untiled");
        assert_eq!(t.vars[k].grid, 1);
        for v in ['i', 'j'] {
            assert!(t.vars[t.var_index(v).unwrap()].tiled);
        }
        // Only B's emptiness reaches every writer.
        assert_eq!(t.skip_tensors, BTreeSet::from(["B".to_string()]));
    }

    #[test]
    fn spmv_coiteration_skips_only_on_the_matrix() {
        let b = synth::random_matrix_sparsity(12, 10, 0.8, 35);
        let c = synth::random_vector(10, 5, 36);
        let tensors = bind(vec![
            ("B", Tensor::from_coo("B", &b, TensorFormat::dcsr())),
            ("c", Tensor::from_coo("c", &c, TensorFormat::sparse_vec())),
        ]);
        let t = KernelTiling::from_graph(&graphs::spmv_coiteration(), |n| tensors.get(n), 4).unwrap();
        // Single writer, no dropper: the scalar-reduce contraction (j) may
        // still be tiled.
        assert!(t.vars.iter().all(|v| v.tiled));
        // Skipping on the (explicit-zero-producing) vector would drop rows.
        assert_eq!(t.skip_tensors, BTreeSet::from(["B".to_string()]));
    }

    #[test]
    fn sddmm_skips_on_the_sparse_operand_only() {
        let b = synth::random_matrix_sparsity(12, 10, 0.8, 37);
        let c = synth::dense_matrix(12, 4, 38);
        let d = synth::dense_matrix(10, 4, 39);
        let tensors = bind(vec![
            ("B", Tensor::from_coo("B", &b, TensorFormat::dcsr())),
            ("C", Tensor::from_coo("C", &c, TensorFormat::dense(2))),
            ("D", Tensor::from_coo("D", &d, TensorFormat::dense(2))),
        ]);
        let t = KernelTiling::from_graph(&graphs::sddmm_coiteration(), |n| tensors.get(n), 4).unwrap();
        assert_eq!(t.skip_tensors, BTreeSet::from(["B".to_string()]));
        // Scalar reduce with two writers: k stays untiled, i and j tile.
        assert!(!t.vars[t.var_index('k').unwrap()].tiled);
        assert!(t.vars[t.var_index('i').unwrap()].tiled);
        assert!(t.vars[t.var_index('j').unwrap()].tiled);
    }

    #[test]
    fn dimension_conflicts_are_rejected() {
        let b = synth::random_vector(10, 4, 40);
        let c = synth::random_vector(12, 4, 41);
        let tensors = bind(vec![
            ("b", Tensor::from_coo("b", &b, TensorFormat::sparse_vec())),
            ("c", Tensor::from_coo("c", &c, TensorFormat::sparse_vec())),
        ]);
        let err = KernelTiling::from_graph(&graphs::vec_elem_mul(true), |n| tensors.get(n), 4);
        assert!(matches!(err, Err(TilingError::DimMismatch { var: 'i', .. })), "{err:?}");
    }

    #[test]
    fn tile_keys_follow_the_storage_order() {
        let b = synth::random_matrix_sparsity(16, 16, 0.8, 42);
        let c = synth::random_matrix_sparsity(16, 16, 0.8, 43);
        let tensors = bind(vec![
            // Outer-product dataflow: B is DCSC, so storage order is (k, i).
            ("B", Tensor::from_coo("B", &b, TensorFormat::dcsc())),
            ("C", Tensor::from_coo("C", &c, TensorFormat::dcsr())),
        ]);
        let graph = graphs::spmm(SpmmDataflow::OuterProduct);
        let t = KernelTiling::from_graph(&graph, |n| tensors.get(n), 4).unwrap();
        let (i, k) = (t.var_index('i').unwrap(), t.var_index('k').unwrap());
        let mut tuple = vec![0usize; t.vars.len()];
        tuple[i] = 2;
        tuple[k] = 3;
        let b_idx = t.tensors.iter().position(|x| x.name == "B").unwrap();
        // B's level 0 iterates k, level 1 iterates i.
        assert_eq!(t.tensors[b_idx].level_vars, vec![Some('k'), Some('i')]);
        assert_eq!(t.tile_key(b_idx, &tuple), vec![3, 2]);
    }

    #[test]
    fn tuple_space_flat_order_matches_the_odometer() {
        let space = TupleSpace::new(vec![2, 3, 2]);
        assert_eq!(space.total(), 12);
        assert_eq!(space.dims(), &[2, 3, 2]);
        // Reference odometer: last variable fastest.
        let mut expect = Vec::new();
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..2 {
                    expect.push(vec![a, b, c]);
                }
            }
        }
        let mut tuple = Vec::new();
        for (i, want) in expect.iter().enumerate() {
            space.tuple_at(i, &mut tuple);
            assert_eq!(&tuple, want, "flat index {i}");
        }
    }

    #[test]
    fn tuple_space_edge_shapes() {
        // Zero variables: one empty tuple.
        let scalar = TupleSpace::new(Vec::new());
        assert_eq!(scalar.total(), 1);
        let mut tuple = vec![7usize];
        scalar.tuple_at(0, &mut tuple);
        assert!(tuple.is_empty());
        // A zero-length axis empties the whole space.
        assert_eq!(TupleSpace::new(vec![3, 0, 2]).total(), 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn tuple_space_rejects_out_of_range_indices() {
        TupleSpace::new(vec![2, 2]).tuple_at(4, &mut Vec::new());
    }
}
