//! Cross-backend, cross-parallelism equivalence: every kernel graph in the
//! `sam_core::graphs` catalog is executed by the cycle backend, the serial
//! fast backend and the parallel fast backend at two thread counts, and
//! every result is bit-identical to the serial run and numerically equal to
//! the dense reference evaluator.

use sam_core::graph::SamGraph;
use sam_core::graphs;
use sam_core::kernels::spmm::SpmmDataflow;
use sam_exec::{CycleBackend, ExecRequest, FastBackend, Inputs};
use sam_tensor::expr::{table1, Assignment};
use sam_tensor::reference::Environment;
use sam_tensor::{synth, TensorFormat};

/// The whole kernel catalog with operands sized to stress multi-fiber
/// iteration while keeping the cycle backend fast enough for CI.
fn catalog() -> Vec<(SamGraph, Inputs, Assignment)> {
    let vb = synth::random_vector(150, 45, 301);
    let vc = synth::random_vector(150, 40, 302);
    let m = synth::random_matrix_sparsity(24, 18, 0.85, 303);
    let n = synth::random_matrix_sparsity(18, 21, 0.85, 304);
    let sv = synth::random_vector(18, 18, 305);
    let dense_c = synth::dense_matrix(24, 6, 306);
    let dense_d = synth::dense_matrix(18, 6, 307);
    let b3 = synth::random_tensor3([14, 8, 9], 160, 308);
    let fc = synth::random_matrix_sparsity(10, 8, 0.55, 309);
    let fd = synth::random_matrix_sparsity(10, 9, 0.55, 310);

    vec![
        (
            graphs::vec_elem_mul(true),
            Inputs::new().coo("b", &vb, TensorFormat::sparse_vec()).coo("c", &vc, TensorFormat::sparse_vec()),
            table1::vec_elem_mul(),
        ),
        (graphs::identity(), Inputs::new().coo("B", &m, TensorFormat::dcsr()), table1::identity()),
        (
            graphs::spmv(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("c", &sv, TensorFormat::dense_vec()),
            table1::spmv(),
        ),
        // The co-iteration SpMV dataflow (the skip twins' base graph) must
        // itself match the dense reference, so the skip acceptance test
        // compares against validated ground truth.
        (
            graphs::spmv_coiteration(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("c", &sv, TensorFormat::sparse_vec()),
            table1::spmv(),
        ),
        (
            graphs::spmm(SpmmDataflow::LinearCombination),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &n, TensorFormat::dcsr()),
            table1::spmm(),
        ),
        (
            graphs::spmm(SpmmDataflow::InnerProduct),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &n, TensorFormat::dcsc()),
            table1::spmm(),
        ),
        (
            graphs::spmm(SpmmDataflow::OuterProduct),
            Inputs::new().coo("B", &m, TensorFormat::dcsc()).coo("C", &n, TensorFormat::dcsr()),
            table1::spmm(),
        ),
        (
            graphs::sddmm_coiteration(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &dense_c, TensorFormat::dense(2)).coo(
                "D",
                &dense_d,
                TensorFormat::dense(2),
            ),
            table1::sddmm(),
        ),
        (
            graphs::mttkrp(),
            // The factor matrices iterate k (resp. l) before j, so they are
            // bound transposed: DCSC of their logical (j,k) / (j,l) shapes.
            Inputs::new().coo("B", &b3, TensorFormat::csf(3)).coo("C", &fc, TensorFormat::dcsc()).coo(
                "D",
                &fd,
                TensorFormat::dcsc(),
            ),
            table1::mttkrp(),
        ),
    ]
}

#[test]
fn every_kernel_agrees_across_backends_and_thread_counts() {
    for (graph, inputs, assignment) in catalog() {
        // Dense reference over the same operands.
        let mut env = Environment::new();
        for (name, tensor) in inputs.iter() {
            env.insert(name, tensor.to_dense());
        }
        env.bind_dims(&assignment, &[]);
        let expect = env.evaluate(&assignment).unwrap();

        let serial = ExecRequest::new(&graph, &inputs)
            .executor(&FastBackend::serial())
            .run()
            .unwrap_or_else(|e| panic!("{}: serial fast run failed: {e}", graph.name));
        assert_eq!(serial.backend, "fast-serial");
        let serial_out = serial.output.expect("tensor output");
        assert!(
            serial_out.to_dense().approx_eq(&expect),
            "{}: serial fast output diverged from the dense reference",
            graph.name
        );

        let cycle = ExecRequest::new(&graph, &inputs)
            .executor(&CycleBackend::default())
            .run()
            .unwrap_or_else(|e| panic!("{}: cycle run failed: {e}", graph.name));
        assert_eq!(cycle.backend, "cycle");
        assert_eq!(
            cycle.output.expect("tensor output"),
            serial_out,
            "{}: cycle and fast backends disagree",
            graph.name
        );

        for threads in [2, 4] {
            let backend = FastBackend::threads(threads);
            let parallel = ExecRequest::new(&graph, &inputs)
                .executor(&backend)
                .run()
                .unwrap_or_else(|e| panic!("{}: Threads({threads}) run failed: {e}", graph.name));
            assert_eq!(parallel.backend, "fast-threads");
            assert_eq!(
                parallel.output.expect("tensor output"),
                serial_out,
                "{}: Threads({threads}) diverged from serial",
                graph.name
            );
            assert_eq!(
                parallel.vals, serial.vals,
                "{}: Threads({threads}) produced different raw values",
                graph.name
            );
            assert_eq!(
                parallel.tokens, serial.tokens,
                "{}: Threads({threads}) moved a different token count",
                graph.name
            );
        }
    }
}

/// Parallel execution propagates the root-cause error, not a downstream
/// symptom: structurally misaligned streams must surface as the observing
/// node's own error on every parallelism level.
#[test]
fn parallel_errors_match_serial_errors() {
    use sam_core::build::GraphBuilder;
    use sam_exec::ExecError;

    // A vector reducer whose coordinate stream (b's 32 coordinates) is far
    // longer than its value stream (c's 2 values): the pairwise walk hits
    // a data/stop mismatch partway through, after real tokens have already
    // flowed, which the planner legitimately cannot see.
    let mut g = GraphBuilder::new("bad");
    let rb = g.root("b");
    let (b_crd, _b_ref) = g.scan("b", 'i', true, rb);
    let rc = g.root("c");
    let (_c_crd, c_ref) = g.scan("c", 'i', true, rc);
    let c_vals = g.array("c", c_ref);
    let (x_crd, x_val) = g.reduce_vector(b_crd, c_vals);
    g.write_level("x", 'i', x_crd);
    g.write_vals("x", x_val);
    let graph = g.finish();

    let b = synth::random_vector(64, 32, 311);
    let c = synth::random_vector(64, 2, 312);
    let inputs =
        Inputs::new().coo("b", &b, TensorFormat::sparse_vec()).coo("c", &c, TensorFormat::sparse_vec());
    let serial = ExecRequest::new(&graph, &inputs).executor(&FastBackend::serial()).run();
    let parallel = ExecRequest::new(&graph, &inputs).executor(&FastBackend::threads(3)).run();
    let Err(ExecError::Misaligned { label: serial_label }) = serial else {
        panic!("serial run should fail on the misaligned reducer streams, got {serial:?}");
    };
    let Err(ExecError::Misaligned { label: parallel_label }) = parallel else {
        panic!("parallel run should fail on the misaligned reducer streams, got {parallel:?}");
    };
    assert_eq!(serial_label, parallel_label);
    assert!(serial_label.contains("reduce"), "error should name the reducer, was `{serial_label}`");
}

/// The skip-enabled twins of the catalog kernels: `(skip-free graph,
/// skip graph, inputs)` triples over operands skewed enough that skipping
/// has something to do.
fn skip_twins() -> Vec<(SamGraph, SamGraph, Inputs)> {
    // One dense-ish vector against a hypersparse one: the Section 4.2 case.
    let vb = synth::random_vector(4000, 3600, 401);
    let vc = synth::random_vector(4000, 25, 402);
    let m = synth::random_matrix_sparsity(24, 18, 0.55, 403);
    let n = synth::random_matrix_sparsity(18, 21, 0.92, 404);
    let sv = synth::random_vector(18, 3, 405);
    let dense_c = synth::dense_matrix(24, 6, 406);
    let dense_d = synth::dense_matrix(18, 6, 407);

    vec![
        (
            graphs::vec_elem_mul(true),
            graphs::vec_elem_mul_with_skip(true),
            Inputs::new().coo("b", &vb, TensorFormat::sparse_vec()).coo("c", &vc, TensorFormat::sparse_vec()),
        ),
        (
            graphs::spmv_coiteration(),
            graphs::spmv_with_skip(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("c", &sv, TensorFormat::sparse_vec()),
        ),
        (
            graphs::spmm(SpmmDataflow::LinearCombination),
            graphs::spmm_with_skip(SpmmDataflow::LinearCombination),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &n, TensorFormat::dcsr()),
        ),
        (
            graphs::spmm(SpmmDataflow::InnerProduct),
            graphs::spmm_with_skip(SpmmDataflow::InnerProduct),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &n, TensorFormat::dcsc()),
        ),
        (
            graphs::spmm(SpmmDataflow::OuterProduct),
            graphs::spmm_with_skip(SpmmDataflow::OuterProduct),
            Inputs::new().coo("B", &m, TensorFormat::dcsc()).coo("C", &n, TensorFormat::dcsr()),
        ),
        (
            graphs::sddmm_coiteration(),
            graphs::sddmm_with_skip(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &dense_c, TensorFormat::dense(2)).coo(
                "D",
                &dense_d,
                TensorFormat::dense(2),
            ),
        ),
    ]
}

/// The acceptance gate for coordinate skipping: every skip graph computes
/// exactly what its skip-free twin computes, on the cycle backend, the
/// serial fast backend and the parallel fast backend.
#[test]
fn skip_graphs_match_their_skip_free_twins_on_every_backend() {
    for (plain, with_skip, inputs) in skip_twins() {
        let reference = ExecRequest::new(&plain, &inputs)
            .executor(&FastBackend::serial())
            .run()
            .unwrap_or_else(|e| panic!("{}: skip-free serial run failed: {e}", plain.name));
        let expect = reference.output.expect("tensor output");

        for (what, run) in [
            ("fast-serial", ExecRequest::new(&with_skip, &inputs).executor(&FastBackend::serial()).run()),
            (
                "fast-Threads(4)",
                ExecRequest::new(&with_skip, &inputs).executor(&FastBackend::threads(4)).run(),
            ),
            ("cycle", ExecRequest::new(&with_skip, &inputs).executor(&CycleBackend::default()).run()),
        ] {
            let run = run.unwrap_or_else(|e| panic!("{}: {what} skip run failed: {e}", with_skip.name));
            assert_eq!(
                run.output.expect("tensor output"),
                expect,
                "{}: {what} skip run diverged from the skip-free twin",
                with_skip.name
            );
        }
    }
}

/// Fusion must actually pay: on skewed vectors, the fast serial backend
/// materializes far fewer tokens for the skip graph than for its twin,
/// because the fused scanners never emit the galloped-over coordinates.
#[test]
fn skip_fusion_reduces_materialized_tokens_on_skewed_inputs() {
    let vb = synth::random_vector(20_000, 18_000, 411);
    let vc = synth::random_vector(20_000, 40, 412);
    let inputs =
        Inputs::new().coo("b", &vb, TensorFormat::sparse_vec()).coo("c", &vc, TensorFormat::sparse_vec());
    let plain = ExecRequest::new(&graphs::vec_elem_mul(true), &inputs)
        .executor(&FastBackend::serial())
        .run()
        .unwrap();
    let skip = ExecRequest::new(&graphs::vec_elem_mul_with_skip(true), &inputs)
        .executor(&FastBackend::serial())
        .run()
        .unwrap();
    assert_eq!(plain.output.unwrap(), skip.output.unwrap());
    assert!(
        skip.tokens * 4 < plain.tokens,
        "skip fusion should cut token traffic by far more than 4x on skewed vectors: \
         {} (skip) vs {} (plain)",
        skip.tokens,
        plain.tokens
    );
}

/// The chunked-channel spill path: depth 1 with tiny chunks forces the
/// bounded channels to spill constantly; results must not change.
#[test]
fn depth_one_chunk_config_forces_spills_without_changing_results() {
    use sam_streams::chunked::ChunkConfig;

    let m = synth::random_matrix_sparsity(40, 30, 0.8, 421);
    let n = synth::random_matrix_sparsity(30, 35, 0.8, 422);
    let inputs = Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &n, TensorFormat::dcsr());
    let graph = graphs::spmm(SpmmDataflow::LinearCombination);

    let mut env = Environment::new();
    for (name, tensor) in inputs.iter() {
        env.insert(name, tensor.to_dense());
    }
    env.bind_dims(&table1::spmm(), &[]);
    let expect = env.evaluate(&table1::spmm()).unwrap();

    let serial = ExecRequest::new(&graph, &inputs).executor(&FastBackend::serial()).run().unwrap();
    let spilly = ChunkConfig { chunk_len: 4, depth: 1 };
    for threads in [2, 4, 8] {
        let backend = FastBackend::threads(threads).with_chunk_config(spilly);
        let run = ExecRequest::new(&graph, &inputs)
            .executor(&backend)
            .run()
            .unwrap_or_else(|e| panic!("Threads({threads}) depth-1 run failed: {e}"));
        let out = run.output.expect("tensor output");
        assert!(out.to_dense().approx_eq(&expect), "Threads({threads}) depth-1 diverged from reference");
        assert_eq!(out, serial.output.clone().expect("tensor output"));
        assert_eq!(run.vals, serial.vals);
    }
}
