//! Observability invariants: per-node token counts from [`CountersSink`]
//! are bit-identical between the serial and threaded fast backends for
//! every kernel in the catalog, per-node totals add up to
//! [`Execution::tokens`] on all four backends, and traces carry the
//! human-readable node labels the builder attached.

use sam_core::graph::SamGraph;
use sam_core::graphs;
use sam_core::kernels::spmm::SpmmDataflow;
use sam_exec::{CountersSink, CycleBackend, ExecProfile, Executor, FastBackend, Inputs, Plan, TiledBackend};
use sam_tensor::{synth, CooTensor, TensorFormat};

/// The kernel catalog from the equivalence suite, sized down slightly: each
/// entry is profiled under four backend configurations.
fn catalog() -> Vec<(SamGraph, Inputs)> {
    let vb = synth::random_vector(150, 45, 301);
    let vc = synth::random_vector(150, 40, 302);
    let m = synth::random_matrix_sparsity(24, 18, 0.85, 303);
    let n = synth::random_matrix_sparsity(18, 21, 0.85, 304);
    let sv = synth::random_vector(18, 18, 305);
    let dense_c = synth::dense_matrix(24, 6, 306);
    let dense_d = synth::dense_matrix(18, 6, 307);
    let b3 = synth::random_tensor3([14, 8, 9], 160, 308);
    let fc = synth::random_matrix_sparsity(10, 8, 0.55, 309);
    let fd = synth::random_matrix_sparsity(10, 9, 0.55, 310);

    vec![
        (
            graphs::vec_elem_mul(true),
            Inputs::new().coo("b", &vb, TensorFormat::sparse_vec()).coo("c", &vc, TensorFormat::sparse_vec()),
        ),
        (graphs::identity(), Inputs::new().coo("B", &m, TensorFormat::dcsr())),
        (
            graphs::spmv(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("c", &sv, TensorFormat::dense_vec()),
        ),
        (
            graphs::spmv_coiteration(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("c", &sv, TensorFormat::sparse_vec()),
        ),
        (
            graphs::spmv_with_skip(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("c", &sv, TensorFormat::sparse_vec()),
        ),
        (
            graphs::spmm(SpmmDataflow::LinearCombination),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &n, TensorFormat::dcsr()),
        ),
        (
            graphs::spmm(SpmmDataflow::InnerProduct),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &n, TensorFormat::dcsc()),
        ),
        (
            graphs::spmm(SpmmDataflow::OuterProduct),
            Inputs::new().coo("B", &m, TensorFormat::dcsc()).coo("C", &n, TensorFormat::dcsr()),
        ),
        (
            graphs::sddmm_coiteration(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &dense_c, TensorFormat::dense(2)).coo(
                "D",
                &dense_d,
                TensorFormat::dense(2),
            ),
        ),
        (
            graphs::mttkrp(),
            Inputs::new().coo("B", &b3, TensorFormat::csf(3)).coo("C", &fc, TensorFormat::dcsc()).coo(
                "D",
                &fd,
                TensorFormat::dcsc(),
            ),
        ),
    ]
}

fn profiled(backend: &dyn Executor, plan: &Plan, inputs: &Inputs) -> (u64, ExecProfile) {
    let sink = CountersSink::new();
    let run = backend.run_traced(plan, inputs, &sink).unwrap_or_else(|e| panic!("traced run failed: {e}"));
    let profile = run.profile.expect("traced runs attach a profile");
    (run.tokens, profile)
}

/// Per-node token counts and invocation counts must not depend on how the
/// fast backend is scheduled: serial and Threads(4) classify the same
/// streams and must agree node for node, bit for bit.
#[test]
fn per_node_counts_identical_between_serial_and_threads() {
    for (graph, inputs) in catalog() {
        let plan = Plan::build(&graph, &inputs).unwrap_or_else(|e| panic!("{}: {e}", graph.name));
        let (_, serial) = profiled(&FastBackend::serial(), &plan, &inputs);
        let (_, threads) = profiled(&FastBackend::threads(4), &plan, &inputs);
        assert_eq!(serial.nodes.len(), threads.nodes.len(), "{}", graph.name);
        for (s, t) in serial.nodes.iter().zip(&threads.nodes) {
            assert_eq!(s.label, t.label, "{}: node {} label differs", graph.name, s.index);
            assert_eq!(
                s.tokens, t.tokens,
                "{}: node {} ({}) token counts differ between fast-serial and fast-threads",
                graph.name, s.index, s.label
            );
            assert_eq!(
                s.invocations, t.invocations,
                "{}: node {} ({}) invocation counts differ",
                graph.name, s.index, s.label
            );
        }
    }
}

/// The per-node classification is exhaustive: summed over nodes it equals
/// the aggregate `Execution::tokens` the backend reports — on the fast
/// serial, fast threaded and cycle backends, for every catalog kernel.
#[test]
fn profile_totals_match_execution_tokens() {
    let backends: [&dyn Executor; 3] =
        [&FastBackend::serial(), &FastBackend::threads(4), &CycleBackend::default()];
    for (graph, inputs) in catalog() {
        let plan = Plan::build(&graph, &inputs).unwrap_or_else(|e| panic!("{}: {e}", graph.name));
        for backend in backends {
            let (tokens, profile) = profiled(backend, &plan, &inputs);
            assert_eq!(
                profile.total_tokens(),
                tokens,
                "{}: profile total diverges from Execution::tokens on `{}`",
                graph.name,
                backend.name()
            );
        }
    }
}

/// The tiled backend accumulates per-node counts across tile tuples; the
/// grand total still equals its aggregate token count.
#[test]
fn tiled_profile_totals_match_execution_tokens() {
    let int = |coo: &CooTensor| {
        CooTensor::from_entries(
            coo.shape().to_vec(),
            coo.entries().iter().map(|(p, v)| (p.clone(), (v * 4.0).round())).collect(),
        )
        .unwrap()
    };
    let b = int(&synth::random_matrix_sparsity(40, 32, 0.6, 311));
    let c = int(&synth::random_matrix_sparsity(32, 40, 0.6, 312));
    let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &c, TensorFormat::dcsr());
    let graph = graphs::spmm(SpmmDataflow::LinearCombination);
    let plan = Plan::build(&graph, &inputs).unwrap();
    let (tokens, profile) = profiled(&TiledBackend::with_tile(8), &plan, &inputs);
    assert!(tokens > 0);
    assert_eq!(profile.total_tokens(), tokens);
    // Every tile tuple re-runs the graph, so nodes fire more than once.
    assert!(profile.nodes.iter().any(|n| n.invocations > 1), "tiled runs accumulate invocations");
}

/// Traces carry the builder's human-readable labels: a merge shows up as
/// `intersect(j: B,c)`, not a bare `intersect(j)` — on every backend.
#[test]
fn traces_carry_enriched_node_labels() {
    let m = synth::random_matrix_sparsity(24, 18, 0.85, 303);
    let sv = synth::random_vector(18, 18, 305);
    let inputs = Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("c", &sv, TensorFormat::sparse_vec());
    let graph = graphs::spmv_coiteration();
    let plan = Plan::build(&graph, &inputs).unwrap();
    let backends: [&dyn Executor; 3] =
        [&FastBackend::serial(), &FastBackend::threads(2), &CycleBackend::default()];
    for backend in backends {
        let (_, profile) = profiled(backend, &plan, &inputs);
        assert!(
            profile.nodes.iter().any(|n| n.label == "intersect(j: B,c)"),
            "`{}` trace is missing the enriched intersect label: {:?}",
            backend.name(),
            profile.nodes.iter().map(|n| n.label.clone()).collect::<Vec<_>>()
        );
    }
}

/// Fiber splitting must be observability-invisible: with the split
/// threshold forced to 1 (every node with a worker pool splits, regardless
/// of host core count), per-node token and invocation counts still match
/// fast-serial bit for bit on every catalog kernel.
#[test]
fn per_node_counts_identical_under_forced_splitting() {
    for (graph, inputs) in catalog() {
        let plan = Plan::build(&graph, &inputs).unwrap_or_else(|e| panic!("{}: {e}", graph.name));
        let (serial_tokens, serial) = profiled(&FastBackend::serial(), &plan, &inputs);
        let (split_tokens, split) =
            profiled(&FastBackend::threads(4).with_split_threshold(1), &plan, &inputs);
        assert_eq!(serial_tokens, split_tokens, "{}", graph.name);
        assert_eq!(serial.nodes.len(), split.nodes.len(), "{}", graph.name);
        for (s, t) in serial.nodes.iter().zip(&split.nodes) {
            assert_eq!(s.label, t.label, "{}: node {} label differs", graph.name, s.index);
            assert_eq!(
                s.tokens, t.tokens,
                "{}: node {} ({}) token counts differ under forced splitting",
                graph.name, s.index, s.label
            );
            assert_eq!(
                s.invocations, t.invocations,
                "{}: node {} ({}) invocation counts differ under forced splitting",
                graph.name, s.index, s.label
            );
        }
    }
}

/// Work-stealing runs surface per-worker scheduler counters, and those
/// counters stay internally consistent: steals never exceed executed
/// tasks, and no worker reports more busy time than the run's wall clock.
#[test]
fn worker_counters_are_consistent_with_wall_time() {
    for (graph, inputs) in catalog() {
        let plan = Plan::build(&graph, &inputs).unwrap_or_else(|e| panic!("{}: {e}", graph.name));
        let backend = FastBackend::threads(4).with_split_threshold(1);
        let sink = CountersSink::new();
        let run = backend.run_traced(&plan, &inputs, &sink).unwrap();
        let profile = run.profile.expect("traced runs attach a profile");
        assert_eq!(profile.workers.len(), 4, "{}", graph.name);
        let elapsed_ns = run.elapsed.as_nanos() as u64;
        // Generous slack for timer granularity on coarse clocks.
        let ceiling = elapsed_ns + 10_000_000;
        let mut total_tasks = 0u64;
        for w in &profile.workers {
            assert!(w.steals <= w.tasks, "{}: worker {} stole more than it ran", graph.name, w.index);
            assert!(
                w.busy_ns <= ceiling,
                "{}: worker {} busy {}ns exceeds wall {}ns",
                graph.name,
                w.index,
                w.busy_ns,
                elapsed_ns
            );
            total_tasks += w.tasks;
        }
        assert_eq!(profile.total_steals(), profile.workers.iter().map(|w| w.steals).sum::<u64>());
        // Every node evaluation runs somewhere: the pool accounts for at
        // least one task per planned node (skip targets are folded into
        // their consumers, splits add more).
        assert!(
            total_tasks >= profile.nodes.iter().filter(|n| n.invocations > 0).count() as u64,
            "{}: {} tasks for {} active nodes",
            graph.name,
            total_tasks,
            profile.nodes.len()
        );
        // Serial runs report no workers at all.
        let (_, serial) = profiled(&FastBackend::serial(), &plan, &inputs);
        assert!(serial.workers.is_empty());
    }
}

/// The threaded backend attributes channel stalls: profiles include
/// per-channel records and the skew kernel's serial bottleneck shows up as
/// blocked time somewhere in the graph.
#[test]
fn threaded_profiles_report_channels() {
    let m = synth::random_matrix_sparsity(60, 80, 0.4, 313);
    let sv = synth::random_vector(80, 20, 314);
    let inputs = Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("c", &sv, TensorFormat::sparse_vec());
    let graph = graphs::spmv_coiteration();
    let plan = Plan::build(&graph, &inputs).unwrap();
    let (_, profile) = profiled(&FastBackend::threads(4), &plan, &inputs);
    assert!(!profile.channels.is_empty(), "threaded runs record every chunked channel");
    assert!(profile.channels.iter().all(|c| c.label.contains("->")), "channel labels name both ends");
    // Serial runs have no channels at all.
    let (_, serial) = profiled(&FastBackend::serial(), &plan, &inputs);
    assert!(serial.channels.is_empty());
}
