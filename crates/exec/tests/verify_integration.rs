//! The static verifier wired into the planning path: every graph the
//! planner rejects is rejected by `sam-verify` first with more specific
//! diagnostics, and the deadlock classifier's verdicts line up with the
//! spills the pipelined backend actually observes.

use sam_core::graph::{NodeId, NodeKind, SamGraph, StreamKind};
use sam_core::graphs;
use sam_core::kernels::spmm::SpmmDataflow;
use sam_exec::{ExecRequest, FastBackend, Inputs, Plan, PlanCache, PlanError, Planner};
use sam_streams::chunked::ChunkConfig;
use sam_tensor::{synth, TensorFormat};
use sam_verify::{deadlock, Bindings, ChannelBudget, Rule};

fn vec_inputs() -> Inputs {
    let b = synth::random_vector(64, 20, 1);
    let c = synth::random_vector(64, 22, 2);
    Inputs::new().coo("b", &b, TensorFormat::sparse_vec()).coo("c", &c, TensorFormat::sparse_vec())
}

/// Broken `(graph, inputs)` pairs covering structural and binding-level
/// defect classes the planner rejects.
fn broken_cases() -> Vec<(&'static str, SamGraph, Inputs)> {
    // Structural: an unsupported primitive appended to a valid kernel.
    let mut unsupported = graphs::vec_elem_mul(true);
    unsupported.add_node(NodeKind::Parallelizer);

    // Structural: the values writer loses its input stream.
    let mut dangling = SamGraph::new("dangling");
    dangling.add_node(NodeKind::Root { tensor: "b".into() });
    dangling.add_node(NodeKind::LevelScanner { tensor: "b".into(), index: 'i', compressed: true });
    dangling.add_node(NodeKind::LevelWriter { tensor: "x".into(), index: 'i', vals: false });
    dangling.add_node(NodeKind::LevelWriter { tensor: "x".into(), index: 'i', vals: true });
    dangling.add_edge_on(NodeId(0), 0, NodeId(1), 0, StreamKind::Ref, "b ref");
    dangling.add_edge_on(NodeId(1), 0, NodeId(2), 0, StreamKind::Crd, "i crd");

    // Binding-level: an unbound tensor, a dense vector under a compressed
    // scanner, and a matrix bound to a single-level vector kernel.
    let missing = Inputs::new().coo("b", &synth::random_vector(64, 20, 3), TensorFormat::sparse_vec());
    let dense = Inputs::new().coo("b", &synth::random_vector(64, 20, 4), TensorFormat::dense_vec()).coo(
        "c",
        &synth::random_vector(64, 22, 5),
        TensorFormat::dense_vec(),
    );
    let matrix = Inputs::new()
        .coo("b", &synth::random_matrix_sparsity(16, 16, 0.5, 6), TensorFormat::dcsr())
        .coo("c", &synth::random_vector(64, 22, 7), TensorFormat::sparse_vec());

    vec![
        ("unsupported-node", unsupported, vec_inputs()),
        ("dangling-input", dangling, vec_inputs()),
        ("unknown-tensor", graphs::vec_elem_mul(true), missing),
        ("format-mismatch", graphs::vec_elem_mul(true), dense),
        ("rank-mismatch", graphs::vec_elem_mul(true), matrix),
    ]
}

/// Every planner rejection is preceded by a verifier rejection on the
/// `Planner` path, and the verifier's diagnostics carry more than the
/// planner's single first-error (rule id, node anchor, full list).
#[test]
fn planner_rejections_are_a_strict_subset_of_verifier_findings() {
    for (name, graph, inputs) in broken_cases() {
        let direct = Plan::build(&graph, &inputs);
        assert!(direct.is_err(), "{name}: the planner itself must reject this case");

        match Planner::uncached().plan(&graph, &inputs) {
            Err(PlanError::Rejected { diagnostics }) => {
                assert!(!diagnostics.is_empty(), "{name}: rejection must carry diagnostics");
                for d in &diagnostics {
                    assert!(!d.rule.id().is_empty(), "{name}: every diagnostic names its rule");
                }
            }
            other => panic!("{name}: expected PlanError::Rejected, got {other:?}"),
        }
    }
}

/// The verifier also gates the cached planning path, and rejections are
/// never cached.
#[test]
fn verifier_rejection_reaches_the_cache_path() {
    let (_, graph, inputs) = broken_cases().remove(0);
    let cache = PlanCache::new(8);
    for _ in 0..2 {
        match cache.get_or_plan(&graph, &inputs) {
            Err(PlanError::Rejected { .. }) => {}
            other => panic!("expected PlanError::Rejected, got {other:?}"),
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.entries, 0, "failed plans must not be cached");
    assert_eq!(stats.misses, 2, "both lookups re-verified");
}

/// Graphs every backend runs cleanly still plan cleanly through the
/// verifier gate (no false positives on the catalog path).
#[test]
fn clean_graphs_pass_the_gate() {
    let plan = Planner::uncached().plan(&graphs::vec_elem_mul(true), &vec_inputs()).unwrap();
    assert!(!plan.order().is_empty());
}

/// Cross-validation of the static deadlock classifier against the
/// pipelined backend's observed spill escapes. With one thread per node
/// every consumer is claimed, so any spill that still happens is
/// *structural* — a producer running ahead of a reconvergent branch that
/// stages tokens — exactly the shape `deadlock::analyze` classifies. The
/// classifier must flag every budget the backend spills at, and must stay
/// silent at planner-scale budgets, which run spill-free.
#[test]
fn deadlock_classifier_matches_observed_spills() {
    let n = 64;
    let graph = graphs::spmm(SpmmDataflow::LinearCombination);
    let b = synth::random_matrix_nnz(n, n, n * n / 2, 31);
    let c = synth::random_matrix_nnz(n, n, n * n / 2, 32);
    let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &c, TensorFormat::dcsr());
    let bt = sam_tensor::Tensor::from_coo("B", &b, TensorFormat::dcsr());
    let ct = sam_tensor::Tensor::from_coo("C", &c, TensorFormat::dcsr());
    let bindings = Bindings::new().bind("B", &bt).bind("C", &ct);

    let serial = ExecRequest::new(&graph, &inputs).executor(&FastBackend::serial()).run().unwrap();

    let tiny = ChunkConfig { chunk_len: 4, depth: 1 };
    let threads = graph.len(); // every node claimed: spills are structural
    let spilly = FastBackend::threads(threads).with_chunk_config(tiny);
    let run = ExecRequest::new(&graph, &inputs).executor(&spilly).run().unwrap();
    assert_eq!(run.output, serial.output, "the spill escape must not change results");

    let verdict =
        deadlock::analyze(&graph, &bindings, ChannelBudget { chunk_len: tiny.chunk_len, depth: tiny.depth });
    if run.spills > 0 {
        assert!(
            verdict.diagnostics.iter().any(|d| d.rule == Rule::BoundedDeadlock),
            "backend spilled {} times at a 4-token budget but the classifier calls the \
             topology safe",
            run.spills
        );
    }
    // This workload is known to stress the budget — the cross-check above
    // must not pass vacuously.
    assert!(run.spills > 0, "expected the 4-token budget to force structural spills");

    // Planner-derived depths size every channel for its estimated stream:
    // no spills observed, no deadlock flagged at that scale.
    let planned = ExecRequest::new(&graph, &inputs).executor(&FastBackend::pipelined(4)).run().unwrap();
    assert_eq!(planned.spills, 0, "planned depths must hold the estimated streams");
    let generous = deadlock::analyze(&graph, &bindings, ChannelBudget { chunk_len: 1024, depth: 8192 });
    assert!(
        generous.diagnostics.is_empty(),
        "classifier must not flag budgets the planner would choose:\n{}",
        generous.render()
    );
}
