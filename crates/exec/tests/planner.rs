//! Planner validation: channel allocation, fork insertion, cycle detection
//! and binding errors.

use sam_core::build::GraphBuilder;
use sam_core::graph::{NodeKind, PortKind, SamGraph, StreamKind};
use sam_core::graphs;
use sam_exec::{CycleBackend, ExecRequest, FastBackend, Inputs, Plan, PlanError};
use sam_tensor::{synth, TensorFormat};

fn vec_inputs(dim: usize) -> Inputs {
    let b = synth::random_vector(dim, dim / 4, 1);
    let c = synth::random_vector(dim, dim / 4, 2);
    Inputs::new().coo("b", &b, TensorFormat::sparse_vec()).coo("c", &c, TensorFormat::sparse_vec())
}

#[test]
fn plan_reports_topological_order_and_forks() {
    let graph = graphs::spmv();
    let b = synth::random_matrix_sparsity(10, 8, 0.8, 3);
    let c = synth::random_vector(8, 8, 4);
    let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("c", &c, TensorFormat::dense_vec());
    let plan = Plan::build(&graph, &inputs).unwrap();
    assert_eq!(plan.order().len(), graph.len());
    // Every producer precedes its consumers.
    let position: Vec<usize> = {
        let mut pos = vec![0; graph.len()];
        for (i, id) in plan.order().iter().enumerate() {
            pos[id.0] = i;
        }
        pos
    };
    for e in graph.edges() {
        assert!(position[e.from.0] < position[e.to.0], "edge violates topological order");
    }
    // SpMV fans out Bi crd (repeater + writer) and Bj crd (repeater + locator).
    assert_eq!(plan.fork_count(), 2);
}

#[test]
fn planned_forks_materialize_as_cycle_backend_blocks() {
    let graph = graphs::spmv();
    let b = synth::random_matrix_sparsity(10, 8, 0.8, 3);
    let c = synth::random_vector(8, 8, 4);
    let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("c", &c, TensorFormat::dense_vec());
    let plan = Plan::build(&graph, &inputs).unwrap();
    let run = sam_exec::Executor::run(&CycleBackend::default(), &plan, &inputs).unwrap();
    // Simulated blocks = primitive nodes (minus the preloaded roots, which
    // are channels, not blocks) plus one Fork block per fanned-out port.
    let roots = graph.nodes().iter().filter(|n| matches!(n, NodeKind::Root { .. })).count();
    assert_eq!(run.blocks, graph.len() - roots + plan.fork_count());
}

#[test]
fn plan_emits_full_channel_topology() {
    let graph = graphs::spmv();
    let b = synth::random_matrix_sparsity(10, 8, 0.8, 3);
    let c = synth::random_vector(8, 8, 4);
    let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("c", &c, TensorFormat::dense_vec());
    let plan = Plan::build(&graph, &inputs).unwrap();
    // One channel per edge (forks expanded to one channel per consumer)...
    assert_eq!(plan.channels().len(), graph.edges().len());
    // ...and together they cover every input port of every node exactly
    // once — except skip ports, which are optional and unwired here.
    let mut covered: Vec<Vec<bool>> =
        graph.nodes().iter().map(|k| vec![false; k.input_ports().len()]).collect();
    for spec in plan.channels() {
        assert!(spec.from.port < graph.nodes()[spec.from.node.0].output_ports().len());
        assert!(!covered[spec.to.0][spec.to_port], "input port driven twice");
        covered[spec.to.0][spec.to_port] = true;
    }
    for (i, ports) in covered.iter().enumerate() {
        for (p, &c) in ports.iter().enumerate() {
            let optional = graph.nodes()[i].input_ports()[p] == PortKind::Skip;
            assert!(c || optional, "input port {p} of node {i} has no channel");
        }
    }
}

#[test]
fn rank_mismatch_is_reported() {
    // A matrix bound into the vector kernel: the graph scans only level 0,
    // so its value array would silently read level-1 fiber references
    // instead of value positions.
    let graph = graphs::vec_elem_mul(true);
    let b = synth::random_matrix_sparsity(16, 8, 0.8, 5);
    let c = synth::random_vector(16, 4, 2);
    let inputs = Inputs::new().coo("b", &b, TensorFormat::dcsr()).coo("c", &c, TensorFormat::sparse_vec());
    match Plan::build(&graph, &inputs) {
        Err(PlanError::RankMismatch { tensor, consumed, levels }) => {
            assert_eq!(tensor, "b");
            assert_eq!(consumed, 1);
            assert_eq!(levels, 2);
        }
        other => panic!("expected rank-mismatch error, got {other:?}"),
    }
}

#[test]
fn array_fed_by_another_tensors_refs_is_reported() {
    // The value array declares `c` but receives b's traced reference
    // stream: a wiring bug that would read c's values at b's positions.
    let mut g = GraphBuilder::new("crossed");
    let rb = g.root("b");
    let (crd, rf) = g.scan("b", 'i', true, rb);
    let v = g.array("c", rf);
    g.write_level("x", 'i', crd);
    g.write_vals("x", v);
    match Plan::build(&g.finish(), &vec_inputs(16)) {
        Err(PlanError::TensorMismatch { expected, found, .. }) => {
            assert_eq!(expected, "c");
            assert_eq!(found, "b");
        }
        other => panic!("expected tensor-mismatch error, got {other:?}"),
    }
}

#[test]
fn cycle_detection() {
    let mut graph = SamGraph::new("cyclic");
    let a = graph.add_node(NodeKind::Alu { op: "add".into() });
    let b = graph.add_node(NodeKind::Alu { op: "add".into() });
    graph.add_edge_on(a, 0, b, 0, StreamKind::Val, "a->b");
    graph.add_edge_on(b, 0, a, 0, StreamKind::Val, "b->a");
    // Close both remaining ALU inputs so cycle detection is what trips.
    graph.add_edge_on(a, 0, b, 1, StreamKind::Val, "a->b2");
    graph.add_edge_on(b, 0, a, 1, StreamKind::Val, "b->a2");
    match Plan::build(&graph, &Inputs::new()) {
        Err(PlanError::Cycle { stuck }) => assert_eq!(stuck.len(), 2),
        other => panic!("expected cycle error, got {other:?}"),
    }
}

#[test]
fn unbound_input_is_reported() {
    let mut g = GraphBuilder::new("incomplete");
    let rb = g.root("b");
    let (crd, _rf) = g.scan("b", 'i', true, rb);
    // An ALU with only one of its two value inputs connected.
    let lone = g.array("b", _rf);
    let alu = g.graph().len();
    let _ = alu;
    let mut graph = g.finish();
    let alu_node = graph.add_node(NodeKind::Alu { op: "mul".into() });
    graph.add_edge_on(lone.node, lone.port, alu_node, 0, StreamKind::Val, "only input");
    let wv = graph.add_node(NodeKind::LevelWriter { tensor: "x".into(), index: 'v', vals: true });
    graph.add_edge_on(alu_node, 0, wv, 0, StreamKind::Val, "vals");
    let wl = graph.add_node(NodeKind::LevelWriter { tensor: "x".into(), index: 'i', vals: false });
    graph.add_edge_on(crd.node, crd.port, wl, 0, StreamKind::Crd, "crd");
    let inputs = vec_inputs(16);
    match Plan::build(&graph, &inputs) {
        Err(PlanError::UnboundInput { label, port }) => {
            assert!(label.contains("alu"), "label was {label}");
            assert_eq!(port, 1);
        }
        other => panic!("expected unbound-input error, got {other:?}"),
    }
}

#[test]
fn unknown_tensor_is_reported() {
    let graph = graphs::vec_elem_mul(true);
    let b = synth::random_vector(16, 4, 1);
    let inputs = Inputs::new().coo("b", &b, TensorFormat::sparse_vec());
    match Plan::build(&graph, &inputs) {
        Err(PlanError::UnknownTensor { name }) => assert_eq!(name, "c"),
        other => panic!("expected unknown-tensor error, got {other:?}"),
    }
}

#[test]
fn format_mismatch_is_reported() {
    // The graph expects compressed vectors but `b` is bound dense.
    let graph = graphs::vec_elem_mul(true);
    let b = synth::random_vector(16, 16, 1);
    let c = synth::random_vector(16, 4, 2);
    let inputs =
        Inputs::new().coo("b", &b, TensorFormat::dense_vec()).coo("c", &c, TensorFormat::sparse_vec());
    match Plan::build(&graph, &inputs) {
        Err(PlanError::FormatMismatch { tensor, level }) => {
            assert_eq!(tensor, "b");
            assert_eq!(level, 0);
        }
        other => panic!("expected format-mismatch error, got {other:?}"),
    }
}

#[test]
fn missing_vals_writer_is_reported() {
    let mut g = GraphBuilder::new("no vals");
    let rb = g.root("b");
    let (crd, _rf) = g.scan("b", 'i', true, rb);
    g.write_level("x", 'i', crd);
    match Plan::build(&g.finish(), &vec_inputs(16)) {
        Err(PlanError::MissingValsWriter) => {}
        other => panic!("expected missing-vals-writer error, got {other:?}"),
    }
}

#[test]
fn unsupported_node_is_reported_with_node_and_kind() {
    let mut graph = SamGraph::new("unsupported");
    graph.add_node(NodeKind::Root { tensor: "b".into() });
    graph.add_node(NodeKind::Serializer);
    match Plan::build(&graph, &Inputs::new()) {
        Err(ref err @ PlanError::UnsupportedNode { node, ref kind, .. }) => {
            assert_eq!(node, 1, "must name the offending node, not just the kind");
            assert_eq!(kind, "Serializer");
            let msg = err.to_string();
            assert!(msg.contains("n1") && msg.contains("Serializer"), "unhelpful message: {msg}");
        }
        other => panic!("expected unsupported-node error, got {other:?}"),
    }
}

#[test]
fn skip_lanes_are_planned_for_skip_graphs() {
    let graph = graphs::vec_elem_mul_with_skip(true);
    let inputs = vec_inputs(64);
    let plan = Plan::build(&graph, &inputs).unwrap();
    assert_eq!(plan.skip_specs().len(), 2);
    for spec in plan.skip_specs() {
        assert!(plan.is_skip_target(spec.scanner));
        assert_eq!(plan.skip_scanners(spec.intersecter)[spec.operand], Some(spec.scanner));
    }
    // The skip lanes ride in the channel topology (one channel per edge,
    // feedback included).
    assert_eq!(plan.channels().len(), graph.edges().len());
}

#[test]
fn skip_edge_to_the_wrong_scanner_is_rejected() {
    // Wire the intersecter's skip lane for operand 0 back to operand 1's
    // scanner: the planner must refuse the crossed feedback.
    let mut g = GraphBuilder::new("crossed skip");
    let rb = g.root("b");
    let rc = g.root("c");
    let (b_crd, b_ref) = g.scan("b", 'i', true, rb);
    let (c_crd, c_ref) = g.scan("c", 'i', true, rc);
    let (i_crd, i_refs) = g.intersect('i', [b_crd, c_crd], [b_ref, c_ref]);
    let bv = g.array("b", i_refs[0]);
    let cv = g.array("c", i_refs[1]);
    let prod = g.alu("mul", bv, cv);
    g.write_level("x", 'i', i_crd);
    g.write_vals("x", prod);
    let mut graph = g.finish();
    graph.add_edge_on(i_crd.node, 3, c_crd.node, 1, StreamKind::Skip, "crossed");
    match Plan::build(&graph, &vec_inputs(16)) {
        Err(PlanError::BadSkipEdge { reason, .. }) => {
            assert!(reason.contains("scanner feeding"), "reason was: {reason}");
        }
        other => panic!("expected bad-skip-edge error, got {other:?}"),
    }
}

#[test]
fn skip_edge_from_a_non_intersecter_is_rejected() {
    let mut g = GraphBuilder::new("skip from repeat");
    let rb = g.root("b");
    let (crd, rf) = g.scan("b", 'i', true, rb);
    let v = g.array("b", rf);
    g.write_level("x", 'i', crd);
    g.write_vals("x", v);
    let mut graph = g.finish();
    // Root -> scanner skip port: roots are not intersecters.
    graph.add_edge_on(sam_core::graph::NodeId(0), 0, crd.node, 1, StreamKind::Skip, "bogus");
    match Plan::build(&graph, &vec_inputs(16)) {
        Err(PlanError::BadSkipEdge { reason, .. }) => {
            assert!(reason.contains("intersecter"), "reason was: {reason}");
        }
        other => panic!("expected bad-skip-edge error, got {other:?}"),
    }
}

#[test]
fn skip_target_with_extra_consumers_is_rejected() {
    // vec_elem_mul with skip, plus an extra writer tapping b's coordinate
    // stream: the scanner no longer feeds only the intersecter, so fusion
    // (and therefore the skip lane) is invalid.
    let mut g = GraphBuilder::new("tapped skip target");
    let rb = g.root("b");
    let rc = g.root("c");
    let (b_crd, b_ref) = g.scan("b", 'i', true, rb);
    let (c_crd, c_ref) = g.scan("c", 'i', true, rc);
    let (i_crd, i_refs) = g.intersect_with_skip('i', [b_crd, c_crd], [b_ref, c_ref]);
    let bv = g.array("b", i_refs[0]);
    let cv = g.array("c", i_refs[1]);
    let prod = g.alu("mul", bv, cv);
    g.write_level("x", 'i', i_crd);
    g.write_level("y", 'i', b_crd);
    g.write_vals("x", prod);
    match Plan::build(&g.finish(), &vec_inputs(16)) {
        Err(PlanError::BadSkipEdge { reason, .. }) => {
            assert!(reason.contains("only the intersecter"), "reason was: {reason}");
        }
        other => panic!("expected bad-skip-edge error, got {other:?}"),
    }
}

#[test]
fn execute_convenience_runs_both_backends() {
    let graph = graphs::vec_elem_mul(true);
    let inputs = vec_inputs(64);
    let cycle = ExecRequest::new(&graph, &inputs).executor(&CycleBackend::default()).run().unwrap();
    let fast = ExecRequest::new(&graph, &inputs).executor(&FastBackend::default()).run().unwrap();
    assert_eq!(cycle.output.unwrap(), fast.output.unwrap());
    assert_eq!(cycle.backend, "cycle");
    assert_eq!(fast.backend, "fast-serial");
}

/// The deprecated `execute` shim must keep producing exactly what the
/// request door produces, so pre-door callers migrate on their own clock.
#[test]
#[allow(deprecated)]
fn the_deprecated_execute_shim_matches_the_request_door() {
    let graph = graphs::vec_elem_mul(true);
    let inputs = vec_inputs(64);
    let shim = sam_exec::execute(&graph, &inputs, &FastBackend::serial()).unwrap();
    let door = ExecRequest::new(&graph, &inputs).executor(&FastBackend::serial()).run().unwrap();
    assert_eq!(shim.output, door.output);
    assert_eq!(shim.vals, door.vals);
    assert_eq!(shim.backend, door.backend);
}

#[test]
fn errors_format_usefully() {
    let err = PlanError::UnknownTensor { name: "Q".into() };
    assert!(err.to_string().contains("`Q`"));
    let err = PlanError::Cycle { stuck: vec!["a".into(), "b".into()] };
    assert!(err.to_string().contains("a, b"));
    let err = sam_exec::ExecError::from(PlanError::MissingValsWriter);
    assert!(err.to_string().contains("planning failed"));
}
