//! The compile-to-machine completeness gate: every Table 1 expression
//! string that `custard` parses must lower through `lower_exec`, run on the
//! cycle backend, the serial fast backend, `Threads(4)` and the tiled
//! finite-memory backend, and agree *exactly* with the dense reference
//! evaluator — and bit-identically with its `sam_core::graphs` hand-wired
//! twin where one exists. Operands are integer-valued so every partial sum
//! is exact and "agree" can mean equality, not tolerance.

use custard::{parse, ConcreteIndexNotation, Formats, Schedule};
use sam_core::graph::SamGraph;
use sam_core::graphs;
use sam_exec::{CycleBackend, ExecRequest, FastBackend, Inputs, TiledBackend};
use sam_memory::MemoryConfig;
use sam_tensor::reference::Environment;
use sam_tensor::{synth, CooTensor, Tensor, TensorFormat};

/// Rounds a synthetic tensor's values to small integers so floating-point
/// sums are exact across backends, tilings and the dense reference.
fn int_coo(coo: &CooTensor) -> CooTensor {
    CooTensor::from_entries(
        coo.shape().to_vec(),
        coo.entries().iter().map(|(p, v)| (p.clone(), (v * 8.0).round() - 3.0)).collect(),
    )
    .unwrap()
}

struct Case {
    name: &'static str,
    text: &'static str,
    order: Option<&'static str>,
    formats: Formats,
    operands: Vec<(&'static str, CooTensor)>,
    scalars: Vec<(&'static str, f64)>,
    /// Hand-wired catalog twin expected to be bit-identical on the fast
    /// serial backend (same dataflow structure, not just the same math).
    twin: Option<SamGraph>,
}

impl Case {
    fn new(name: &'static str, text: &'static str, operands: Vec<(&'static str, CooTensor)>) -> Case {
        Case { name, text, order: None, formats: Formats::new(), operands, scalars: Vec::new(), twin: None }
    }

    fn order(mut self, order: &'static str) -> Case {
        self.order = Some(order);
        self
    }

    fn formats(mut self, formats: Formats) -> Case {
        self.formats = formats;
        self
    }

    fn scalar(mut self, name: &'static str, value: f64) -> Case {
        self.scalars.push((name, value));
        self
    }

    fn twin(mut self, twin: SamGraph) -> Case {
        self.twin = Some(twin);
        self
    }
}

/// The whole Table 1 catalog as expression strings, with integer operands
/// sized so the cycle backend stays CI-fast.
fn table1_cases() -> Vec<Case> {
    let b_m = int_coo(&synth::random_matrix_sparsity(14, 11, 0.8, 901));
    let c_m = int_coo(&synth::random_matrix_sparsity(11, 12, 0.8, 902));
    let sq_b = int_coo(&synth::random_matrix_sparsity(12, 10, 0.75, 903));
    let sq_c = int_coo(&synth::random_matrix_sparsity(12, 10, 0.75, 904));
    let sq_d = int_coo(&synth::random_matrix_sparsity(12, 10, 0.75, 905));
    let vec_b = int_coo(&synth::random_vector(30, 9, 906));
    let vec_c = int_coo(&synth::random_vector(30, 11, 907));
    let t3_b = int_coo(&synth::random_tensor3([6, 5, 7], 50, 908));
    let t3_c = int_coo(&synth::random_tensor3([6, 5, 7], 50, 909));

    vec![
        Case::new(
            "SpMV",
            "x(i) = B(i,j) * c(j)",
            vec![("B", b_m.clone()), ("c", int_coo(&synth::random_vector(11, 8, 910)))],
        ),
        Case::new(
            "SpM*SpM (inner)",
            "X(i,j) = B(i,k) * C(k,j)",
            vec![("B", b_m.clone()), ("C", c_m.clone())],
        )
        .order("ijk"),
        Case::new(
            "SpM*SpM (gustavson)",
            "X(i,j) = B(i,k) * C(k,j)",
            vec![("B", b_m.clone()), ("C", c_m.clone())],
        )
        .order("ikj"),
        Case::new("SpM*SpM (outer)", "X(i,j) = B(i,k) * C(k,j)", vec![("B", b_m.clone()), ("C", c_m)])
            .order("kij"),
        // Dense factor formats: the compiled i and j intersections are
        // sparse-x-dense, so the lowering's skip heuristic wires Section 4.2
        // feedback edges that every backend then has to honor.
        Case::new(
            "SDDMM",
            "X(i,j) = B(i,j) * C(i,k) * D(j,k)",
            vec![
                ("B", int_coo(&synth::random_matrix_sparsity(10, 9, 0.75, 911))),
                ("C", int_coo(&synth::dense_matrix(10, 4, 912))),
                ("D", int_coo(&synth::dense_matrix(9, 4, 913))),
            ],
        )
        .formats(Formats::new().set("C", TensorFormat::dense(2)).set("D", TensorFormat::dense(2))),
        Case::new("InnerProd", "chi() = B(i,j,k) * C(i,j,k)", vec![("B", t3_b.clone()), ("C", t3_c.clone())]),
        Case::new(
            "TTV",
            "X(i,j) = B(i,j,k) * c(k)",
            vec![("B", t3_b.clone()), ("c", int_coo(&synth::random_vector(7, 5, 914)))],
        ),
        Case::new(
            "TTM",
            "X(i,j,k) = B(i,j,l) * C(k,l)",
            vec![("B", t3_b.clone()), ("C", int_coo(&synth::random_matrix_sparsity(8, 7, 0.6, 915)))],
        ),
        Case::new(
            "MTTKRP",
            "X(i,j) = B(i,k,l) * C(j,k) * D(j,l)",
            vec![
                ("B", int_coo(&synth::random_tensor3([5, 4, 6], 30, 916))),
                ("C", int_coo(&synth::random_matrix_sparsity(5, 4, 0.5, 917))),
                ("D", int_coo(&synth::random_matrix_sparsity(5, 6, 0.5, 918))),
            ],
        ),
        Case::new(
            "Residual",
            "x(i) = b(i) - C(i,j) * d(j)",
            vec![
                ("b", int_coo(&synth::random_vector(14, 6, 919))),
                ("C", int_coo(&synth::random_matrix_sparsity(14, 11, 0.7, 920))),
                ("d", int_coo(&synth::random_vector(11, 7, 921))),
            ],
        )
        .twin(graphs::residual()),
        Case::new(
            "MatTransMul",
            "x(i) = alpha * B(j,i) * c(j) + beta * d(i)",
            vec![
                ("B", int_coo(&synth::random_matrix_sparsity(13, 10, 0.7, 922))),
                ("c", int_coo(&synth::random_vector(13, 7, 923))),
                ("d", int_coo(&synth::random_vector(10, 6, 924))),
            ],
        )
        .scalar("alpha", 2.0)
        .scalar("beta", -3.0)
        .twin(graphs::mat_trans_mul()),
        Case::new("MMAdd", "X(i,j) = B(i,j) + C(i,j)", vec![("B", sq_b.clone()), ("C", sq_c.clone())]),
        Case::new("Plus3", "X(i,j) = B(i,j) + C(i,j) + D(i,j)", vec![("B", sq_b), ("C", sq_c), ("D", sq_d)])
            .twin(graphs::plus3()),
        Case::new("Plus2", "X(i,j,k) = B(i,j,k) + C(i,j,k)", vec![("B", t3_b), ("C", t3_c)]),
        // Not Table 1 rows, but the Figure 13/14 kernels whose catalog twins
        // share the compiled structure exactly.
        Case::new("VecElemMul", "x(i) = b(i) * c(i)", vec![("b", vec_b.clone()), ("c", vec_c.clone())])
            .twin(graphs::vec_elem_mul(true)),
        Case::new("VecElemAdd", "x(i) = b(i) + c(i)", vec![("b", vec_b), ("c", vec_c)]),
        Case::new(
            "Identity",
            "X(i,j) = B(i,j)",
            vec![("B", int_coo(&synth::random_matrix_sparsity(12, 10, 0.8, 925)))],
        )
        .twin(graphs::identity()),
    ]
}

#[test]
fn every_table1_expression_compiles_and_runs_on_every_backend() {
    for case in table1_cases() {
        let assignment = parse(case.text).unwrap_or_else(|e| panic!("{}: parse failed: {e}", case.name));
        let schedule = match case.order {
            Some(o) => Schedule::new().reorder(o),
            None => Schedule::new(),
        };
        let cin = ConcreteIndexNotation::new(assignment.clone(), &schedule, case.formats.clone());
        let kernel = custard::lower_exec(&cin)
            .unwrap_or_else(|e| panic!("{}: `{}` failed to lower: {e}", case.name, case.text));

        // Bind operands with the formats the lowering derived, scalars as
        // single-value tensors; mirror everything densely for the oracle.
        let mut inputs = Inputs::new();
        let mut env = Environment::new();
        for (name, coo) in &case.operands {
            let fmt = kernel
                .formats
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("{}: operand `{name}` missing from derived formats", case.name))
                .1
                .clone();
            inputs = inputs.coo(name, coo, fmt);
            env.insert(name, Tensor::from_coo(name, coo, TensorFormat::dense(coo.order())).to_dense());
        }
        for &(name, value) in &case.scalars {
            assert!(
                kernel.scalars.iter().any(|s| s == name),
                "{}: `{name}` should be reported as a scalar operand",
                case.name
            );
            inputs = inputs.scalar(name, value);
            env.insert_scalar(name, value);
        }
        env.bind_dims(&assignment, &[]);
        let expect = env.evaluate(&assignment).expect("reference evaluation");

        // Every compiled kernel, bound to its real operands, is completely
        // clean under the static verifier — no errors and no lints.
        let bindings: sam_verify::Bindings<'_> = inputs.iter().collect();
        let report = sam_verify::verify_bound(&kernel.graph, &bindings);
        assert!(
            report.diagnostics.is_empty(),
            "{}: compiled kernel must verify clean:\n{}",
            case.name,
            report.render()
        );

        let serial = ExecRequest::new(&kernel.graph, &inputs)
            .executor(&FastBackend::serial())
            .run()
            .unwrap_or_else(|e| panic!("{}: fast-serial failed: {e}", case.name));
        match &serial.output {
            Some(out) => assert_eq!(
                out.to_dense().data(),
                expect.data(),
                "{}: fast-serial diverged from the dense reference",
                case.name
            ),
            None => assert_eq!(serial.vals, expect.data(), "{}: scalar result diverged", case.name),
        }

        // Cycle and Threads(4) must be bit-identical to serial.
        for (what, run) in [
            ("cycle", ExecRequest::new(&kernel.graph, &inputs).executor(&CycleBackend::default()).run()),
            ("Threads(4)", ExecRequest::new(&kernel.graph, &inputs).executor(&FastBackend::threads(4)).run()),
        ] {
            let run = run.unwrap_or_else(|e| panic!("{}: {what} failed: {e}", case.name));
            assert_eq!(run.output, serial.output, "{}: {what} diverged from serial", case.name);
            assert_eq!(run.vals, serial.vals, "{}: {what} raw values diverged", case.name);
        }

        // The tiled finite-memory backend agrees with the dense reference
        // at a tile size that actually cuts these operands.
        let tiled = TiledBackend::new(MemoryConfig { tile: 4, llb_bytes: 2048, ..MemoryConfig::default() });
        let run = ExecRequest::new(&kernel.graph, &inputs)
            .executor(&tiled)
            .run()
            .unwrap_or_else(|e| panic!("{}: tiled run failed: {e}", case.name));
        match &run.output {
            Some(out) => assert_eq!(
                out.to_dense().data(),
                expect.data(),
                "{}: tiled run diverged from the dense reference",
                case.name
            ),
            None => assert_eq!(run.vals, expect.data(), "{}: tiled scalar result diverged", case.name),
        }

        // Where a hand-wired catalog twin shares the compiled structure,
        // the compiled graph reproduces it bit for bit.
        if let Some(twin) = &case.twin {
            let twin_run = ExecRequest::new(twin, &inputs)
                .executor(&FastBackend::serial())
                .run()
                .unwrap_or_else(|e| panic!("{}: catalog twin failed: {e}", case.name));
            assert_eq!(
                twin_run.output, serial.output,
                "{}: compiled graph and catalog twin disagree bit-for-bit",
                case.name
            );
            assert_eq!(twin_run.vals, serial.vals, "{}: twin raw values diverged", case.name);
        }
    }
}

/// The compiled lowering emits Section 4.2 skip edges exactly where the
/// format heuristic says so, and they pay: the skip lowering moves fewer
/// tokens than the ablated (`skip_edges: false`) lowering on skewed
/// sparse-x-dense inputs while computing the identical result.
#[test]
fn compiled_skip_edges_reduce_tokens_on_sparse_by_dense() {
    use custard::{lower_exec_with, LowerOptions};
    use sam_core::graph::StreamKind;

    let a = parse("x(i) = B(i,j) * c(j)").unwrap();
    let formats = Formats::new().set("c", TensorFormat::dense_vec());
    let cin = ConcreteIndexNotation::new(a, &Schedule::new(), formats);
    let skip = custard::lower_exec(&cin).unwrap();
    let plain = lower_exec_with(&cin, LowerOptions { skip_edges: false }).unwrap();
    assert!(skip.graph.edges().iter().any(|e| e.kind == StreamKind::Skip));
    assert!(plain.graph.edges().iter().all(|e| e.kind != StreamKind::Skip));

    // Hypersparse rows against a dense vector: galloping skips almost all
    // of the dense scan.
    let b = synth::random_matrix_nnz(80, 4000, 240, 931);
    let c = synth::random_vector(4000, 4000, 932);
    let inputs = Inputs::new()
        .coo("B", &b, skip.formats.iter().find(|(n, _)| n == "B").unwrap().1.clone())
        .coo("c", &c, TensorFormat::dense_vec());
    let with_skip = ExecRequest::new(&skip.graph, &inputs).executor(&FastBackend::serial()).run().unwrap();
    let without = ExecRequest::new(&plain.graph, &inputs).executor(&FastBackend::serial()).run().unwrap();
    assert_eq!(with_skip.output, without.output, "skip lowering changed the result");
    assert!(
        with_skip.tokens * 4 < without.tokens,
        "compiled skip edges should cut token traffic by far more than 4x: {} (skip) vs {} (plain)",
        with_skip.tokens,
        without.tokens
    );
}
