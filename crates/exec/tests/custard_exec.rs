//! The compile → IR → execute pipeline: Custard-compiled expressions run
//! through `sam-exec` on both backends and match the dense reference
//! evaluator — the gap the executor closes over the hand-wired kernels.

use custard::{lower_exec, parse, ConcreteIndexNotation, Formats, Schedule};
use sam_exec::{CycleBackend, ExecRequest, Executor, FastBackend, Inputs};
use sam_tensor::reference::Environment;
use sam_tensor::{synth, CooTensor, Tensor, TensorFormat};

/// Compiles `text` under `schedule`/`formats`, binds the named COO operands
/// with the storage formats the lowering derived, runs both backends, and
/// checks each result against the dense reference evaluator.
fn check(text: &str, schedule: &Schedule, formats: Formats, operands: &[(&str, &CooTensor)]) {
    let assignment = parse(text).expect("valid tensor index notation");
    let cin = ConcreteIndexNotation::new(assignment.clone(), schedule, formats);
    let kernel = lower_exec(&cin).unwrap_or_else(|e| panic!("lowering `{text}` failed: {e}"));

    let mut inputs = Inputs::new();
    let mut env = Environment::new();
    for (name, coo) in operands {
        let fmt = &kernel.formats.iter().find(|(n, _)| n == name).expect("operand in formats").1;
        inputs = inputs.coo(name, coo, fmt.clone());
        env.insert(name, Tensor::from_coo(name, coo, TensorFormat::dense(coo.order())).to_dense());
    }
    env.bind_dims(&assignment, &[]);
    let expect = env.evaluate(&assignment).expect("reference evaluation");

    for backend in [&CycleBackend::default() as &dyn Executor, &FastBackend::default()] {
        let run = ExecRequest::new(&kernel.graph, &inputs)
            .executor(backend)
            .run()
            .unwrap_or_else(|e| panic!("`{text}` on {}: {e}", backend.name()));
        let out = run.output.unwrap_or_else(|| panic!("`{text}` produced no tensor"));
        assert!(
            out.to_dense().approx_eq(&expect),
            "`{text}` on {} diverged from the dense reference",
            backend.name()
        );
    }
}

#[test]
fn compiled_spmv_executes_on_both_backends() {
    let b = synth::random_matrix_sparsity(25, 18, 0.9, 21);
    let c = synth::random_vector(18, 12, 22);
    check("x(i) = B(i,j) * c(j)", &Schedule::new(), Formats::new(), &[("B", &b), ("c", &c)]);
    // Dense vector storage, as in the hand kernel.
    let dense_c = Formats::new().set("c", TensorFormat::dense_vec());
    check("x(i) = B(i,j) * c(j)", &Schedule::new(), dense_c, &[("B", &b), ("c", &c)]);
}

#[test]
fn compiled_spmm_executes_in_all_three_dataflows() {
    let b = synth::random_matrix_sparsity(14, 10, 0.85, 23);
    let c = synth::random_matrix_sparsity(10, 12, 0.85, 24);
    for order in ["ijk", "ikj", "kij"] {
        check(
            "X(i,j) = B(i,k) * C(k,j)",
            &Schedule::new().reorder(order),
            Formats::new(),
            &[("B", &b), ("C", &c)],
        );
    }
}

#[test]
fn compiled_sddmm_executes() {
    let (i, j, k) = (10, 9, 3);
    let b = synth::random_matrix_sparsity(i, j, 0.8, 25);
    let c = synth::dense_matrix(i, k, 26);
    let d = synth::dense_matrix(j, k, 27);
    let formats = Formats::new().set("C", TensorFormat::dense(2)).set("D", TensorFormat::dense(2));
    check("X(i,j) = B(i,j) * C(i,k) * D(j,k)", &Schedule::new(), formats, &[("B", &b), ("C", &c), ("D", &d)]);
}

#[test]
fn compiled_elementwise_and_additive_kernels_execute() {
    let b = synth::random_vector(60, 15, 28);
    let c = synth::random_vector(60, 18, 29);
    check("x(i) = b(i) * c(i)", &Schedule::new(), Formats::new(), &[("b", &b), ("c", &c)]);
    check("x(i) = b(i) + c(i)", &Schedule::new(), Formats::new(), &[("b", &b), ("c", &c)]);

    let mb = synth::random_matrix_sparsity(12, 9, 0.8, 30);
    let mc = synth::random_matrix_sparsity(12, 9, 0.8, 31);
    check("X(i,j) = B(i,j) * C(i,j)", &Schedule::new(), Formats::new(), &[("B", &mb), ("C", &mc)]);
    check("X(i,j) = B(i,j) + C(i,j)", &Schedule::new(), Formats::new(), &[("B", &mb), ("C", &mc)]);
}

/// Non-left-deep expression trees associate correctly: `B - (C - D)` must
/// not compile to `(B - C) - D`. The textual parser is left-associative,
/// so this builds the right-nested tree through the Expr API directly.
/// All operands share both variables — the older mixed-rank variant
/// (`B(i,j) - (c(i) - d(j))`) has a broadcast addend whose true output is
/// denser than the union iteration space, which the lowering now rejects
/// with `LowerExecError::BroadcastAddend` instead of miscompiling.
#[test]
fn right_nested_subtraction_associates_correctly() {
    use sam_tensor::expr::{Assignment, Expr};
    {
        // The rejected mixed-rank shape, pinned down.
        use custard::LowerExecError;
        let rhs = Expr::access("B", "ij").sub(Expr::access("c", "i").sub(Expr::access("d", "j")));
        let cin =
            ConcreteIndexNotation::new(Assignment::new("X", "ij", rhs), &Schedule::new(), Formats::new());
        assert_eq!(lower_exec(&cin).unwrap_err(), LowerExecError::BroadcastAddend { index: 'i' });
    }
    let rhs = Expr::access("B", "ij").sub(Expr::access("C", "ij").sub(Expr::access("D", "ij")));
    let assignment = Assignment::new("X", "ij", rhs);
    let cin = ConcreteIndexNotation::new(assignment.clone(), &Schedule::new(), Formats::new());
    let kernel = lower_exec(&cin).unwrap();

    let b = synth::random_matrix_sparsity(6, 5, 0.5, 50);
    let c = synth::random_matrix_sparsity(6, 5, 0.5, 51);
    let d = synth::random_matrix_sparsity(6, 5, 0.5, 52);
    let mut inputs = Inputs::new();
    let mut env = Environment::new();
    for (name, coo) in [("B", &b), ("C", &c), ("D", &d)] {
        let fmt = kernel.formats.iter().find(|(n, _)| n == name).unwrap().1.clone();
        inputs = inputs.coo(name, coo, fmt);
        env.insert(name, Tensor::from_coo(name, coo, TensorFormat::dense(coo.order())).to_dense());
    }
    env.bind_dims(&assignment, &[]);
    let expect = env.evaluate(&assignment).unwrap();
    for backend in [&CycleBackend::default() as &dyn Executor, &FastBackend::default()] {
        let run = ExecRequest::new(&kernel.graph, &inputs).executor(backend).run().unwrap();
        assert!(
            run.output.unwrap().to_dense().approx_eq(&expect),
            "right-nested subtraction diverged on the {} backend",
            backend.name()
        );
    }
}

/// Non-commutative subtraction through a union merge: with fully disjoint
/// sparsity, every output coordinate sees exactly one present operand, so a
/// backend that zero-fills the absent operand on the wrong side of the ALU
/// flips the sign of half the entries. Checked coordinate by coordinate
/// (not just against approx-eq) on every backend and thread count.
#[test]
fn subtraction_through_a_union_zero_fills_the_correct_side() {
    use sam_tensor::CooTensor;

    let dim = 12usize;
    // b holds +2 at even coordinates, c holds +3 at odd coordinates.
    let b = CooTensor::from_entries(vec![dim], (0..dim as u32).step_by(2).map(|i| (vec![i], 2.0)).collect())
        .unwrap();
    let c = CooTensor::from_entries(vec![dim], (1..dim as u32).step_by(2).map(|i| (vec![i], 3.0)).collect())
        .unwrap();

    let assignment = parse("x(i) = b(i) - c(i)").unwrap();
    let cin = ConcreteIndexNotation::new(assignment, &Schedule::new(), Formats::new());
    let kernel = lower_exec(&cin).unwrap();
    let inputs =
        Inputs::new().coo("b", &b, kernel.formats[0].1.clone()).coo("c", &c, kernel.formats[1].1.clone());

    for backend in
        [&CycleBackend::default() as &dyn Executor, &FastBackend::serial(), &FastBackend::threads(4)]
    {
        let run = ExecRequest::new(&kernel.graph, &inputs).executor(backend).run().unwrap();
        let dense = run.output.expect("tensor output").to_dense();
        for i in 0..dim as u32 {
            let expect = if i % 2 == 0 { 2.0 } else { -3.0 };
            assert_eq!(
                dense.at(&[i]),
                expect,
                "x({i}) on {}: absent operand zero-filled on the wrong side of the subtraction",
                backend.name()
            );
        }
    }
}

#[test]
fn compiled_identity_executes() {
    let b = synth::random_matrix_sparsity(12, 10, 0.85, 32);
    check("X(i,j) = B(i,j)", &Schedule::new(), Formats::new(), &[("B", &b)]);
}

#[test]
fn compiled_higher_order_contractions_execute() {
    // TTV: X(i,j) = sum_k B(i,j,k) * c(k).
    let b3 = synth::random_tensor3([6, 5, 7], 40, 33);
    let c = synth::random_vector(7, 5, 34);
    check("X(i,j) = B(i,j,k) * c(k)", &Schedule::new(), Formats::new(), &[("B", &b3), ("c", &c)]);

    // MTTKRP: X(i,j) = sum_{k,l} B(i,k,l) * C(j,k) * D(j,l).
    let b = synth::random_tensor3([5, 4, 6], 30, 35);
    let cm = synth::random_matrix_sparsity(5, 4, 0.4, 36);
    let dm = synth::random_matrix_sparsity(5, 6, 0.4, 37);
    check(
        "X(i,j) = B(i,k,l) * C(j,k) * D(j,l)",
        &Schedule::new(),
        Formats::new(),
        &[("B", &b), ("C", &cm), ("D", &dm)],
    );
}
