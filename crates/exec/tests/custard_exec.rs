//! The compile → IR → execute pipeline: Custard-compiled expressions run
//! through `sam-exec` on both backends and match the dense reference
//! evaluator — the gap the executor closes over the hand-wired kernels.

use custard::{lower_exec, parse, ConcreteIndexNotation, Formats, Schedule};
use sam_exec::{execute, CycleBackend, Executor, FastBackend, Inputs};
use sam_tensor::reference::Environment;
use sam_tensor::{synth, CooTensor, Tensor, TensorFormat};

/// Compiles `text` under `schedule`/`formats`, binds the named COO operands
/// with the storage formats the lowering derived, runs both backends, and
/// checks each result against the dense reference evaluator.
fn check(text: &str, schedule: &Schedule, formats: Formats, operands: &[(&str, &CooTensor)]) {
    let assignment = parse(text).expect("valid tensor index notation");
    let cin = ConcreteIndexNotation::new(assignment.clone(), schedule, formats);
    let kernel = lower_exec(&cin).unwrap_or_else(|e| panic!("lowering `{text}` failed: {e}"));

    let mut inputs = Inputs::new();
    let mut env = Environment::new();
    for (name, coo) in operands {
        let fmt = &kernel.formats.iter().find(|(n, _)| n == name).expect("operand in formats").1;
        inputs = inputs.coo(name, coo, fmt.clone());
        env.insert(name, Tensor::from_coo(name, coo, TensorFormat::dense(coo.order())).to_dense());
    }
    env.bind_dims(&assignment, &[]);
    let expect = env.evaluate(&assignment).expect("reference evaluation");

    for backend in [&CycleBackend::default() as &dyn Executor, &FastBackend::default()] {
        let run = execute(&kernel.graph, &inputs, backend)
            .unwrap_or_else(|e| panic!("`{text}` on {}: {e}", backend.name()));
        let out = run.output.unwrap_or_else(|| panic!("`{text}` produced no tensor"));
        assert!(
            out.to_dense().approx_eq(&expect),
            "`{text}` on {} diverged from the dense reference",
            backend.name()
        );
    }
}

#[test]
fn compiled_spmv_executes_on_both_backends() {
    let b = synth::random_matrix_sparsity(25, 18, 0.9, 21);
    let c = synth::random_vector(18, 12, 22);
    check("x(i) = B(i,j) * c(j)", &Schedule::new(), Formats::new(), &[("B", &b), ("c", &c)]);
    // Dense vector storage, as in the hand kernel.
    let dense_c = Formats::new().set("c", TensorFormat::dense_vec());
    check("x(i) = B(i,j) * c(j)", &Schedule::new(), dense_c, &[("B", &b), ("c", &c)]);
}

#[test]
fn compiled_spmm_executes_in_all_three_dataflows() {
    let b = synth::random_matrix_sparsity(14, 10, 0.85, 23);
    let c = synth::random_matrix_sparsity(10, 12, 0.85, 24);
    for order in ["ijk", "ikj", "kij"] {
        check(
            "X(i,j) = B(i,k) * C(k,j)",
            &Schedule::new().reorder(order),
            Formats::new(),
            &[("B", &b), ("C", &c)],
        );
    }
}

#[test]
fn compiled_sddmm_executes() {
    let (i, j, k) = (10, 9, 3);
    let b = synth::random_matrix_sparsity(i, j, 0.8, 25);
    let c = synth::dense_matrix(i, k, 26);
    let d = synth::dense_matrix(j, k, 27);
    let formats = Formats::new().set("C", TensorFormat::dense(2)).set("D", TensorFormat::dense(2));
    check("X(i,j) = B(i,j) * C(i,k) * D(j,k)", &Schedule::new(), formats, &[("B", &b), ("C", &c), ("D", &d)]);
}

#[test]
fn compiled_elementwise_and_additive_kernels_execute() {
    let b = synth::random_vector(60, 15, 28);
    let c = synth::random_vector(60, 18, 29);
    check("x(i) = b(i) * c(i)", &Schedule::new(), Formats::new(), &[("b", &b), ("c", &c)]);
    check("x(i) = b(i) + c(i)", &Schedule::new(), Formats::new(), &[("b", &b), ("c", &c)]);

    let mb = synth::random_matrix_sparsity(12, 9, 0.8, 30);
    let mc = synth::random_matrix_sparsity(12, 9, 0.8, 31);
    check("X(i,j) = B(i,j) * C(i,j)", &Schedule::new(), Formats::new(), &[("B", &mb), ("C", &mc)]);
    check("X(i,j) = B(i,j) + C(i,j)", &Schedule::new(), Formats::new(), &[("B", &mb), ("C", &mc)]);
}

/// Non-left-deep expression trees associate correctly: `B - (c - d)` must
/// not compile to `(B - c) - d`. The textual parser is left-associative,
/// so this builds the right-nested tree through the Expr API directly.
#[test]
fn right_nested_subtraction_associates_correctly() {
    use sam_tensor::expr::{Assignment, Expr};
    let rhs = Expr::access("B", "ij").sub(Expr::access("c", "i").sub(Expr::access("d", "j")));
    let assignment = Assignment::new("X", "ij", rhs);
    let cin = ConcreteIndexNotation::new(assignment.clone(), &Schedule::new(), Formats::new());
    let kernel = lower_exec(&cin).unwrap();

    // c and d are fully populated: `X = B - c + d` is dense wherever c or d
    // is nonzero, so sparse operands there would make the expression's true
    // output denser than the union iteration space can enumerate.
    let b = synth::random_matrix_sparsity(6, 5, 0.5, 50);
    let c = synth::random_vector(6, 6, 51);
    let d = synth::random_vector(5, 5, 52);
    let mut inputs = Inputs::new();
    let mut env = Environment::new();
    for (name, coo) in [("B", &b), ("c", &c), ("d", &d)] {
        let fmt = kernel.formats.iter().find(|(n, _)| n == name).unwrap().1.clone();
        inputs = inputs.coo(name, coo, fmt);
        env.insert(name, Tensor::from_coo(name, coo, TensorFormat::dense(coo.order())).to_dense());
    }
    env.bind_dims(&assignment, &[]);
    let expect = env.evaluate(&assignment).unwrap();
    for backend in [&CycleBackend::default() as &dyn Executor, &FastBackend::default()] {
        let run = execute(&kernel.graph, &inputs, backend).unwrap();
        assert!(
            run.output.unwrap().to_dense().approx_eq(&expect),
            "right-nested subtraction diverged on the {} backend",
            backend.name()
        );
    }
}

#[test]
fn compiled_identity_executes() {
    let b = synth::random_matrix_sparsity(12, 10, 0.85, 32);
    check("X(i,j) = B(i,j)", &Schedule::new(), Formats::new(), &[("B", &b)]);
}

#[test]
fn compiled_higher_order_contractions_execute() {
    // TTV: X(i,j) = sum_k B(i,j,k) * c(k).
    let b3 = synth::random_tensor3([6, 5, 7], 40, 33);
    let c = synth::random_vector(7, 5, 34);
    check("X(i,j) = B(i,j,k) * c(k)", &Schedule::new(), Formats::new(), &[("B", &b3), ("c", &c)]);

    // MTTKRP: X(i,j) = sum_{k,l} B(i,k,l) * C(j,k) * D(j,l).
    let b = synth::random_tensor3([5, 4, 6], 30, 35);
    let cm = synth::random_matrix_sparsity(5, 4, 0.4, 36);
    let dm = synth::random_matrix_sparsity(5, 6, 0.4, 37);
    check(
        "X(i,j) = B(i,k,l) * C(j,k) * D(j,l)",
        &Schedule::new(),
        Formats::new(),
        &[("B", &b), ("C", &cm), ("D", &dm)],
    );
}
