//! Adversarial scheduling stress: the full kernel catalog under heavy
//! oversubscription and pathological chunk/tile configurations, looped,
//! under a watchdog timeout. This guards the liveness of all three
//! parallel engines — the work-stealing splitter (forced to cut every
//! stream), the pipelined bounded channels (4-token chunks at depth 1, the
//! maximum-backpressure setting), and the parallel tile sweep (tile size 4
//! floods the tuple space) — none of which may deadlock, livelock, or
//! drift from the serial results no matter how oversubscribed the host is.

use sam_core::graph::SamGraph;
use sam_core::graphs;
use sam_core::kernels::spmm::SpmmDataflow;
use sam_exec::{ExecRequest, Executor, FastBackend, Inputs, Parallelism, TiledBackend};
use sam_streams::chunked::ChunkConfig;
use sam_tensor::{synth, CooTensor, TensorFormat};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// Integer-valued variant of a random tensor: keeps tiled partial sums
/// exact, so every backend must agree bit for bit.
fn int_coo(coo: &CooTensor) -> CooTensor {
    CooTensor::from_entries(
        coo.shape().to_vec(),
        coo.entries().iter().map(|(p, v)| (p.clone(), (v * 4.0).round())).collect(),
    )
    .unwrap()
}

fn catalog() -> Vec<(SamGraph, Inputs)> {
    let vb = int_coo(&synth::random_vector(150, 45, 701));
    let vc = int_coo(&synth::random_vector(150, 40, 702));
    let m = int_coo(&synth::random_matrix_sparsity(24, 18, 0.85, 703));
    let n = int_coo(&synth::random_matrix_sparsity(18, 21, 0.85, 704));
    let sv = int_coo(&synth::random_vector(18, 18, 705));
    let dense_c = int_coo(&synth::dense_matrix(24, 6, 706));
    let dense_d = int_coo(&synth::dense_matrix(18, 6, 707));
    let b3 = int_coo(&synth::random_tensor3([14, 8, 9], 160, 708));
    let fc = int_coo(&synth::random_matrix_sparsity(10, 8, 0.55, 709));
    let fd = int_coo(&synth::random_matrix_sparsity(10, 9, 0.55, 710));

    vec![
        (
            graphs::vec_elem_mul(true),
            Inputs::new().coo("b", &vb, TensorFormat::sparse_vec()).coo("c", &vc, TensorFormat::sparse_vec()),
        ),
        (graphs::identity(), Inputs::new().coo("B", &m, TensorFormat::dcsr())),
        (
            graphs::spmv(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("c", &sv, TensorFormat::dense_vec()),
        ),
        (
            graphs::spmv_coiteration(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("c", &sv, TensorFormat::sparse_vec()),
        ),
        (
            graphs::spmv_with_skip(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("c", &sv, TensorFormat::sparse_vec()),
        ),
        (
            graphs::spmm(SpmmDataflow::LinearCombination),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &n, TensorFormat::dcsr()),
        ),
        (
            graphs::spmm(SpmmDataflow::InnerProduct),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &n, TensorFormat::dcsc()),
        ),
        (
            graphs::spmm(SpmmDataflow::OuterProduct),
            Inputs::new().coo("B", &m, TensorFormat::dcsc()).coo("C", &n, TensorFormat::dcsr()),
        ),
        (
            graphs::sddmm_coiteration(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &dense_c, TensorFormat::dense(2)).coo(
                "D",
                &dense_d,
                TensorFormat::dense(2),
            ),
        ),
        (
            graphs::mttkrp(),
            Inputs::new().coo("B", &b3, TensorFormat::csf(3)).coo("C", &fc, TensorFormat::dcsc()).coo(
                "D",
                &fd,
                TensorFormat::dcsc(),
            ),
        ),
    ]
}

fn run_stress() {
    let catalog = catalog();
    // Adversarial fast-backend configurations: 8 workers on any host,
    // every stream split (threshold 1), and the pipelined engine reduced
    // to 4-token chunks in depth-1 channels — every push is a potential
    // stall, every chunk a potential spill.
    let stealing = FastBackend::threads(8).with_split_threshold(1);
    let pipelined = FastBackend::threads(8).with_chunk_config(ChunkConfig { chunk_len: 4, depth: 1 });
    let tiled_serial = TiledBackend::with_tile(4);
    let tiled_par = TiledBackend::with_tile(4).with_parallelism(Parallelism::Threads(8));

    for round in 0..2 {
        for (graph, inputs) in &catalog {
            let serial = ExecRequest::new(graph, inputs)
                .executor(&FastBackend::serial())
                .run()
                .unwrap_or_else(|e| panic!("round {round} {}: serial failed: {e}", graph.name));
            for backend in [&stealing, &pipelined] {
                let run = ExecRequest::new(graph, inputs)
                    .executor(backend)
                    .run()
                    .unwrap_or_else(|e| panic!("round {round} {} on {}: {e}", graph.name, backend.name()));
                assert_eq!(run.output, serial.output, "round {round} {}", graph.name);
                assert_eq!(run.vals, serial.vals, "round {round} {}", graph.name);
                assert_eq!(run.tokens, serial.tokens, "round {round} {}", graph.name);
            }
            // The parallel tile sweep must agree with the serial tile
            // sweep in every respect — same outputs on kernels tiling
            // supports, the same typed rejection on kernels it does not.
            // It may never hang or fail where serial succeeds.
            match (
                ExecRequest::new(graph, inputs).executor(&tiled_serial).run(),
                ExecRequest::new(graph, inputs).executor(&tiled_par).run(),
            ) {
                (Ok(s), Ok(p)) => {
                    assert_eq!(p.output, s.output, "round {round} {} tiled", graph.name);
                    assert_eq!(p.vals, s.vals, "round {round} {} tiled", graph.name);
                    assert_eq!(p.output, serial.output, "round {round} {} tiled vs untiled", graph.name);
                }
                (Err(_), Err(_)) => {}
                (s, p) => panic!(
                    "round {round} {}: tiled serial/parallel diverged: serial {:?}, parallel {:?}",
                    graph.name,
                    s.map(|r| r.backend).map_err(|e| e.to_string()),
                    p.map(|r| r.backend).map_err(|e| e.to_string()),
                ),
            }
        }
    }
}

/// The whole adversarial sweep must *finish*: a worker thread runs it and
/// reports back over a channel; if the report does not arrive before the
/// watchdog fires, some scheduler is deadlocked or livelocked and the test
/// fails instead of hanging the suite forever.
#[test]
fn oversubscribed_adversarial_configs_finish_and_agree() {
    let (tx, rx) = mpsc::channel();
    let worker = thread::spawn(move || {
        run_stress();
        tx.send(()).ok();
    });
    match rx.recv_timeout(Duration::from_secs(300)) {
        Ok(()) => {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The worker panicked before reporting: surface its message.
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
            unreachable!("worker disconnected without panicking");
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("stress sweep exceeded the 300s watchdog: scheduler deadlock or livelock")
        }
    }
}
