//! Tiled-vs-untiled equivalence: every catalog kernel the `TiledBackend`
//! supports is executed untiled (serial fast backend) and tiled at tile
//! sizes {4, 16, 128}, and the results must be **bit-identical** — same
//! levels, same explicit zeros, same value order.
//!
//! Bit-identity across tilings requires exact partial sums, so the inputs
//! are integer-valued (every synth value is scaled and rounded to a small
//! integer; all sums stay far below 2^53). The untiled result itself is
//! checked against the dense reference evaluator first, so the suite
//! compares against validated ground truth.

use sam_core::graph::SamGraph;
use sam_core::graphs;
use sam_core::kernels::spmm::SpmmDataflow;
use sam_exec::{ExecRequest, FastBackend, Inputs, TiledBackend};
use sam_tensor::expr::{table1, Assignment};
use sam_tensor::reference::Environment;
use sam_tensor::{synth, CooTensor, LevelFormat, TensorFormat};

/// Rounds a synthetic COO tensor's values to small integers so partial
/// sums are exact under any tiling.
fn int_coo(coo: &CooTensor) -> CooTensor {
    CooTensor::from_entries(
        coo.shape().to_vec(),
        coo.entries().iter().map(|(p, v)| (p.clone(), (v * 4.0).round())).collect(),
    )
    .unwrap()
}

fn int_vector(dim: usize, nnz: usize, seed: u64) -> CooTensor {
    int_coo(&synth::random_vector(dim, nnz, seed))
}

fn int_matrix(rows: usize, cols: usize, sparsity: f64, seed: u64) -> CooTensor {
    int_coo(&synth::random_matrix_sparsity(rows, cols, sparsity, seed))
}

/// The tiled-backend catalog: graph, operands and the reference expression.
fn catalog() -> Vec<(SamGraph, Inputs, Assignment)> {
    let vb = int_vector(150, 45, 501);
    let vc = int_vector(150, 40, 502);
    let m = int_matrix(24, 18, 0.85, 503);
    let n = int_matrix(18, 21, 0.85, 504);
    let dv = int_vector(18, 18, 505);
    let sv = int_vector(18, 9, 506);
    let dense_c = int_coo(&synth::dense_matrix(24, 6, 507));
    let dense_d = int_coo(&synth::dense_matrix(18, 6, 508));
    let b3 = int_coo(&synth::random_tensor3([14, 8, 9], 160, 509));
    let fc = int_matrix(10, 8, 0.55, 510);
    let fd = int_matrix(10, 9, 0.55, 511);
    let bv_fmt = TensorFormat::new(vec![LevelFormat::bitvector()]);

    vec![
        (
            graphs::vec_elem_mul(true),
            Inputs::new().coo("b", &vb, TensorFormat::sparse_vec()).coo("c", &vc, TensorFormat::sparse_vec()),
            table1::vec_elem_mul(),
        ),
        // The same kernel over bitvector storage: tile extraction must
        // window occupancy words, not just crd arrays.
        (
            graphs::vec_elem_mul(true),
            Inputs::new().coo("b", &vb, bv_fmt.clone()).coo("c", &vc, bv_fmt),
            table1::vec_elem_mul(),
        ),
        // …and over dense storage (the Figure 13 "Dense" configuration).
        (
            graphs::vec_elem_mul(false),
            Inputs::new().coo("b", &vb, TensorFormat::dense_vec()).coo("c", &vc, TensorFormat::dense_vec()),
            table1::vec_elem_mul(),
        ),
        // A skip twin: per-tile execution must compose with skip fusion.
        (
            graphs::vec_elem_mul_with_skip(true),
            Inputs::new().coo("b", &vb, TensorFormat::sparse_vec()).coo("c", &vc, TensorFormat::sparse_vec()),
            table1::vec_elem_mul(),
        ),
        (graphs::identity(), Inputs::new().coo("B", &m, TensorFormat::dcsr()), table1::identity()),
        (
            graphs::spmv(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("c", &dv, TensorFormat::dense_vec()),
            table1::spmv(),
        ),
        (
            graphs::spmv_coiteration(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("c", &sv, TensorFormat::sparse_vec()),
            table1::spmv(),
        ),
        (
            graphs::spmm(SpmmDataflow::LinearCombination),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &n, TensorFormat::dcsr()),
            table1::spmm(),
        ),
        (
            graphs::spmm(SpmmDataflow::InnerProduct),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &n, TensorFormat::dcsc()),
            table1::spmm(),
        ),
        (
            graphs::spmm(SpmmDataflow::OuterProduct),
            Inputs::new().coo("B", &m, TensorFormat::dcsc()).coo("C", &n, TensorFormat::dcsr()),
            table1::spmm(),
        ),
        (
            graphs::sddmm_coiteration(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &dense_c, TensorFormat::dense(2)).coo(
                "D",
                &dense_d,
                TensorFormat::dense(2),
            ),
            table1::sddmm(),
        ),
        (
            graphs::mttkrp(),
            Inputs::new().coo("B", &b3, TensorFormat::csf(3)).coo("C", &fc, TensorFormat::dcsc()).coo(
                "D",
                &fd,
                TensorFormat::dcsc(),
            ),
            table1::mttkrp(),
        ),
    ]
}

#[test]
fn every_supported_kernel_is_bit_identical_across_tile_sizes() {
    for (graph, inputs, assignment) in catalog() {
        // Untiled ground truth, validated against the dense reference.
        let mut env = Environment::new();
        for (name, tensor) in inputs.iter() {
            env.insert(name, tensor.to_dense());
        }
        env.bind_dims(&assignment, &[]);
        let expect = env.evaluate(&assignment).unwrap();
        let untiled = ExecRequest::new(&graph, &inputs)
            .executor(&FastBackend::serial())
            .run()
            .unwrap_or_else(|e| panic!("{}: untiled run failed: {e}", graph.name));
        let untiled_out = untiled.output.expect("tensor output");
        assert!(
            untiled_out.to_dense().approx_eq(&expect),
            "{}: untiled output diverged from the dense reference",
            graph.name
        );

        for tile in [4usize, 16, 128] {
            let tiled = ExecRequest::new(&graph, &inputs)
                .executor(&TiledBackend::with_tile(tile))
                .run()
                .unwrap_or_else(|e| panic!("{}: tile {tile} run failed: {e}", graph.name));
            assert_eq!(tiled.backend, "tiled");
            assert_eq!(
                tiled.output.as_ref().expect("tensor output"),
                &untiled_out,
                "{}: tile {tile} output is not bit-identical to the untiled run",
                graph.name
            );
            assert_eq!(tiled.vals, untiled.vals, "{}: tile {tile} produced different raw values", graph.name);
            let mem = tiled.memory.expect("tiled runs report memory counters");
            assert_eq!(
                mem.tiles_visited,
                mem.tiles_skipped + mem.tiles_executed,
                "{}: tile {tile} counters must account for every tuple",
                graph.name
            );
            assert!(mem.tiles_executed > 0, "{}: tile {tile} executed nothing", graph.name);
        }
    }
}

/// Randomized (proptest-style, on the vendored PRNG) equivalence over
/// random sparse matrices: random shapes, densities and tile sizes, always
/// bit-identical to the untiled run and numerically equal to the dense
/// reference.
#[test]
fn random_sparse_matrices_stay_bit_identical_under_random_tilings() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(0x7115);
    for case in 0..25 {
        let i = rng.gen_range(3..28);
        let k = rng.gen_range(3..24);
        let j = rng.gen_range(3..26);
        let sparsity = 0.5 + 0.45 * rng.gen::<f64>();
        let tile = *[2usize, 3, 5, 8, 13, 32].get(rng.gen_range(0..6)).unwrap();
        let seed = rng.gen::<u64>();
        let b = int_matrix(i, k, sparsity, seed);
        let c = int_matrix(k, j, sparsity, seed.wrapping_add(1));
        let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &c, TensorFormat::dcsr());
        let graph = graphs::spmm(SpmmDataflow::LinearCombination);

        let mut env = Environment::new();
        for (name, tensor) in inputs.iter() {
            env.insert(name, tensor.to_dense());
        }
        env.bind_dims(&table1::spmm(), &[]);
        let expect = env.evaluate(&table1::spmm()).unwrap();

        let untiled = ExecRequest::new(&graph, &inputs).executor(&FastBackend::serial()).run().unwrap();
        let tiled = ExecRequest::new(&graph, &inputs)
            .executor(&TiledBackend::with_tile(tile))
            .run()
            .unwrap_or_else(|e| panic!("case {case} (i={i} k={k} j={j} tile={tile}): {e}"));
        let untiled_out = untiled.output.expect("tensor output");
        assert!(untiled_out.to_dense().approx_eq(&expect), "case {case}: untiled diverged from reference");
        assert_eq!(
            tiled.output.expect("tensor output"),
            untiled_out,
            "case {case} (i={i} k={k} j={j} tile={tile} sparsity={sparsity:.2}): tiled != untiled"
        );
    }
}
