//! Observability of the bounded-channel spill escape (`Execution::spills`)
//! and the win from planner-derived per-channel depths.

use sam_core::graphs;
use sam_exec::{execute, Executor, FastBackend, Inputs, Plan, PortRef};
use sam_streams::chunked::ChunkConfig;
use sam_tensor::{synth, TensorFormat};

/// Two-thread execution of a nine-node graph over long streams: with a
/// tiny fixed chunk config the producers run far ahead of unclaimed
/// consumers and must spill; with the default planner-derived depths every
/// channel is deep enough for its estimated stream and nothing spills. The
/// results are identical either way.
#[test]
fn planned_channel_depths_eliminate_the_fixed_config_spills() {
    let b = synth::random_vector(16_000, 15_000, 601);
    let c = synth::random_vector(16_000, 14_500, 602);
    let inputs =
        Inputs::new().coo("b", &b, TensorFormat::sparse_vec()).coo("c", &c, TensorFormat::sparse_vec());
    let graph = graphs::vec_elem_mul(true);

    let serial = execute(&graph, &inputs, &FastBackend::serial()).unwrap();
    assert_eq!(serial.spills, 0, "serial mode has no channels to spill");

    let spilly = FastBackend::threads(2).with_chunk_config(ChunkConfig { chunk_len: 64, depth: 1 });
    let fixed = execute(&graph, &inputs, &spilly).unwrap();
    assert!(fixed.spills > 0, "depth-1 channels under 15k-token streams must take the spill escape");
    assert_eq!(fixed.output, serial.output);

    let planned = execute(&graph, &inputs, &FastBackend::threads(2)).unwrap();
    assert_eq!(planned.spills, 0, "planner-derived depths should hold the whole estimated stream in flight");
    assert!(planned.spills < fixed.spills, "the spill-counter delta is the point of the knob");
    assert_eq!(planned.output, serial.output);
}

/// The planner's stream-size estimates behave sanely: scanner outputs scale
/// with the level they read, and the derived channel depths are clamped.
#[test]
fn stream_estimates_drive_channel_depths() {
    let b = synth::random_vector(16_000, 15_000, 603);
    let c = synth::random_vector(16_000, 20, 604);
    let inputs =
        Inputs::new().coo("b", &b, TensorFormat::sparse_vec()).coo("c", &c, TensorFormat::sparse_vec());
    let plan = Plan::build(&graphs::vec_elem_mul(true), &inputs).unwrap();

    // Find the scanners' crd ports through the channel topology.
    let mut depths = Vec::new();
    let mut estimates = Vec::new();
    for spec in plan.channels() {
        estimates.push(plan.stream_size_estimate(spec.from));
        depths.push(plan.channel_depth(spec, 1024));
    }
    assert!(estimates.iter().any(|&e| e >= 15_000), "the dense side's streams are long");
    assert!(estimates.iter().any(|&e| e <= 64), "the sparse side's streams are short");
    assert!(depths.iter().all(|&d| (sam_exec::MIN_CHANNEL_DEPTH..=sam_exec::MAX_CHANNEL_DEPTH).contains(&d)));
    assert!(depths.iter().any(|&d| d > sam_exec::MIN_CHANNEL_DEPTH), "long streams get deeper channels");

    // The estimate for an out-of-range port is zero, not a panic.
    let bogus = PortRef { node: plan.order()[0], port: 99 };
    assert_eq!(plan.stream_size_estimate(bogus), 0);

    // Both sizings execute identically.
    let a = FastBackend::threads(3).run(&plan, &inputs).unwrap();
    let f = FastBackend::threads(3)
        .with_chunk_config(ChunkConfig { chunk_len: 32, depth: 2 })
        .run(&plan, &inputs)
        .unwrap();
    assert_eq!(a.output, f.output);
    assert_eq!(a.vals, f.vals);
}
