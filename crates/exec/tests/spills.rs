//! Observability of the bounded-channel spill escape (`Execution::spills`)
//! and the win from planner-derived per-channel depths.

use sam_core::graphs;
use sam_exec::{ExecRequest, Executor, FastBackend, Inputs, Plan, PortRef};
use sam_streams::chunked::ChunkConfig;
use sam_tensor::{synth, TensorFormat};

/// Two-thread execution of a nine-node graph over long streams: with a
/// tiny fixed chunk config the producers run far ahead of unclaimed
/// consumers and must spill; with the default planner-derived depths every
/// channel is deep enough for its estimated stream and nothing spills. The
/// results are identical either way.
#[test]
fn planned_channel_depths_eliminate_the_fixed_config_spills() {
    let b = synth::random_vector(16_000, 15_000, 601);
    let c = synth::random_vector(16_000, 14_500, 602);
    let inputs =
        Inputs::new().coo("b", &b, TensorFormat::sparse_vec()).coo("c", &c, TensorFormat::sparse_vec());
    let graph = graphs::vec_elem_mul(true);

    let serial = ExecRequest::new(&graph, &inputs).executor(&FastBackend::serial()).run().unwrap();
    assert_eq!(serial.spills, 0, "serial mode has no channels to spill");

    let spilly = FastBackend::threads(2).with_chunk_config(ChunkConfig { chunk_len: 64, depth: 1 });
    let fixed = ExecRequest::new(&graph, &inputs).executor(&spilly).run().unwrap();
    assert!(fixed.spills > 0, "depth-1 channels under 15k-token streams must take the spill escape");
    assert_eq!(fixed.output, serial.output);

    let planned = ExecRequest::new(&graph, &inputs).executor(&FastBackend::pipelined(2)).run().unwrap();
    assert_eq!(planned.spills, 0, "planner-derived depths should hold the whole estimated stream in flight");
    assert!(planned.spills < fixed.spills, "the spill-counter delta is the point of the knob");
    assert_eq!(planned.output, serial.output);
}

/// The planner's stream-size estimates behave sanely: scanner outputs scale
/// with the level they read, and the derived channel depths are clamped.
#[test]
fn stream_estimates_drive_channel_depths() {
    let b = synth::random_vector(16_000, 15_000, 603);
    let c = synth::random_vector(16_000, 20, 604);
    let inputs =
        Inputs::new().coo("b", &b, TensorFormat::sparse_vec()).coo("c", &c, TensorFormat::sparse_vec());
    let plan = Plan::build(&graphs::vec_elem_mul(true), &inputs).unwrap();

    // Find the scanners' crd ports through the channel topology.
    let mut depths = Vec::new();
    let mut estimates = Vec::new();
    for spec in plan.channels() {
        estimates.push(plan.stream_size_estimate(spec.from));
        depths.push(plan.channel_depth(spec, 1024));
    }
    assert!(estimates.iter().any(|&e| e >= 15_000), "the dense side's streams are long");
    assert!(estimates.iter().any(|&e| e <= 64), "the sparse side's streams are short");
    assert!(depths.iter().all(|&d| (sam_exec::MIN_CHANNEL_DEPTH..=sam_exec::MAX_CHANNEL_DEPTH).contains(&d)));
    assert!(depths.iter().any(|&d| d > sam_exec::MIN_CHANNEL_DEPTH), "long streams get deeper channels");

    // The estimate for an out-of-range port is zero, not a panic.
    let bogus = PortRef { node: plan.order()[0], port: 99 };
    assert_eq!(plan.stream_size_estimate(bogus), 0);

    // Both sizings execute identically.
    let a = FastBackend::pipelined(3).run(&plan, &inputs).unwrap();
    let f = FastBackend::threads(3)
        .with_chunk_config(ChunkConfig { chunk_len: 32, depth: 2 })
        .run(&plan, &inputs)
        .unwrap();
    assert_eq!(a.output, f.output);
    assert_eq!(a.vals, f.vals);
}

/// Regression guard for the scanner stream-size estimate: it used to take
/// the *average* fiber length, so kernels with skewed fibers (SpMM,
/// MTTKRP) under-sized their channels and spilled hundreds of times even
/// at planned depths. The estimate now takes the longest fiber, and the
/// whole kernel catalog must run the pipelined engine spill-free.
#[test]
fn planned_depths_hold_the_whole_catalog_spill_free() {
    use sam_core::graph::SamGraph;
    use sam_core::kernels::spmm::SpmmDataflow;

    let vb = synth::random_vector(4_000, 1_800, 611);
    let vc = synth::random_vector(4_000, 1_700, 612);
    let m = synth::random_matrix_sparsity(90, 70, 0.5, 613);
    let n = synth::random_matrix_sparsity(70, 80, 0.5, 614);
    let sv = synth::random_vector(70, 50, 615);
    let dense_c = synth::dense_matrix(90, 8, 616);
    let dense_d = synth::dense_matrix(70, 8, 617);
    let b3 = synth::random_tensor3([30, 20, 20], 2_400, 618);
    let fc = synth::random_matrix_sparsity(20, 10, 0.4, 619);
    let fd = synth::random_matrix_sparsity(20, 10, 0.4, 620);

    let catalog: Vec<(SamGraph, Inputs)> = vec![
        (
            graphs::vec_elem_mul(true),
            Inputs::new().coo("b", &vb, TensorFormat::sparse_vec()).coo("c", &vc, TensorFormat::sparse_vec()),
        ),
        (graphs::identity(), Inputs::new().coo("B", &m, TensorFormat::dcsr())),
        (
            graphs::spmv(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("c", &sv, TensorFormat::dense_vec()),
        ),
        (
            graphs::spmv_coiteration(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("c", &sv, TensorFormat::sparse_vec()),
        ),
        (
            graphs::spmv_with_skip(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("c", &sv, TensorFormat::sparse_vec()),
        ),
        (
            graphs::spmm(SpmmDataflow::LinearCombination),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &n, TensorFormat::dcsr()),
        ),
        (
            graphs::spmm(SpmmDataflow::InnerProduct),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &n, TensorFormat::dcsc()),
        ),
        (
            graphs::spmm(SpmmDataflow::OuterProduct),
            Inputs::new().coo("B", &m, TensorFormat::dcsc()).coo("C", &n, TensorFormat::dcsr()),
        ),
        (
            graphs::sddmm_coiteration(),
            Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("C", &dense_c, TensorFormat::dense(2)).coo(
                "D",
                &dense_d,
                TensorFormat::dense(2),
            ),
        ),
        (
            graphs::mttkrp(),
            Inputs::new().coo("B", &b3, TensorFormat::csf(3)).coo("C", &fc, TensorFormat::dcsc()).coo(
                "D",
                &fd,
                TensorFormat::dcsc(),
            ),
        ),
    ];

    for (graph, inputs) in catalog {
        let serial = ExecRequest::new(&graph, &inputs).executor(&FastBackend::serial()).run().unwrap();
        let run = ExecRequest::new(&graph, &inputs)
            .executor(&FastBackend::pipelined(4))
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", graph.name));
        assert_eq!(run.spills, 0, "{}: planned depths must not spill", graph.name);
        assert_eq!(run.output, serial.output, "{}", graph.name);
        assert_eq!(run.vals, serial.vals, "{}", graph.name);
    }
}
