//! # sam-exec
//!
//! A graph-driven execution engine that runs any [`SamGraph`] end-to-end —
//! whether hand-built through `sam_core::build::GraphBuilder`, taken from
//! the `sam_core::graphs` kernel catalog, or compiled from tensor index
//! notation by `custard::lower_exec`.
//!
//! The crate has two halves:
//!
//! * a **planner** ([`Plan`]) that topologically orders the graph, resolves
//!   every edge to producer/consumer ports, plans the stream forks that
//!   hand-wired kernels insert manually, binds tensor inputs by name and
//!   validates the whole configuration up front, and
//! * three **backends** behind one [`Executor`] trait:
//!   [`CycleBackend`] instantiates `sam-primitives` blocks into the
//!   `sam-sim` simulator for cycle-approximate runs, [`FastBackend`]
//!   evaluates the same plan functionally — serially over whole streams,
//!   or pipelined across worker threads over chunked streams when given a
//!   [`Parallelism::Threads`] setting (the "fast concrete executor next to
//!   the instrumented machine" pattern) — and [`TiledBackend`] runs the
//!   plan tile by tile under a finite-memory budget, recording measured
//!   DRAM/LLB counters (the paper's Section 6.4 machine).
//!
//! Execution goes through one door, [`ExecRequest`]: a graph, its bound
//! inputs, and [`ExecOptions`] (backend by [`BackendSpec`], optional trace
//! sink, memory budget, pre-built plan). Requests plan through the global
//! [`PlanCache`] by default, so repeated executions of one workload shape
//! pay for planning once.
//!
//! # Running a kernel on both backends
//!
//! ```
//! use sam_core::graphs;
//! use sam_exec::{BackendSpec, ExecRequest, Inputs};
//! use sam_tensor::{synth, TensorFormat};
//!
//! // x(i) = b(i) * c(i) over two sparse vectors, on both backends.
//! let graph = graphs::vec_elem_mul(true);
//! let b = synth::random_vector(64, 12, 1);
//! let c = synth::random_vector(64, 12, 2);
//! let inputs = Inputs::new()
//!     .coo("b", &b, TensorFormat::sparse_vec())
//!     .coo("c", &c, TensorFormat::sparse_vec());
//! let cycle =
//!     ExecRequest::new(&graph, &inputs).backend(BackendSpec::Cycle).run().unwrap();
//! let fast = ExecRequest::new(&graph, &inputs).run().unwrap();
//! assert!(cycle.cycles.unwrap() > 0);
//! assert_eq!(cycle.output.unwrap(), fast.output.unwrap());
//! ```
//!
//! # Building, planning and executing by hand
//!
//! [`Plan::build`] exposes the intermediate step [`ExecRequest`] wraps:
//! plan once, inspect the planned topology, then run the same plan on any
//! backend (and over the same inputs, as many times as needed).
//!
//! ```
//! use sam_core::build::GraphBuilder;
//! use sam_exec::{Executor, FastBackend, Inputs, Plan};
//! use sam_tensor::{synth, TensorFormat};
//!
//! // Build x(i) = b(i) * b(i) directly with the graph builder.
//! let mut g = GraphBuilder::new("x(i) = b(i) * b(i)");
//! let root = g.root("b");
//! let (crd, rf) = g.scan("b", 'i', true, root);
//! let v = g.array("b", rf);
//! let sq = g.alu("mul", v, v);
//! g.write_level("x", 'i', crd);
//! g.write_vals("x", sq);
//! let graph = g.finish();
//!
//! let b = synth::random_vector(32, 8, 3);
//! let inputs = Inputs::new().coo("b", &b, TensorFormat::sparse_vec());
//! let plan = Plan::build(&graph, &inputs).unwrap();
//! // The value array and the ALU's second input ride on planned forks.
//! assert!(plan.fork_count() > 0);
//! assert!(!plan.channels().is_empty());
//! let run = FastBackend::serial().run(&plan, &inputs).unwrap();
//! assert_eq!(run.vals.len(), b.entries().len());
//! ```
//!
//! # Parallel execution
//!
//! ```
//! use sam_core::graphs;
//! use sam_core::kernels::spmm::SpmmDataflow;
//! use sam_exec::{BackendSpec, ExecRequest, Executor, FastBackend, Inputs, Parallelism};
//! use sam_tensor::{synth, TensorFormat};
//!
//! let graph = graphs::spmm(SpmmDataflow::LinearCombination);
//! let b = synth::random_matrix_sparsity(40, 30, 0.9, 5);
//! let c = synth::random_matrix_sparsity(30, 20, 0.9, 6);
//! let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &c, TensorFormat::dcsr());
//! let serial = ExecRequest::new(&graph, &inputs).run().unwrap();
//! let parallel =
//!     ExecRequest::new(&graph, &inputs).backend(BackendSpec::FastThreads(4)).run().unwrap();
//! assert_eq!(serial.output.unwrap(), parallel.output.unwrap());
//! assert_eq!(parallel.backend, "fast-threads");
//! assert!(matches!(FastBackend::threads(4).parallelism(), Parallelism::Threads(4)));
//! ```
//!
//! # Tracing a run
//!
//! Every backend also exposes [`Executor::run_traced`], which drives a
//! [`TraceSink`] (from `sam-trace`) with per-node token counts, wall and
//! blocked time, per-channel stall stats and timeline spans, and surfaces
//! the rollup as [`Execution::profile`]:
//!
//! ```
//! use sam_core::graphs;
//! use sam_exec::{CountersSink, Executor, FastBackend, Inputs, Plan};
//! use sam_tensor::{synth, TensorFormat};
//!
//! let graph = graphs::spmv();
//! let b = synth::random_matrix_sparsity(30, 20, 0.9, 5);
//! let c = synth::random_vector(20, 20, 6);
//! let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("c", &c, TensorFormat::dense_vec());
//! let plan = Plan::build(&graph, &inputs).unwrap();
//! let sink = CountersSink::new();
//! let run = FastBackend::serial().run_traced(&plan, &inputs, &sink).unwrap();
//! let profile = run.profile.unwrap();
//! // Every token the run counted is attributed to exactly one node.
//! assert_eq!(profile.total_tokens(), run.tokens);
//! assert!(profile.nodes.iter().any(|n| n.label.starts_with("scan")));
//! ```

#![warn(missing_docs)]

pub mod bind;
pub mod cache;
pub mod cycle;
pub mod error;
pub mod fast;
mod node;
mod parallel;
mod pipeline;
pub mod plan;
pub mod request;
pub mod spec;
mod split;
pub mod steal;
pub mod tiled;

pub use bind::Inputs;
pub use cache::{KeyDetail, PlanCache, PlanCacheStats, PlanKey, Planner};
pub use cycle::CycleBackend;
pub use error::{ExecError, PlanError};
pub use fast::FastBackend;
pub use plan::{
    ChannelSpec, Plan, PortRef, SkipSpec, DEFAULT_MAX_CYCLES, MAX_CHANNEL_DEPTH, MIN_CHANNEL_DEPTH,
};
pub use request::{ExecOptions, ExecRequest};
pub use sam_memory::MemoryCounters;
pub use sam_trace::{
    ChannelProfile, ChromeTraceSink, CountersSink, ExecProfile, HistogramSnapshot, MetricsRegistry,
    NodeProfile, NullSink, QuerySpan, Stage, TokenCounts, TraceSink, WorkerProfile,
};
pub use spec::{BackendSpec, ParseBackendError};
pub use steal::{StealPool, WorkerStats};
pub use tiled::TiledBackend;

use sam_core::graph::SamGraph;
use sam_primitives::EmptyFiberPolicy;
use sam_tensor::level::{CompressedLevel, Level};
use sam_tensor::{Tensor, TensorFormat};
use std::time::Duration;

/// The outcome of executing a planned graph on one backend.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Which backend ran: `"cycle"`, `"fast-serial"`, `"fast-threads"` or
    /// `"tiled"`.
    pub backend: &'static str,
    /// The assembled output tensor (absent for graphs with no level
    /// writers, e.g. full reductions to a scalar).
    pub output: Option<Tensor>,
    /// The raw output values, exactly as the values writer received them.
    pub vals: Vec<f64>,
    /// Simulated cycles (cycle backend only).
    pub cycles: Option<u64>,
    /// Number of primitive instances executed (including planned forks on
    /// the cycle backend).
    pub blocks: usize,
    /// Number of streams/channels materialized. The fast backend reports
    /// the planned channel count (identical across `Parallelism` settings);
    /// the cycle backend reports simulator channels, including fork lanes.
    pub channels: usize,
    /// Total tokens that flowed through the graph.
    pub tokens: u64,
    /// Spill-past-depth escapes taken by the bounded chunked channels
    /// (parallel fast backend only; zero elsewhere). Each count is one chunk
    /// pushed past a channel's configured depth — the observable cost of the
    /// bounded-Kahn deadlock escape.
    pub spills: u64,
    /// Measured finite-memory counters ([`TiledBackend`] only): DRAM bytes
    /// moved, LLB occupancy high-water mark, tiles skipped/executed and LLB
    /// capacity spills.
    pub memory: Option<MemoryCounters>,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Per-node and per-channel observability rollup. Populated only by
    /// [`Executor::run_traced`] with a sink that accumulates one (e.g.
    /// [`CountersSink`] or [`ChromeTraceSink`]); `None` on untraced runs.
    pub profile: Option<ExecProfile>,
}

/// How a backend schedules the planned work.
///
/// The default is [`Parallelism::Serial`]. [`FastBackend::threads`] selects
/// work-stealing *data* parallelism (nodes still evaluate in topological
/// order; long input streams split at fiber boundaries across the pool),
/// [`FastBackend::pipelined`] selects the one-worker-per-node pipelined
/// mode, and [`TiledBackend::with_parallelism`] spreads independent tile
/// tuples over the pool. The cycle backend models hardware that is parallel
/// by construction, so the knob does not apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One work item at a time, in canonical order, whole streams per node.
    #[default]
    Serial,
    /// A work-stealing pool of this many workers (clamped to at least 1;
    /// the driving thread participates as worker 0).
    Threads(usize),
}

/// A backend that can run a [`Plan`].
pub trait Executor {
    /// Short backend name used in reports.
    fn name(&self) -> &'static str;

    /// How this backend schedules node evaluation. Defaults to
    /// [`Parallelism::Serial`].
    fn parallelism(&self) -> Parallelism {
        Parallelism::Serial
    }

    /// Executes the plan over the bound inputs.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] when the run fails (simulator deadlock,
    /// cycle limit, misaligned streams, out-of-bounds references, or an
    /// incomplete output).
    fn run(&self, plan: &Plan, inputs: &Inputs) -> Result<Execution, ExecError>;

    /// Executes the plan while driving `trace` with per-node and
    /// per-channel instrumentation (see the `sam-trace` crate). Sinks whose
    /// [`TraceSink::enabled`] returns `false` (the [`NullSink`]) skip all
    /// instrumentation work, making this exactly [`Executor::run`]. The
    /// default implementation ignores the sink entirely; every shipped
    /// backend overrides it.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Executor::run`].
    fn run_traced(
        &self,
        plan: &Plan,
        inputs: &Inputs,
        trace: &dyn TraceSink,
    ) -> Result<Execution, ExecError> {
        let _ = trace;
        self.run(plan, inputs)
    }
}

/// Plans `graph` over `inputs` and runs it on `backend` in one call.
///
/// Deprecated shim over the [`ExecRequest`] door (which additionally plans
/// through the global [`PlanCache`], selects backends by [`BackendSpec`],
/// and carries tracing and memory options).
///
/// # Errors
///
/// Returns any planning or execution error; see [`Plan::build`] and
/// [`Executor::run`].
#[deprecated(note = "use ExecRequest::new(graph, inputs).executor(backend).run()")]
pub fn execute(graph: &SamGraph, inputs: &Inputs, backend: &dyn Executor) -> Result<Execution, ExecError> {
    ExecRequest::new(graph, inputs).executor(backend).run()
}

/// The accumulation policy the executor assigns to a reducer of the given
/// order: scalar reducers emit explicit zeros so their value streams stay
/// aligned with the outer coordinate streams feeding the writers; vector
/// and matrix reducers emit only accumulated coordinates.
pub(crate) fn reducer_policy(order: usize) -> EmptyFiberPolicy {
    if order == 0 {
        EmptyFiberPolicy::ExplicitZero
    } else {
        EmptyFiberPolicy::Drop
    }
}

/// Assembles the output tensor from the written levels and values. Both
/// backends share this, so their outputs are structurally identical.
pub(crate) fn assemble_output(
    plan: &Plan,
    levels: Vec<CompressedLevel>,
    vals: &[f64],
) -> Result<Option<Tensor>, ExecError> {
    if levels.is_empty() {
        return Ok(None);
    }
    let expected = levels.last().expect("nonempty").crd.len();
    if vals.len() != expected {
        return Err(ExecError::Misaligned { label: "output assembly".to_string() });
    }
    let order = levels.len();
    Ok(Some(Tensor::from_parts(
        plan.output_name(),
        plan.output_shape().to_vec(),
        TensorFormat::csf(order),
        levels.into_iter().map(Level::Compressed).collect(),
        vals.to_vec(),
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_core::graphs;
    use sam_core::kernels::spmm::SpmmDataflow;
    use sam_tensor::reference::Environment;
    use sam_tensor::{expr::table1, synth, TensorFormat};

    fn dense_env(pairs: &[(&str, &sam_tensor::CooTensor)]) -> Environment {
        let mut env = Environment::new();
        for (name, coo) in pairs {
            env.insert(name, Tensor::from_coo(name, coo, TensorFormat::dense(coo.order())).to_dense());
        }
        env
    }

    #[test]
    fn vecmul_graph_runs_on_both_backends() {
        let graph = graphs::vec_elem_mul(true);
        let b = synth::random_vector(200, 40, 3);
        let c = synth::random_vector(200, 50, 4);
        let inputs =
            Inputs::new().coo("b", &b, TensorFormat::sparse_vec()).coo("c", &c, TensorFormat::sparse_vec());
        let cycle = ExecRequest::new(&graph, &inputs).backend(BackendSpec::Cycle).run().unwrap();
        let fast = ExecRequest::new(&graph, &inputs).run().unwrap();
        let mut env = dense_env(&[("b", &b), ("c", &c)]);
        env.set_dim('i', 200);
        let expect = env.evaluate(&table1::vec_elem_mul()).unwrap();
        assert!(cycle.output.as_ref().unwrap().to_dense().approx_eq(&expect));
        assert_eq!(cycle.output.unwrap(), fast.output.unwrap());
        assert!(cycle.cycles.unwrap() > 0);
        assert!(fast.cycles.is_none());
        assert!(fast.tokens > 0);
    }

    #[test]
    fn spmv_graph_matches_dense_reference() {
        let graph = graphs::spmv();
        let b = synth::random_matrix_sparsity(30, 20, 0.9, 5);
        let c = synth::random_vector(20, 20, 6);
        let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("c", &c, TensorFormat::dense_vec());
        let mut env = dense_env(&[("B", &b)]);
        env.insert("c", Tensor::from_coo("c", &c, TensorFormat::dense_vec()).to_dense());
        env.bind_dims(&table1::spmv(), &[]);
        let expect = env.evaluate(&table1::spmv()).unwrap();
        for backend in [&CycleBackend::default() as &dyn Executor, &FastBackend::default()] {
            let run = ExecRequest::new(&graph, &inputs).executor(backend).run().unwrap();
            assert!(run.output.unwrap().to_dense().approx_eq(&expect), "{} backend diverged", backend.name());
        }
    }

    #[test]
    fn every_spmm_dataflow_graph_matches_reference() {
        let b = synth::random_matrix_sparsity(18, 14, 0.85, 7);
        let c = synth::random_matrix_sparsity(14, 16, 0.85, 8);
        let mut env = dense_env(&[("B", &b), ("C", &c)]);
        env.bind_dims(&table1::spmm(), &[]);
        let expect = env.evaluate(&table1::spmm()).unwrap();
        for dataflow in
            [SpmmDataflow::LinearCombination, SpmmDataflow::InnerProduct, SpmmDataflow::OuterProduct]
        {
            let graph = graphs::spmm(dataflow);
            let b_fmt = if dataflow == SpmmDataflow::OuterProduct {
                TensorFormat::dcsc()
            } else {
                TensorFormat::dcsr()
            };
            let c_fmt = if dataflow == SpmmDataflow::InnerProduct {
                TensorFormat::dcsc()
            } else {
                TensorFormat::dcsr()
            };
            let inputs = Inputs::new().coo("B", &b, b_fmt).coo("C", &c, c_fmt);
            let cycle = ExecRequest::new(&graph, &inputs).backend(BackendSpec::Cycle).run().unwrap();
            let fast = ExecRequest::new(&graph, &inputs).run().unwrap();
            assert!(
                cycle.output.as_ref().unwrap().to_dense().approx_eq(&expect),
                "{} cycle run diverged",
                graph.name
            );
            assert!(
                fast.output.as_ref().unwrap().to_dense().approx_eq(&expect),
                "{} fast run diverged",
                graph.name
            );
        }
    }

    #[test]
    fn sddmm_graph_matches_reference() {
        let (i, j, k) = (12, 10, 4);
        let b = synth::random_matrix_sparsity(i, j, 0.8, 9);
        let c = synth::dense_matrix(i, k, 10);
        let d = synth::dense_matrix(j, k, 11);
        let graph = graphs::sddmm_coiteration();
        let inputs = Inputs::new()
            .coo("B", &b, TensorFormat::dcsr())
            .coo("C", &c, TensorFormat::dense(2))
            .coo("D", &d, TensorFormat::dense(2));
        let mut env = dense_env(&[("B", &b), ("C", &c), ("D", &d)]);
        env.bind_dims(&table1::sddmm(), &[]);
        let expect = env.evaluate(&table1::sddmm()).unwrap();
        for backend in [&CycleBackend::default() as &dyn Executor, &FastBackend::default()] {
            let run = ExecRequest::new(&graph, &inputs).executor(backend).run().unwrap();
            assert!(run.output.unwrap().to_dense().approx_eq(&expect), "{} backend diverged", backend.name());
        }
    }

    #[test]
    fn identity_graph_round_trips() {
        let b = synth::random_matrix_sparsity(15, 12, 0.85, 12);
        let graph = graphs::identity();
        let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr());
        let run = ExecRequest::new(&graph, &inputs).run().unwrap();
        let expect = Tensor::from_coo("B", &b, TensorFormat::dcsr());
        assert!(run.output.unwrap().approx_eq(&expect));
    }
}
