//! The work-stealing parallel fast-backend driver: data parallelism
//! *within* nodes, not one thread per node.
//!
//! The pipelined driver (`pipeline` module) assigns one worker per planned
//! node, which bottlenecks on the fattest node and pays channel
//! synchronization on every chunk — `Threads(4)` lost to serial on every
//! catalog kernel. This driver keeps the serial driver's shape — nodes
//! evaluate one at a time in topological order into materialized
//! streams — and parallelizes the expensive step: a node whose input
//! streams are long enough is *split at fiber boundaries* into independent
//! segments ([`crate::split`]), evaluated as stealable tasks on a
//! [`StealPool`], and concatenated. Segment sizes follow an adaptive ramp
//! (small early, large late) so workers start immediately and per-task
//! overhead amortizes; idle workers steal the oldest (largest-remaining)
//! segments from their peers.
//!
//! Two properties keep this exactly serial-equivalent:
//!
//! * Cut legality is per operator kind ([`Plan::fiber_split`]); cuts land
//!   only where the transfer function's state provably resets, so
//!   concatenated segment outputs are bit-identical to one serial pass.
//! * The merge step re-checks the contract (every segment consumed its
//!   input exactly, synthesized dones came back out) and falls back to
//!   inline serial evaluation of that node on any anomaly — so errors
//!   (misaligned streams, bad references) reproduce the serial behavior.
//!
//! On hosts without real parallelism the driver is adaptive: requested
//! workers are clamped to [`std::thread::available_parallelism`], and with
//! one effective worker no pool is spun up and no streams are split — the
//! run *is* the serial run, rather than a slower simulation of
//! parallelism. Tests force splitting on any host through
//! [`crate::FastBackend::with_split_threshold`].

use crate::bind::Inputs;
use crate::error::ExecError;
use crate::node::{
    eval_node, run_intersect, scanner_level, GallopScan, IntersectOperand, NodeJob, SliceSource, WriterOutput,
};
use crate::plan::Plan;
use crate::split::{plan_cuts, SegSource, SplitPlan};
use crate::steal::StealPool;
use crate::{assemble_output, Execution};
use sam_core::graph::NodeId;
use sam_sim::SimToken;
use sam_streams::Token;
use sam_trace::{ChannelProfile, TokenCounts, TraceSink, WorkerProfile};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::Instant;

type Stream = Vec<SimToken>;

/// One segment's evaluation result, filled in by a pool task.
struct SegOutcome {
    outs: Result<Vec<Stream>, ExecError>,
    /// Whether every input source was drained exactly — the anomaly check.
    consumed: bool,
}

/// Work-stealing evaluation of `plan` using up to `threads` workers.
///
/// `split_threshold` is the minimum input-stream length (tokens) before a
/// node's evaluation is split; `force_split` additionally skips the
/// available-parallelism clamp so the splitting seams run (and are tested)
/// even on single-core hosts.
pub(crate) fn run_stealing(
    backend: &'static str,
    plan: &Plan,
    inputs: &Inputs,
    threads: usize,
    split_threshold: usize,
    force_split: bool,
    trace: &dyn TraceSink,
) -> Result<Execution, ExecError> {
    let start = Instant::now();
    let tracing = trace.enabled();
    let nodes = plan.graph().nodes();
    let n = nodes.len();
    let requested = threads.max(1);
    let hardware = thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let workers = if force_split { requested } else { requested.min(hardware) };
    if workers == 1 && !force_split && !tracing {
        // The clamp left one worker and nobody is watching the profile: a
        // single-worker unsplit evaluation computes exactly what the serial
        // driver computes, so delegate and pay zero scheduling overhead.
        // This makes the bench gate's `parallel ≤ serial` invariant
        // structural on single-core hosts instead of statistical. The
        // traced path stays on the stealing driver so worker spans and
        // counters still appear wherever a profile was requested.
        return crate::fast::run_serial(backend, plan, inputs, trace);
    }
    let split_threshold = split_threshold.max(1);
    // ~3 segments per worker: enough imbalance slack for stealing to
    // matter, few enough that per-segment overhead stays negligible.
    let segments_target = workers * 3;

    if tracing {
        for &id in plan.order() {
            trace.define_node(id.0, &plan.node_label(id));
        }
    }

    // Every node's materialized output streams. Set once by the driving
    // thread (in topological order, so producers are set before any
    // consumer reads them) and read by pool tasks as shared `'env` slices.
    let cells: Vec<OnceLock<Vec<Stream>>> = (0..n).map(|_| OnceLock::new()).collect();
    let pool = (workers > 1).then(|| StealPool::new(workers, tracing));
    // Inline (unsplit) node evaluations run on the driving thread; fold
    // them into worker 0's counters so the profile covers all work.
    let mut main_tasks = 0u64;
    let mut main_busy_ns = 0u64;
    let mut level_results: HashMap<usize, sam_tensor::level::CompressedLevel> = HashMap::new();
    let mut vals_result: Option<Vec<f64>> = None;

    let outcome = thread::scope(|scope| {
        if let Some(pool) = &pool {
            for w in 1..pool.workers() {
                scope.spawn(move || pool.worker_loop(w));
            }
        }
        let result = (|| -> Result<(), ExecError> {
            for &id in plan.order() {
                let n_outs = nodes[id.0].output_ports().len();
                if plan.is_skip_target(id) {
                    // Fused into the downstream intersecter; streams stay
                    // empty (validation guarantees nobody else reads them).
                    let _ = cells[id.0].set(vec![Stream::new(); n_outs]);
                    continue;
                }
                let node_start = Instant::now();
                let label = plan.node_label(id);
                let lanes = plan.skip_scanners(id);
                let outs: Vec<Stream> = if lanes.iter().any(Option::is_some) {
                    let mut outs = vec![Stream::new(); n_outs];
                    let operand = |o: usize| -> IntersectOperand<'_, SliceSource<'_>> {
                        let src = |p: crate::plan::PortRef| {
                            SliceSource::new(&cells[p.node.0].get().expect("topo order")[p.port])
                        };
                        match lanes[o] {
                            Some(scanner) => {
                                let input = src(plan.inputs_of(scanner)[0].expect("scanner ref input"));
                                IntersectOperand::Scan(GallopScan::new(
                                    scanner_level(plan, inputs, scanner),
                                    input,
                                ))
                            }
                            None => IntersectOperand::Streams {
                                crd: src(plan.inputs_of(id)[o].expect("bound crd port")),
                                rf: src(plan.inputs_of(id)[2 + o].expect("bound ref port")),
                            },
                        }
                    };
                    let (a, b) = (operand(0), operand(1));
                    let [oc, o0, o1, ..] = &mut outs[..] else {
                        unreachable!("intersecter has five outputs")
                    };
                    run_intersect(a, b, oc, o0, o1, &label)?;
                    main_tasks += 1;
                    outs
                } else {
                    let ins: Vec<&[SimToken]> = plan
                        .inputs_of(id)
                        .iter()
                        .flatten()
                        .map(|p| cells[p.node.0].get().expect("topo order")[p.port].as_slice())
                        .collect();
                    let longest = ins.iter().map(|s| s.len()).max().unwrap_or(0);
                    let split = pool.as_ref().filter(|_| longest >= split_threshold).and_then(|pool| {
                        let kind = plan.fiber_split(id);
                        let sp = plan_cuts(kind, &ins, segments_target)?;
                        Some((pool, Arc::new(sp)))
                    });
                    match split {
                        Some((pool, sp)) => run_split_node(
                            plan, inputs, id, &label, &ins, n_outs, pool, &sp, trace, tracing, start,
                        )?,
                        None => {
                            let job = NodeJob::build(plan, inputs, id);
                            let mut srcs: Vec<SliceSource<'_>> =
                                ins.iter().map(|s| SliceSource::new(s)).collect();
                            let mut outs = vec![Stream::new(); n_outs];
                            match eval_node(&job, &mut srcs, &mut outs)? {
                                Some(WriterOutput::Level(level)) => {
                                    level_results.insert(id.0, level);
                                }
                                Some(WriterOutput::Vals(vals)) => vals_result = Some(vals),
                                None => {}
                            }
                            main_tasks += 1;
                            outs
                        }
                    }
                };
                if tracing {
                    let elapsed_ns = node_start.elapsed().as_nanos() as u64;
                    let start_ns = (node_start - start).as_nanos() as u64;
                    main_busy_ns += elapsed_ns;
                    trace.record_invocations(id.0, 1);
                    trace.record_node_wall(id.0, elapsed_ns);
                    trace.record_span("worker-0", &label, start_ns, elapsed_ns);
                }
                let _ = cells[id.0].set(outs);
            }
            Ok(())
        })();
        if let Some(pool) = &pool {
            pool.shutdown();
        }
        result
    });
    outcome?;

    if tracing {
        // Classify every node's materialized streams — identical to the
        // serial driver, so per-node counts are scheduling-independent.
        for (node, cell) in cells.iter().enumerate() {
            let outs = cell.get().expect("all nodes evaluated");
            let mut counts = TokenCounts::default();
            for stream in outs {
                for token in stream {
                    counts.record(token);
                }
            }
            trace.record_tokens(node, counts);
        }
        // The planned channel topology, with the same labels and fusion
        // filtering the pipelined driver materializes — zero stall stats,
        // since this driver never blocks on channels.
        let fused_of: HashMap<usize, usize> =
            plan.skip_specs().iter().map(|s| (s.scanner.0, s.intersecter.0)).collect();
        for spec in plan.channels() {
            if matches!(nodes[spec.from.node.0], sam_core::graph::NodeKind::Intersecter { .. })
                && spec.from.port >= 3
            {
                continue;
            }
            if fused_of.contains_key(&spec.from.node.0) {
                continue;
            }
            let consumer = fused_of.get(&spec.to.0).copied().unwrap_or(spec.to.0);
            trace.record_channel(ChannelProfile {
                label: format!(
                    "n{}:{}.out{} -> n{}",
                    spec.from.node.0,
                    plan.node_label(spec.from.node),
                    spec.from.port,
                    consumer,
                ),
                ..Default::default()
            });
        }
        match &pool {
            Some(pool) => {
                for (w, s) in pool.stats().into_iter().enumerate() {
                    let (tasks, busy_ns) = if w == 0 {
                        (s.tasks + main_tasks, s.busy_ns + main_busy_ns)
                    } else {
                        (s.tasks, s.busy_ns)
                    };
                    trace.record_worker(WorkerProfile { index: w, tasks, steals: s.steals, busy_ns });
                }
            }
            None => {
                trace.record_worker(WorkerProfile {
                    index: 0,
                    tasks: main_tasks,
                    steals: 0,
                    busy_ns: main_busy_ns,
                });
            }
        }
    }

    let levels: Vec<_> = plan
        .level_writers()
        .iter()
        .map(|w| level_results.remove(&w.0).ok_or(ExecError::IncompleteOutput { label: plan.node_label(*w) }))
        .collect::<Result<_, _>>()?;
    let vals =
        vals_result.ok_or(ExecError::IncompleteOutput { label: plan.node_label(plan.vals_writer()) })?;
    let tokens: u64 = cells.iter().filter_map(OnceLock::get).flatten().map(|s| s.len() as u64).sum();
    let output = assemble_output(plan, levels, &vals)?;

    Ok(Execution {
        backend,
        output,
        vals,
        cycles: None,
        blocks: n,
        channels: plan.channels().len(),
        tokens,
        spills: 0,
        memory: None,
        elapsed: start.elapsed(),
        profile: trace.snapshot(),
    })
}

/// Evaluates one node split into segments on the pool, merging the segment
/// outputs back into whole streams. Falls back to inline serial evaluation
/// when any segment reports an anomaly.
#[allow(clippy::too_many_arguments)]
fn run_split_node<'env>(
    plan: &'env Plan,
    inputs: &'env Inputs,
    id: NodeId,
    label: &str,
    ins: &[&'env [SimToken]],
    n_outs: usize,
    pool: &StealPool<'env>,
    sp: &Arc<SplitPlan>,
    trace: &'env dyn TraceSink,
    tracing: bool,
    start: Instant,
) -> Result<Vec<Stream>, ExecError> {
    let segs = sp.segments();
    let slots: Arc<Vec<Mutex<Option<SegOutcome>>>> = Arc::new((0..segs).map(|_| Mutex::new(None)).collect());
    let synth = sp.synth_done;
    let tasks: Vec<Box<dyn FnOnce(usize) + Send + 'env>> = (0..segs)
        .map(|s| {
            let slots = Arc::clone(&slots);
            let sp = Arc::clone(sp);
            let ins: Vec<&'env [SimToken]> = ins.to_vec();
            let label = label.to_string();
            Box::new(move |w: usize| {
                let job = NodeJob::build(plan, inputs, id);
                let mut srcs: Vec<SegSource<'_>> = ins
                    .iter()
                    .enumerate()
                    .map(|(i, tokens)| {
                        let (a, b) = sp.range(s, i, tokens.len());
                        SegSource::new(&tokens[a..b], synth && s + 1 < segs)
                    })
                    .collect();
                let mut outs = vec![Stream::new(); n_outs];
                let seg_start = tracing.then(Instant::now);
                let res = eval_node(&job, &mut srcs, &mut outs);
                let consumed = srcs.iter().all(SegSource::fully_consumed);
                if let Some(seg_start) = seg_start {
                    let elapsed_ns = seg_start.elapsed().as_nanos() as u64;
                    let start_ns = (seg_start - start).as_nanos() as u64;
                    trace.record_span(&format!("worker-{w}"), &format!("{label}[{s}]"), start_ns, elapsed_ns);
                }
                *slots[s].lock().expect("segment slot") =
                    Some(SegOutcome { outs: res.map(|_| outs), consumed });
            }) as Box<dyn FnOnce(usize) + Send + 'env>
        })
        .collect();
    pool.run_batch(tasks);

    // Merge under the split contract; any violation discards the segments
    // and re-runs the node serially (reproducing serial output or error).
    let merged = (|| -> Option<Vec<Stream>> {
        let mut parts: Vec<Vec<Stream>> = Vec::with_capacity(segs);
        for slot in slots.iter() {
            match slot.lock().expect("segment slot").take() {
                Some(SegOutcome { outs: Ok(o), consumed: true }) => parts.push(o),
                _ => return None,
            }
        }
        if synth {
            // Middle segments ran to their synthetic done; every stream
            // they emitted ends with the matching done token — drop it.
            for part in &mut parts[..segs - 1] {
                for stream in part.iter_mut() {
                    match stream.last() {
                        Some(Token::Done) => {
                            stream.pop();
                        }
                        Some(_) => return None,
                        None => {}
                    }
                }
            }
        }
        let mut merged = vec![Stream::new(); n_outs];
        for part in parts {
            for (port, stream) in part.into_iter().enumerate() {
                merged[port].extend(stream);
            }
        }
        Some(merged)
    })();
    match merged {
        Some(streams) => Ok(streams),
        None => {
            let job = NodeJob::build(plan, inputs, id);
            let mut srcs: Vec<SliceSource<'_>> = ins.iter().map(|s| SliceSource::new(s)).collect();
            let mut outs = vec![Stream::new(); n_outs];
            eval_node(&job, &mut srcs, &mut outs)?;
            Ok(outs)
        }
    }
}
