//! The *pipelined* parallel fast-backend driver: one work unit per planned
//! node, pipelined over chunked channels on a bounded worker pool.
//!
//! This is the engine behind [`FastBackend::pipelined`] (and behind
//! `with_chunk_config`, whose spill-path tests depend on bounded
//! channels). The default `Threads(n)` engine is the work-stealing
//! data-parallel driver in the `parallel` module, which parallelizes
//! *within* nodes instead of across them; this one is kept because it is
//! the only mode that exercises the chunked-channel transport — spills,
//! backpressure, blocked-send/recv attribution — end to end.
//!
//! [`FastBackend::pipelined`]: crate::FastBackend::pipelined
//!
//! The planner already emits everything this driver needs: a topological
//! order, a producer endpoint per input port, and the channel topology
//! ([`Plan::channels`]) with one channel per (producer port, consumer port)
//! pair — fan-out reuses the planner's fork insertion, materialized here as
//! one sender per consumer rather than a dedicated fork block.
//!
//! Scheduling is deliberately simple and provably deadlock-free:
//!
//! * Workers claim nodes from a shared cursor that walks the topological
//!   order, so a node's producers are always claimed no later than the node
//!   itself.
//! * A claimed node runs its transfer function to completion, pulling from
//!   [`ChunkReceiver`]s (blocking until the producer streams a chunk or
//!   finishes) and pushing to [`ChunkSender`]s.
//! * Receivers attach at claim time; sends into channels whose consumer has
//!   not been claimed yet spill instead of blocking (see
//!   [`sam_streams::chunked`]), so fewer threads than nodes degrades to
//!   buffered execution, never to a stall. With at least as many threads as
//!   nodes, the whole graph pipelines chunk by chunk under backpressure.
//!
//! A node that fails (misaligned streams, out-of-bounds reference) drops
//! its senders, which truncates downstream streams; consumers then fail in
//! turn, and the driver reports the earliest error in topological order —
//! the root cause, exactly the error the serial mode would have raised.

use crate::bind::Inputs;
use crate::error::ExecError;
use crate::node::{
    eval_node, run_intersect, scanner_level, GallopScan, IntersectOperand, NodeJob, Sink, Source,
    WriterOutput,
};
use crate::plan::Plan;
use crate::{assemble_output, Execution};
use sam_core::graph::NodeId;
use sam_sim::SimToken;
use sam_streams::chunked::{
    channel_counted, channel_instrumented, ChannelStats, ChunkConfig, ChunkReceiver, ChunkSender,
};
use sam_trace::{ChannelProfile, TokenCounts, TraceSink};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

impl Source for ChunkReceiver<SimToken> {
    fn next(&mut self) -> Option<SimToken> {
        ChunkReceiver::next(self)
    }

    fn peek(&mut self) -> Option<SimToken> {
        ChunkReceiver::peek(self).copied()
    }
}

/// One node's output port in parallel mode: a sender per consumer (the
/// planner's fork, applied at push time) plus a token count for reporting.
struct ChannelSink {
    senders: Vec<ChunkSender<SimToken>>,
    tokens: u64,
    /// Per-type token classification, accumulated only on traced runs.
    /// Counting happens here — before fan-out duplicates the token — so a
    /// node's counts are independent of its consumer count and identical to
    /// what serial mode classifies from its materialized streams.
    counts: Option<TokenCounts>,
}

impl Sink for ChannelSink {
    fn push(&mut self, t: SimToken) {
        self.tokens += 1;
        if let Some(counts) = &mut self.counts {
            counts.record(&t);
        }
        for tx in &mut self.senders {
            tx.push(t);
        }
    }
}

/// The streams one claimed node reads and writes. Entries of `srcs` are
/// `None` for unwired skip ports and for operand streams rerouted by skip
/// fusion (see [`run_parallel`]).
struct NodeStreams {
    srcs: Vec<Option<ChunkReceiver<SimToken>>>,
    sinks: Vec<ChannelSink>,
}

/// Pipelined evaluation of `plan` on `threads` worker threads.
///
/// Skip lanes change the materialized topology: a skip-target scanner is
/// *fused* into its intersecter, so the scanner's output channels and the
/// skip feedback channels are never created. Instead the channel that fed
/// the scanner is rerouted to the intersecter's work unit, which runs a
/// [`GallopScan`] over it — the skip "feedback" becomes a synchronous
/// cursor jump inside one work unit, which is both faster and immune to
/// feedback-cycle deadlocks.
pub(crate) fn run_pipelined(
    backend: &'static str,
    plan: &Plan,
    inputs: &Inputs,
    threads: usize,
    config: ChunkConfig,
    planned_depths: bool,
    trace: &dyn TraceSink,
) -> Result<Execution, ExecError> {
    let start = Instant::now();
    let tracing = trace.enabled();
    let nodes = plan.graph().nodes();
    let n = nodes.len();
    let threads = threads.max(1).min(n.max(1));
    if tracing {
        for &id in plan.order() {
            trace.define_node(id.0, &plan.node_label(id));
        }
    }
    // One shared counter aggregates the spill-past-depth escapes of every
    // channel in the topology (reported as `Execution::spills`).
    let spill_counter = Arc::new(AtomicU64::new(0));

    // Skip fusion bookkeeping: scanner -> (intersecter, operand).
    let fused_of: HashMap<usize, (usize, usize)> =
        plan.skip_specs().iter().map(|s| (s.scanner.0, (s.intersecter.0, s.operand))).collect();

    // Materialize the planned channel topology.
    let mut srcs: Vec<Vec<Option<ChunkReceiver<SimToken>>>> =
        nodes.iter().map(|k| (0..k.input_ports().len()).map(|_| None).collect()).collect();
    let mut senders: Vec<Vec<Vec<ChunkSender<SimToken>>>> =
        nodes.iter().map(|k| (0..k.output_ports().len()).map(|_| Vec::new()).collect()).collect();
    // Fused scan inputs: (intersecter, operand) -> the channel that fed the
    // elided scanner.
    let mut fused_rx: HashMap<(usize, usize), ChunkReceiver<SimToken>> = HashMap::new();
    // On traced runs, per-channel stall stats plus the attribution needed to
    // roll them up: (stats, label, producer node, consumer node). Blocked
    // sends charge the producer; blocked receives charge the consumer (for
    // fused scanner inputs, the intersecter that actually drains them).
    let mut chan_meta: Vec<(Arc<ChannelStats>, String, usize, usize)> = Vec::new();
    let channel_count = plan.channels().len();
    for spec in plan.channels() {
        // Skip feedback lanes live inside the fused work unit; no channel.
        if matches!(nodes[spec.from.node.0], sam_core::graph::NodeKind::Intersecter { .. })
            && spec.from.port >= 3
        {
            continue;
        }
        // A fused scanner's own outputs are never materialized...
        if fused_of.contains_key(&spec.from.node.0) {
            continue;
        }
        // Per-channel depth from the planner's stream-size estimate, unless
        // the caller pinned a fixed config (`with_chunk_config`).
        let spec_config = if planned_depths {
            ChunkConfig { chunk_len: config.chunk_len, depth: plan.channel_depth(spec, config.chunk_len) }
        } else {
            config
        };
        let (tx, rx) = if tracing {
            let consumer = fused_of.get(&spec.to.0).map_or(spec.to.0, |&(i, _)| i);
            let stats = Arc::new(ChannelStats::default());
            let label = format!(
                "n{}:{}.out{} -> n{}",
                spec.from.node.0,
                plan.node_label(spec.from.node),
                spec.from.port,
                consumer,
            );
            chan_meta.push((Arc::clone(&stats), label, spec.from.node.0, consumer));
            channel_instrumented::<SimToken>(spec_config, Arc::clone(&spill_counter), stats)
        } else {
            channel_counted::<SimToken>(spec_config, Arc::clone(&spill_counter))
        };
        senders[spec.from.node.0][spec.from.port].push(tx);
        // ...and the channel feeding it is rerouted to the intersecter.
        if let Some(&key) = fused_of.get(&spec.to.0) {
            fused_rx.insert(key, rx);
        } else {
            srcs[spec.to.0][spec.to_port] = Some(rx);
        }
    }
    let works: Vec<Option<NodeStreams>> = srcs
        .into_iter()
        .zip(senders)
        .map(|(node_srcs, node_senders)| {
            Some(NodeStreams {
                srcs: node_srcs,
                sinks: node_senders
                    .into_iter()
                    .map(|txs| ChannelSink {
                        senders: txs,
                        tokens: 0,
                        counts: tracing.then(TokenCounts::default),
                    })
                    .collect(),
            })
        })
        .collect();

    type NodeResult = (Result<Option<WriterOutput>, ExecError>, u64);
    let works = Mutex::new(works);
    let fused_rx = Mutex::new(fused_rx);
    let results: Mutex<Vec<Option<NodeResult>>> = Mutex::new((0..n).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);

    thread::scope(|scope| {
        let works = &works;
        let results = &results;
        let fused_rx = &fused_rx;
        let cursor = &cursor;
        for worker in 0..threads {
            scope.spawn(move || loop {
                let idx = cursor.fetch_add(1, Ordering::SeqCst);
                let Some(&id) = plan.order().get(idx) else { break };
                let mut work = works.lock().expect("work list")[id.0].take().expect("each node claimed once");
                if plan.is_skip_target(id) {
                    // Fused into the downstream intersecter; nothing to run.
                    results.lock().expect("results")[id.0] = Some((Ok(None), 0));
                    continue;
                }
                let node_start = tracing.then(Instant::now);
                // From here on the producers of this node may block on us
                // instead of spilling: we are actively draining.
                for src in work.srcs.iter().flatten() {
                    src.attach();
                }
                let lanes = plan.skip_scanners(id);
                let res = if lanes.iter().any(Option::is_some) {
                    run_fused_intersect(plan, inputs, id, lanes, &mut work, fused_rx)
                } else {
                    let job = NodeJob::build(plan, inputs, id);
                    let mut bound: Vec<ChunkReceiver<SimToken>> = work.srcs.drain(..).flatten().collect();
                    eval_node(&job, &mut bound, &mut work.sinks)
                };
                let tokens = work.sinks.iter().map(|s| s.tokens).sum();
                if tracing {
                    let counts = work.sinks.iter().fold(TokenCounts::default(), |acc, s| match &s.counts {
                        Some(c) => acc + *c,
                        None => acc,
                    });
                    trace.record_tokens(id.0, counts);
                }
                // Dropping the streams finishes this node's outputs (flush +
                // end-of-stream) and detaches its inputs.
                drop(work);
                if let Some(node_start) = node_start {
                    let elapsed_ns = node_start.elapsed().as_nanos() as u64;
                    let start_ns = (node_start - start).as_nanos() as u64;
                    trace.record_invocations(id.0, 1);
                    trace.record_node_wall(id.0, elapsed_ns);
                    trace.record_span(
                        &format!("worker-{worker}"),
                        &plan.node_label(id),
                        start_ns,
                        elapsed_ns,
                    );
                }
                results.lock().expect("results")[id.0] = Some((res, tokens));
            });
        }
    });

    if tracing {
        // Channel stats are final once every worker has exited: attribute
        // blocked sends to the producer, blocked receives to the consumer.
        for (stats, label, producer, consumer) in &chan_meta {
            let blocked_send = stats.blocked_send_ns.load(Ordering::Relaxed);
            let blocked_recv = stats.blocked_recv_ns.load(Ordering::Relaxed);
            trace.record_node_blocked(*producer, blocked_send);
            trace.record_node_blocked(*consumer, blocked_recv);
            trace.record_channel(ChannelProfile {
                label: label.clone(),
                blocked_send_ns: blocked_send,
                blocked_recv_ns: blocked_recv,
                occupancy_peak: stats.occupancy_peak.load(Ordering::Relaxed),
                spills: stats.spills.load(Ordering::Relaxed),
            });
        }
    }

    let mut results = results.into_inner().expect("results");
    // Report the earliest failure in topological order: downstream nodes
    // fail on the truncated streams an upstream failure leaves behind.
    for &id in plan.order() {
        if matches!(&results[id.0], Some((Err(_), _))) {
            let Some((Err(e), _)) = results[id.0].take() else { unreachable!("just matched") };
            return Err(e);
        }
    }

    let mut level_results: HashMap<usize, sam_tensor::level::CompressedLevel> = HashMap::new();
    let mut vals_result: Option<Vec<f64>> = None;
    let mut tokens = 0u64;
    for (i, slot) in results.iter_mut().enumerate() {
        let Some((res, node_tokens)) = slot.take() else {
            return Err(ExecError::IncompleteOutput { label: plan.node_label(NodeId(i)) });
        };
        tokens += node_tokens;
        match res.expect("errors handled above") {
            Some(WriterOutput::Level(level)) => {
                level_results.insert(i, level);
            }
            Some(WriterOutput::Vals(vals)) => vals_result = Some(vals),
            None => {}
        }
    }

    let levels: Vec<_> = plan
        .level_writers()
        .iter()
        .map(|w| level_results.remove(&w.0).ok_or(ExecError::IncompleteOutput { label: plan.node_label(*w) }))
        .collect::<Result<_, _>>()?;
    let vals =
        vals_result.ok_or(ExecError::IncompleteOutput { label: plan.node_label(plan.vals_writer()) })?;
    let output = assemble_output(plan, levels, &vals)?;

    Ok(Execution {
        backend,
        output,
        vals,
        cycles: None,
        blocks: n,
        channels: channel_count,
        tokens,
        spills: spill_counter.load(Ordering::Relaxed),
        memory: None,
        elapsed: start.elapsed(),
        profile: trace.snapshot(),
    })
}

/// Runs a skip-fused intersecter work unit: each skip-wired operand is a
/// [`GallopScan`] over the channel that fed its (elided) scanner, while
/// skip-free operands read the scanner streams as usual.
fn run_fused_intersect(
    plan: &Plan,
    inputs: &Inputs,
    id: sam_core::graph::NodeId,
    lanes: [Option<sam_core::graph::NodeId>; 2],
    work: &mut NodeStreams,
    fused_rx: &Mutex<HashMap<(usize, usize), ChunkReceiver<SimToken>>>,
) -> Result<Option<WriterOutput>, ExecError> {
    #[allow(clippy::too_many_arguments)]
    fn mk_operand<'a>(
        plan: &Plan,
        inputs: &'a Inputs,
        id: usize,
        o: usize,
        lane: Option<sam_core::graph::NodeId>,
        slots: &mut [Option<ChunkReceiver<SimToken>>],
        fused_rx: &Mutex<HashMap<(usize, usize), ChunkReceiver<SimToken>>>,
        label: &str,
    ) -> Result<IntersectOperand<'a, ChunkReceiver<SimToken>>, ExecError> {
        let lost = || ExecError::Misaligned { label: label.to_string() };
        match lane {
            Some(scanner) => {
                let rx = fused_rx.lock().expect("fused inputs").remove(&(id, o)).ok_or_else(lost)?;
                rx.attach();
                Ok(IntersectOperand::Scan(GallopScan::new(scanner_level(plan, inputs, scanner), rx)))
            }
            None => {
                let crd = slots[o].take().ok_or_else(lost)?;
                let rf = slots[2 + o].take().ok_or_else(lost)?;
                Ok(IntersectOperand::Streams { crd, rf })
            }
        }
    }

    let label = plan.node_label(id);
    let mut slots: Vec<Option<ChunkReceiver<SimToken>>> = work.srcs.drain(..).collect();
    let a = mk_operand(plan, inputs, id.0, 0, lanes[0], &mut slots, fused_rx, &label)?;
    let b = mk_operand(plan, inputs, id.0, 1, lanes[1], &mut slots, fused_rx, &label)?;
    let [oc, o0, o1, ..] = &mut work.sinks[..] else { unreachable!("intersecter has five outputs") };
    run_intersect(a, b, oc, o0, o1, &label)?;
    Ok(None)
}
