//! Per-primitive transfer functions, written once against pull/push stream
//! abstractions so both fast-backend execution modes share them.
//!
//! Every function here consumes its input streams strictly left to right
//! (with at most one token of lookahead) and appends to its output streams
//! strictly in order. That discipline is what lets the same code run two
//! ways:
//!
//! * **serial** — a [`Source`] over a finished `Vec<SimToken>` and a plain
//!   `Vec<SimToken>` as the [`Sink`]: the node evaluates whole streams in
//!   one call, exactly like the original single-threaded fast backend, and
//! * **parallel** — a [`Source`]/[`Sink`] over the bounded chunked channels
//!   of `sam_streams::chunked`: the node runs on its own thread, consuming
//!   chunks as producers emit them and streaming chunks to consumers, so
//!   independent scan chains and the two sides of every merge make progress
//!   concurrently.
//!
//! The transfer functions themselves mirror the `sam-primitives` block
//! semantics token for token (see the paper definitions cited on each), so
//! the cycle backend, the serial fast backend and the parallel fast backend
//! all compute identical streams from the same [`Plan`](crate::Plan).

use crate::bind::Inputs;
use crate::error::ExecError;
use crate::plan::Plan;
use crate::reducer_policy;
use sam_core::graph::{NodeId, NodeKind};
use sam_primitives::{root_stream, AluOp, EmptyFiberPolicy};
use sam_sim::payload::{tok, Payload};
use sam_sim::SimToken;
use sam_streams::Token;
use sam_tensor::level::{CompressedLevel, Level};
use std::collections::BTreeMap;

/// A pull-based token stream: the reading half of a node's input.
pub(crate) trait Source {
    /// The next token, or `None` when the stream ends (producer finished or
    /// failed without a done token).
    fn next(&mut self) -> Option<SimToken>;

    /// The next token without consuming it.
    fn peek(&mut self) -> Option<SimToken>;
}

impl<S: Source + ?Sized> Source for &mut S {
    fn next(&mut self) -> Option<SimToken> {
        (**self).next()
    }

    fn peek(&mut self) -> Option<SimToken> {
        (**self).peek()
    }
}

/// A push-based token stream: the writing half of a node's output.
pub(crate) trait Sink {
    /// Appends one token to the stream.
    fn push(&mut self, t: SimToken);
}

/// A [`Source`] over a finished, fully materialized stream (serial mode).
pub(crate) struct SliceSource<'a> {
    tokens: &'a [SimToken],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    pub(crate) fn new(tokens: &'a [SimToken]) -> Self {
        SliceSource { tokens, pos: 0 }
    }
}

impl Source for SliceSource<'_> {
    fn next(&mut self) -> Option<SimToken> {
        let t = self.tokens.get(self.pos).copied();
        self.pos += 1;
        t
    }

    fn peek(&mut self) -> Option<SimToken> {
        self.tokens.get(self.pos).copied()
    }
}

impl Sink for Vec<SimToken> {
    fn push(&mut self, t: SimToken) {
        Vec::push(self, t);
    }
}

/// The tensor data a writer node hands back to the driver.
pub(crate) enum WriterOutput {
    /// One compressed output level (a non-values level writer).
    Level(CompressedLevel),
    /// The output values array (the values writer).
    Vals(Vec<f64>),
}

/// Everything one node evaluation needs besides its streams: the resolved
/// tensor level / values / ALU op / writer dimension from the plan.
pub(crate) struct NodeJob<'a> {
    pub(crate) kind: &'a NodeKind,
    pub(crate) label: String,
    level: Option<&'a Level>,
    vals: Option<&'a [f64]>,
    alu: Option<AluOp>,
    constant: Option<f64>,
    writer_dim: usize,
}

/// The storage level a scanner (or locator) node reads, resolved from the
/// plan's tensor binding — shared by the fused skip paths of both fast
/// execution modes.
pub(crate) fn scanner_level<'a>(plan: &Plan, inputs: &'a Inputs, id: NodeId) -> &'a Level {
    let (NodeKind::LevelScanner { tensor, .. } | NodeKind::Locator { tensor, .. }) =
        &plan.graph().nodes()[id.0]
    else {
        unreachable!("skip targets are scanners")
    };
    inputs.get(tensor).expect("validated binding").level(plan.scan_level(id))
}

impl<'a> NodeJob<'a> {
    /// Resolves the plan- and input-side context of `id` for evaluation.
    pub(crate) fn build(plan: &'a Plan, inputs: &'a Inputs, id: NodeId) -> NodeJob<'a> {
        let kind = &plan.graph().nodes()[id.0];
        let mut job = NodeJob {
            kind,
            label: kind.label(),
            level: None,
            vals: None,
            alu: None,
            constant: None,
            writer_dim: 0,
        };
        match kind {
            NodeKind::LevelScanner { tensor, .. } | NodeKind::Locator { tensor, .. } => {
                job.level = Some(inputs.get(tensor).expect("validated binding").level(plan.scan_level(id)));
            }
            NodeKind::Array { tensor } => {
                job.vals = Some(inputs.get(tensor).expect("validated binding").vals());
            }
            NodeKind::Alu { .. } => job.alu = Some(plan.alu_op(id)),
            NodeKind::ConstVal { .. } => job.constant = Some(plan.const_val(id)),
            NodeKind::LevelWriter { vals, .. } if !vals => job.writer_dim = plan.writer_dim(id),
            _ => {}
        }
        job
    }
}

/// Runs one node over its input sources, pushing to its output sinks.
/// Writers return their collected output instead of streaming.
pub(crate) fn eval_node<S: Source, K: Sink>(
    job: &NodeJob<'_>,
    srcs: &mut [S],
    outs: &mut [K],
) -> Result<Option<WriterOutput>, ExecError> {
    let label = job.label.as_str();
    match job.kind {
        NodeKind::Root { .. } => {
            for t in root_stream() {
                outs[0].push(t);
            }
        }
        NodeKind::LevelScanner { .. } => {
            let [crd, rf] = outs else { unreachable!("scanner has two outputs") };
            run_scanner(job.level.expect("scanner level"), &mut srcs[0], crd, rf);
        }
        NodeKind::Repeater { .. } => {
            let [crd_in, ref_in] = srcs else { unreachable!("repeater has two inputs") };
            run_repeater(crd_in, ref_in, &mut outs[0], label)?;
        }
        NodeKind::Intersecter { .. } => {
            // Skip lanes, when planned, are run through the fused
            // `run_intersect` path by the backends, not through here; the
            // trailing skip output ports stay silent in the fast backend.
            let [c0, c1, r0, r1] = srcs else { unreachable!("intersecter has four inputs") };
            let [oc, o0, o1, ..] = outs else { unreachable!("intersecter has five outputs") };
            run_intersect(
                IntersectOperand::Streams { crd: c0, rf: r0 },
                IntersectOperand::Streams { crd: c1, rf: r1 },
                oc,
                o0,
                o1,
                label,
            )?;
        }
        NodeKind::Unioner { .. } => {
            let [c0, c1, r0, r1] = srcs else { unreachable!("unioner has four inputs") };
            let [oc, o0, o1] = outs else { unreachable!("unioner has three outputs") };
            run_union(c0, c1, r0, r1, oc, o0, o1, label)?;
        }
        NodeKind::Locator { .. } => {
            let [crd, rf] = srcs else { unreachable!("locator has two inputs") };
            let [oc, pass, located] = outs else { unreachable!("locator has three outputs") };
            run_locator(job.level.expect("locator level"), crd, rf, oc, pass, located, label)?;
        }
        NodeKind::Array { .. } => {
            run_array(job.vals.expect("array values"), &mut srcs[0], &mut outs[0], label)?;
        }
        NodeKind::ConstVal { .. } => {
            run_const(job.constant.expect("validated constant"), &mut srcs[0], &mut outs[0]);
        }
        NodeKind::Alu { .. } => {
            let [a, b] = srcs else { unreachable!("ALU has two inputs") };
            run_alu(job.alu.expect("validated ALU"), a, b, &mut outs[0], label)?;
        }
        NodeKind::Reducer { order } => match order {
            0 => run_reduce_scalar(&mut srcs[0], reducer_policy(0), &mut outs[0]),
            1 => {
                let [crd, val] = srcs else { unreachable!("vector reducer has two inputs") };
                let [oc, ov] = outs else { unreachable!("vector reducer has two outputs") };
                run_reduce_vector(crd, val, oc, ov, label)?;
            }
            _ => {
                let [outer, inner, val] = srcs else { unreachable!("matrix reducer has three inputs") };
                let [oo, oi, ov] = outs else { unreachable!("matrix reducer has three outputs") };
                run_reduce_matrix(outer, inner, val, oo, oi, ov, label)?;
            }
        },
        NodeKind::CoordDropper { .. } => {
            let [outer, inner] = srcs else { unreachable!("dropper has two inputs") };
            let [oo, oi] = outs else { unreachable!("dropper has two outputs") };
            run_dropper(outer, inner, oo, oi, label)?;
        }
        NodeKind::LevelWriter { vals, .. } => {
            return Ok(Some(if *vals {
                WriterOutput::Vals(run_val_writer(&mut srcs[0]))
            } else {
                WriterOutput::Level(run_level_writer(job.writer_dim, &mut srcs[0]))
            }));
        }
        NodeKind::Parallelizer | NodeKind::Serializer | NodeKind::BitvectorConverter => {
            unreachable!("rejected during planning")
        }
    }
    Ok(None)
}

fn misaligned(label: &str) -> ExecError {
    ExecError::Misaligned { label: label.to_string() }
}

/// Reads the crd/ref token pair at one position of a merged operand; the
/// two streams of an operand always advance in lockstep.
fn fetch_pair<S: Source>(crd: &mut S, rf: &mut S) -> Option<(SimToken, SimToken)> {
    let c = crd.next()?;
    let r = rf.next()?;
    Some((c, r))
}

/// Emits the stop that trails a scanned fiber, upgrading it when the input
/// stream closes outer fibers at the same point (one-token lookahead).
fn trailing_stop<S: Source, K: Sink>(input: &mut S, crd: &mut K, rf: &mut K) {
    match input.peek() {
        Some(Token::Stop(n)) => {
            input.next();
            crd.push(tok::stop(n + 1));
            rf.push(tok::stop(n + 1));
        }
        _ => {
            crd.push(tok::stop(0));
            rf.push(tok::stop(0));
        }
    }
}

/// Level scanner transfer function (Definition 3.1, stop rule of
/// Section 3.3).
fn run_scanner<S: Source, K: Sink>(level: &Level, input: &mut S, crd: &mut K, rf: &mut K) {
    while let Some(t) = input.next() {
        match t {
            Token::Val(p) => {
                for e in level.fiber(p.expect_ref() as usize) {
                    crd.push(tok::crd(e.coord));
                    rf.push(tok::rf(e.child as u32));
                }
                trailing_stop(input, crd, rf);
            }
            Token::Empty => trailing_stop(input, crd, rf),
            Token::Stop(n) => {
                crd.push(tok::stop(n + 1));
                rf.push(tok::stop(n + 1));
            }
            Token::Done => {
                crd.push(tok::done());
                rf.push(tok::done());
                break;
            }
        }
    }
}

/// Repeater transfer function (Definition 3.4).
///
/// The coordinate stream sits one fibertree level below the reference
/// stream, so their structures correlate: every coordinate-stream *fiber*
/// (even an empty one) corresponds to one reference data token, and every
/// coordinate stop of level `n >= 1` additionally closes the reference
/// stream's own fiber, consuming its (single, hierarchical) stop token.
/// Walking that correspondence reproduces the cycle-level block's output
/// without emulating its tick timing.
fn run_repeater<S: Source, K: Sink>(
    crd_in: &mut S,
    ref_in: &mut S,
    out: &mut K,
    label: &str,
) -> Result<(), ExecError> {
    let mut current: Option<SimToken> = None;
    while let Some(t) = crd_in.next() {
        match t {
            Token::Val(_) => {
                if current.is_none() {
                    // The current fiber's reference: the next data token.
                    match ref_in.next() {
                        Some(r @ (Token::Val(_) | Token::Empty)) => current = Some(r),
                        _ => return Err(misaligned(label)),
                    }
                }
                out.push(current.expect("just fetched"));
            }
            Token::Empty => out.push(tok::empty()),
            Token::Stop(n) => {
                if current.is_none() {
                    // An empty fiber still consumes its reference, unless
                    // this bare stop only closes outer levels (the
                    // reference stream then carries a stop here itself).
                    if let Some(Token::Val(_) | Token::Empty) = ref_in.peek() {
                        ref_in.next();
                    }
                }
                current = None;
                if n > 0 {
                    // The reference stream's own fiber closes with it.
                    if let Some(Token::Stop(_)) = ref_in.peek() {
                        ref_in.next();
                    }
                }
                out.push(tok::stop(n));
            }
            Token::Done => {
                out.push(tok::done());
                break;
            }
        }
    }
    Ok(())
}

/// The scan progress of a [`GallopScan`], mirroring the cycle-level
/// scanner's state machine.
enum GallopState {
    /// Waiting for the next input reference token.
    Idle,
    /// Walking the entries of fiber `fiber`; `pos` is the cursor the skip
    /// requests gallop forward.
    Emitting { fiber: usize, pos: usize, len: usize },
    /// The fiber ended; the trailing stop's level depends on the next input
    /// token (Section 3.3's hierarchical rule).
    NeedStop,
    /// The done pair was emitted.
    Finished,
}

/// A level scanner fused into its downstream intersecter (the fast
/// backend's lowering of a Section 4.2 skip lane).
///
/// Produces exactly the `(crd, ref)` token pairs [`run_scanner`] would
/// materialize, but lazily — and [`GallopScan::skip_to`] gallops the
/// in-flight fiber cursor past every coordinate below a skip target without
/// generating tokens for them. Dense levels jump in O(1), compressed levels
/// binary-search, so a skewed intersection costs the short side's length
/// (times a logarithm), not the long side's.
pub(crate) struct GallopScan<'a, S: Source> {
    level: &'a Level,
    input: S,
    state: GallopState,
}

impl<'a, S: Source> GallopScan<'a, S> {
    /// A fused scanner over `level`, pulling fiber references from `input`
    /// (the stream that fed the standalone scanner node).
    pub(crate) fn new(level: &'a Level, input: S) -> Self {
        GallopScan { level, input, state: GallopState::Idle }
    }

    /// Gallops the current fiber's cursor to the first entry whose
    /// coordinate is at least `target`. Requests outside a fiber are stale
    /// (the fiber already ended) and ignored, like the cycle-level block.
    fn skip_to(&mut self, target: u32) {
        if let GallopState::Emitting { fiber, pos, .. } = &mut self.state {
            *pos = self.level.gallop_from(*fiber, *pos, target);
        }
    }

    /// The next `(crd, ref)` token pair, or `None` after the stream ends.
    fn next_pair(&mut self) -> Option<(SimToken, SimToken)> {
        loop {
            match self.state {
                GallopState::Emitting { fiber, pos, len } => {
                    if pos < len {
                        let e = self.level.entry_at(fiber, pos);
                        self.state = if pos + 1 >= len {
                            GallopState::NeedStop
                        } else {
                            GallopState::Emitting { fiber, pos: pos + 1, len }
                        };
                        return Some((tok::crd(e.coord), tok::rf(e.child as u32)));
                    }
                    self.state = GallopState::NeedStop;
                }
                GallopState::NeedStop => {
                    self.state = GallopState::Idle;
                    // One-token lookahead upgrades the trailing stop when the
                    // input closes outer fibers here (same as trailing_stop).
                    if let Some(Token::Stop(n)) = self.input.peek() {
                        self.input.next();
                        return Some((tok::stop(n + 1), tok::stop(n + 1)));
                    }
                    return Some((tok::stop(0), tok::stop(0)));
                }
                GallopState::Idle => match self.input.next()? {
                    Token::Val(p) => {
                        let fiber = p.expect_ref() as usize;
                        let len = self.level.fiber_len(fiber);
                        self.state = if len == 0 {
                            GallopState::NeedStop
                        } else {
                            GallopState::Emitting { fiber, pos: 0, len }
                        };
                    }
                    Token::Empty => self.state = GallopState::NeedStop,
                    Token::Stop(n) => return Some((tok::stop(n + 1), tok::stop(n + 1))),
                    Token::Done => {
                        self.state = GallopState::Finished;
                        return Some((tok::done(), tok::done()));
                    }
                },
                GallopState::Finished => return None,
            }
        }
    }
}

/// One operand of an intersecter: either finished crd/ref streams (no skip
/// lane planned — fetching steps token by token) or a fused [`GallopScan`]
/// that honors skip requests.
pub(crate) enum IntersectOperand<'a, S: Source> {
    /// Plain streams; [`IntersectOperand::skip_to`] is a no-op.
    Streams {
        /// The operand's coordinate stream.
        crd: S,
        /// The operand's reference stream.
        rf: S,
    },
    /// A fused, skip-enabled scanner.
    Scan(GallopScan<'a, S>),
}

impl<S: Source> IntersectOperand<'_, S> {
    fn fetch(&mut self) -> Option<(SimToken, SimToken)> {
        match self {
            IntersectOperand::Streams { crd, rf } => fetch_pair(crd, rf),
            IntersectOperand::Scan(scan) => scan.next_pair(),
        }
    }

    fn skip_to(&mut self, target: u32) {
        if let IntersectOperand::Scan(scan) = self {
            scan.skip_to(target);
        }
    }
}

/// Intersecter transfer function (Definition 3.2): two-finger merge, with
/// gallop-on-mismatch when an operand is a fused skip-enabled scanner
/// (Section 4.2).
pub(crate) fn run_intersect<S: Source, K: Sink>(
    mut a: IntersectOperand<'_, S>,
    mut b: IntersectOperand<'_, S>,
    oc: &mut K,
    o0: &mut K,
    o1: &mut K,
    label: &str,
) -> Result<(), ExecError> {
    let mut ta = a.fetch().ok_or_else(|| misaligned(label))?;
    let mut tb = b.fetch().ok_or_else(|| misaligned(label))?;
    loop {
        match (ta.0, tb.0) {
            (Token::Val(pa), Token::Val(pb)) => {
                let ca = pa.expect_crd();
                let cb = pb.expect_crd();
                if ca == cb {
                    oc.push(tok::crd(ca));
                    o0.push(ta.1);
                    o1.push(tb.1);
                    ta = a.fetch().ok_or_else(|| misaligned(label))?;
                    tb = b.fetch().ok_or_else(|| misaligned(label))?;
                } else if ca < cb {
                    // The trailing side gallops straight to the coordinate
                    // the leading side is waiting at (a no-op for plain
                    // stream operands).
                    a.skip_to(cb);
                    ta = a.fetch().ok_or_else(|| misaligned(label))?;
                } else {
                    b.skip_to(ca);
                    tb = b.fetch().ok_or_else(|| misaligned(label))?;
                }
            }
            (Token::Val(_), _) | (Token::Empty, _) => {
                ta = a.fetch().ok_or_else(|| misaligned(label))?;
            }
            (_, Token::Val(_)) | (_, Token::Empty) => {
                tb = b.fetch().ok_or_else(|| misaligned(label))?;
            }
            (Token::Stop(na), Token::Stop(nb)) => {
                let s = tok::stop(na.max(nb));
                oc.push(s);
                o0.push(s);
                o1.push(s);
                ta = a.fetch().ok_or_else(|| misaligned(label))?;
                tb = b.fetch().ok_or_else(|| misaligned(label))?;
            }
            (Token::Done, Token::Done) => {
                oc.push(tok::done());
                o0.push(tok::done());
                o1.push(tok::done());
                break;
            }
            (Token::Stop(_), Token::Done) => {
                ta = a.fetch().ok_or_else(|| misaligned(label))?;
            }
            (Token::Done, Token::Stop(_)) => {
                tb = b.fetch().ok_or_else(|| misaligned(label))?;
            }
        }
    }
    Ok(())
}

/// Unioner transfer function (Definition 3.3).
#[allow(clippy::too_many_arguments)]
fn run_union<S: Source, K: Sink>(
    c0: &mut S,
    c1: &mut S,
    r0: &mut S,
    r1: &mut S,
    oc: &mut K,
    o0: &mut K,
    o1: &mut K,
    label: &str,
) -> Result<(), ExecError> {
    let mut a = fetch_pair(c0, r0).ok_or_else(|| misaligned(label))?;
    let mut b = fetch_pair(c1, r1).ok_or_else(|| misaligned(label))?;
    loop {
        match (a.0, b.0) {
            (Token::Val(pa), Token::Val(pb)) => {
                let ca = pa.expect_crd();
                let cb = pb.expect_crd();
                if ca == cb {
                    oc.push(tok::crd(ca));
                    o0.push(a.1);
                    o1.push(b.1);
                    a = fetch_pair(c0, r0).ok_or_else(|| misaligned(label))?;
                    b = fetch_pair(c1, r1).ok_or_else(|| misaligned(label))?;
                } else if ca < cb {
                    oc.push(tok::crd(ca));
                    o0.push(a.1);
                    o1.push(tok::empty());
                    a = fetch_pair(c0, r0).ok_or_else(|| misaligned(label))?;
                } else {
                    oc.push(tok::crd(cb));
                    o0.push(tok::empty());
                    o1.push(b.1);
                    b = fetch_pair(c1, r1).ok_or_else(|| misaligned(label))?;
                }
            }
            (Token::Val(pa), _) => {
                oc.push(tok::crd(pa.expect_crd()));
                o0.push(a.1);
                o1.push(tok::empty());
                a = fetch_pair(c0, r0).ok_or_else(|| misaligned(label))?;
            }
            (_, Token::Val(pb)) => {
                oc.push(tok::crd(pb.expect_crd()));
                o0.push(tok::empty());
                o1.push(b.1);
                b = fetch_pair(c1, r1).ok_or_else(|| misaligned(label))?;
            }
            (Token::Empty, _) => {
                a = fetch_pair(c0, r0).ok_or_else(|| misaligned(label))?;
            }
            (_, Token::Empty) => {
                b = fetch_pair(c1, r1).ok_or_else(|| misaligned(label))?;
            }
            (Token::Stop(na), Token::Stop(nb)) => {
                let s = tok::stop(na.max(nb));
                oc.push(s);
                o0.push(s);
                o1.push(s);
                a = fetch_pair(c0, r0).ok_or_else(|| misaligned(label))?;
                b = fetch_pair(c1, r1).ok_or_else(|| misaligned(label))?;
            }
            (Token::Done, Token::Done) => {
                oc.push(tok::done());
                o0.push(tok::done());
                o1.push(tok::done());
                break;
            }
            (Token::Stop(_), Token::Done) => {
                a = fetch_pair(c0, r0).ok_or_else(|| misaligned(label))?;
            }
            (Token::Done, Token::Stop(_)) => {
                b = fetch_pair(c1, r1).ok_or_else(|| misaligned(label))?;
            }
        }
    }
    Ok(())
}

/// Locator transfer function (Definition 4.1).
#[allow(clippy::too_many_arguments)]
fn run_locator<S: Source, K: Sink>(
    level: &Level,
    crd: &mut S,
    rf: &mut S,
    oc: &mut K,
    pass: &mut K,
    located: &mut K,
    label: &str,
) -> Result<(), ExecError> {
    loop {
        let (Some(c), Some(r)) = (crd.next(), rf.next()) else {
            return Err(misaligned(label));
        };
        match (c, r) {
            (Token::Val(pc), Token::Val(pr)) => {
                let coord = pc.expect_crd();
                let fiber = pr.expect_ref() as usize;
                match level.locate(fiber, coord) {
                    Some(child) => {
                        oc.push(tok::crd(coord));
                        pass.push(tok::rf(fiber as u32));
                        located.push(tok::rf(child as u32));
                    }
                    None => {
                        oc.push(tok::empty());
                        pass.push(tok::empty());
                        located.push(tok::empty());
                    }
                }
            }
            (Token::Empty, _) | (_, Token::Empty) => {
                oc.push(tok::empty());
                pass.push(tok::empty());
                located.push(tok::empty());
            }
            (Token::Stop(nc), Token::Stop(nr)) => {
                let s = tok::stop(nc.max(nr));
                oc.push(s);
                pass.push(s);
                located.push(s);
            }
            (Token::Done, Token::Done) => {
                oc.push(tok::done());
                pass.push(tok::done());
                located.push(tok::done());
                break;
            }
            _ => return Err(misaligned(label)),
        }
    }
    Ok(())
}

/// Array-in-load-mode transfer function (Definition 3.5).
fn run_array<S: Source, K: Sink>(
    vals: &[f64],
    input: &mut S,
    out: &mut K,
    label: &str,
) -> Result<(), ExecError> {
    while let Some(t) = input.next() {
        match t {
            Token::Val(p) => {
                let r = p.expect_ref() as usize;
                if r >= vals.len() {
                    return Err(ExecError::RefOutOfBounds { label: label.to_string(), reference: r });
                }
                out.push(tok::val(vals[r]));
            }
            Token::Empty => out.push(tok::empty()),
            Token::Stop(n) => out.push(tok::stop(n)),
            Token::Done => {
                out.push(tok::done());
                break;
            }
        }
    }
    Ok(())
}

/// Constant-source transfer function: one scalar per data token of the
/// shape stream, empty and control tokens mirrored through.
fn run_const<S: Source, K: Sink>(value: f64, input: &mut S, out: &mut K) {
    while let Some(t) = input.next() {
        match t {
            Token::Val(_) => out.push(tok::val(value)),
            Token::Empty => out.push(tok::empty()),
            Token::Stop(n) => out.push(tok::stop(n)),
            Token::Done => {
                out.push(tok::done());
                break;
            }
        }
    }
}

/// ALU transfer function (Definition 3.6): empty tokens read as zero.
fn run_alu<S: Source, K: Sink>(
    op: AluOp,
    a: &mut S,
    b: &mut S,
    out: &mut K,
    label: &str,
) -> Result<(), ExecError> {
    let apply = |x: f64, y: f64| match op {
        AluOp::Add => x + y,
        AluOp::Sub => x - y,
        AluOp::Mul => x * y,
    };
    loop {
        let (Some(ta), Some(tb)) = (a.next(), b.next()) else {
            return Err(misaligned(label));
        };
        match (ta, tb) {
            (Token::Val(pa), Token::Val(pb)) => out.push(tok::val(apply(pa.expect_val(), pb.expect_val()))),
            (Token::Val(pa), Token::Empty) => out.push(tok::val(apply(pa.expect_val(), 0.0))),
            (Token::Empty, Token::Val(pb)) => out.push(tok::val(apply(0.0, pb.expect_val()))),
            (Token::Empty, Token::Empty) => out.push(tok::val(apply(0.0, 0.0))),
            (Token::Stop(na), Token::Stop(nb)) => out.push(tok::stop(na.max(nb))),
            (Token::Done, Token::Done) => {
                out.push(tok::done());
                break;
            }
            _ => return Err(misaligned(label)),
        }
    }
    Ok(())
}

/// Scalar reducer transfer function (Definition 3.7, order 0).
fn run_reduce_scalar<S: Source, K: Sink>(input: &mut S, policy: EmptyFiberPolicy, out: &mut K) {
    let mut acc = 0.0;
    let mut has_data = false;
    while let Some(t) = input.next() {
        match t {
            Token::Val(p) => {
                acc += p.expect_val();
                has_data = true;
            }
            Token::Empty => {}
            Token::Stop(n) => {
                if has_data || policy == EmptyFiberPolicy::ExplicitZero {
                    out.push(tok::val(acc));
                }
                acc = 0.0;
                has_data = false;
                if n > 0 {
                    out.push(tok::stop(n - 1));
                }
            }
            Token::Done => {
                out.push(tok::done());
                break;
            }
        }
    }
}

/// Vector reducer transfer function (Definition 3.7, order 1 / Figure 7).
fn run_reduce_vector<S: Source, K: Sink>(
    crd: &mut S,
    val: &mut S,
    oc: &mut K,
    ov: &mut K,
    label: &str,
) -> Result<(), ExecError> {
    let mut acc: BTreeMap<u32, f64> = BTreeMap::new();
    let flush = |acc: &mut BTreeMap<u32, f64>, closing: Option<u8>, oc: &mut K, ov: &mut K| {
        for (c, v) in std::mem::take(acc) {
            oc.push(tok::crd(c));
            ov.push(tok::val(v));
        }
        if let Some(level) = closing {
            oc.push(tok::stop(level));
            ov.push(tok::stop(level));
        }
    };
    loop {
        let (Some(c), Some(v)) = (crd.next(), val.next()) else {
            return Err(misaligned(label));
        };
        match (c, v) {
            (Token::Val(pc), Token::Val(pv)) => {
                *acc.entry(pc.expect_crd()).or_insert(0.0) += pv.expect_val();
            }
            (Token::Empty, _) | (_, Token::Empty) => {}
            (Token::Stop(nc), Token::Stop(nv)) => {
                let n = nc.max(nv);
                if n > 0 {
                    flush(&mut acc, Some(n - 1), oc, ov);
                }
            }
            (Token::Done, Token::Done) => {
                if !acc.is_empty() {
                    flush(&mut acc, None, oc, ov);
                }
                oc.push(tok::done());
                ov.push(tok::done());
                break;
            }
            _ => return Err(misaligned(label)),
        }
    }
    Ok(())
}

/// Matrix reducer transfer function (Definition 3.7, order 2).
#[allow(clippy::too_many_arguments)]
fn run_reduce_matrix<S: Source, K: Sink>(
    outer: &mut S,
    inner: &mut S,
    val: &mut S,
    oo: &mut K,
    oi: &mut K,
    ov: &mut K,
    label: &str,
) -> Result<(), ExecError> {
    let mut acc: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    let mut current_outer: Option<u32> = None;
    loop {
        if current_outer.is_none() {
            if let Some(Token::Val(p)) = outer.peek() {
                outer.next();
                current_outer = Some(p.expect_crd());
            }
        }
        let (Some(c), Some(v)) = (inner.next(), val.next()) else {
            return Err(misaligned(label));
        };
        match (c, v) {
            (Token::Val(pc), Token::Val(pv)) => {
                let o = current_outer.ok_or_else(|| misaligned(label))?;
                *acc.entry((o, pc.expect_crd())).or_insert(0.0) += pv.expect_val();
            }
            (Token::Empty, _) | (_, Token::Empty) => {}
            (Token::Stop(_), Token::Stop(_)) => {
                current_outer = None;
                if let Some(Token::Stop(_)) = outer.peek() {
                    outer.next();
                }
            }
            (Token::Done, Token::Done) => {
                while let Some(t) = outer.next() {
                    if t.is_done() {
                        break;
                    }
                }
                flush_matrix(&mut acc, Some(1), oo, oi, ov);
                oo.push(tok::done());
                oi.push(tok::done());
                ov.push(tok::done());
                break;
            }
            _ => return Err(misaligned(label)),
        }
    }
    Ok(())
}

/// Emits the accumulated matrix exactly like the cycle-level reducer block.
fn flush_matrix<K: Sink>(
    acc: &mut BTreeMap<(u32, u32), f64>,
    closing_stop: Option<u8>,
    oo: &mut K,
    oi: &mut K,
    ov: &mut K,
) {
    let mut by_outer: BTreeMap<u32, Vec<(u32, f64)>> = BTreeMap::new();
    for ((o, i), v) in std::mem::take(acc) {
        by_outer.entry(o).or_default().push((i, v));
    }
    let n = by_outer.len();
    for (idx, (o, inners)) in by_outer.into_iter().enumerate() {
        let last_fiber = idx + 1 == n;
        let m = inners.len();
        for (jdx, (i, v)) in inners.into_iter().enumerate() {
            oo.push(if jdx == 0 { tok::crd(o) } else { tok::empty() });
            oi.push(tok::crd(i));
            ov.push(tok::val(v));
            if jdx + 1 == m {
                let level = if last_fiber { closing_stop.unwrap_or(1) } else { 0 };
                oo.push(if last_fiber { tok::stop(level.saturating_sub(1)) } else { tok::empty() });
                oi.push(tok::stop(level));
                ov.push(tok::stop(level));
            }
        }
    }
    if n == 0 {
        if let Some(level) = closing_stop {
            oo.push(tok::stop(level));
            oi.push(tok::stop(level));
            ov.push(tok::stop(level));
        }
    }
}

/// A sink adapter merging consecutive stop tokens by keeping the higher
/// level (the Figure 8 upgrade rule the dropper outputs follow).
struct MergeSink<'a, K: Sink> {
    inner: &'a mut K,
    pending: Option<SimToken>,
}

impl<'a, K: Sink> MergeSink<'a, K> {
    fn new(inner: &'a mut K) -> Self {
        MergeSink { inner, pending: None }
    }

    fn push(&mut self, t: SimToken) {
        if let (Some(Token::Stop(prev)), Token::Stop(new_level)) = (self.pending, t) {
            self.pending = Some(Token::Stop(prev.max(new_level)));
            return;
        }
        if let Some(prev) = self.pending.take() {
            self.inner.push(prev);
        }
        self.pending = Some(t);
    }

    fn finish(mut self) {
        if let Some(prev) = self.pending.take() {
            self.inner.push(prev);
        }
    }
}

/// Coordinate dropper transfer function (Definition 3.9, Figure 8).
fn run_dropper<S: Source, K: Sink>(
    outer: &mut S,
    inner: &mut S,
    out_outer: &mut K,
    out_inner: &mut K,
    label: &str,
) -> Result<(), ExecError> {
    let mut mo = MergeSink::new(out_outer);
    let mut mi = MergeSink::new(out_inner);
    let mut fiber: Vec<SimToken> = Vec::new();
    let mut effectual = false;
    while let Some(t) = inner.next() {
        match t {
            Token::Val(p) => {
                effectual |= match p {
                    Payload::Val(v) => v != 0.0,
                    _ => true,
                };
                fiber.push(t);
            }
            Token::Empty => {}
            Token::Stop(level) => {
                let Some(outer_tok) = outer.peek() else {
                    return Err(misaligned(label));
                };
                match outer_tok {
                    Token::Val(_) => {
                        outer.next();
                        if effectual {
                            for ft in fiber.drain(..) {
                                mi.push(ft);
                            }
                            mi.push(tok::stop(level));
                            mo.push(outer_tok);
                        } else {
                            fiber.clear();
                            if level > 0 {
                                mi.push(tok::stop(level));
                            }
                        }
                        if level > 0 {
                            if let Some(Token::Stop(no)) = outer.peek() {
                                outer.next();
                                mo.push(tok::stop(no));
                            } else {
                                mo.push(tok::stop(level - 1));
                            }
                        }
                        effectual = false;
                    }
                    Token::Stop(_) | Token::Empty | Token::Done => {
                        mi.push(tok::stop(level));
                        if matches!(outer_tok, Token::Stop(_)) {
                            outer.next();
                            mo.push(outer_tok);
                        }
                        effectual = false;
                        fiber.clear();
                    }
                }
            }
            Token::Done => {
                while let Some(o) = outer.next() {
                    if o.is_done() {
                        break;
                    }
                    mo.push(o);
                }
                mi.push(tok::done());
                mo.push(tok::done());
                break;
            }
        }
    }
    mo.finish();
    mi.finish();
    Ok(())
}

/// Level-writer transfer function (Definition 3.8).
fn run_level_writer<S: Source>(dim: usize, input: &mut S) -> CompressedLevel {
    let mut coords: Vec<u32> = Vec::new();
    let mut seg: Vec<usize> = vec![0];
    while let Some(t) = input.next() {
        match t {
            Token::Val(p) => coords.push(p.expect_crd()),
            Token::Empty => {}
            Token::Stop(_) => seg.push(coords.len()),
            Token::Done => break,
        }
    }
    if *seg.last().expect("nonempty") != coords.len() {
        seg.push(coords.len());
    }
    CompressedLevel::new(dim, seg, coords)
}

/// Values-writer transfer function: empty tokens store explicit zeros.
fn run_val_writer<S: Source>(input: &mut S) -> Vec<f64> {
    let mut vals = Vec::new();
    while let Some(t) = input.next() {
        match t {
            Token::Val(p) => vals.push(p.expect_val()),
            Token::Empty => vals.push(0.0),
            Token::Stop(_) => {}
            Token::Done => break,
        }
    }
    vals
}
