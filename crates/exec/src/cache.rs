//! The global sharded plan cache and the [`Planner`] entry point.
//!
//! Planning a graph ([`Plan::build`]) walks the whole topology, validates
//! every port and estimates every stream — cheap next to a cold custard
//! compile, but pure waste when the same `(expression, formats, shapes)`
//! workload executes thousands of times against a resident operand corpus.
//! This module promotes the per-shape plan cache the tiled backend grew in
//! PR 4 into one process-wide, sharded `(expression, formats, shapes) →
//! Arc<Plan>` cache with hit/miss/eviction counters:
//!
//! * [`PlanKey`] captures **everything** a [`Plan`] reads from its inputs —
//!   the graph's name and a structural fingerprint of its nodes and edges,
//!   and per bound tensor the name, format, shape, the per-level fiber
//!   statistics behind the planner's stream-size estimates, and the value
//!   of single-element tensors (the planner resolves `ConstVal` scalars at
//!   plan time). Equal keys therefore mean *bit-identical* plans: a cache
//!   hit returns an execution indistinguishable from a fresh compile, down
//!   to channel-depth and spill behavior.
//! * [`PlanCache`] is the sharded LRU map. [`PlanCache::global`] is the
//!   process-wide instance the default execution path uses; services that
//!   want isolated counters (or a different capacity) construct their own.
//! * [`Planner`] is the single planning entry point shared by the old
//!   one-shot path and the `sam-serve` service: it produces `Arc<Plan>`s,
//!   through a cache or not.
//!
//! ```
//! use sam_core::graphs;
//! use sam_exec::{Inputs, PlanCache};
//! use sam_tensor::{synth, TensorFormat};
//!
//! let cache = PlanCache::new(64);
//! let graph = graphs::vec_elem_mul(true);
//! let b = synth::random_vector(64, 12, 1);
//! let inputs = Inputs::new()
//!     .coo("b", &b, TensorFormat::sparse_vec())
//!     .coo("c", &b, TensorFormat::sparse_vec());
//! let first = cache.get_or_plan(&graph, &inputs).unwrap();
//! let second = cache.get_or_plan(&graph, &inputs).unwrap();
//! assert!(std::sync::Arc::ptr_eq(&first, &second));
//! let stats = cache.stats();
//! assert_eq!((stats.hits, stats.misses), (1, 1));
//! ```

use crate::bind::Inputs;
use crate::error::PlanError;
use crate::plan::Plan;
use sam_core::graph::SamGraph;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// How many independent shards a [`PlanCache`] splits its map across.
/// Submissions from many service workers hash to different shards, so the
/// cache is never one global lock.
const SHARDS: usize = 8;

/// Capacity of [`PlanCache::global`]. Generous: a plan for these graphs is
/// a few kilobytes, and eviction only has to bound pathological sweeps
/// (e.g. a tiled run visiting thousands of edge-tile shape classes).
const GLOBAL_CAPACITY: usize = 2048;

/// One bound tensor's contribution to a [`PlanKey`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BindingKey {
    name: String,
    /// The storage format, via its `Display` (level kinds + mode order).
    format: String,
    shape: Vec<usize>,
    /// Per storage level: `(fiber count, longest fiber)` — exactly the
    /// statistics the planner's stream-size estimates read, so two inputs
    /// with equal keys plan to equal channel depths. Empty under
    /// [`KeyDetail::ShapeClass`].
    level_stats: Vec<(usize, usize)>,
    /// Value bits of a single-element tensor: the planner bakes `ConstVal`
    /// scalars (alpha/beta) into the plan, so the value is part of the
    /// plan's identity under every detail level.
    scalar_bits: Option<u64>,
}

/// How much of the bound inputs a [`PlanKey`] captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDetail {
    /// Formats, shapes, per-level fiber statistics and scalar values: equal
    /// keys produce bit-identical plans, including the stream-size
    /// estimates. The default for whole-tensor execution.
    Exact,
    /// Formats, shapes and scalar values only: tensors of one shape class
    /// share a plan even when their occupancy differs. Results are still
    /// bit-identical; only the planner's channel-depth *estimates* may be
    /// stale. The tiled backend uses this so interior tiles keep sharing
    /// one plan per shape class (its inner runs are serial and never
    /// consult the estimates).
    ShapeClass,
}

/// The cache key: everything a [`Plan`] depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// The graph's name — for custard-compiled kernels, the expression
    /// string itself.
    expr: String,
    /// Structural hash of the graph's nodes and edges, so two graphs that
    /// happen to share a name (hand-wired variants, property-test output)
    /// can never collide.
    fingerprint: u64,
    bindings: Vec<BindingKey>,
}

impl PlanKey {
    /// Builds the key for planning `graph` over `inputs` at the given
    /// detail level.
    pub fn new(graph: &SamGraph, inputs: &Inputs, detail: KeyDetail) -> PlanKey {
        let mut h = DefaultHasher::new();
        for node in graph.nodes() {
            node.hash(&mut h);
        }
        for e in graph.edges() {
            (e.from, e.to, e.kind, e.src_port, e.dst_port).hash(&mut h);
        }
        let bindings = inputs
            .iter()
            .map(|(name, t)| {
                let level_stats = match detail {
                    KeyDetail::ShapeClass => Vec::new(),
                    KeyDetail::Exact => (0..t.format().order())
                        .map(|l| {
                            let level = t.level(l);
                            let longest = if level.is_dense() {
                                level.dimension()
                            } else {
                                (0..level.num_fibers()).map(|f| level.fiber_len(f)).max().unwrap_or(0)
                            };
                            (level.num_fibers(), longest)
                        })
                        .collect(),
                };
                let scalar_bits = match t.vals() {
                    [v] if t.shape() == [1] => Some(v.to_bits()),
                    _ => None,
                };
                BindingKey {
                    name: name.to_string(),
                    format: t.format().to_string(),
                    shape: t.shape().to_vec(),
                    level_stats,
                    scalar_bits,
                }
            })
            .collect();
        PlanKey { expr: graph.name.clone(), fingerprint: h.finish(), bindings }
    }

    /// Which shard of an `n`-shard cache this key lives in.
    fn shard(&self, n: usize) -> usize {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % n
    }
}

/// A cached plan plus its LRU clock.
struct Entry {
    plan: Arc<Plan>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<PlanKey, Entry>,
    tick: u64,
}

/// A snapshot of a [`PlanCache`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to plan.
    pub misses: u64,
    /// Entries dropped to stay under capacity.
    pub evictions: u64,
    /// Plans currently resident.
    pub entries: usize,
}

impl PlanCacheStats {
    /// Hits over total lookups; zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counter movement since `earlier` — a per-window rate for a
    /// cache whose lifetime counters keep running. The counters are
    /// process-lifetime aggregates shared by every user of the cache, so a
    /// service that wants "hits this second" or "did *my* lookup hit"
    /// snapshots before and after and diffs, instead of racing other users
    /// for an absolute read. Saturating, so a [`PlanCache::clear`] between
    /// snapshots yields zeros rather than wrapping; `entries` stays the
    /// current residency (it is a level, not a flow).
    pub fn delta_since(&self, earlier: &PlanCacheStats) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            entries: self.entries,
        }
    }
}

/// A sharded, capacity-bounded `(expression, formats, shapes) → Arc<Plan>`
/// cache. See the module docs for keying semantics.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache").field("stats", &self.stats()).finish()
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (spread across shards;
    /// clamped to at least one per shard).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The process-wide cache the default execution path plans through.
    pub fn global() -> &'static PlanCache {
        static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
        GLOBAL.get_or_init(|| PlanCache::new(GLOBAL_CAPACITY))
    }

    /// Returns the cached plan for `graph` over `inputs` (exact keying),
    /// planning and inserting on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from [`Plan::build`]; failures are never
    /// cached.
    pub fn get_or_plan(&self, graph: &SamGraph, inputs: &Inputs) -> Result<Arc<Plan>, PlanError> {
        self.get_or_plan_detailed(graph, inputs, KeyDetail::Exact)
    }

    /// [`PlanCache::get_or_plan`] with an explicit [`KeyDetail`] — the
    /// tiled backend passes [`KeyDetail::ShapeClass`] so interior tiles
    /// share one plan per shape class.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from [`Plan::build`].
    pub fn get_or_plan_detailed(
        &self,
        graph: &SamGraph,
        inputs: &Inputs,
        detail: KeyDetail,
    ) -> Result<Arc<Plan>, PlanError> {
        let key = PlanKey::new(graph, inputs, detail);
        let shard = &self.shards[key.shard(self.shards.len())];
        {
            let mut s = shard.lock().expect("plan cache shard");
            s.tick += 1;
            let tick = s.tick;
            if let Some(e) = s.map.get_mut(&key) {
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&e.plan));
            }
        }
        // Plan outside the shard lock: concurrent misses on the same key
        // may both plan, but the loser's insert just overwrites with an
        // identical plan — far cheaper than serializing every planner run
        // behind the shard.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(build_verified(graph, inputs)?);
        let mut s = shard.lock().expect("plan cache shard");
        s.tick += 1;
        let tick = s.tick;
        s.map.insert(key, Entry { plan: Arc::clone(&plan), last_used: tick });
        while s.map.len() > self.per_shard_capacity {
            let oldest = s
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("nonempty over-capacity shard");
            s.map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(plan)
    }

    /// Current counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().expect("plan cache shard").map.len()).sum(),
        }
    }

    /// Drops every cached plan and zeroes the counters (cold-start
    /// measurement support; the resident plans' `Arc`s stay valid).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().expect("plan cache shard");
            s.map.clear();
            s.tick = 0;
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

/// The single planning entry point: turns `(graph, inputs)` into an
/// [`Arc<Plan>`], through a [`PlanCache`] or not. Both the one-shot
/// [`crate::ExecRequest`] path and the `sam-serve` service plan through
/// this, so there is exactly one place plans come from.
#[derive(Debug, Clone, Default)]
pub struct Planner {
    cache: Option<Arc<PlanCache>>,
    use_global: bool,
}

impl Planner {
    /// A planner over the process-wide [`PlanCache::global`].
    pub fn cached() -> Planner {
        Planner { cache: None, use_global: true }
    }

    /// A planner over a specific cache (a service's own, say).
    pub fn with_cache(cache: Arc<PlanCache>) -> Planner {
        Planner { cache: Some(cache), use_global: false }
    }

    /// A planner that always re-plans (the pre-cache behavior; also
    /// [`Default`]).
    pub fn uncached() -> Planner {
        Planner { cache: None, use_global: false }
    }

    /// Plans `graph` over `inputs`, consulting this planner's cache.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from [`Plan::build`].
    pub fn plan(&self, graph: &SamGraph, inputs: &Inputs) -> Result<Arc<Plan>, PlanError> {
        match (&self.cache, self.use_global) {
            (Some(cache), _) => cache.get_or_plan(graph, inputs),
            (None, true) => PlanCache::global().get_or_plan(graph, inputs),
            (None, false) => Ok(Arc::new(build_verified(graph, inputs)?)),
        }
    }
}

/// Runs the static verifier over `(graph, inputs)` and only then plans.
///
/// A verifier rejection surfaces as [`PlanError::Rejected`] carrying every
/// error diagnostic; the planner's own validation then runs as a backstop
/// whose findings must be a strict subset of the verifier's — a graph the
/// planner rejects after a clean verification is a verifier bug, asserted
/// in debug builds.
fn build_verified(graph: &SamGraph, inputs: &Inputs) -> Result<Plan, PlanError> {
    let bindings: sam_verify::Bindings<'_> = inputs.iter().collect();
    let report = sam_verify::verify_bound(graph, &bindings);
    if report.has_errors() {
        return Err(PlanError::Rejected { diagnostics: report.errors().cloned().collect() });
    }
    let plan = Plan::build(graph, inputs);
    debug_assert!(
        plan.is_ok(),
        "planner rejected a graph the static verifier accepted: {}",
        plan.as_ref().err().map(ToString::to_string).unwrap_or_default()
    );
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_core::build::GraphBuilder;
    use sam_core::graphs;
    use sam_tensor::{synth, TensorFormat};

    fn spmv_inputs(nnz: usize, seed: u64) -> Inputs {
        let b = synth::random_matrix_sparsity(30, 20, 0.9, seed);
        let c = synth::random_vector(20, nnz, seed + 1);
        Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("c", &c, TensorFormat::dense_vec())
    }

    #[test]
    fn hits_return_the_same_plan_and_count() {
        let cache = PlanCache::new(16);
        let graph = graphs::spmv();
        let inputs = spmv_inputs(12, 7);
        let a = cache.get_or_plan(&graph, &inputs).unwrap();
        let b = cache.get_or_plan(&graph, &inputs).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    fn vec_inputs(nnz: usize, seed: u64) -> Inputs {
        let b = synth::random_vector(64, nnz, seed);
        let c = synth::random_vector(64, nnz, seed + 1);
        Inputs::new().coo("b", &b, TensorFormat::sparse_vec()).coo("c", &c, TensorFormat::sparse_vec())
    }

    #[test]
    fn exact_keys_distinguish_occupancy_shape_class_keys_do_not() {
        // Same shapes and formats, different fiber occupancy: the exact key
        // sees it (stream-size estimates depend on it), the shape-class key
        // deliberately does not.
        let graph = graphs::vec_elem_mul(true);
        let sparse = vec_inputs(4, 11);
        let dense = vec_inputs(40, 11);
        let cache = PlanCache::new(16);
        let a = cache.get_or_plan(&graph, &sparse).unwrap();
        let b = cache.get_or_plan(&graph, &dense).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "exact keys must see the occupancy difference");

        let shape_cache = PlanCache::new(16);
        let a = shape_cache.get_or_plan_detailed(&graph, &sparse, KeyDetail::ShapeClass).unwrap();
        let b = shape_cache.get_or_plan_detailed(&graph, &dense, KeyDetail::ShapeClass).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "shape-class keys share one plan per shape");
    }

    #[test]
    fn scalar_values_are_part_of_the_key() {
        // Same graph, same formats and shapes — only the baked ConstVal
        // value differs. Reusing the plan would silently compute with the
        // stale scalar.
        let mut g = GraphBuilder::new("x(i) = alpha * b(i)");
        let root = g.root("b");
        let (crd, rf) = g.scan("b", 'i', true, root);
        let v = g.array("b", rf);
        let alpha = g.scalar_source("alpha", v);
        let scaled = g.alu("mul", alpha, v);
        g.write_level("x", 'i', crd);
        g.write_vals("x", scaled);
        let graph = g.finish();

        let b = synth::random_vector(16, 5, 21);
        let two = Inputs::new().coo("b", &b, TensorFormat::sparse_vec()).scalar("alpha", 2.0);
        let three = Inputs::new().coo("b", &b, TensorFormat::sparse_vec()).scalar("alpha", 3.0);
        let cache = PlanCache::new(16);
        let p2 = cache.get_or_plan_detailed(&graph, &two, KeyDetail::ShapeClass).unwrap();
        let p3 = cache.get_or_plan_detailed(&graph, &three, KeyDetail::ShapeClass).unwrap();
        assert!(!Arc::ptr_eq(&p2, &p3));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn graphs_sharing_a_name_do_not_collide() {
        let build = |mul: bool| {
            let mut g = GraphBuilder::new("same-name");
            let root = g.root("b");
            let (crd, rf) = g.scan("b", 'i', true, root);
            let v = g.array("b", rf);
            let out = g.alu(if mul { "mul" } else { "add" }, v, v);
            g.write_level("x", 'i', crd);
            g.write_vals("x", out);
            g.finish()
        };
        let b = synth::random_vector(16, 5, 31);
        let inputs = Inputs::new().coo("b", &b, TensorFormat::sparse_vec());
        let cache = PlanCache::new(16);
        cache.get_or_plan(&build(true), &inputs).unwrap();
        cache.get_or_plan(&build(false), &inputs).unwrap();
        assert_eq!(cache.stats().misses, 2, "structural fingerprint must split same-named graphs");
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = PlanCache::new(1); // one entry per shard
        let graph = graphs::spmv();
        // Distinct matrix shapes → guaranteed-distinct keys. Enough of them
        // that some shard must exceed its single-entry capacity.
        let inputs_for = |rows: usize| {
            let b = synth::random_matrix_sparsity(rows, 20, 0.9, 40);
            let c = synth::random_vector(20, 12, 41);
            Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("c", &c, TensorFormat::dense_vec())
        };
        for rows in 10..=21 {
            cache.get_or_plan(&graph, &inputs_for(rows)).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 12);
        assert!(stats.evictions > 0, "12 keys into 8 single-entry shards must evict");
        assert!(stats.entries <= SHARDS);
        // Evicted keys re-plan and still work.
        cache.get_or_plan(&graph, &inputs_for(10)).unwrap();
    }

    #[test]
    fn delta_since_isolates_a_window() {
        let cache = PlanCache::new(16);
        let graph = graphs::spmv();
        let inputs = spmv_inputs(9, 71);
        cache.get_or_plan(&graph, &inputs).unwrap(); // miss (outside window)
        let before = cache.stats();
        cache.get_or_plan(&graph, &inputs).unwrap(); // hit
        cache.get_or_plan(&graph, &spmv_inputs(3, 72)).unwrap(); // miss
        let delta = cache.stats().delta_since(&before);
        assert_eq!((delta.hits, delta.misses, delta.evictions), (1, 1, 0));
        assert_eq!(delta.entries, 2, "entries reports current residency, not a diff");
        assert!(delta.hit_rate() > 0.49 && delta.hit_rate() < 0.51);
        // A clear between snapshots saturates to zero instead of wrapping.
        cache.clear();
        let after_clear = cache.stats().delta_since(&before);
        assert_eq!((after_clear.hits, after_clear.misses), (0, 0));
    }

    #[test]
    fn clear_resets_entries_and_counters() {
        let cache = PlanCache::new(16);
        let graph = graphs::spmv();
        cache.get_or_plan(&graph, &spmv_inputs(5, 61)).unwrap();
        cache.clear();
        assert_eq!(cache.stats(), PlanCacheStats::default());
    }
}
