//! Error types for planning and executing SAM graphs.

use sam_sim::SimulationError;
use std::fmt;

/// An error found while planning a graph for execution.
///
/// Planning validates the graph structurally (acyclicity, port wiring) and
/// against the bound tensors (names, formats, dimensions) before any backend
/// runs, so execution failures surface as typed errors instead of mid-run
/// panics or deadlocks.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The graph contains a primitive the executor cannot run.
    UnsupportedNode {
        /// Index of the offending node within the graph.
        node: usize,
        /// Label of the offending node.
        label: String,
        /// The unsupported primitive kind (the label sans per-node detail).
        kind: String,
    },
    /// A coordinate-skip feedback edge is wired incorrectly.
    BadSkipEdge {
        /// Label of the offending edge.
        edge: String,
        /// Why the wiring is invalid.
        reason: String,
    },
    /// The graph is not a DAG.
    Cycle {
        /// Labels of the nodes involved in (or downstream of) the cycle.
        stuck: Vec<String>,
    },
    /// An input port of a node has no incoming edge.
    UnboundInput {
        /// Label of the consumer node.
        label: String,
        /// The unbound input-port index.
        port: usize,
    },
    /// A node received more inputs than its signature accepts, or an edge's
    /// stream kind fits no remaining port.
    ExtraInput {
        /// Label of the consumer node.
        label: String,
        /// Label of the offending edge.
        edge: String,
    },
    /// Two edges claim the same input port.
    DuplicateInput {
        /// Label of the consumer node.
        label: String,
        /// The contested input-port index.
        port: usize,
    },
    /// An edge names an out-of-range or kind-incompatible port.
    BadPort {
        /// Label of the edge.
        edge: String,
    },
    /// An unported edge could not be attributed to a unique output port.
    AmbiguousPort {
        /// Label of the producer node.
        label: String,
    },
    /// A node references a tensor that was not bound.
    UnknownTensor {
        /// The tensor name.
        name: String,
    },
    /// A reference stream reaching a scanner or locator belongs to a
    /// different tensor than the node declares.
    TensorMismatch {
        /// Label of the consumer node.
        label: String,
        /// Tensor the node declares.
        expected: String,
        /// Tensor the incoming reference stream iterates.
        found: String,
    },
    /// A scanner or locator sits deeper than the bound tensor has levels.
    LevelOutOfRange {
        /// The tensor name.
        tensor: String,
        /// The storage level the node would read.
        level: usize,
    },
    /// A scanner's compressed/dense annotation contradicts the bound level.
    FormatMismatch {
        /// The tensor name.
        tensor: String,
        /// The storage level with the contradiction.
        level: usize,
    },
    /// The graph does not consume all of a bound tensor's storage levels:
    /// a value array reads references that stop `consumed` levels deep into
    /// a tensor with `levels` levels (e.g. a matrix bound where the kernel
    /// iterates a vector).
    RankMismatch {
        /// The tensor name.
        tensor: String,
        /// How many levels the reference stream reaching the value array
        /// has traversed.
        consumed: usize,
        /// How many storage levels the bound tensor actually has.
        levels: usize,
    },
    /// An ALU names an operation the executor does not know.
    UnknownAluOp {
        /// The operation mnemonic.
        op: String,
    },
    /// A `ConstVal` source names a tensor that is not a single-value scalar
    /// (one stored value, every dimension 1 — see `Inputs::scalar`).
    NotScalar {
        /// The tensor name.
        tensor: String,
        /// How many values the bound tensor actually holds.
        vals: usize,
        /// The bound tensor's per-level dimensions.
        dims: Vec<usize>,
    },
    /// The graph has no values writer, so it produces no output.
    MissingValsWriter,
    /// The graph has several values writers.
    MultipleValsWriters,
    /// No scanner iterates the index variable of a level writer, so its
    /// dimension cannot be inferred.
    UnknownDimension {
        /// The index variable.
        index: char,
    },
    /// The static verifier (`sam-verify`) rejected the graph before
    /// planning. Carries every error-severity diagnostic, not just the
    /// first — strictly more specific than the planner's own
    /// first-error-wins validation, which this subsumes on the
    /// [`crate::Planner`] path.
    Rejected {
        /// The verifier's error diagnostics, in graph order.
        diagnostics: Vec<sam_verify::Diagnostic>,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnsupportedNode { node, label, kind } => {
                write!(f, "node n{node} (`{label}`) is not executable: `{kind}` is unsupported")
            }
            PlanError::BadSkipEdge { edge, reason } => {
                write!(f, "skip edge `{edge}` is wired incorrectly: {reason}")
            }
            PlanError::Cycle { stuck } => write!(f, "graph contains a cycle through: {}", stuck.join(", ")),
            PlanError::UnboundInput { label, port } => {
                write!(f, "input port {port} of `{label}` has no incoming stream")
            }
            PlanError::ExtraInput { label, edge } => {
                write!(f, "edge `{edge}` does not fit any free input port of `{label}`")
            }
            PlanError::DuplicateInput { label, port } => {
                write!(f, "input port {port} of `{label}` is driven by more than one stream")
            }
            PlanError::BadPort { edge } => write!(f, "edge `{edge}` names an invalid port"),
            PlanError::AmbiguousPort { label } => {
                write!(f, "outputs of `{label}` cannot be attributed to unique ports; wire explicit ports")
            }
            PlanError::UnknownTensor { name } => write!(f, "tensor `{name}` is not bound"),
            PlanError::TensorMismatch { label, expected, found } => {
                write!(f, "`{label}` expects tensor `{expected}` but receives a `{found}` reference stream")
            }
            PlanError::LevelOutOfRange { tensor, level } => {
                write!(f, "tensor `{tensor}` has no storage level {level}")
            }
            PlanError::FormatMismatch { tensor, level } => {
                write!(f, "scanner annotation disagrees with level {level} of tensor `{tensor}`")
            }
            PlanError::RankMismatch { tensor, consumed, levels } => {
                write!(
                    f,
                    "tensor `{tensor}` has {levels} storage level(s) but the graph consumes only \
                     {consumed} before reading values"
                )
            }
            PlanError::UnknownAluOp { op } => write!(f, "unknown ALU operation `{op}`"),
            PlanError::NotScalar { tensor, vals, dims } => {
                write!(
                    f,
                    "constant source `{tensor}` must bind a single-value scalar \
                     (one stored value, every dimension 1); found {vals} value(s) over dimensions {dims:?}"
                )
            }
            PlanError::MissingValsWriter => write!(f, "graph has no values writer"),
            PlanError::MultipleValsWriters => write!(f, "graph has more than one values writer"),
            PlanError::UnknownDimension { index } => {
                write!(f, "no scanner iterates `{index}`, so the output dimension is unknown")
            }
            PlanError::Rejected { diagnostics } => {
                write!(f, "graph failed static verification ({} error(s))", diagnostics.len())?;
                for d in diagnostics {
                    write!(f, "\n{d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// An error raised while executing a planned graph.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Planning failed.
    Plan(PlanError),
    /// The cycle-approximate simulation failed (deadlock or cycle limit).
    Sim(SimulationError),
    /// The fast backend found structurally misaligned streams at a node —
    /// the functional analogue of a simulator deadlock.
    Misaligned {
        /// Label of the node that observed the mismatch.
        label: String,
    },
    /// A value-array reference left the bounds of its tensor's values.
    RefOutOfBounds {
        /// Label of the array node.
        label: String,
        /// The offending reference.
        reference: usize,
    },
    /// A writer never received its done token, so the output is incomplete.
    IncompleteOutput {
        /// Label of the writer.
        label: String,
    },
    /// The tiled backend cannot derive a structure-preserving tile schedule
    /// for this graph (unported edges, untraceable streams, conflicting
    /// dimensions).
    TilingUnsupported {
        /// Why the schedule analysis gave up.
        reason: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Plan(e) => write!(f, "planning failed: {e}"),
            ExecError::Sim(e) => write!(f, "simulation failed: {e}"),
            ExecError::Misaligned { label } => {
                write!(f, "streams reaching `{label}` are structurally misaligned")
            }
            ExecError::RefOutOfBounds { label, reference } => {
                write!(f, "reference {reference} out of bounds at `{label}`")
            }
            ExecError::IncompleteOutput { label } => {
                write!(f, "writer `{label}` did not finish")
            }
            ExecError::TilingUnsupported { reason } => {
                write!(f, "tiled execution unsupported: {reason}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<PlanError> for ExecError {
    fn from(e: PlanError) -> Self {
        ExecError::Plan(e)
    }
}

impl From<SimulationError> for ExecError {
    fn from(e: SimulationError) -> Self {
        ExecError::Sim(e)
    }
}
