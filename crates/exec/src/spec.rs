//! One spelling for backend construction: [`BackendSpec`].
//!
//! Before this module, every consumer of the executor spelled backends
//! differently — `FastBackend::threads(n)` vs `pipelined(n)` vs
//! `TiledBackend::with_parallelism`, `samprof --backend threads4` vs the
//! equivalence suites' string labels. `BackendSpec` is the one value that
//! parses from and displays as the stable labels (`cycle`, `fast-serial`,
//! `fast-threads:N`, `tiled`), builds the matching [`Executor`], and is
//! `Copy`/`Hash` so services can key per-query routing on it.
//!
//! ```
//! use sam_exec::BackendSpec;
//!
//! let spec: BackendSpec = "fast-threads:4".parse().unwrap();
//! assert_eq!(spec, BackendSpec::FastThreads(4));
//! assert_eq!(spec.to_string(), "fast-threads:4");
//! // The label matches what `Execution::backend` reports for its runs.
//! assert_eq!(spec.label(), "fast-threads");
//! let backend = spec.build();
//! assert_eq!(backend.name(), "fast-threads");
//! ```

use crate::{CycleBackend, Executor, FastBackend, TiledBackend};
use sam_memory::MemoryConfig;
use std::fmt;
use std::str::FromStr;

/// Which executor backend to construct, in the one stable spelling shared
/// by `samprof --backend`, the `sam-serve` per-query routing and the
/// equivalence suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendSpec {
    /// The cycle-approximate simulator backend (`cycle`).
    Cycle,
    /// The serial fast functional backend (`fast-serial`, the default).
    #[default]
    FastSerial,
    /// The work-stealing parallel fast backend with this many workers
    /// (`fast-threads:N`).
    FastThreads(usize),
    /// The finite-memory tiled backend (`tiled`); its [`MemoryConfig`]
    /// comes from [`BackendSpec::build_with_memory`] or defaults.
    Tiled,
}

/// A backend label [`BackendSpec::from_str`] could not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError {
    /// The rejected label.
    pub label: String,
}

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown backend `{}` (expected cycle, fast-serial, fast-threads:N or tiled)", self.label)
    }
}

impl std::error::Error for ParseBackendError {}

impl BackendSpec {
    /// Worker count used when a threads label omits the `:N` suffix.
    pub const DEFAULT_THREADS: usize = 4;

    /// The canonical backend set, one spec per stable label (threads at
    /// [`BackendSpec::DEFAULT_THREADS`]) — what equivalence-style sweeps
    /// iterate.
    pub fn all() -> [BackendSpec; 4] {
        [
            BackendSpec::Cycle,
            BackendSpec::FastSerial,
            BackendSpec::FastThreads(Self::DEFAULT_THREADS),
            BackendSpec::Tiled,
        ]
    }

    /// The stable backend label, exactly as [`crate::Execution::backend`]
    /// reports it for runs of this backend (worker counts are a
    /// construction parameter, not part of the label).
    pub fn label(&self) -> &'static str {
        match self {
            BackendSpec::Cycle => "cycle",
            BackendSpec::FastSerial => "fast-serial",
            BackendSpec::FastThreads(_) => "fast-threads",
            BackendSpec::Tiled => "tiled",
        }
    }

    /// Builds the executor this spec names, with default hardware
    /// parameters for the tiled backend.
    pub fn build(&self) -> Box<dyn Executor> {
        self.build_with_memory(None)
    }

    /// Builds the executor this spec names; `memory` overrides the tiled
    /// backend's finite-memory budget (ignored by the other backends, which
    /// model no memory hierarchy).
    pub fn build_with_memory(&self, memory: Option<MemoryConfig>) -> Box<dyn Executor> {
        match self {
            BackendSpec::Cycle => Box::new(CycleBackend::default()),
            BackendSpec::FastSerial => Box::new(FastBackend::serial()),
            BackendSpec::FastThreads(n) => Box::new(FastBackend::threads(*n)),
            BackendSpec::Tiled => match memory {
                Some(config) => Box::new(TiledBackend::new(config)),
                None => Box::new(TiledBackend::default()),
            },
        }
    }
}

impl fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendSpec::FastThreads(n) => write!(f, "fast-threads:{n}"),
            other => f.write_str(other.label()),
        }
    }
}

impl FromStr for BackendSpec {
    type Err = ParseBackendError;

    /// Parses the stable labels `cycle`, `fast-serial`, `fast-threads:N`
    /// and `tiled`, plus the historical `samprof` spellings (`serial`,
    /// `threads`, `threadsN`, `fast-threads`) so existing invocations keep
    /// working.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let threads = |n: &str| -> Option<BackendSpec> {
            if n.is_empty() {
                return Some(BackendSpec::FastThreads(Self::DEFAULT_THREADS));
            }
            n.parse::<usize>().ok().map(|n| BackendSpec::FastThreads(n.max(1)))
        };
        let spec = match s {
            "cycle" => Some(BackendSpec::Cycle),
            "fast-serial" | "serial" => Some(BackendSpec::FastSerial),
            "tiled" => Some(BackendSpec::Tiled),
            _ => {
                if let Some(n) = s.strip_prefix("fast-threads") {
                    threads(n.strip_prefix(':').unwrap_or(n))
                } else if let Some(n) = s.strip_prefix("threads") {
                    threads(n.strip_prefix(':').unwrap_or(n))
                } else {
                    None
                }
            }
        };
        spec.ok_or_else(|| ParseBackendError { label: s.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_labels_round_trip() {
        for spec in BackendSpec::all() {
            let text = spec.to_string();
            let parsed: BackendSpec = text.parse().unwrap();
            assert_eq!(parsed, spec, "label `{text}` must round-trip");
            assert_eq!(spec.build().name(), spec.label());
        }
    }

    #[test]
    fn historical_spellings_still_parse() {
        assert_eq!("serial".parse::<BackendSpec>().unwrap(), BackendSpec::FastSerial);
        assert_eq!("threads4".parse::<BackendSpec>().unwrap(), BackendSpec::FastThreads(4));
        assert_eq!("threads:2".parse::<BackendSpec>().unwrap(), BackendSpec::FastThreads(2));
        assert_eq!(
            "threads".parse::<BackendSpec>().unwrap(),
            BackendSpec::FastThreads(BackendSpec::DEFAULT_THREADS)
        );
        assert_eq!(
            "fast-threads".parse::<BackendSpec>().unwrap(),
            BackendSpec::FastThreads(BackendSpec::DEFAULT_THREADS)
        );
        assert_eq!("fast-threads:8".parse::<BackendSpec>().unwrap(), BackendSpec::FastThreads(8));
    }

    #[test]
    fn unknown_labels_are_rejected_with_the_offender() {
        let err = "warp-drive".parse::<BackendSpec>().unwrap_err();
        assert_eq!(err.label, "warp-drive");
        assert!(err.to_string().contains("warp-drive"));
        assert!("threadsx".parse::<BackendSpec>().is_err());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!("fast-threads:0".parse::<BackendSpec>().unwrap(), BackendSpec::FastThreads(1));
    }
}
