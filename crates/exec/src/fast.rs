//! The fast functional backend: evaluates the planned graph without
//! per-cycle simulation, serially or in parallel.
//!
//! Where the cycle-approximate backend ticks every block once per simulated
//! cycle, this backend applies each node's *transfer function* (the
//! crate-internal `node` module) directly to its token streams. It runs in
//! one of two modes, selected by [`Parallelism`]:
//!
//! * [`Parallelism::Serial`] — nodes evaluate one at a time in topological
//!   order, each consuming its producers' finished `Vec`s and materializing
//!   its own. No scheduler, no channels, no synchronization: peak
//!   single-thread throughput.
//! * [`Parallelism::Threads`]`(n)` — the *work-stealing* engine: the same
//!   topological node-at-a-time walk, but a node with long input streams is
//!   split at fiber boundaries into independent segments that run as
//!   stealable tasks on up to `n` workers (see the `parallel` module). The
//!   unit of parallelism is data, not graph structure, so the speedup
//!   scales with stream length instead of being capped by the fattest
//!   node. Requested workers are clamped to the host's available
//!   parallelism; with one effective worker the run degenerates to exactly
//!   the serial walk.
//! * [`FastBackend::pipelined`]`(n)` — the older pipelined engine: every
//!   planned node becomes a work unit on a pool of `n` scoped worker
//!   threads, communicating over the bounded chunked channels of
//!   [`sam_streams::chunked`]. Kept as the only mode exercising the
//!   chunked-channel transport (spills, backpressure attribution) end to
//!   end; [`FastBackend::with_chunk_config`] selects it implicitly.
//!
//! All modes share the per-primitive transfer functions and the output
//! assembly, so they produce bit-identical tensors from the same
//! [`Plan`] — as does the cycle backend.
//!
//! ```
//! use sam_core::graphs;
//! use sam_exec::{BackendSpec, ExecRequest, Inputs};
//! use sam_tensor::{synth, TensorFormat};
//!
//! let graph = graphs::spmv();
//! let b = synth::random_matrix_sparsity(60, 40, 0.9, 7);
//! let c = synth::random_vector(40, 40, 8);
//! let inputs = Inputs::new()
//!     .coo("B", &b, TensorFormat::dcsr())
//!     .coo("c", &c, TensorFormat::dense_vec());
//! let serial = ExecRequest::new(&graph, &inputs).run().unwrap();
//! let parallel =
//!     ExecRequest::new(&graph, &inputs).backend(BackendSpec::FastThreads(4)).run().unwrap();
//! assert_eq!(serial.output.unwrap(), parallel.output.unwrap());
//! ```

use crate::bind::Inputs;
use crate::error::ExecError;
use crate::node::{
    eval_node, run_intersect, scanner_level, GallopScan, IntersectOperand, NodeJob, SliceSource, WriterOutput,
};
use crate::plan::Plan;
use crate::{assemble_output, Execution, Executor, Parallelism};
use sam_sim::SimToken;
use sam_streams::chunked::ChunkConfig;
use sam_trace::{NullSink, TokenCounts, TraceSink};
use std::collections::HashMap;
use std::time::Instant;

type Stream = Vec<SimToken>;

/// Which parallel engine a `Threads(n)` setting drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// Work-stealing data parallelism within nodes (the default).
    Stealing,
    /// One worker per node, pipelined over bounded chunked channels.
    Pipelined,
}

/// Minimum input-stream length (tokens) before the work-stealing engine
/// splits a node's evaluation. Below this, segment setup and merge would
/// cost more than the parallelism buys.
const DEFAULT_SPLIT_THRESHOLD: usize = 8192;

/// Runs plans functionally, without per-cycle simulation; serial by
/// default, parallel with [`FastBackend::threads`].
#[derive(Debug, Clone, Copy)]
pub struct FastBackend {
    parallelism: Parallelism,
    engine: Engine,
    chunk: ChunkConfig,
    /// When true (the default), the pipelined engine sizes every channel's
    /// depth from the planner's stream-size estimates
    /// ([`Plan::channel_depth`]); [`FastBackend::with_chunk_config`]
    /// switches to the given fixed config instead.
    planned_depths: bool,
    /// Work-stealing engine: minimum stream length before splitting.
    split_threshold: usize,
    /// Work-stealing engine: skip the available-parallelism clamp, so the
    /// splitting machinery runs even on single-core hosts (testing).
    force_split: bool,
}

impl Default for FastBackend {
    fn default() -> Self {
        FastBackend::serial()
    }
}

impl FastBackend {
    fn base(parallelism: Parallelism, engine: Engine) -> Self {
        FastBackend {
            parallelism,
            engine,
            chunk: ChunkConfig::default(),
            planned_depths: true,
            split_threshold: DEFAULT_SPLIT_THRESHOLD,
            force_split: false,
        }
    }

    /// The single-threaded backend (also [`Default`]): whole streams per
    /// node, no synchronization.
    pub fn serial() -> Self {
        FastBackend::base(Parallelism::Serial, Engine::Stealing)
    }

    /// The work-stealing parallel backend: nodes still evaluate in
    /// topological order, but long streams are split at fiber boundaries
    /// into stealable segments across up to `threads` workers (clamped to
    /// at least 1, and at runtime to the host's available parallelism).
    pub fn threads(threads: usize) -> Self {
        FastBackend::base(Parallelism::Threads(threads.max(1)), Engine::Stealing)
    }

    /// The pipelined parallel backend: one work unit per planned node on
    /// `threads` worker threads over bounded chunked channels. Channel
    /// depths come from the planner's per-stream size estimates; use
    /// [`FastBackend::with_chunk_config`] for a fixed sizing.
    pub fn pipelined(threads: usize) -> Self {
        FastBackend::base(Parallelism::Threads(threads.max(1)), Engine::Pipelined)
    }

    /// A backend with an explicit [`Parallelism`] setting (work-stealing
    /// engine for `Threads`). `Threads(0)` is clamped to `Threads(1)`.
    pub fn with_parallelism(parallelism: Parallelism) -> Self {
        match parallelism {
            Parallelism::Serial => FastBackend::serial(),
            Parallelism::Threads(n) => FastBackend::threads(n),
        }
    }

    /// Overrides the chunked-channel sizing and selects the pipelined
    /// engine (serial mode ignores it), disabling the planner-derived
    /// per-channel depths. Small depths force the spill escape path; the
    /// equivalence suite uses this to prove results are unaffected, and
    /// `Execution::spills` makes the escapes observable.
    pub fn with_chunk_config(mut self, chunk: ChunkConfig) -> Self {
        self.chunk = chunk;
        self.engine = Engine::Pipelined;
        self.planned_depths = false;
        self
    }

    /// Overrides only the chunk length of the pipelined engine's planned
    /// per-channel depths (unlike [`FastBackend::with_chunk_config`], which
    /// also pins the depth).
    pub fn with_chunk_len(mut self, chunk_len: usize) -> Self {
        self.chunk = ChunkConfig { chunk_len: chunk_len.max(1), ..self.chunk };
        self
    }

    /// Lowers the work-stealing engine's split threshold to `threshold`
    /// tokens and disables the available-parallelism clamp, so `Threads(n)`
    /// splits streams across `n` workers even on hosts that report fewer
    /// cores. Intended for tests that must exercise the splitting seams
    /// deterministically; the default configuration only splits when real
    /// parallelism is available.
    pub fn with_split_threshold(mut self, threshold: usize) -> Self {
        self.engine = Engine::Stealing;
        self.split_threshold = threshold.max(1);
        self.force_split = true;
        self
    }
}

impl Executor for FastBackend {
    fn name(&self) -> &'static str {
        match self.parallelism {
            Parallelism::Serial => "fast-serial",
            Parallelism::Threads(_) => "fast-threads",
        }
    }

    fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    fn run(&self, plan: &Plan, inputs: &Inputs) -> Result<Execution, ExecError> {
        self.run_traced(plan, inputs, &NullSink)
    }

    fn run_traced(
        &self,
        plan: &Plan,
        inputs: &Inputs,
        trace: &dyn TraceSink,
    ) -> Result<Execution, ExecError> {
        match (self.parallelism, self.engine) {
            (Parallelism::Serial, _) => run_serial(self.name(), plan, inputs, trace),
            (Parallelism::Threads(n), Engine::Stealing) => crate::parallel::run_stealing(
                self.name(),
                plan,
                inputs,
                n,
                self.split_threshold,
                self.force_split,
                trace,
            ),
            (Parallelism::Threads(n), Engine::Pipelined) => crate::pipeline::run_pipelined(
                self.name(),
                plan,
                inputs,
                n,
                self.chunk,
                self.planned_depths,
                trace,
            ),
        }
    }
}

/// Serial evaluation: one node at a time in topological order, whole
/// streams per node. Skip-target scanners are not evaluated standalone:
/// each is fused into its intersecter as a [`GallopScan`], so skipped
/// coordinates are never materialized at all.
pub(crate) fn run_serial(
    backend: &'static str,
    plan: &Plan,
    inputs: &Inputs,
    trace: &dyn TraceSink,
) -> Result<Execution, ExecError> {
    let start = Instant::now();
    let tracing = trace.enabled();
    let nodes = plan.graph().nodes();
    let mut streams: Vec<Vec<Stream>> = nodes.iter().map(|_| Vec::new()).collect();
    let mut level_results: HashMap<usize, sam_tensor::level::CompressedLevel> = HashMap::new();
    let mut vals_result: Option<Vec<f64>> = None;

    if tracing {
        for &id in plan.order() {
            trace.define_node(id.0, &plan.node_label(id));
        }
    }

    for &id in plan.order() {
        let mut outs: Vec<Stream> = vec![Stream::new(); nodes[id.0].output_ports().len()];
        if plan.is_skip_target(id) {
            // Fused into the downstream intersecter; its output streams stay
            // empty (validation guarantees nobody else reads them).
            streams[id.0] = outs;
            continue;
        }
        let node_start = if tracing { Some(Instant::now()) } else { None };
        let lanes = plan.skip_scanners(id);
        if lanes.iter().any(Option::is_some) {
            let operand = |o: usize| -> IntersectOperand<'_, SliceSource<'_>> {
                let src = |p: crate::plan::PortRef| SliceSource::new(&streams[p.node.0][p.port]);
                match lanes[o] {
                    Some(scanner) => {
                        let input = src(plan.inputs_of(scanner)[0].expect("scanner ref input"));
                        IntersectOperand::Scan(GallopScan::new(scanner_level(plan, inputs, scanner), input))
                    }
                    None => IntersectOperand::Streams {
                        crd: src(plan.inputs_of(id)[o].expect("bound crd port")),
                        rf: src(plan.inputs_of(id)[2 + o].expect("bound ref port")),
                    },
                }
            };
            let (a, b) = (operand(0), operand(1));
            let [oc, o0, o1, ..] = &mut outs[..] else { unreachable!("intersecter has five outputs") };
            run_intersect(a, b, oc, o0, o1, &plan.node_label(id))?;
        } else {
            let job = NodeJob::build(plan, inputs, id);
            let mut srcs: Vec<SliceSource<'_>> = plan
                .inputs_of(id)
                .iter()
                .flatten()
                .map(|p| SliceSource::new(&streams[p.node.0][p.port]))
                .collect();
            match eval_node(&job, &mut srcs, &mut outs)? {
                Some(WriterOutput::Level(level)) => {
                    level_results.insert(id.0, level);
                }
                Some(WriterOutput::Vals(vals)) => vals_result = Some(vals),
                None => {}
            }
        }
        if let Some(node_start) = node_start {
            let elapsed_ns = node_start.elapsed().as_nanos() as u64;
            let start_ns = (node_start - start).as_nanos() as u64;
            trace.record_invocations(id.0, 1);
            trace.record_node_wall(id.0, elapsed_ns);
            trace.record_span("serial", &plan.node_label(id), start_ns, elapsed_ns);
        }
        streams[id.0] = outs;
    }

    let levels: Vec<_> = plan
        .level_writers()
        .iter()
        .map(|w| level_results.remove(&w.0).ok_or(ExecError::IncompleteOutput { label: plan.node_label(*w) }))
        .collect::<Result<_, _>>()?;
    let vals =
        vals_result.ok_or(ExecError::IncompleteOutput { label: plan.node_label(plan.vals_writer()) })?;
    let tokens: u64 = streams.iter().flatten().map(|s| s.len() as u64).sum();
    if tracing {
        // Classify every node's materialized output streams — the same
        // tokens the aggregate count above sums, so per-node totals add up
        // to `Execution::tokens` exactly.
        for (node, outs) in streams.iter().enumerate() {
            let mut counts = TokenCounts::default();
            for stream in outs {
                for token in stream {
                    counts.record(token);
                }
            }
            trace.record_tokens(node, counts);
        }
    }
    // Report the planned channel count, like the parallel mode, so the
    // metric is comparable across Parallelism settings.
    let channels = plan.channels().len();
    let output = assemble_output(plan, levels, &vals)?;

    Ok(Execution {
        backend,
        output,
        vals,
        cycles: None,
        blocks: nodes.len(),
        channels,
        tokens,
        spills: 0,
        memory: None,
        elapsed: start.elapsed(),
        profile: trace.snapshot(),
    })
}
