//! The fast functional backend: evaluates the planned graph one node at a
//! time over whole token streams.
//!
//! Where the cycle-approximate backend ticks every block once per simulated
//! cycle, this backend computes each node's complete output streams in a
//! single pass over its inputs (in topological order), with no scheduler,
//! channels or per-cycle bookkeeping. The per-primitive transfer functions
//! mirror the `sam-primitives` block semantics token for token, so both
//! backends produce the same output tensor from the same [`Plan`] — one is
//! for performance modelling, the other for raw functional throughput.

use crate::bind::Inputs;
use crate::error::ExecError;
use crate::plan::Plan;
use crate::{assemble_output, reducer_policy, Execution, Executor};
use sam_core::graph::NodeKind;
use sam_primitives::{root_stream, AluOp, EmptyFiberPolicy};
use sam_sim::payload::{tok, Payload};
use sam_sim::SimToken;
use sam_streams::Token;
use sam_tensor::level::{CompressedLevel, Level};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::time::Instant;

type Stream = Vec<SimToken>;

/// Runs plans functionally, without per-cycle simulation.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastBackend;

impl Executor for FastBackend {
    fn name(&self) -> &'static str {
        "fast"
    }

    fn run(&self, plan: &Plan, inputs: &Inputs) -> Result<Execution, ExecError> {
        let start = Instant::now();
        let nodes = plan.graph().nodes();
        let mut streams: Vec<Vec<Stream>> =
            nodes.iter().map(|k| vec![Stream::new(); k.output_ports().len()]).collect();
        let mut level_results: HashMap<usize, CompressedLevel> = HashMap::new();
        let mut vals_result: Option<Vec<f64>> = None;

        for &id in plan.order() {
            let kind = &nodes[id.0];
            let label = kind.label();
            let input = |slot: usize| -> &Stream {
                let p = plan.inputs_of(id)[slot];
                &streams[p.node.0][p.port]
            };
            let outs: Vec<Stream> = match kind {
                NodeKind::Root { .. } => vec![root_stream()],
                NodeKind::LevelScanner { tensor, .. } => {
                    let level = inputs.get(tensor).expect("validated binding").level(plan.scan_level(id));
                    run_scanner(level, input(0))
                }
                NodeKind::Repeater { .. } => run_repeater(input(0), input(1), &label)?,
                NodeKind::Intersecter { .. } => {
                    run_intersect([input(0), input(1)], [input(2), input(3)], &label)?
                }
                NodeKind::Unioner { .. } => run_union([input(0), input(1)], [input(2), input(3)], &label)?,
                NodeKind::Locator { tensor, .. } => {
                    let level = inputs.get(tensor).expect("validated binding").level(plan.scan_level(id));
                    run_locator(level, input(0), input(1), &label)?
                }
                NodeKind::Array { tensor } => {
                    run_array(inputs.get(tensor).expect("validated binding").vals(), input(0), &label)?
                }
                NodeKind::Alu { .. } => run_alu(plan.alu_op(id), input(0), input(1), &label)?,
                NodeKind::Reducer { order } => match order {
                    0 => run_reduce_scalar(input(0), reducer_policy(0)),
                    1 => run_reduce_vector(input(0), input(1), &label)?,
                    _ => run_reduce_matrix(input(0), input(1), input(2), &label)?,
                },
                NodeKind::CoordDropper { .. } => run_dropper(input(0), input(1), &label)?,
                NodeKind::LevelWriter { vals, .. } => {
                    if *vals {
                        vals_result = Some(run_val_writer(input(0)));
                    } else {
                        level_results.insert(id.0, run_level_writer(plan.writer_dim(id), input(0)));
                    }
                    Vec::new()
                }
                NodeKind::Parallelizer | NodeKind::Serializer | NodeKind::BitvectorConverter => {
                    unreachable!("rejected during planning")
                }
            };
            streams[id.0] = outs;
        }

        let levels: Vec<CompressedLevel> = plan
            .level_writers()
            .iter()
            .map(|w| {
                level_results.remove(&w.0).ok_or(ExecError::IncompleteOutput { label: nodes[w.0].label() })
            })
            .collect::<Result<_, _>>()?;
        let vals =
            vals_result.ok_or(ExecError::IncompleteOutput { label: nodes[plan.vals_writer().0].label() })?;
        let tokens: u64 = streams.iter().flatten().map(|s| s.len() as u64).sum();
        let channels = streams.iter().map(|ports| ports.len()).sum();
        let output = assemble_output(plan, levels, &vals)?;

        Ok(Execution {
            backend: self.name(),
            output,
            vals,
            cycles: None,
            blocks: nodes.len(),
            channels,
            tokens,
            elapsed: start.elapsed(),
        })
    }
}

fn misaligned(label: &str) -> ExecError {
    ExecError::Misaligned { label: label.to_string() }
}

/// Level scanner transfer function (Definition 3.1, stop rule of
/// Section 3.3).
fn run_scanner(level: &Level, input: &Stream) -> Vec<Stream> {
    let mut crd = Stream::new();
    let mut rf = Stream::new();
    let mut need_stop = false;
    let mut i = 0;
    while i < input.len() {
        let t = input[i];
        if need_stop {
            // Lookahead decides the level of the trailing stop token.
            if let Token::Stop(n) = t {
                i += 1;
                crd.push(tok::stop(n + 1));
                rf.push(tok::stop(n + 1));
            } else {
                crd.push(tok::stop(0));
                rf.push(tok::stop(0));
            }
            need_stop = false;
            continue;
        }
        i += 1;
        match t {
            Token::Val(p) => {
                for e in level.fiber(p.expect_ref() as usize) {
                    crd.push(tok::crd(e.coord));
                    rf.push(tok::rf(e.child as u32));
                }
                need_stop = true;
            }
            Token::Empty => need_stop = true,
            Token::Stop(n) => {
                crd.push(tok::stop(n + 1));
                rf.push(tok::stop(n + 1));
            }
            Token::Done => {
                crd.push(tok::done());
                rf.push(tok::done());
                break;
            }
        }
    }
    vec![crd, rf]
}

/// Repeater transfer function (Definition 3.4).
///
/// The coordinate stream sits one fibertree level below the reference
/// stream, so their structures correlate: every coordinate-stream *fiber*
/// (even an empty one) corresponds to one reference data token, and every
/// coordinate stop of level `n >= 1` additionally closes the reference
/// stream's own fiber, consuming its (single, hierarchical) stop token.
/// Walking that correspondence reproduces the cycle-level block's output
/// without emulating its tick timing.
fn run_repeater(crd_in: &Stream, ref_in: &Stream, label: &str) -> Result<Vec<Stream>, ExecError> {
    let mut out = Stream::new();
    let mut ref_pos = 0usize;
    let mut current: Option<SimToken> = None;
    for &t in crd_in {
        match t {
            Token::Val(_) => {
                if current.is_none() {
                    // The current fiber's reference: the next data token.
                    match ref_in.get(ref_pos) {
                        Some(&r @ (Token::Val(_) | Token::Empty)) => {
                            ref_pos += 1;
                            current = Some(r);
                        }
                        _ => return Err(misaligned(label)),
                    }
                }
                out.push(current.expect("just fetched"));
            }
            Token::Empty => out.push(tok::empty()),
            Token::Stop(n) => {
                if current.is_none() {
                    // An empty fiber still consumes its reference, unless
                    // this bare stop only closes outer levels (the
                    // reference stream then carries a stop here itself).
                    if let Some(Token::Val(_) | Token::Empty) = ref_in.get(ref_pos) {
                        ref_pos += 1;
                    }
                }
                current = None;
                if n > 0 {
                    // The reference stream's own fiber closes with it.
                    if let Some(Token::Stop(_)) = ref_in.get(ref_pos) {
                        ref_pos += 1;
                    }
                }
                out.push(tok::stop(n));
            }
            Token::Done => {
                out.push(tok::done());
                break;
            }
        }
    }
    Ok(vec![out])
}

/// Intersecter transfer function (Definition 3.2): two-finger merge.
fn run_intersect(crd: [&Stream; 2], refs: [&Stream; 2], label: &str) -> Result<Vec<Stream>, ExecError> {
    let mut oc = Stream::new();
    let mut o0 = Stream::new();
    let mut o1 = Stream::new();
    let (mut a, mut b) = (0usize, 0usize);
    loop {
        let (Some(&ta), Some(&tb)) = (crd[0].get(a), crd[1].get(b)) else {
            return Err(misaligned(label));
        };
        match (ta, tb) {
            (Token::Val(pa), Token::Val(pb)) => {
                let ca = pa.expect_crd();
                let cb = pb.expect_crd();
                if ca == cb {
                    oc.push(tok::crd(ca));
                    o0.push(*refs[0].get(a).ok_or_else(|| misaligned(label))?);
                    o1.push(*refs[1].get(b).ok_or_else(|| misaligned(label))?);
                    a += 1;
                    b += 1;
                } else if ca < cb {
                    a += 1;
                } else {
                    b += 1;
                }
            }
            (Token::Val(_), _) | (Token::Empty, _) => a += 1,
            (_, Token::Val(_)) | (_, Token::Empty) => b += 1,
            (Token::Stop(na), Token::Stop(nb)) => {
                let s = tok::stop(na.max(nb));
                oc.push(s);
                o0.push(s);
                o1.push(s);
                a += 1;
                b += 1;
            }
            (Token::Done, Token::Done) => {
                oc.push(tok::done());
                o0.push(tok::done());
                o1.push(tok::done());
                break;
            }
            (Token::Stop(_), Token::Done) => a += 1,
            (Token::Done, Token::Stop(_)) => b += 1,
        }
    }
    Ok(vec![oc, o0, o1])
}

/// Unioner transfer function (Definition 3.3).
fn run_union(crd: [&Stream; 2], refs: [&Stream; 2], label: &str) -> Result<Vec<Stream>, ExecError> {
    let mut oc = Stream::new();
    let mut o0 = Stream::new();
    let mut o1 = Stream::new();
    let (mut a, mut b) = (0usize, 0usize);
    loop {
        let (Some(&ta), Some(&tb)) = (crd[0].get(a), crd[1].get(b)) else {
            return Err(misaligned(label));
        };
        let ra = |a: usize| refs[0].get(a).copied().ok_or_else(|| misaligned(label));
        let rb = |b: usize| refs[1].get(b).copied().ok_or_else(|| misaligned(label));
        match (ta, tb) {
            (Token::Val(pa), Token::Val(pb)) => {
                let ca = pa.expect_crd();
                let cb = pb.expect_crd();
                if ca == cb {
                    oc.push(tok::crd(ca));
                    o0.push(ra(a)?);
                    o1.push(rb(b)?);
                    a += 1;
                    b += 1;
                } else if ca < cb {
                    oc.push(tok::crd(ca));
                    o0.push(ra(a)?);
                    o1.push(tok::empty());
                    a += 1;
                } else {
                    oc.push(tok::crd(cb));
                    o0.push(tok::empty());
                    o1.push(rb(b)?);
                    b += 1;
                }
            }
            (Token::Val(pa), _) => {
                oc.push(tok::crd(pa.expect_crd()));
                o0.push(ra(a)?);
                o1.push(tok::empty());
                a += 1;
            }
            (_, Token::Val(pb)) => {
                oc.push(tok::crd(pb.expect_crd()));
                o0.push(tok::empty());
                o1.push(rb(b)?);
                b += 1;
            }
            (Token::Empty, _) => a += 1,
            (_, Token::Empty) => b += 1,
            (Token::Stop(na), Token::Stop(nb)) => {
                let s = tok::stop(na.max(nb));
                oc.push(s);
                o0.push(s);
                o1.push(s);
                a += 1;
                b += 1;
            }
            (Token::Done, Token::Done) => {
                oc.push(tok::done());
                o0.push(tok::done());
                o1.push(tok::done());
                break;
            }
            (Token::Stop(_), Token::Done) => a += 1,
            (Token::Done, Token::Stop(_)) => b += 1,
        }
    }
    Ok(vec![oc, o0, o1])
}

/// Locator transfer function (Definition 4.1).
fn run_locator(level: &Level, crd: &Stream, rf: &Stream, label: &str) -> Result<Vec<Stream>, ExecError> {
    let mut oc = Stream::new();
    let mut pass = Stream::new();
    let mut located = Stream::new();
    let push_all = |t: SimToken, oc: &mut Stream, pass: &mut Stream, located: &mut Stream| {
        oc.push(t);
        pass.push(t);
        located.push(t);
    };
    for i in 0..crd.len().max(rf.len()) {
        let (Some(&c), Some(&r)) = (crd.get(i), rf.get(i)) else {
            return Err(misaligned(label));
        };
        match (c, r) {
            (Token::Val(pc), Token::Val(pr)) => {
                let coord = pc.expect_crd();
                let fiber = pr.expect_ref() as usize;
                match level.locate(fiber, coord) {
                    Some(child) => {
                        oc.push(tok::crd(coord));
                        pass.push(tok::rf(fiber as u32));
                        located.push(tok::rf(child as u32));
                    }
                    None => push_all(tok::empty(), &mut oc, &mut pass, &mut located),
                }
            }
            (Token::Empty, _) | (_, Token::Empty) => push_all(tok::empty(), &mut oc, &mut pass, &mut located),
            (Token::Stop(nc), Token::Stop(nr)) => {
                push_all(tok::stop(nc.max(nr)), &mut oc, &mut pass, &mut located)
            }
            (Token::Done, Token::Done) => {
                push_all(tok::done(), &mut oc, &mut pass, &mut located);
                break;
            }
            _ => return Err(misaligned(label)),
        }
    }
    Ok(vec![oc, pass, located])
}

/// Array-in-load-mode transfer function (Definition 3.5).
fn run_array(vals: &[f64], input: &Stream, label: &str) -> Result<Vec<Stream>, ExecError> {
    let mut out = Stream::new();
    for &t in input {
        match t {
            Token::Val(p) => {
                let r = p.expect_ref() as usize;
                if r >= vals.len() {
                    return Err(ExecError::RefOutOfBounds { label: label.to_string(), reference: r });
                }
                out.push(tok::val(vals[r]));
            }
            Token::Empty => out.push(tok::empty()),
            Token::Stop(n) => out.push(tok::stop(n)),
            Token::Done => {
                out.push(tok::done());
                break;
            }
        }
    }
    Ok(vec![out])
}

/// ALU transfer function (Definition 3.6): empty tokens read as zero.
fn run_alu(op: AluOp, a: &Stream, b: &Stream, label: &str) -> Result<Vec<Stream>, ExecError> {
    let apply = |x: f64, y: f64| match op {
        AluOp::Add => x + y,
        AluOp::Sub => x - y,
        AluOp::Mul => x * y,
    };
    let mut out = Stream::new();
    for i in 0..a.len().max(b.len()) {
        let (Some(&ta), Some(&tb)) = (a.get(i), b.get(i)) else {
            return Err(misaligned(label));
        };
        match (ta, tb) {
            (Token::Val(pa), Token::Val(pb)) => out.push(tok::val(apply(pa.expect_val(), pb.expect_val()))),
            (Token::Val(pa), Token::Empty) => out.push(tok::val(apply(pa.expect_val(), 0.0))),
            (Token::Empty, Token::Val(pb)) => out.push(tok::val(apply(0.0, pb.expect_val()))),
            (Token::Empty, Token::Empty) => out.push(tok::val(apply(0.0, 0.0))),
            (Token::Stop(na), Token::Stop(nb)) => out.push(tok::stop(na.max(nb))),
            (Token::Done, Token::Done) => {
                out.push(tok::done());
                break;
            }
            _ => return Err(misaligned(label)),
        }
    }
    Ok(vec![out])
}

/// Scalar reducer transfer function (Definition 3.7, order 0).
fn run_reduce_scalar(input: &Stream, policy: EmptyFiberPolicy) -> Vec<Stream> {
    let mut out = Stream::new();
    let mut acc = 0.0;
    let mut has_data = false;
    for &t in input {
        match t {
            Token::Val(p) => {
                acc += p.expect_val();
                has_data = true;
            }
            Token::Empty => {}
            Token::Stop(n) => {
                if has_data || policy == EmptyFiberPolicy::ExplicitZero {
                    out.push(tok::val(acc));
                }
                acc = 0.0;
                has_data = false;
                if n > 0 {
                    out.push(tok::stop(n - 1));
                }
            }
            Token::Done => {
                out.push(tok::done());
                break;
            }
        }
    }
    vec![out]
}

/// Vector reducer transfer function (Definition 3.7, order 1 / Figure 7).
fn run_reduce_vector(crd: &Stream, val: &Stream, label: &str) -> Result<Vec<Stream>, ExecError> {
    let mut oc = Stream::new();
    let mut ov = Stream::new();
    let mut acc: BTreeMap<u32, f64> = BTreeMap::new();
    let flush = |acc: &mut BTreeMap<u32, f64>, closing: Option<u8>, oc: &mut Stream, ov: &mut Stream| {
        for (c, v) in std::mem::take(acc) {
            oc.push(tok::crd(c));
            ov.push(tok::val(v));
        }
        if let Some(level) = closing {
            oc.push(tok::stop(level));
            ov.push(tok::stop(level));
        }
    };
    for i in 0..crd.len().max(val.len()) {
        let (Some(&c), Some(&v)) = (crd.get(i), val.get(i)) else {
            return Err(misaligned(label));
        };
        match (c, v) {
            (Token::Val(pc), Token::Val(pv)) => {
                *acc.entry(pc.expect_crd()).or_insert(0.0) += pv.expect_val();
            }
            (Token::Empty, _) | (_, Token::Empty) => {}
            (Token::Stop(nc), Token::Stop(nv)) => {
                let n = nc.max(nv);
                if n > 0 {
                    flush(&mut acc, Some(n - 1), &mut oc, &mut ov);
                }
            }
            (Token::Done, Token::Done) => {
                if !acc.is_empty() {
                    flush(&mut acc, None, &mut oc, &mut ov);
                }
                oc.push(tok::done());
                ov.push(tok::done());
                break;
            }
            _ => return Err(misaligned(label)),
        }
    }
    Ok(vec![oc, ov])
}

/// Matrix reducer transfer function (Definition 3.7, order 2).
fn run_reduce_matrix(
    outer: &Stream,
    inner: &Stream,
    val: &Stream,
    label: &str,
) -> Result<Vec<Stream>, ExecError> {
    let mut oo = Stream::new();
    let mut oi = Stream::new();
    let mut ov = Stream::new();
    let mut acc: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    let mut po = 0usize;
    let mut current_outer: Option<u32> = None;
    for i in 0..inner.len().max(val.len()) {
        if current_outer.is_none() {
            if let Some(Token::Val(p)) = outer.get(po) {
                current_outer = Some(p.expect_crd());
                po += 1;
            }
        }
        let (Some(&c), Some(&v)) = (inner.get(i), val.get(i)) else {
            return Err(misaligned(label));
        };
        match (c, v) {
            (Token::Val(pc), Token::Val(pv)) => {
                let o = current_outer.ok_or_else(|| misaligned(label))?;
                *acc.entry((o, pc.expect_crd())).or_insert(0.0) += pv.expect_val();
            }
            (Token::Empty, _) | (_, Token::Empty) => {}
            (Token::Stop(_), Token::Stop(_)) => {
                current_outer = None;
                if let Some(Token::Stop(_)) = outer.get(po) {
                    po += 1;
                }
            }
            (Token::Done, Token::Done) => {
                while let Some(&t) = outer.get(po) {
                    po += 1;
                    if t.is_done() {
                        break;
                    }
                }
                flush_matrix(&mut acc, Some(1), &mut oo, &mut oi, &mut ov);
                oo.push(tok::done());
                oi.push(tok::done());
                ov.push(tok::done());
                break;
            }
            _ => return Err(misaligned(label)),
        }
    }
    Ok(vec![oo, oi, ov])
}

/// Emits the accumulated matrix exactly like the cycle-level reducer block.
fn flush_matrix(
    acc: &mut BTreeMap<(u32, u32), f64>,
    closing_stop: Option<u8>,
    oo: &mut Stream,
    oi: &mut Stream,
    ov: &mut Stream,
) {
    let mut by_outer: BTreeMap<u32, Vec<(u32, f64)>> = BTreeMap::new();
    for ((o, i), v) in std::mem::take(acc) {
        by_outer.entry(o).or_default().push((i, v));
    }
    let n = by_outer.len();
    for (idx, (o, inners)) in by_outer.into_iter().enumerate() {
        let last_fiber = idx + 1 == n;
        let m = inners.len();
        for (jdx, (i, v)) in inners.into_iter().enumerate() {
            oo.push(if jdx == 0 { tok::crd(o) } else { tok::empty() });
            oi.push(tok::crd(i));
            ov.push(tok::val(v));
            if jdx + 1 == m {
                let level = if last_fiber { closing_stop.unwrap_or(1) } else { 0 };
                oo.push(if last_fiber { tok::stop(level.saturating_sub(1)) } else { tok::empty() });
                oi.push(tok::stop(level));
                ov.push(tok::stop(level));
            }
        }
    }
    if n == 0 {
        if let Some(level) = closing_stop {
            oo.push(tok::stop(level));
            oi.push(tok::stop(level));
            ov.push(tok::stop(level));
        }
    }
}

/// Appends to a dropper output, merging consecutive trailing stop tokens by
/// keeping the higher level (the Figure 8 upgrade rule).
fn push_merged(queue: &mut Stream, t: SimToken) {
    if let Token::Stop(new_level) = t {
        if let Some(Token::Stop(prev)) = queue.last_mut() {
            *prev = (*prev).max(new_level);
            return;
        }
    }
    queue.push(t);
}

/// Coordinate dropper transfer function (Definition 3.9, Figure 8).
fn run_dropper(outer: &Stream, inner: &Stream, label: &str) -> Result<Vec<Stream>, ExecError> {
    let mut out_outer = Stream::new();
    let mut out_inner = Stream::new();
    let mut fiber: Vec<SimToken> = Vec::new();
    let mut effectual = false;
    let mut po = 0usize;
    for &t in inner {
        match t {
            Token::Val(p) => {
                effectual |= match p {
                    Payload::Val(v) => v != 0.0,
                    _ => true,
                };
                fiber.push(t);
            }
            Token::Empty => {}
            Token::Stop(level) => {
                let Some(&outer_tok) = outer.get(po) else {
                    return Err(misaligned(label));
                };
                match outer_tok {
                    Token::Val(_) => {
                        po += 1;
                        if effectual {
                            for ft in fiber.drain(..) {
                                push_merged(&mut out_inner, ft);
                            }
                            push_merged(&mut out_inner, tok::stop(level));
                            push_merged(&mut out_outer, outer_tok);
                        } else {
                            fiber.clear();
                            if level > 0 {
                                push_merged(&mut out_inner, tok::stop(level));
                            }
                        }
                        if level > 0 {
                            if let Some(Token::Stop(no)) = outer.get(po) {
                                let no = *no;
                                po += 1;
                                push_merged(&mut out_outer, tok::stop(no));
                            } else {
                                push_merged(&mut out_outer, tok::stop(level - 1));
                            }
                        }
                        effectual = false;
                    }
                    Token::Stop(_) | Token::Empty | Token::Done => {
                        push_merged(&mut out_inner, tok::stop(level));
                        if matches!(outer_tok, Token::Stop(_)) {
                            po += 1;
                            push_merged(&mut out_outer, outer_tok);
                        }
                        effectual = false;
                        fiber.clear();
                    }
                }
            }
            Token::Done => {
                while let Some(&o) = outer.get(po) {
                    po += 1;
                    if o.is_done() {
                        break;
                    }
                    push_merged(&mut out_outer, o);
                }
                push_merged(&mut out_inner, tok::done());
                push_merged(&mut out_outer, tok::done());
                break;
            }
        }
    }
    Ok(vec![out_outer, out_inner])
}

/// Level-writer transfer function (Definition 3.8).
fn run_level_writer(dim: usize, input: &Stream) -> CompressedLevel {
    let mut coords: Vec<u32> = Vec::new();
    let mut seg: Vec<usize> = vec![0];
    for &t in input {
        match t {
            Token::Val(p) => coords.push(p.expect_crd()),
            Token::Empty => {}
            Token::Stop(_) => seg.push(coords.len()),
            Token::Done => break,
        }
    }
    if *seg.last().expect("nonempty") != coords.len() {
        seg.push(coords.len());
    }
    CompressedLevel::new(dim, seg, coords)
}

/// Values-writer transfer function: empty tokens store explicit zeros.
fn run_val_writer(input: &Stream) -> Vec<f64> {
    let mut vals = Vec::new();
    for &t in input {
        match t {
            Token::Val(p) => vals.push(p.expect_val()),
            Token::Empty => vals.push(0.0),
            Token::Stop(_) => {}
            Token::Done => break,
        }
    }
    vals
}
