//! A minimal work-stealing thread pool for data-parallel node evaluation.
//!
//! The pool is deliberately simple — per-worker deques behind one mutex
//! plus two condvars — because its work items are coarse (a stream segment
//! or a tile tuple, microseconds to milliseconds each), so queue contention
//! is negligible next to task runtime. What matters is the *stealing*
//! discipline: a worker pops its own queue from the back (LIFO, cache-warm)
//! and steals from other queues at the front (FIFO, the oldest — and under
//! the adaptive ramp the largest-remaining — work), which is the classic
//! Chase–Lev policy expressed with locks instead of lock-free deques.
//!
//! The driving thread participates: [`StealPool::run_batch`] enqueues a
//! batch round-robin, then the caller runs tasks as worker 0 until the
//! batch drains. Workers spawned onto [`StealPool::worker_loop`] (from a
//! [`std::thread::scope`]) sleep on a condvar between batches and exit on
//! [`StealPool::shutdown`]. Task panics decrement the batch counter from a
//! drop guard, so the driver always wakes; the scope then re-raises the
//! panic.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One unit of work: runs once, receives the executing worker's index.
pub type Task<'env> = Box<dyn FnOnce(usize) + Send + 'env>;

/// Per-worker scheduler counters, surfaced as `WorkerProfile` on traced
/// runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Tasks this worker executed.
    pub tasks: u64,
    /// Tasks this worker took from another worker's queue.
    pub steals: u64,
    /// Wall time spent executing tasks, nanoseconds (collected only when
    /// the pool was built with `timing`).
    pub busy_ns: u64,
}

struct PoolState<'env> {
    queues: Vec<VecDeque<Task<'env>>>,
    /// Tasks enqueued or running in the current batch.
    pending: usize,
    shutdown: bool,
}

/// The pool. `'env` bounds what tasks may borrow: everything declared
/// before the [`std::thread::scope`] the workers run inside.
pub struct StealPool<'env> {
    state: Mutex<PoolState<'env>>,
    /// Signals workers: new tasks or shutdown.
    work_cv: Condvar,
    /// Signals the driver: the batch may have drained.
    done_cv: Condvar,
    stats: Vec<Mutex<WorkerStats>>,
    timing: bool,
}

/// Decrements `pending` (and wakes the driver at zero) even when the task
/// unwinds.
struct PendingGuard<'p, 'env> {
    pool: &'p StealPool<'env>,
}

impl Drop for PendingGuard<'_, '_> {
    fn drop(&mut self) {
        let mut st = self.pool.state.lock().expect("pool state");
        st.pending -= 1;
        if st.pending == 0 {
            self.pool.done_cv.notify_all();
        }
    }
}

impl std::fmt::Debug for StealPool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StealPool")
            .field("workers", &self.stats.len())
            .field("timing", &self.timing)
            .finish_non_exhaustive()
    }
}

impl<'env> StealPool<'env> {
    /// A pool for `workers` participants (the driver counts as worker 0).
    /// `timing` turns on per-task wall-clock accumulation.
    pub fn new(workers: usize, timing: bool) -> Self {
        let workers = workers.max(1);
        StealPool {
            state: Mutex::new(PoolState {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                pending: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            stats: (0..workers).map(|_| Mutex::new(WorkerStats::default())).collect(),
            timing,
        }
    }

    /// Number of participating workers (including the driver).
    pub fn workers(&self) -> usize {
        self.stats.len()
    }

    /// Pops local work from the back, or steals the oldest task from
    /// another queue (scanning the ring starting after `w`).
    fn take_task(st: &mut PoolState<'env>, w: usize) -> Option<(Task<'env>, bool)> {
        if let Some(t) = st.queues[w].pop_back() {
            return Some((t, false));
        }
        let n = st.queues.len();
        for off in 1..n {
            if let Some(t) = st.queues[(w + off) % n].pop_front() {
                return Some((t, true));
            }
        }
        None
    }

    fn execute(&self, task: Task<'env>, w: usize, stolen: bool) {
        let _guard = PendingGuard { pool: self };
        let started = self.timing.then(Instant::now);
        task(w);
        let mut stats = self.stats[w].lock().expect("worker stats");
        stats.tasks += 1;
        stats.steals += u64::from(stolen);
        if let Some(started) = started {
            stats.busy_ns += started.elapsed().as_nanos() as u64;
        }
    }

    /// Runs `tasks` to completion across the pool. The calling thread
    /// participates as worker 0; the call returns once every task has
    /// finished. Tasks are distributed round-robin so stealing has
    /// somewhere to steal from immediately.
    pub fn run_batch(&self, tasks: Vec<Task<'env>>) {
        if tasks.is_empty() {
            return;
        }
        {
            let mut st = self.state.lock().expect("pool state");
            let n = st.queues.len();
            for (i, t) in tasks.into_iter().enumerate() {
                st.pending += 1;
                st.queues[i % n].push_back(t);
            }
        }
        self.work_cv.notify_all();
        loop {
            let taken = {
                let mut st = self.state.lock().expect("pool state");
                Self::take_task(&mut st, 0)
            };
            match taken {
                Some((t, stolen)) => self.execute(t, 0, stolen),
                None => {
                    let mut st = self.state.lock().expect("pool state");
                    while st.pending > 0 && st.queues.iter().all(VecDeque::is_empty) {
                        st = self.done_cv.wait(st).expect("pool state");
                    }
                    if st.pending == 0 {
                        return;
                    }
                }
            }
        }
    }

    /// The body of a spawned worker thread: execute and steal until
    /// [`StealPool::shutdown`].
    pub fn worker_loop(&self, w: usize) {
        loop {
            let taken = {
                let mut st = self.state.lock().expect("pool state");
                loop {
                    if let Some(t) = Self::take_task(&mut st, w) {
                        break Some(t);
                    }
                    if st.shutdown {
                        break None;
                    }
                    st = self.work_cv.wait(st).expect("pool state");
                }
            };
            match taken {
                Some((t, stolen)) => self.execute(t, w, stolen),
                None => return,
            }
        }
    }

    /// Wakes every worker and tells it to exit once the queues drain.
    pub fn shutdown(&self) {
        self.state.lock().expect("pool state").shutdown = true;
        self.work_cv.notify_all();
    }

    /// Snapshot of every worker's counters.
    pub fn stats(&self) -> Vec<WorkerStats> {
        self.stats.iter().map(|s| *s.lock().expect("worker stats")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;

    fn run_pool(workers: usize, tasks: usize) -> (u64, Vec<WorkerStats>) {
        let hits = AtomicU64::new(0);
        let pool = StealPool::new(workers, true);
        let stats = thread::scope(|scope| {
            for w in 1..pool.workers() {
                let pool = &pool;
                scope.spawn(move || pool.worker_loop(w));
            }
            let batch: Vec<Task<'_>> = (0..tasks)
                .map(|i| {
                    let hits = &hits;
                    Box::new(move |_w: usize| {
                        hits.fetch_add(i as u64 + 1, Ordering::Relaxed);
                    }) as Task<'_>
                })
                .collect();
            pool.run_batch(batch);
            pool.shutdown();
            pool.stats()
        });
        (hits.load(Ordering::Relaxed), stats)
    }

    #[test]
    fn every_task_runs_exactly_once() {
        for workers in [1, 2, 4] {
            for tasks in [0usize, 1, 7, 64] {
                let (sum, stats) = run_pool(workers, tasks);
                let expect: u64 = (1..=tasks as u64).sum();
                assert_eq!(sum, expect, "workers={workers} tasks={tasks}");
                let ran: u64 = stats.iter().map(|s| s.tasks).sum();
                assert_eq!(ran, tasks as u64);
                let steals: u64 = stats.iter().map(|s| s.steals).sum();
                assert!(steals <= ran);
            }
        }
    }

    #[test]
    fn sequential_batches_reuse_the_pool() {
        let count = AtomicU64::new(0);
        let pool = StealPool::new(3, false);
        thread::scope(|scope| {
            for w in 1..pool.workers() {
                let pool = &pool;
                scope.spawn(move || pool.worker_loop(w));
            }
            for _ in 0..10 {
                let batch: Vec<Task<'_>> = (0..8)
                    .map(|_| {
                        let count = &count;
                        Box::new(move |_| {
                            count.fetch_add(1, Ordering::Relaxed);
                        }) as Task<'_>
                    })
                    .collect();
                pool.run_batch(batch);
            }
            pool.shutdown();
        });
        assert_eq!(count.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn worker_indices_stay_in_range() {
        let bad = AtomicU64::new(0);
        let pool = StealPool::new(4, false);
        thread::scope(|scope| {
            for w in 1..pool.workers() {
                let pool = &pool;
                scope.spawn(move || pool.worker_loop(w));
            }
            let batch: Vec<Task<'_>> = (0..32)
                .map(|_| {
                    let bad = &bad;
                    Box::new(move |w: usize| {
                        if w >= 4 {
                            bad.fetch_add(1, Ordering::Relaxed);
                        }
                    }) as Task<'_>
                })
                .collect();
            pool.run_batch(batch);
            pool.shutdown();
        });
        assert_eq!(bad.load(Ordering::Relaxed), 0);
    }
}
