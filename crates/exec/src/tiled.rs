//! The tiled finite-memory backend: the paper's Section 6.4 machine,
//! measured instead of modelled.
//!
//! Where [`FastBackend`] assumes the whole operand set
//! fits wherever streams live, [`TiledBackend`] executes under a
//! [`MemoryConfig`] budget: operands are cut into `tile x tile` sub-tensors
//! by `sam-tiles`, a tile schedule enumerates the tile tuples of the
//! kernel's iteration space with ExTensor-style sparse tile skipping, each
//! surviving tuple runs the ordinary serial fast executor over its tile
//! operands, and a tile-merge reducer accumulates the partial outputs. The
//! tile access sequence drives an LRU model of the last-level buffer, so
//! the run reports *measured* counters ([`MemoryCounters`]) — DRAM bytes
//! moved, LLB occupancy high-water mark, tiles skipped and capacity
//! spills — which `sam-bench`'s `fig15` lines up against the closed-form
//! `sam_memory` model.
//!
//! The tile schedule is structure-preserving (see `sam_tiles::schedule`):
//! on inputs whose partial sums are exact (e.g. integer-valued data), a
//! tiled run is bit-identical to an untiled serial run, at any tile size.
//!
//! ```
//! use sam_core::graphs;
//! use sam_core::kernels::spmm::SpmmDataflow;
//! use sam_exec::{ExecRequest, Inputs, TiledBackend};
//! use sam_tensor::{synth, CooTensor, TensorFormat};
//!
//! // Integer-valued operands make tiled partial sums exact.
//! let int = |coo: &CooTensor| {
//!     CooTensor::from_entries(
//!         coo.shape().to_vec(),
//!         coo.entries().iter().map(|(p, v)| (p.clone(), (v * 4.0).round())).collect(),
//!     )
//!     .unwrap()
//! };
//! let b = int(&synth::random_matrix_sparsity(40, 32, 0.9, 1));
//! let c = int(&synth::random_matrix_sparsity(32, 40, 0.9, 2));
//! let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &c, TensorFormat::dcsr());
//! let graph = graphs::spmm(SpmmDataflow::LinearCombination);
//! let untiled = ExecRequest::new(&graph, &inputs).run().unwrap();
//! let tiled =
//!     ExecRequest::new(&graph, &inputs).executor(&TiledBackend::with_tile(8)).run().unwrap();
//! assert_eq!(untiled.output.unwrap(), tiled.output.unwrap());
//! let mem = tiled.memory.unwrap();
//! assert!(mem.dram_bytes > 0 && mem.tiles_executed > 0);
//! ```

use crate::bind::Inputs;
use crate::cache::{KeyDetail, PlanCache};
use crate::error::ExecError;
use crate::plan::Plan;
use crate::steal::StealPool;
use crate::{Execution, Executor, FastBackend, Parallelism};
use sam_memory::{MemoryConfig, MemoryCounters};
use sam_tensor::{CooTensor, Tensor};
use sam_tiles::{KernelTiling, LlbModel, TileGrid, TileMerger, TupleSpace};
use sam_trace::{ChannelProfile, ExecProfile, NullSink, TokenCounts, TraceSink, WorkerProfile};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

/// Executes plans tile by tile under a finite-memory budget, recording
/// measured DRAM/LLB counters on the [`Execution`].
#[derive(Debug, Clone)]
pub struct TiledBackend {
    config: MemoryConfig,
    skipping: bool,
    parallelism: Parallelism,
}

impl Default for TiledBackend {
    fn default() -> Self {
        TiledBackend::new(MemoryConfig::default())
    }
}

impl TiledBackend {
    /// A backend over the given hardware parameters (tile size, LLB
    /// capacity, DRAM bandwidth, bytes per stored entry).
    pub fn new(config: MemoryConfig) -> Self {
        TiledBackend { config, skipping: true, parallelism: Parallelism::Serial }
    }

    /// The paper's default configuration with the tile size overridden —
    /// the knob the equivalence suite sweeps.
    pub fn with_tile(tile: usize) -> Self {
        TiledBackend::new(MemoryConfig { tile: tile.max(1), ..MemoryConfig::default() })
    }

    /// Enables or disables ExTensor-style sparse tile skipping (on by
    /// default). With skipping off, every tile tuple with any nonempty
    /// operand executes — the baseline `fig15` measures the skipping win
    /// against.
    pub fn with_skipping(mut self, on: bool) -> Self {
        self.skipping = on;
        self
    }

    /// Runs independent tile tuples in parallel on a work-stealing pool
    /// (see `crate::steal`). Tile tuples are embarrassingly parallel: each
    /// executes the serial fast executor over its own tile operands, and
    /// the driving thread replays the order-sensitive bookkeeping — LLB
    /// accesses, partial-output merges and float accumulation — in
    /// canonical tuple order, so the output, the measured memory counters
    /// and the per-node token counts are bit-identical to a
    /// [`Parallelism::Serial`] run.
    ///
    /// The requested worker count is used verbatim (no clamp to
    /// [`std::thread::available_parallelism`]): tuples are coarse enough
    /// that oversubscription costs little, and the parallel seams stay
    /// exercised on single-core hosts.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The hardware parameters this backend executes under.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }
}

/// One executable tile tuple, bound and planned by the driving thread,
/// awaiting its inner run.
struct TupleJob {
    tuple: Vec<usize>,
    inputs: Inputs,
    plan: Arc<Plan>,
}

/// What one inner tile run produced: the result plus the optional
/// `(start_ns, dur_ns)` span, replayed on the driving thread.
type TupleRun = (Result<Execution, ExecError>, Option<(u64, u64)>);

/// A [`TupleRun`] reunited with its tuple for canonical-order merging.
type TupleOutcome = (Vec<usize>, Result<Execution, ExecError>, Option<(u64, u64)>);

impl Executor for TiledBackend {
    fn name(&self) -> &'static str {
        "tiled"
    }

    fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    fn run(&self, plan: &Plan, inputs: &Inputs) -> Result<Execution, ExecError> {
        self.run_traced(plan, inputs, &NullSink)
    }

    fn run_traced(
        &self,
        plan: &Plan,
        inputs: &Inputs,
        trace: &dyn TraceSink,
    ) -> Result<Execution, ExecError> {
        let start = Instant::now();
        let tracing = trace.enabled();
        // Inner tile runs share the outer sink (per-node counters accumulate
        // across tuples) but their spans are replaced by one per tile tuple.
        let tile_sink = TileSink { inner: trace };
        let graph = plan.graph();
        let tiling = KernelTiling::from_graph(graph, |n| inputs.get(n), self.config.tile)
            .map_err(|e| ExecError::TilingUnsupported { reason: e.to_string() })?;

        // Cut every bound tensor into its tile grid.
        let mut grids: Vec<TileGrid> = Vec::with_capacity(tiling.tensors.len());
        for (ti, tt) in tiling.tensors.iter().enumerate() {
            let tensor = inputs
                .get(&tt.name)
                .ok_or_else(|| ExecError::TilingUnsupported { reason: format!("`{}` unbound", tt.name) })?;
            grids.push(TileGrid::build(tensor, tiling.level_tile_sizes(ti, tensor)));
        }

        // Bindings the schedule does not tile (the single-value scalars
        // behind `ConstVal` sources) ride into every tile's input set
        // unchanged; they have no storage levels to window.
        let mut base_inputs = Inputs::new();
        for t in inputs.iter_shared() {
            if !tiling.tensors.iter().any(|tt| tt.name == t.name()) {
                base_inputs = base_inputs.shared(Arc::clone(t));
            }
        }

        let bytes_per_entry = self.config.bytes_per_nonzero as u64;
        let mut llb = LlbModel::new(self.config.llb_bytes as u64);
        let mut counters = MemoryCounters::default();
        let mut merger = TileMerger::new();
        let mut scalar_sum = 0.0f64;
        let mut tokens = 0u64;
        let inner = FastBackend::serial();
        // Interior tiles share one shape class (and thus one plan); edge
        // tiles get their own cached plans. Tile plans live in the global
        // sharded cache under shape-class keys, so the shape classes of one
        // run are still planned exactly once — and stay warm across runs.
        // (Inner tile runs are serial, so the shape-class key's blindness to
        // fiber occupancy is safe: serial evaluation never consults the
        // planner's stream-size estimates.)
        let plan_cache = PlanCache::global();
        let mut empty_cache: HashMap<(usize, Vec<usize>), Arc<Tensor>> = HashMap::new();

        // Offsets of the output writers' variables, refreshed per tuple.
        let writer_vars: Vec<usize> = tiling
            .output_vars
            .iter()
            .map(|&v| {
                tiling
                    .var_index(v)
                    .ok_or(ExecError::TilingUnsupported { reason: format!("output index `{v}` untraced") })
            })
            .collect::<Result<_, _>>()?;

        // Flat enumeration of the variable tile tuple space. The
        // key/emptiness buffers are reused across tuples: large sweeps
        // visit millions.
        let space = TupleSpace::new(tiling.tuple_space());
        let workers = match self.parallelism {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
        };
        // Tuples run in batches. The driving thread makes the skip
        // decisions, models the LLB accesses, and binds/plans the tile
        // operands in canonical tuple order; the batch's inner runs then
        // execute (on the work-stealing pool when parallel); finally the
        // partial outputs merge back — again in canonical order, because
        // `TileMerger` accumulation and the float sums it feeds are
        // order-sensitive. The LLB access sequence never interleaves with
        // inner runs (runs touch only tile streams), so batching leaves
        // the measured memory counters bit-identical to serial.
        let batch_cap = if workers > 1 { workers * 4 } else { 1 };
        let pool = (workers > 1).then(|| StealPool::new(workers, tracing));
        let inner_ref = &inner;
        let tile_sink_ref = &tile_sink;

        let swept = thread::scope(|scope| {
            if let Some(pool) = &pool {
                for w in 1..pool.workers() {
                    scope.spawn(move || pool.worker_loop(w));
                }
            }

            // Runs a batch of bound tuples and merges their partials in
            // canonical order. Any tuple's error surfaces in that order
            // too, matching what a serial sweep would report first.
            let mut flush = |jobs: &mut Vec<TupleJob>| -> Result<(), ExecError> {
                let outcomes: Vec<TupleOutcome> = match &pool {
                    Some(pool) => {
                        let slots: Arc<Vec<Mutex<Option<TupleRun>>>> =
                            Arc::new((0..jobs.len()).map(|_| Mutex::new(None)).collect());
                        let mut tuples = Vec::with_capacity(jobs.len());
                        let mut tasks: Vec<Box<dyn FnOnce(usize) + Send + '_>> =
                            Vec::with_capacity(jobs.len());
                        for (i, job) in jobs.drain(..).enumerate() {
                            tuples.push(job.tuple);
                            let slots = Arc::clone(&slots);
                            tasks.push(Box::new(move |_w| {
                                let t0 = Instant::now();
                                let res = inner_ref.run_traced(&job.plan, &job.inputs, tile_sink_ref);
                                let span = tracing.then(|| {
                                    ((t0 - start).as_nanos() as u64, t0.elapsed().as_nanos() as u64)
                                });
                                *slots[i].lock().expect("tile slot") = Some((res, span));
                            }));
                        }
                        pool.run_batch(tasks);
                        tuples
                            .into_iter()
                            .zip(slots.iter())
                            .map(|(tuple, slot)| {
                                let (res, span) =
                                    slot.lock().expect("tile slot").take().expect("tile task ran");
                                (tuple, res, span)
                            })
                            .collect()
                    }
                    None => jobs
                        .drain(..)
                        .map(|job| {
                            let t0 = Instant::now();
                            let res = inner_ref.run_traced(&job.plan, &job.inputs, tile_sink_ref);
                            let span = tracing
                                .then(|| ((t0 - start).as_nanos() as u64, t0.elapsed().as_nanos() as u64));
                            (job.tuple, res, span)
                        })
                        .collect(),
                };
                for (tuple, res, span) in outcomes {
                    let run = res?;
                    if let Some((at, dur)) = span {
                        trace.record_span("tiles", &format!("tile{tuple:?}"), at, dur);
                    }
                    tokens += run.tokens;
                    match run.output {
                        Some(out) => {
                            let offsets: Vec<u32> =
                                writer_vars.iter().map(|&vi| tiling.var_window(vi, tuple[vi]).0).collect();
                            merger.absorb(&out, &offsets);
                        }
                        None => scalar_sum += run.vals.iter().sum::<f64>(),
                    }
                }
                Ok(())
            };

            let result = (|| -> Result<(), ExecError> {
                let mut jobs: Vec<TupleJob> = Vec::with_capacity(batch_cap);
                let mut tuple = vec![0usize; space.dims().len()];
                let mut keys: Vec<Vec<u32>> = vec![Vec::new(); tiling.tensors.len()];
                let mut missing: Vec<bool> = vec![false; tiling.tensors.len()];
                for flat in 0..space.total() {
                    space.tuple_at(flat, &mut tuple);
                    counters.tiles_visited += 1;

                    for ti in 0..tiling.tensors.len() {
                        tiling.tile_key_into(ti, &tuple, &mut keys[ti]);
                        missing[ti] = grids[ti].get(&keys[ti]).is_none();
                    }
                    let skip = if self.skipping
                        && tiling
                            .tensors
                            .iter()
                            .enumerate()
                            .any(|(ti, tt)| missing[ti] && tiling.skip_tensors.contains(&tt.name))
                    {
                        // A structurally required operand tile is empty: the
                        // tuple provably contributes no output entries.
                        true
                    } else {
                        // With every operand tile empty nothing can flow at
                        // all; always safe, and it keeps the skip-free
                        // baseline from executing pure-vacuum tuples.
                        missing.iter().all(|&m| m)
                    };
                    if skip {
                        counters.tiles_skipped += 1;
                        continue;
                    }

                    counters.tiles_executed += 1;
                    // Fetch the operand tiles through the modelled LLB.
                    for (ti, key) in keys.iter().enumerate() {
                        let bytes = grids[ti].stored_entries(key) * bytes_per_entry;
                        if bytes > 0 {
                            llb.access((tiling.tensors[ti].name.clone(), key.clone()), bytes);
                        }
                    }

                    // Bind the tile operands (materializing empty tiles for
                    // operands outside the skip set). Tiles are shared into
                    // the input set — a refcount bump per tuple, not a deep
                    // copy.
                    let mut tile_inputs = base_inputs.clone();
                    for (ti, key) in keys.iter().enumerate() {
                        let tile: Arc<Tensor> = match grids[ti].get_shared(key) {
                            Some(t) => Arc::clone(t),
                            None => {
                                let windows = grids[ti].windows(key);
                                let shape: Vec<usize> =
                                    windows.iter().map(|&(lo, hi)| (hi - lo) as usize).collect();
                                Arc::clone(empty_cache.entry((ti, shape)).or_insert_with(|| {
                                    Arc::new(empty_tile(&tiling.tensors[ti].name, inputs, &windows))
                                }))
                            }
                        };
                        tile_inputs = tile_inputs.shared(tile);
                    }

                    let tile_plan =
                        plan_cache.get_or_plan_detailed(graph, &tile_inputs, KeyDetail::ShapeClass)?;
                    jobs.push(TupleJob { tuple: tuple.clone(), inputs: tile_inputs, plan: tile_plan });
                    if jobs.len() >= batch_cap {
                        flush(&mut jobs)?;
                    }
                }
                flush(&mut jobs)
            })();
            if let Some(pool) = &pool {
                pool.shutdown();
            }
            result
        });
        swept?;
        if tracing {
            if let Some(pool) = &pool {
                for (i, s) in pool.stats().iter().enumerate() {
                    trace.record_worker(WorkerProfile {
                        index: i,
                        tasks: s.tasks,
                        steals: s.steals,
                        busy_ns: s.busy_ns,
                    });
                }
            }
        }

        // The merged output streams back to DRAM once.
        let (output, vals) = if plan.level_writers().is_empty() {
            (None, vec![scalar_sum])
        } else {
            llb.write_through(merger.len() as u64 * bytes_per_entry);
            let (tensor, vals) = merger.finish(plan.output_name(), plan.output_shape().to_vec());
            (Some(tensor), vals)
        };

        counters.dram_bytes = llb.dram_bytes();
        counters.llb_peak_bytes = llb.peak_bytes();
        counters.spill_events = llb.evictions();

        // A measured cycle estimate mirroring the analytic model's shape:
        // compute is one token per cycle plus a fixed per-tuple pipeline
        // overhead, memory is DRAM traffic over bandwidth, and the tile
        // sequencing graph pays for walking the operand tile catalogs.
        let compute = tokens as f64 + 8.0 * counters.tiles_executed as f64;
        let memory_cycles =
            counters.dram_bytes as f64 / self.config.dram_bandwidth_bytes_per_s * self.config.frequency_hz;
        let sequencing: f64 =
            grids.iter().map(|g| 2.0 * g.nonempty() as f64 + 0.5 * g.total_tiles() as f64).sum();
        let cycles = (compute.max(memory_cycles) + sequencing).round() as u64;

        Ok(Execution {
            backend: self.name(),
            output,
            vals,
            cycles: Some(cycles),
            blocks: graph.len(),
            channels: plan.channels().len(),
            tokens,
            spills: 0,
            memory: Some(counters),
            elapsed: start.elapsed(),
            profile: trace.snapshot(),
        })
    }
}

/// Forwards per-node counters from inner tile runs to the outer sink while
/// suppressing the inner per-node spans — their timestamps are relative to
/// each tuple's own start, so they would overlap meaninglessly on a shared
/// timeline. The backend emits one span per executed tile tuple instead.
struct TileSink<'a> {
    inner: &'a dyn TraceSink,
}

impl TraceSink for TileSink<'_> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }
    fn define_node(&self, node: usize, label: &str) {
        self.inner.define_node(node, label);
    }
    fn record_tokens(&self, node: usize, counts: TokenCounts) {
        self.inner.record_tokens(node, counts);
    }
    fn record_invocations(&self, node: usize, n: u64) {
        self.inner.record_invocations(node, n);
    }
    fn record_node_wall(&self, node: usize, ns: u64) {
        self.inner.record_node_wall(node, ns);
    }
    fn record_node_blocked(&self, node: usize, ns: u64) {
        self.inner.record_node_blocked(node, ns);
    }
    fn record_channel(&self, channel: ChannelProfile) {
        self.inner.record_channel(channel);
    }
    fn record_span(&self, _track: &str, _name: &str, _start_ns: u64, _dur_ns: u64) {}
    fn snapshot(&self) -> Option<ExecProfile> {
        None
    }
}

/// An empty tile of `name` with the windowed shape, in the bound tensor's
/// format — what a non-skippable operand binds when its window holds no
/// stored entries.
fn empty_tile(name: &str, inputs: &Inputs, windows: &[(u32, u32)]) -> Tensor {
    let bound = inputs.get(name).expect("validated binding");
    let mode_order = bound.format().mode_order();
    let mut logical_shape = vec![0usize; windows.len()];
    for (level, &m) in mode_order.iter().enumerate() {
        logical_shape[m] = (windows[level].1 - windows[level].0) as usize;
    }
    Tensor::from_coo(name, &CooTensor::new(logical_shape), bound.format().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_core::graphs;
    use sam_tensor::{synth, TensorFormat};

    fn int_coo(coo: &CooTensor) -> CooTensor {
        CooTensor::from_entries(
            coo.shape().to_vec(),
            coo.entries().iter().map(|(p, v)| (p.clone(), (v * 4.0).round())).collect(),
        )
        .unwrap()
    }

    #[test]
    fn skipping_reduces_dram_traffic_without_changing_results() {
        let b = int_coo(&synth::random_matrix_nnz(64, 64, 60, 51));
        let c = int_coo(&synth::random_matrix_nnz(64, 64, 60, 52));
        let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &c, TensorFormat::dcsr());
        let graph = graphs::spmm(sam_core::kernels::spmm::SpmmDataflow::LinearCombination);
        // An LLB far smaller than the working set: executing needless tile
        // tuples now costs real refetch traffic, which skipping avoids.
        let config = MemoryConfig { tile: 8, llb_bytes: 256, ..MemoryConfig::default() };
        let run = |backend: &TiledBackend| {
            crate::ExecRequest::new(&graph, &inputs).executor(backend).run().unwrap()
        };
        let skip = run(&TiledBackend::new(config));
        let noskip = run(&TiledBackend::new(config).with_skipping(false));
        assert_eq!(skip.output, noskip.output);
        let (sm, nm) = (skip.memory.unwrap(), noskip.memory.unwrap());
        assert!(sm.tiles_skipped > nm.tiles_skipped);
        assert!(sm.tiles_executed < nm.tiles_executed);
        assert!(
            sm.dram_bytes < nm.dram_bytes,
            "skipping must cut DRAM traffic: {} vs {}",
            sm.dram_bytes,
            nm.dram_bytes
        );
    }

    #[test]
    fn tiny_llb_spills_while_a_big_one_holds_the_working_set() {
        let b = int_coo(&synth::random_matrix_sparsity(48, 48, 0.7, 53));
        let c = int_coo(&synth::random_matrix_sparsity(48, 48, 0.7, 54));
        let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &c, TensorFormat::dcsr());
        let graph = graphs::spmm(sam_core::kernels::spmm::SpmmDataflow::LinearCombination);
        let tiny = MemoryConfig { tile: 8, llb_bytes: 256, ..MemoryConfig::default() };
        let big = MemoryConfig { tile: 8, ..MemoryConfig::default() };
        let run = |backend: &TiledBackend| {
            crate::ExecRequest::new(&graph, &inputs).executor(backend).run().unwrap()
        };
        let small_run = run(&TiledBackend::new(tiny));
        let big_run = run(&TiledBackend::new(big));
        assert_eq!(small_run.output, big_run.output, "LLB size must not change results");
        let (sm, bm) = (small_run.memory.unwrap(), big_run.memory.unwrap());
        assert!(sm.spill_events > 0, "a 256-byte LLB must spill");
        assert_eq!(bm.spill_events, 0, "the paper-sized LLB holds this working set");
        assert!(sm.dram_bytes > bm.dram_bytes, "spilling refetches tiles");
        assert!(bm.llb_peak_bytes <= big.llb_bytes as u64);
    }

    #[test]
    fn parallel_tuples_match_the_serial_sweep_bit_for_bit() {
        let b = int_coo(&synth::random_matrix_nnz(64, 64, 60, 51));
        let c = int_coo(&synth::random_matrix_nnz(64, 64, 60, 52));
        let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &c, TensorFormat::dcsr());
        let graph = graphs::spmm(sam_core::kernels::spmm::SpmmDataflow::LinearCombination);
        // A small LLB keeps the access sequence order-sensitive (real
        // evictions), so this also checks the canonical-order replay.
        let config = MemoryConfig { tile: 8, llb_bytes: 4096, ..MemoryConfig::default() };
        let run = |backend: &TiledBackend| {
            crate::ExecRequest::new(&graph, &inputs).executor(backend).run().unwrap()
        };
        let serial = run(&TiledBackend::new(config));
        for threads in [2, 4] {
            let par = run(&TiledBackend::new(config).with_parallelism(crate::Parallelism::Threads(threads)));
            assert_eq!(par.output, serial.output, "threads={threads}");
            assert_eq!(par.vals, serial.vals, "threads={threads}");
            assert_eq!(par.tokens, serial.tokens, "threads={threads}");
            assert_eq!(par.cycles, serial.cycles, "threads={threads}");
            assert_eq!(par.memory, serial.memory, "threads={threads}");
        }
    }

    #[test]
    fn parallel_tiled_profile_reports_workers_and_identical_counts() {
        use crate::CountersSink;
        let b = int_coo(&synth::random_matrix_nnz(48, 48, 50, 61));
        let c = int_coo(&synth::random_matrix_nnz(48, 48, 50, 62));
        let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &c, TensorFormat::dcsr());
        let graph = graphs::spmm(sam_core::kernels::spmm::SpmmDataflow::LinearCombination);
        let plan = Plan::build(&graph, &inputs).unwrap();
        let profiled = |backend: &TiledBackend| {
            let sink = CountersSink::new();
            backend.run_traced(&plan, &inputs, &sink).unwrap().profile.unwrap()
        };
        let serial = profiled(&TiledBackend::with_tile(8));
        let par = profiled(&TiledBackend::with_tile(8).with_parallelism(crate::Parallelism::Threads(3)));
        // Per-node token counts accumulate across tuples on both paths.
        for (s, p) in serial.nodes.iter().zip(par.nodes.iter()) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.tokens, p.tokens, "node {}", s.label);
        }
        assert!(serial.workers.is_empty(), "serial tiled runs report no workers");
        assert_eq!(par.workers.len(), 3);
        let tasks: u64 = par.workers.iter().map(|w| w.tasks).sum();
        // Every executed tuple became exactly one pool task.
        let mem = TiledBackend::with_tile(8)
            .with_parallelism(crate::Parallelism::Threads(3))
            .run(&plan, &inputs)
            .unwrap()
            .memory
            .unwrap();
        assert_eq!(tasks, mem.tiles_executed, "one pool task per executed tuple");
        let steals: u64 = par.workers.iter().map(|w| w.steals).sum();
        assert!(steals <= tasks);
    }

    #[test]
    fn unported_graphs_are_rejected_cleanly() {
        use sam_core::graph::{NodeKind, SamGraph, StreamKind};
        // A vector copy x(i) = b(i), wired without explicit ports: the
        // planner infers the wiring, but the tile-schedule analysis needs
        // explicit ports and must reject it with a typed error.
        let mut g = SamGraph::new("x(i) = b(i) [unported]");
        let root = g.add_node(NodeKind::Root { tensor: "b".into() });
        let scan = g.add_node(NodeKind::LevelScanner { tensor: "b".into(), index: 'i', compressed: true });
        let arr = g.add_node(NodeKind::Array { tensor: "b".into() });
        let wl = g.add_node(NodeKind::LevelWriter { tensor: "x".into(), index: 'i', vals: false });
        let wv = g.add_node(NodeKind::LevelWriter { tensor: "x".into(), index: 'v', vals: true });
        g.add_edge(root, scan, StreamKind::Ref, "b root");
        g.add_edge(scan, wl, StreamKind::Crd, "b crd");
        g.add_edge(scan, arr, StreamKind::Ref, "b ref");
        g.add_edge(arr, wv, StreamKind::Val, "b vals");

        let b = synth::random_vector(8, 3, 55);
        let inputs = Inputs::new().coo("b", &b, TensorFormat::sparse_vec());
        let plan = Plan::build(&g, &inputs).expect("planner infers unported edges");
        assert!(FastBackend::serial().run(&plan, &inputs).is_ok());
        let err = TiledBackend::with_tile(4).run(&plan, &inputs);
        assert!(matches!(err, Err(ExecError::TilingUnsupported { .. })), "{err:?}");
    }
}
