//! The one execution entry point: [`ExecRequest`].
//!
//! Before this module, callers picked among three doors — the `execute()`
//! free function, [`Executor::run`], and [`Executor::run_traced`] — and
//! each spelled planning, tracing and backend choice differently. An
//! [`ExecRequest`] bundles `{ graph, inputs, options }` and runs them
//! through a single path: resolve a plan (pre-planned via
//! [`ExecRequest::planned`], or through the request's [`Planner`] and its
//! cache), build or borrow
//! the backend, then run traced or untraced. The service, samprof, the
//! benches and the equivalence suites all go through this door; the
//! [`Executor`] trait remains as the backend-facing SPI underneath it.
//!
//! ```
//! use sam_core::graphs;
//! use sam_exec::{BackendSpec, ExecRequest, Inputs};
//! use sam_tensor::{synth, TensorFormat};
//!
//! let graph = graphs::vec_elem_mul(true);
//! let b = synth::random_vector(64, 12, 1);
//! let c = synth::random_vector(64, 12, 2);
//! let inputs = Inputs::new()
//!     .coo("b", &b, TensorFormat::sparse_vec())
//!     .coo("c", &c, TensorFormat::sparse_vec());
//! // Default backend is fast-serial; pick any other by spec.
//! let serial = ExecRequest::new(&graph, &inputs).run().unwrap();
//! let cycle =
//!     ExecRequest::new(&graph, &inputs).backend(BackendSpec::Cycle).run().unwrap();
//! assert_eq!(serial.output.unwrap(), cycle.output.unwrap());
//! ```

use crate::cache::Planner;
use crate::error::ExecError;
use crate::plan::Plan;
use crate::spec::BackendSpec;
use crate::{Execution, Executor, Inputs};
use sam_core::graph::SamGraph;
use sam_memory::MemoryConfig;
use sam_trace::TraceSink;
use std::sync::Arc;

/// Everything about *how* to run a graph, separate from *what* to run.
///
/// The defaults mirror the old one-shot path: fast-serial backend, no
/// trace sink, default memory budget, planning through the process-wide
/// plan cache ([`Planner::cached`]).
pub struct ExecOptions<'a> {
    backend: BackendSpec,
    executor: Option<&'a dyn Executor>,
    planned: Option<Arc<Plan>>,
    trace: Option<&'a dyn TraceSink>,
    memory: Option<MemoryConfig>,
    planner: Planner,
}

impl Default for ExecOptions<'_> {
    fn default() -> Self {
        ExecOptions {
            backend: BackendSpec::default(),
            executor: None,
            planned: None,
            trace: None,
            memory: None,
            planner: Planner::cached(),
        }
    }
}

impl std::fmt::Debug for ExecOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecOptions")
            .field("backend", &self.backend)
            .field("executor", &self.executor.map(|e| e.name()))
            .field("planned", &self.planned.is_some())
            .field("traced", &self.trace.is_some())
            .field("memory", &self.memory)
            .finish()
    }
}

/// One executable unit of work: a graph, its bound inputs, and the
/// [`ExecOptions`] describing how to run them. See the module docs.
#[derive(Debug)]
pub struct ExecRequest<'a> {
    graph: &'a SamGraph,
    inputs: &'a Inputs,
    options: ExecOptions<'a>,
}

impl<'a> ExecRequest<'a> {
    /// A request over `graph` and `inputs` with default [`ExecOptions`].
    pub fn new(graph: &'a SamGraph, inputs: &'a Inputs) -> ExecRequest<'a> {
        ExecRequest { graph, inputs, options: ExecOptions::default() }
    }

    /// Replaces the whole option bundle.
    pub fn options(mut self, options: ExecOptions<'a>) -> Self {
        self.options = options;
        self
    }

    /// Selects the backend by [`BackendSpec`] (default:
    /// [`BackendSpec::FastSerial`]).
    pub fn backend(mut self, spec: BackendSpec) -> Self {
        self.options.backend = spec;
        self
    }

    /// Runs on this exact executor instance instead of building one from
    /// the spec — for custom-configured backends
    /// (`FastBackend::pipelined`, chunk/split tuning, tile-size overrides).
    pub fn executor(mut self, executor: &'a dyn Executor) -> Self {
        self.options.executor = Some(executor);
        self
    }

    /// Uses this pre-built plan instead of planning — the service's batched
    /// path, where one cached plan serves many queries.
    pub fn planned(mut self, plan: Arc<Plan>) -> Self {
        self.options.planned = Some(plan);
        self
    }

    /// Drives `trace` with per-node and per-channel instrumentation during
    /// the run (the old `run_traced` door).
    pub fn traced(mut self, trace: &'a dyn TraceSink) -> Self {
        self.options.trace = Some(trace);
        self
    }

    /// Overrides the finite-memory budget of a [`BackendSpec::Tiled`]
    /// backend built by this request (ignored for the other backends and
    /// for explicit [`ExecRequest::executor`] instances).
    pub fn memory(mut self, memory: MemoryConfig) -> Self {
        self.options.memory = Some(memory);
        self
    }

    /// Plans through this [`Planner`] instead of the process-wide cache —
    /// a service's own cache, say.
    pub fn planner(mut self, planner: Planner) -> Self {
        self.options.planner = planner;
        self
    }

    /// Bypasses plan caching entirely (the pre-cache behavior; cold-start
    /// measurement support).
    pub fn uncached(self) -> Self {
        self.planner(Planner::uncached())
    }

    /// Resolves the plan this request would run — from
    /// [`ExecRequest::planned`] if set, otherwise through the planner.
    ///
    /// # Errors
    ///
    /// Returns the planning failure as an [`ExecError::Plan`].
    pub fn plan(&self) -> Result<Arc<Plan>, ExecError> {
        match &self.options.planned {
            Some(plan) => Ok(Arc::clone(plan)),
            None => Ok(self.options.planner.plan(self.graph, self.inputs)?),
        }
    }

    /// Plans (or reuses the provided plan) and executes.
    ///
    /// # Errors
    ///
    /// Returns any planning or execution error; see [`Plan::build`] and
    /// [`Executor::run`].
    pub fn run(self) -> Result<Execution, ExecError> {
        let plan = self.plan()?;
        let built;
        let executor: &dyn Executor = match self.options.executor {
            Some(executor) => executor,
            None => {
                built = self.options.backend.build_with_memory(self.options.memory);
                built.as_ref()
            }
        };
        match self.options.trace {
            Some(trace) => executor.run_traced(&plan, self.inputs, trace),
            None => executor.run(&plan, self.inputs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::PlanCache;
    use crate::{CountersSink, FastBackend};
    use sam_core::graphs;
    use sam_tensor::{synth, TensorFormat};

    fn vec_inputs() -> (sam_core::graph::SamGraph, Inputs) {
        let graph = graphs::vec_elem_mul(true);
        let b = synth::random_vector(80, 20, 3);
        let c = synth::random_vector(80, 24, 4);
        let inputs =
            Inputs::new().coo("b", &b, TensorFormat::sparse_vec()).coo("c", &c, TensorFormat::sparse_vec());
        (graph, inputs)
    }

    #[test]
    fn every_spec_runs_through_the_door() {
        let (graph, inputs) = vec_inputs();
        let reference = ExecRequest::new(&graph, &inputs).run().unwrap();
        for spec in BackendSpec::all() {
            let run = ExecRequest::new(&graph, &inputs).backend(spec).run().unwrap();
            assert_eq!(run.backend, spec.label());
            assert_eq!(run.output, reference.output, "{spec} output diverged");
        }
    }

    #[test]
    fn planned_requests_skip_planning_and_match() {
        let (graph, inputs) = vec_inputs();
        let cache = Arc::new(PlanCache::new(8));
        let planner = Planner::with_cache(Arc::clone(&cache));
        let fresh = ExecRequest::new(&graph, &inputs).uncached().run().unwrap();
        let plan = ExecRequest::new(&graph, &inputs).planner(planner.clone()).plan().unwrap();
        let cached = ExecRequest::new(&graph, &inputs).planned(plan).run().unwrap();
        assert_eq!(fresh.output, cached.output);
        assert_eq!(fresh.vals, cached.vals);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn traced_requests_surface_a_profile() {
        let (graph, inputs) = vec_inputs();
        let sink = CountersSink::new();
        let run = ExecRequest::new(&graph, &inputs).traced(&sink).run().unwrap();
        let profile = run.profile.expect("traced run must carry a profile");
        assert_eq!(profile.total_tokens(), run.tokens);
    }

    #[test]
    fn explicit_executors_override_the_spec() {
        let (graph, inputs) = vec_inputs();
        let pipelined = FastBackend::pipelined(2);
        let run = ExecRequest::new(&graph, &inputs)
            .backend(BackendSpec::Cycle) // ignored: explicit executor wins
            .executor(&pipelined)
            .run()
            .unwrap();
        assert_eq!(run.backend, "fast-threads");
        assert!(run.cycles.is_none());
    }
}
