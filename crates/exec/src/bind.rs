//! Binding input tensors to a graph's tensor names.

use sam_tensor::{CooTensor, Tensor, TensorFormat};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The named tensors a graph executes over.
///
/// The planner binds every `Root`, `LevelScanner`, `Locator` and `Array`
/// node to a tensor by the name the node carries; binding is by name, so the
/// same graph runs over any operands.
///
/// ```
/// use sam_exec::Inputs;
/// use sam_tensor::{CooTensor, TensorFormat};
///
/// let b = CooTensor::from_entries(vec![4], vec![(vec![1], 2.0)]).unwrap();
/// let inputs = Inputs::new().coo("b", &b, TensorFormat::sparse_vec());
/// assert!(inputs.get("b").is_some());
/// assert!(inputs.get("missing").is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Inputs {
    // Shared storage so cheap rebinds (the tiled backend binds the same
    // immutable tile into many per-tuple input sets) are refcount bumps,
    // not deep copies.
    tensors: BTreeMap<String, Arc<Tensor>>,
}

impl Inputs {
    /// An empty binding set.
    pub fn new() -> Self {
        Inputs::default()
    }

    /// Binds a fibertree tensor under its own name.
    pub fn tensor(self, tensor: Tensor) -> Self {
        self.shared(Arc::new(tensor))
    }

    /// Binds an already-shared fibertree tensor under its own name,
    /// without copying its storage.
    pub fn shared(mut self, tensor: Arc<Tensor>) -> Self {
        self.tensors.insert(tensor.name().to_string(), tensor);
        self
    }

    /// Builds a fibertree from COO data and binds it under `name`.
    pub fn coo(self, name: &str, coo: &CooTensor, format: TensorFormat) -> Self {
        self.tensor(Tensor::from_coo(name, coo, format))
    }

    /// Binds a zero-index scalar operand (a `ConstVal` source's tensor) as
    /// the single-value tensor the planner's scalar validation expects: a
    /// 1-element dense vector holding `value`.
    pub fn scalar(self, name: &str, value: f64) -> Self {
        let coo = CooTensor::from_entries(vec![1], vec![(vec![0], value)]).expect("1-element scalar");
        self.coo(name, &coo, TensorFormat::dense_vec())
    }

    /// The tensor bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.tensors.get(name).map(|t| t.as_ref())
    }

    /// Iterates the bound `(name, tensor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.tensors.iter().map(|(n, t)| (n.as_str(), t.as_ref()))
    }

    /// Iterates the bound tensors as shared handles (for rebinding into
    /// derived input sets without copying storage).
    pub fn iter_shared(&self) -> impl Iterator<Item = &Arc<Tensor>> {
        self.tensors.values()
    }

    /// Number of bound tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binds_by_tensor_name() {
        let coo = CooTensor::from_entries(vec![3], vec![(vec![0], 1.0)]).unwrap();
        let t = Tensor::from_coo("c", &coo, TensorFormat::dense_vec());
        let inputs = Inputs::new().tensor(t);
        assert_eq!(inputs.len(), 1);
        assert!(!inputs.is_empty());
        assert_eq!(inputs.get("c").unwrap().name(), "c");
        assert_eq!(inputs.iter().count(), 1);
    }
}
