//! The planner: turns an arbitrary [`SamGraph`] plus bound tensors into an
//! executable [`Plan`].
//!
//! Planning performs, in order:
//!
//! 1. **Support check** — every node must be an executable primitive.
//! 2. **Port resolution** — each edge is attributed to one output port of
//!    its producer and one input port of its consumer. Explicitly wired
//!    edges (built via `sam_core::build::GraphBuilder`) are validated;
//!    unported edges are inferred from stream kinds where unambiguous.
//! 3. **Topological ordering** — Kahn's algorithm; cycles are reported with
//!    the labels of the stuck nodes.
//! 4. **Fan-out planning** — output ports feeding several consumers are
//!    recorded so backends can insert stream forks (the `Fork` block that
//!    hand-wired kernels place manually).
//! 5. **Tensor binding** — reference streams are traced from the roots so
//!    every scanner/locator knows which storage level of which bound tensor
//!    it reads, output dimensions are inferred per index variable, and the
//!    output writers are collected.

use crate::bind::Inputs;
use crate::error::PlanError;
use sam_core::graph::{Edge, NodeId, NodeKind, PortKind, SamGraph, StreamKind};
use sam_primitives::AluOp;
use std::collections::HashMap;

/// A producer endpoint: output port `port` of node `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortRef {
    /// The producing node.
    pub node: NodeId,
    /// The output-port index.
    pub port: usize,
}

/// One validated coordinate-skip feedback lane (paper Section 4.2): the
/// intersecter sends the coordinate it is waiting for on `operand` back to
/// `scanner`, which gallops past everything smaller.
///
/// Validation guarantees the scanner feeds exactly that operand's crd/ref
/// inputs and nothing else, so the fast backend may fuse the pair into one
/// galloping work unit while the cycle backend lowers the lane onto the
/// `sam-primitives` skip channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipSpec {
    /// The intersecter emitting skip targets.
    pub intersecter: NodeId,
    /// Which operand (0 or 1) of the intersecter the lane serves.
    pub operand: usize,
    /// The level scanner that receives the skip targets.
    pub scanner: NodeId,
}

/// One planned point-to-point stream channel.
///
/// The planner emits exactly one channel per (producer port, consumer
/// port) pair; an output port with several consumers appears in several
/// channels — that is the planner's fork, which the cycle backend
/// materializes as a `Fork` block and the parallel fast backend as one
/// sender per consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelSpec {
    /// The producing endpoint.
    pub from: PortRef,
    /// The consuming node.
    pub to: NodeId,
    /// The consuming node's input-port index.
    pub to_port: usize,
}

/// The fiber-split legality class of a node, computed by
/// [`Plan::fiber_split`]: which rule the work-stealing backend may use to
/// cut the node's input streams into independently evaluable segments.
/// Every rule cuts at fiber boundaries (or finer, where the transfer
/// function is genuinely elementwise) such that concatenating the segment
/// outputs reproduces the serial output bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FiberSplit {
    /// Never split: state spans fiber boundaries, or streams are skip-fused.
    No,
    /// Single-input elementwise (array loads, constant sources): cut at any
    /// position.
    Elementwise,
    /// Multi-input lockstep elementwise (ALUs, locators): cut every input
    /// at one common position.
    Lockstep,
    /// Level scanner: cut anywhere except between a data/empty token and
    /// the stop token it would merge with.
    Scanner,
    /// Repeater: cut the repeat-signal input after a stop; the matching
    /// ref-input cut follows from simulating the repeater's consumption.
    Repeater,
    /// Order-0 reducer: the accumulator resets at every stop; cut right
    /// after any stop.
    AfterStop,
    /// Order-1 reducer: cut both inputs right after a stop pair that
    /// flushes the accumulator.
    AfterStopPair,
    /// Intersect/union: stops pair up 1:1 by ordinal across operands; cut
    /// each operand right after its k-th stop.
    StopOrdinal,
}

/// Default cycle budget used by the cycle-approximate backend.
pub const DEFAULT_MAX_CYCLES: u64 = 200_000_000;

/// Smallest per-channel chunk depth [`Plan::channel_depth`] hands out.
pub const MIN_CHANNEL_DEPTH: usize = 2;

/// Largest per-channel chunk depth [`Plan::channel_depth`] hands out. The
/// cap bounds *allocated* capacity, not resident memory: chunked queues
/// grow lazily, so a deep channel over a short stream stays small. It must
/// be large enough that the planner's (upper-bound) stream estimates fit,
/// or producers running ahead of unclaimed consumers spill.
pub const MAX_CHANNEL_DEPTH: usize = 8192;

/// An executable plan for one graph over one set of input bindings.
///
/// The plan owns a clone of the graph, so it stays valid independently of
/// the caller's copy; it borrows nothing. Both backends consume the same
/// plan, which is what guarantees they run the same dataflow.
#[derive(Debug, Clone)]
pub struct Plan {
    graph: SamGraph,
    order: Vec<NodeId>,
    /// Per node: the producer endpoint feeding each input port. Optional
    /// skip ports may stay `None`; every other port is guaranteed bound.
    node_inputs: Vec<Vec<Option<PortRef>>>,
    /// Per node and output port: `(consumer node, consumer input port)`.
    consumers: Vec<Vec<Vec<(NodeId, usize)>>>,
    /// The flattened channel topology (one entry per consumer port).
    channels: Vec<ChannelSpec>,
    /// Validated coordinate-skip feedback lanes.
    skip_specs: Vec<SkipSpec>,
    /// Per node: storage level read by scanners and locators.
    scan_levels: Vec<usize>,
    /// Per node: output dimension of level writers.
    writer_dims: Vec<usize>,
    /// Per node: parsed ALU operation.
    alu_ops: Vec<Option<AluOp>>,
    /// Per node: resolved constant of a `ConstVal` source (the literal, or
    /// the bound single-value tensor's value).
    const_vals: Vec<Option<f64>>,
    /// Per node and output port: estimated stream length in tokens (an
    /// upper-bound-flavored heuristic from the bound tensors' level sizes).
    stream_sizes: Vec<Vec<u64>>,
    level_writers: Vec<NodeId>,
    vals_writer: NodeId,
    output_name: String,
    output_shape: Vec<usize>,
}

impl Plan {
    /// Plans `graph` for execution over `inputs`.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] describing the first structural or binding
    /// problem found; see the module docs for the validation phases.
    pub fn build(graph: &SamGraph, inputs: &Inputs) -> Result<Plan, PlanError> {
        let n = graph.len();
        let nodes = graph.nodes();

        // Phase 1: support check.
        for (node, kind) in nodes.iter().enumerate() {
            let unsupported = match kind {
                NodeKind::Parallelizer => Some("Parallelizer"),
                NodeKind::Serializer => Some("Serializer"),
                NodeKind::BitvectorConverter => Some("BitvectorConverter"),
                _ => None,
            };
            if let Some(name) = unsupported {
                return Err(PlanError::UnsupportedNode {
                    node,
                    label: graph.node_label(NodeId(node)),
                    kind: name.to_string(),
                });
            }
        }

        // Skip edges are feedback wiring, not dataflow: they are excluded
        // from port binding, topological ordering (the whitelisted cycle)
        // and fan-out planning, then validated separately in phase 4b.
        let data_edges: Vec<&Edge> = graph.edges().iter().filter(|e| e.kind != StreamKind::Skip).collect();
        let skip_edges: Vec<&Edge> = graph.edges().iter().filter(|e| e.kind == StreamKind::Skip).collect();

        // Phase 2a: attribute each data edge to a producer output port.
        let mut src_ports: Vec<usize> = Vec::with_capacity(data_edges.len());
        {
            // Track, per producer, which inferred ports were already handed out.
            let mut next_inferred: HashMap<(usize, usize), usize> = HashMap::new();
            for e in &data_edges {
                let outs = nodes[e.from.0].output_ports();
                let port = match e.src_port {
                    Some(p) => {
                        if p >= outs.len() || !outs[p].accepts(e.kind) {
                            return Err(PlanError::BadPort { edge: e.label.clone() });
                        }
                        p
                    }
                    None => {
                        let candidates: Vec<usize> =
                            (0..outs.len()).filter(|&p| outs[p].accepts(e.kind)).collect();
                        match candidates.len() {
                            0 => return Err(PlanError::BadPort { edge: e.label.clone() }),
                            1 => candidates[0],
                            _ => {
                                // Several ports carry this kind: deal them out in
                                // edge order (matching sibling-edge conventions),
                                // wrapping back to the first for pure fan-out.
                                let unported = graph
                                    .edges()
                                    .iter()
                                    .filter(|o| o.from == e.from && o.kind == e.kind && o.src_port.is_none())
                                    .count();
                                if unported > candidates.len() {
                                    return Err(PlanError::AmbiguousPort { label: graph.node_label(e.from) });
                                }
                                let key = (e.from.0, candidates[0]);
                                let idx = next_inferred.entry(key).or_insert(0);
                                let port = candidates[*idx % candidates.len()];
                                *idx += 1;
                                port
                            }
                        }
                    }
                };
                src_ports.push(port);
            }
        }

        // Phase 2b: bind each data edge to a consumer input port.
        let mut node_inputs: Vec<Vec<Option<PortRef>>> =
            nodes.iter().map(|k| vec![None; k.input_ports().len()]).collect();
        let mut dst_slots: Vec<usize> = Vec::with_capacity(data_edges.len());
        for (idx, e) in data_edges.iter().enumerate() {
            let ins = nodes[e.to.0].input_ports();
            let label = graph.node_label(e.to);
            let slot = match e.dst_port {
                Some(p) => {
                    if p >= ins.len() || !ins[p].accepts(e.kind) {
                        return Err(PlanError::BadPort { edge: e.label.clone() });
                    }
                    if node_inputs[e.to.0][p].is_some() {
                        return Err(PlanError::DuplicateInput { label, port: p });
                    }
                    p
                }
                None => (0..ins.len())
                    .find(|&p| ins[p].accepts(e.kind) && node_inputs[e.to.0][p].is_none())
                    .ok_or(PlanError::ExtraInput { label, edge: e.label.clone() })?,
            };
            node_inputs[e.to.0][slot] = Some(PortRef { node: e.from, port: src_ports[idx] });
            dst_slots.push(slot);
        }
        // Unbound inputs are an error everywhere except the optional skip
        // ports, which stay `None` when no skip edge targets them.
        for (i, slots) in node_inputs.iter().enumerate() {
            let ins = nodes[i].input_ports();
            for (p, s) in slots.iter().enumerate() {
                if s.is_none() && ins[p] != PortKind::Skip {
                    return Err(PlanError::UnboundInput { label: graph.node_label(NodeId(i)), port: p });
                }
            }
        }

        // Phase 3: topological order (Kahn) over the data edges; the skip
        // feedback edges are the one legal kind of cycle.
        let mut indegree = vec![0usize; n];
        for e in &data_edges {
            indegree[e.to.0] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(NodeId(u));
            for e in data_edges.iter().filter(|e| e.from.0 == u) {
                indegree[e.to.0] -= 1;
                if indegree[e.to.0] == 0 {
                    queue.push(e.to.0);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n).filter(|&i| indegree[i] > 0).map(|i| graph.node_label(NodeId(i))).collect();
            return Err(PlanError::Cycle { stuck });
        }

        // Phase 4: fan-out per output port, and the channel topology the
        // backends materialize (forks become one channel per consumer).
        let mut consumers: Vec<Vec<Vec<(NodeId, usize)>>> =
            nodes.iter().map(|k| vec![Vec::new(); k.output_ports().len()]).collect();
        for (idx, e) in data_edges.iter().enumerate() {
            consumers[e.from.0][src_ports[idx]].push((e.to, dst_slots[idx]));
        }

        // Phase 4b: validate the coordinate-skip feedback lanes. A lane must
        // run from an intersecter back to the level scanner that feeds one
        // of its coordinate operands, and that scanner's outputs must feed
        // only the intersecter — which is what lets the fast backend fuse
        // the pair into one galloping work unit (and keeps the cycle
        // backend's skip channels free of fork ambiguity).
        let mut skip_specs: Vec<SkipSpec> = Vec::new();
        for e in &skip_edges {
            let bad =
                |reason: &str| PlanError::BadSkipEdge { edge: e.label.clone(), reason: reason.to_string() };
            if !matches!(nodes[e.from.0], NodeKind::Intersecter { .. }) {
                return Err(bad("source must be an intersecter"));
            }
            if !matches!(nodes[e.to.0], NodeKind::LevelScanner { .. }) {
                return Err(bad("target must be a level scanner"));
            }
            if e.dst_port.is_some_and(|p| p != 1) {
                return Err(bad("target port must be the scanner's skip input (port 1)"));
            }
            let scanner = e.to;
            let feeds = |slot: usize| node_inputs[e.from.0][slot].map(|p| (p.node, p.port));
            let operand = match e.src_port {
                Some(3) => 0,
                Some(4) => 1,
                Some(_) => return Err(bad("source port must be a skip lane (port 3 or 4)")),
                None => match (feeds(0), feeds(1)) {
                    (Some((s, 0)), _) if s == scanner => 0,
                    (_, Some((s, 0))) if s == scanner => 1,
                    _ => return Err(bad("target scanner feeds neither coordinate operand")),
                },
            };
            if feeds(operand) != Some((scanner, 0)) {
                return Err(bad("lane must target the scanner feeding that operand's coordinates"));
            }
            if feeds(2 + operand) != Some((scanner, 1)) {
                return Err(bad("the operand's reference stream must come from the same scanner"));
            }
            if consumers[scanner.0][0].len() != 1 || consumers[scanner.0][1].len() != 1 {
                return Err(bad("a skip-target scanner's outputs must feed only the intersecter"));
            }
            if skip_specs
                .iter()
                .any(|s| (s.intersecter == e.from && s.operand == operand) || s.scanner == scanner)
            {
                return Err(bad("duplicate skip lane"));
            }
            consumers[e.from.0][3 + operand].push((scanner, 1));
            skip_specs.push(SkipSpec { intersecter: e.from, operand, scanner });
        }

        let channels: Vec<ChannelSpec> = consumers
            .iter()
            .enumerate()
            .flat_map(|(node, ports)| {
                ports.iter().enumerate().flat_map(move |(port, conns)| {
                    conns.iter().map(move |&(to, to_port)| ChannelSpec {
                        from: PortRef { node: NodeId(node), port },
                        to,
                        to_port,
                    })
                })
            })
            .collect();

        // Phase 5: tensor binding along reference streams.
        let mut scan_levels = vec![0usize; n];
        let mut writer_dims = vec![0usize; n];
        let mut alu_ops: Vec<Option<AluOp>> = vec![None; n];
        let mut const_vals: Vec<Option<f64>> = vec![None; n];
        let mut ref_ann: HashMap<(usize, usize), (String, usize)> = HashMap::new();
        let mut dims: HashMap<char, usize> = HashMap::new();
        let mut level_writers = Vec::new();
        let mut vals_writer: Option<NodeId> = None;
        let mut output_name = String::new();

        // The rank validation at value arrays delegates to the static
        // verifier's stream-type inference — one implementation of the
        // tensor/depth trace instead of two drifting apart. The planner's
        // own `ref_ann` stays authoritative for scanner depths (it also
        // feeds the stream-size estimates below).
        let verify_bindings: sam_verify::Bindings<'_> = inputs.iter().collect();
        let verifier = sam_verify::Analysis::run(graph, Some(&verify_bindings));

        let lookup_ref = |ref_ann: &HashMap<(usize, usize), (String, usize)>,
                          p: &PortRef,
                          label: String,
                          expected: &str|
         -> Result<(String, usize), PlanError> {
            match ref_ann.get(&(p.node.0, p.port)) {
                Some(ann) => Ok(ann.clone()),
                None => Err(PlanError::TensorMismatch {
                    label,
                    expected: expected.to_string(),
                    found: "<untracked>".to_string(),
                }),
            }
        };

        for &id in &order {
            let kind = &nodes[id.0];
            match kind {
                NodeKind::Root { tensor } => {
                    if inputs.get(tensor).is_none() {
                        return Err(PlanError::UnknownTensor { name: tensor.clone() });
                    }
                    ref_ann.insert((id.0, 0), (tensor.clone(), 0));
                }
                NodeKind::LevelScanner { tensor, index, compressed } => {
                    let src = &node_inputs[id.0][0].expect("bound data port");
                    let (t, depth) = lookup_ref(&ref_ann, src, graph.node_label(id), tensor)?;
                    if &t != tensor {
                        return Err(PlanError::TensorMismatch {
                            label: graph.node_label(id),
                            expected: tensor.clone(),
                            found: t,
                        });
                    }
                    let bound =
                        inputs.get(tensor).ok_or(PlanError::UnknownTensor { name: tensor.clone() })?;
                    if depth >= bound.levels().len() {
                        return Err(PlanError::LevelOutOfRange { tensor: tensor.clone(), level: depth });
                    }
                    let level = bound.level(depth);
                    if level.is_dense() == *compressed {
                        return Err(PlanError::FormatMismatch { tensor: tensor.clone(), level: depth });
                    }
                    scan_levels[id.0] = depth;
                    dims.entry(*index).or_insert_with(|| level.dimension());
                    ref_ann.insert((id.0, 1), (tensor.clone(), depth + 1));
                }
                NodeKind::Locator { tensor, index } => {
                    let src = &node_inputs[id.0][1].expect("bound data port");
                    let (t, depth) = lookup_ref(&ref_ann, src, graph.node_label(id), tensor)?;
                    if &t != tensor {
                        return Err(PlanError::TensorMismatch {
                            label: graph.node_label(id),
                            expected: tensor.clone(),
                            found: t,
                        });
                    }
                    let bound =
                        inputs.get(tensor).ok_or(PlanError::UnknownTensor { name: tensor.clone() })?;
                    if depth >= bound.levels().len() {
                        return Err(PlanError::LevelOutOfRange { tensor: tensor.clone(), level: depth });
                    }
                    scan_levels[id.0] = depth;
                    dims.entry(*index).or_insert_with(|| bound.level(depth).dimension());
                    ref_ann.insert((id.0, 1), (tensor.clone(), depth));
                    ref_ann.insert((id.0, 2), (tensor.clone(), depth + 1));
                }
                NodeKind::Repeater { .. } => {
                    let src = &node_inputs[id.0][1].expect("bound data port");
                    if let Some(ann) = ref_ann.get(&(src.node.0, src.port)).cloned() {
                        ref_ann.insert((id.0, 0), ann);
                    }
                }
                NodeKind::Intersecter { .. } | NodeKind::Unioner { .. } => {
                    for (slot, port) in [(2usize, 1usize), (3, 2)] {
                        let src = &node_inputs[id.0][slot].expect("bound data port");
                        if let Some(ann) = ref_ann.get(&(src.node.0, src.port)).cloned() {
                            ref_ann.insert((id.0, port), ann);
                        }
                    }
                }
                NodeKind::Array { tensor } => {
                    let Some(bound) = inputs.get(tensor) else {
                        return Err(PlanError::UnknownTensor { name: tensor.clone() });
                    };
                    // Rank validation: a value array reads references into
                    // the values, which only exist below the *last* storage
                    // level. A traced reference stream of another tensor is
                    // a wiring bug; one that stops short of the last level
                    // means the graph never consumed the tensor's deeper
                    // levels (e.g. a matrix bound to a vector kernel) and
                    // would silently read wrong positions. Untracked
                    // streams (e.g. routed through a coordinate dropper)
                    // stay permissive and fail at execution if wrong. The
                    // trace itself is the verifier's.
                    let src = &node_inputs[id.0][0].expect("bound data port");
                    debug_assert_eq!(
                        verifier.ref_annotation(src.node.0, src.port),
                        ref_ann.get(&(src.node.0, src.port)).map(|(t, d)| (t.as_str(), *d)),
                        "verifier and planner disagree on the reference trace into `{}`",
                        graph.node_label(id)
                    );
                    if let Some((t, depth)) = verifier.ref_annotation(src.node.0, src.port) {
                        if t != tensor {
                            return Err(PlanError::TensorMismatch {
                                label: graph.node_label(id),
                                expected: tensor.clone(),
                                found: t.to_string(),
                            });
                        }
                        if depth != bound.levels().len() {
                            return Err(PlanError::RankMismatch {
                                tensor: tensor.clone(),
                                consumed: depth,
                                levels: bound.levels().len(),
                            });
                        }
                    }
                }
                NodeKind::Alu { op } => {
                    alu_ops[id.0] = Some(match op.as_str() {
                        "add" => AluOp::Add,
                        "sub" => AluOp::Sub,
                        "mul" => AluOp::Mul,
                        other => return Err(PlanError::UnknownAluOp { op: other.to_string() }),
                    });
                }
                NodeKind::ConstVal { tensor, bits } => {
                    const_vals[id.0] = Some(if tensor.is_empty() {
                        f64::from_bits(*bits)
                    } else {
                        // A zero-index access: the bound tensor must be a
                        // genuine scalar — one stored value AND every
                        // dimension 1 (see `Inputs::scalar`). A higher-rank
                        // tensor that happens to hold a single nonzero is a
                        // misbinding, not a scalar.
                        let bound =
                            inputs.get(tensor).ok_or(PlanError::UnknownTensor { name: tensor.clone() })?;
                        if bound.vals().len() != 1 || bound.levels().iter().any(|l| l.dimension() > 1) {
                            return Err(PlanError::NotScalar {
                                tensor: tensor.clone(),
                                vals: bound.vals().len(),
                                dims: bound.levels().iter().map(|l| l.dimension()).collect(),
                            });
                        }
                        bound.vals()[0]
                    });
                }
                NodeKind::LevelWriter { tensor, index, vals } => {
                    output_name = tensor.clone();
                    if *vals {
                        if vals_writer.is_some() {
                            return Err(PlanError::MultipleValsWriters);
                        }
                        vals_writer = Some(id);
                    } else {
                        let dim = *dims.get(index).ok_or(PlanError::UnknownDimension { index: *index })?;
                        writer_dims[id.0] = dim;
                        level_writers.push(id);
                    }
                }
                NodeKind::Reducer { .. } | NodeKind::CoordDropper { .. } => {}
                NodeKind::Parallelizer | NodeKind::Serializer | NodeKind::BitvectorConverter => {
                    unreachable!("rejected in phase 1")
                }
            }
        }
        let vals_writer = vals_writer.ok_or(PlanError::MissingValsWriter)?;
        // Writers are visited in dependency order above; the output levels
        // must follow graph declaration order (outermost first).
        level_writers.sort_unstable();
        let output_shape = level_writers.iter().map(|w| writer_dims[w.0]).collect();

        // Phase 6: stream-size estimates, walked in topological order. The
        // estimates are upper bounds at every node kind (scanners multiply
        // by the *longest* fiber of the level they read; merges take the
        // min/sum of their operands), so a channel sized from them never
        // spills while its consumer is attached. They exist to size bounded
        // channels, not to be exact.
        const EST_CAP: u64 = 1 << 40;
        let mut stream_sizes: Vec<Vec<u64>> =
            nodes.iter().map(|k| vec![0u64; k.output_ports().len()]).collect();
        for &id in &order {
            let ins: Vec<u64> = node_inputs[id.0]
                .iter()
                .map(|s| s.map(|src| stream_sizes[src.node.0][src.port]).unwrap_or(0))
                .collect();
            let outs: Vec<u64> = match &nodes[id.0] {
                NodeKind::Root { .. } => vec![2],
                NodeKind::LevelScanner { tensor, .. } => {
                    let level = inputs.get(tensor).expect("validated binding").level(scan_levels[id.0]);
                    // Worst case, every input ref lands on the longest
                    // fiber; the mean underestimates badly on skewed levels
                    // (the SpMM/MTTKRP spill regressions).
                    let longest = if level.is_dense() {
                        level.dimension() as u64
                    } else {
                        (0..level.num_fibers()).map(|f| level.fiber_len(f) as u64).max().unwrap_or(0)
                    };
                    let est = ins[0].saturating_mul(longest + 1).min(EST_CAP);
                    vec![est; 2]
                }
                NodeKind::Repeater { .. } => vec![ins[0]],
                NodeKind::Intersecter { .. } => {
                    let m = ins[0].min(ins[1]);
                    vec![m, m, m, 1, 1]
                }
                NodeKind::Unioner { .. } => {
                    let s = ins[0].saturating_add(ins[1]).min(EST_CAP);
                    vec![s; 3]
                }
                NodeKind::Locator { .. } => vec![ins[0]; 3],
                NodeKind::Array { .. } | NodeKind::ConstVal { .. } => vec![ins[0]],
                NodeKind::Alu { .. } => vec![ins[0].max(ins[1])],
                NodeKind::Reducer { order } => match order {
                    0 => vec![ins[0]],
                    1 => vec![ins[0]; 2],
                    _ => vec![ins[1].max(ins[0]); 3],
                },
                NodeKind::CoordDropper { .. } => vec![ins[0], ins[1]],
                NodeKind::LevelWriter { .. } => Vec::new(),
                NodeKind::Parallelizer | NodeKind::Serializer | NodeKind::BitvectorConverter => {
                    unreachable!("rejected in phase 1")
                }
            };
            stream_sizes[id.0] = outs;
        }

        Ok(Plan {
            graph: graph.clone(),
            order,
            node_inputs,
            consumers,
            channels,
            skip_specs,
            scan_levels,
            writer_dims,
            alu_ops,
            const_vals,
            stream_sizes,
            level_writers,
            vals_writer,
            output_name,
            output_shape,
        })
    }

    /// The planned graph.
    pub fn graph(&self) -> &SamGraph {
        &self.graph
    }

    /// The display label of a planned node: the builder/compiler override
    /// when one was attached (e.g. `intersect(j: B,C)`), otherwise the node
    /// kind's generic label. Error messages and execution traces use this.
    pub fn node_label(&self, node: NodeId) -> String {
        self.graph.node_label(node)
    }

    /// Nodes in topological order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The producer endpoints feeding each input port of `node`. Every
    /// entry is `Some` except optional skip ports left unwired.
    pub fn inputs_of(&self, node: NodeId) -> &[Option<PortRef>] {
        &self.node_inputs[node.0]
    }

    /// The consumers of each output port of `node`.
    pub fn consumers_of(&self, node: NodeId) -> &[Vec<(NodeId, usize)>] {
        &self.consumers[node.0]
    }

    /// Total number of planned stream forks (ports with fan-out above one).
    pub fn fork_count(&self) -> usize {
        self.consumers.iter().flatten().filter(|c| c.len() > 1).count()
    }

    /// The planned channel topology: one [`ChannelSpec`] per (producer
    /// port, consumer port) pair, forks already expanded. Skip feedback
    /// lanes appear here too (from the intersecter's skip output port back
    /// to the scanner's skip input port).
    pub fn channels(&self) -> &[ChannelSpec] {
        &self.channels
    }

    /// The validated coordinate-skip feedback lanes (paper Section 4.2).
    pub fn skip_specs(&self) -> &[SkipSpec] {
        &self.skip_specs
    }

    /// Estimated stream length (in tokens) of the given producer port — a
    /// planning-time heuristic derived from the bound tensors' level sizes,
    /// used to size bounded channels.
    pub fn stream_size_estimate(&self, p: PortRef) -> u64 {
        self.stream_sizes[p.node.0].get(p.port).copied().unwrap_or(0)
    }

    /// The chunk depth a bounded channel for `spec` should get so the whole
    /// estimated stream fits in flight: `ceil(estimate / chunk_len) + 2`
    /// chunks of slack, clamped to
    /// [`MIN_CHANNEL_DEPTH`]..=[`MAX_CHANNEL_DEPTH`]. Short streams get
    /// shallow cheap channels; long streams get enough depth that a
    /// producer running ahead of an unclaimed consumer does not spill.
    pub fn channel_depth(&self, spec: &ChannelSpec, chunk_len: usize) -> usize {
        let est = self.stream_size_estimate(spec.from);
        let chunks = est.div_ceil(chunk_len.max(1) as u64) as usize;
        (chunks + 2).clamp(MIN_CHANNEL_DEPTH, MAX_CHANNEL_DEPTH)
    }

    /// How (and whether) a node's evaluation may be split into independent
    /// segments at fiber boundaries for the work-stealing backend. The
    /// variant names the per-kind cut legality rule implemented in the
    /// `split` module; [`FiberSplit::No`] covers operators whose state
    /// spans fiber boundaries (order-2 reducers flush only at `Done`,
    /// coordinate droppers buffer across their merge) and every node
    /// involved in skip fusion, whose streams are never materialized.
    pub(crate) fn fiber_split(&self, node: NodeId) -> FiberSplit {
        if self.is_skip_target(node) || self.skip_scanners(node).iter().any(Option::is_some) {
            return FiberSplit::No;
        }
        match &self.graph.nodes()[node.0] {
            NodeKind::LevelScanner { .. } => FiberSplit::Scanner,
            NodeKind::Repeater { .. } => FiberSplit::Repeater,
            NodeKind::Intersecter { .. } | NodeKind::Unioner { .. } => FiberSplit::StopOrdinal,
            NodeKind::Alu { .. } | NodeKind::Locator { .. } => FiberSplit::Lockstep,
            NodeKind::Array { .. } | NodeKind::ConstVal { .. } => FiberSplit::Elementwise,
            NodeKind::Reducer { order } => match order {
                0 => FiberSplit::AfterStop,
                1 => FiberSplit::AfterStopPair,
                _ => FiberSplit::No,
            },
            _ => FiberSplit::No,
        }
    }

    /// For an intersecter: the skip-target scanner of each operand, when a
    /// skip lane is wired. `[None, None]` for any other node.
    pub fn skip_scanners(&self, node: NodeId) -> [Option<NodeId>; 2] {
        let mut lanes = [None, None];
        for s in &self.skip_specs {
            if s.intersecter == node {
                lanes[s.operand] = Some(s.scanner);
            }
        }
        lanes
    }

    /// Whether `node` is a skip-target scanner — one the fast backend fuses
    /// into its downstream intersecter instead of evaluating standalone.
    pub fn is_skip_target(&self, node: NodeId) -> bool {
        self.skip_specs.iter().any(|s| s.scanner == node)
    }

    /// The storage level a scanner or locator reads.
    pub fn scan_level(&self, node: NodeId) -> usize {
        self.scan_levels[node.0]
    }

    /// The output dimension of a level writer.
    pub fn writer_dim(&self, node: NodeId) -> usize {
        self.writer_dims[node.0]
    }

    /// The parsed operation of an ALU node.
    pub fn alu_op(&self, node: NodeId) -> AluOp {
        self.alu_ops[node.0].expect("validated ALU")
    }

    /// The resolved scalar of a `ConstVal` source node.
    pub fn const_val(&self, node: NodeId) -> f64 {
        self.const_vals[node.0].expect("validated constant")
    }

    /// The level writers in output-level order (outermost first).
    pub fn level_writers(&self) -> &[NodeId] {
        &self.level_writers
    }

    /// The values writer.
    pub fn vals_writer(&self) -> NodeId {
        self.vals_writer
    }

    /// Name of the output tensor.
    pub fn output_name(&self) -> &str {
        &self.output_name
    }

    /// Shape of the output tensor (one dimension per level writer).
    pub fn output_shape(&self) -> &[usize] {
        &self.output_shape
    }
}
