//! The cycle-approximate backend: instantiates the planned graph as
//! `sam-primitives` blocks inside the `sam-sim` [`Simulator`].

use crate::bind::Inputs;
use crate::error::ExecError;
use crate::plan::{Plan, DEFAULT_MAX_CYCLES};
use crate::{assemble_output, reducer_policy, Execution, Executor};
use sam_core::graph::NodeKind;
use sam_core::wiring::Fork;
use sam_primitives::writer::{level_sink, val_sink, LevelWriterSink, ValWriterSink};
use sam_primitives::{
    root_stream, Alu, ConstVal, CoordDropper, Intersecter, LevelScanner, LevelWriter, Locator, Reducer,
    Repeater, Unioner, ValArray, ValWriter,
};
use sam_sim::{ChannelId, Simulator};
use sam_trace::{NullSink, TokenCounts, TraceSink};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Runs plans on the cycle-approximate simulator, reporting cycle counts.
#[derive(Debug, Clone, Copy)]
pub struct CycleBackend {
    max_cycles: u64,
}

impl Default for CycleBackend {
    fn default() -> Self {
        CycleBackend { max_cycles: DEFAULT_MAX_CYCLES }
    }
}

impl CycleBackend {
    /// A backend with an explicit cycle budget.
    pub fn with_max_cycles(max_cycles: u64) -> Self {
        CycleBackend { max_cycles }
    }
}

impl Executor for CycleBackend {
    fn name(&self) -> &'static str {
        "cycle"
    }

    fn run(&self, plan: &Plan, inputs: &Inputs) -> Result<Execution, ExecError> {
        self.run_traced(plan, inputs, &NullSink)
    }

    fn run_traced(
        &self,
        plan: &Plan,
        inputs: &Inputs,
        trace: &dyn TraceSink,
    ) -> Result<Execution, ExecError> {
        let start = Instant::now();
        let tracing = trace.enabled();
        let nodes = plan.graph().nodes();
        let mut sim = Simulator::new();
        // Base channel per (node, output port), plus the channel each
        // consumer input port reads (identical to the base channel unless a
        // fork was planned for the port).
        let mut input_ch: HashMap<(usize, usize), ChannelId> = HashMap::new();
        let mut out_ch: Vec<Vec<ChannelId>> = vec![Vec::new(); nodes.len()];
        let mut level_sinks: HashMap<usize, LevelWriterSink> = HashMap::new();
        let mut vals_sink: Option<ValWriterSink> = None;
        // (channel, producing node, is-skip-lane) for every simulator channel
        // incl. fork lanes, so per-node token sums equal the report total.
        let mut chan_owner: Vec<(ChannelId, usize, bool)> = Vec::new();

        if tracing {
            for &id in plan.order() {
                trace.define_node(id.0, &plan.node_label(id));
            }
        }

        // Pass 1: allocate every node's output channels and forks up front.
        // Skip feedback lanes make this necessary: the scanner's skip input
        // is fed by the *downstream* intersecter, so its channel must exist
        // before the scanner block is constructed.
        for &id in plan.order() {
            let label = format!("n{}:{}", id.0, plan.node_label(id));
            for (port, consumers) in plan.consumers_of(id).iter().enumerate() {
                // Intersecter output ports 3 and 4 feed operand scanners'
                // skip inputs; their tokens land in the `skip` bucket.
                let is_skip = matches!(nodes[id.0], NodeKind::Intersecter { .. }) && port >= 3;
                let mut track = |sim: &mut Simulator, ch: ChannelId| {
                    if tracing {
                        sim.record(ch);
                        chan_owner.push((ch, id.0, is_skip));
                    }
                };
                let base = sim.add_channel(format!("{label}.out{port}"));
                track(&mut sim, base);
                out_ch[id.0].push(base);
                if consumers.len() == 1 {
                    let (to, slot) = consumers[0];
                    input_ch.insert((to.0, slot), base);
                } else if consumers.len() > 1 {
                    let mut lanes = Vec::with_capacity(consumers.len());
                    for (lane, &(to, slot)) in consumers.iter().enumerate() {
                        let ch = sim.add_channel(format!("{label}.out{port}.fork{lane}"));
                        track(&mut sim, ch);
                        input_ch.insert((to.0, slot), ch);
                        lanes.push(ch);
                    }
                    sim.add_block(Box::new(Fork::new(format!("{label}.fork{port}"), base, lanes)));
                }
            }
        }

        // Pass 2: instantiate one block per node over the allocated channels.
        for &id in plan.order() {
            let kind = &nodes[id.0];
            let label = format!("n{}:{}", id.0, plan.node_label(id));
            let slot = |s: usize| input_ch[&(id.0, s)];
            match kind {
                NodeKind::Root { .. } => {
                    sim.preload(out_ch[id.0][0], root_stream());
                }
                NodeKind::LevelScanner { tensor, .. } => {
                    let t = inputs.get(tensor).expect("validated binding");
                    let level = Arc::new(t.level(plan.scan_level(id)).clone());
                    let mut block =
                        LevelScanner::new(label, level, slot(0), out_ch[id.0][0], out_ch[id.0][1]);
                    // A planned skip lane targets the scanner's skip input
                    // (port 1), fed by the downstream intersecter.
                    if let Some(&skip) = input_ch.get(&(id.0, 1)) {
                        block = block.with_skip(skip);
                    }
                    sim.add_block(Box::new(block));
                }
                NodeKind::Repeater { .. } => {
                    sim.add_block(Box::new(Repeater::new(label, slot(0), slot(1), out_ch[id.0][0])));
                }
                NodeKind::Intersecter { .. } => {
                    // Lower planned skip lanes onto the block's skip outputs
                    // (ports 3 and 4), which feed the operands' scanners.
                    let lanes = plan.skip_scanners(id);
                    sim.add_block(Box::new(
                        Intersecter::new(
                            label,
                            [slot(0), slot(1)],
                            [slot(2), slot(3)],
                            out_ch[id.0][0],
                            [out_ch[id.0][1], out_ch[id.0][2]],
                        )
                        .with_skip_lanes([
                            lanes[0].map(|_| out_ch[id.0][3]),
                            lanes[1].map(|_| out_ch[id.0][4]),
                        ]),
                    ));
                }
                NodeKind::Unioner { .. } => {
                    sim.add_block(Box::new(Unioner::new(
                        label,
                        [slot(0), slot(1)],
                        [slot(2), slot(3)],
                        out_ch[id.0][0],
                        [out_ch[id.0][1], out_ch[id.0][2]],
                    )));
                }
                NodeKind::Locator { tensor, .. } => {
                    let t = inputs.get(tensor).expect("validated binding");
                    let level = Arc::new(t.level(plan.scan_level(id)).clone());
                    sim.add_block(Box::new(Locator::new(
                        label,
                        level,
                        slot(0),
                        slot(1),
                        out_ch[id.0][0],
                        out_ch[id.0][1],
                        out_ch[id.0][2],
                    )));
                }
                NodeKind::Array { tensor } => {
                    let t = inputs.get(tensor).expect("validated binding");
                    let vals = Arc::new(t.vals().to_vec());
                    sim.add_block(Box::new(ValArray::new(label, vals, slot(0), out_ch[id.0][0])));
                }
                NodeKind::ConstVal { .. } => {
                    sim.add_block(Box::new(ConstVal::new(
                        label,
                        plan.const_val(id),
                        slot(0),
                        out_ch[id.0][0],
                    )));
                }
                NodeKind::Alu { .. } => {
                    sim.add_block(Box::new(Alu::new(
                        label,
                        plan.alu_op(id),
                        [slot(0), slot(1)],
                        out_ch[id.0][0],
                    )));
                }
                NodeKind::Reducer { order } => {
                    let policy = reducer_policy(*order);
                    let block = match order {
                        0 => Reducer::scalar(label, slot(0), out_ch[id.0][0], policy),
                        1 => {
                            Reducer::vector(label, slot(0), slot(1), out_ch[id.0][0], out_ch[id.0][1], policy)
                        }
                        _ => Reducer::matrix(
                            label,
                            [slot(0), slot(1)],
                            slot(2),
                            [out_ch[id.0][0], out_ch[id.0][1]],
                            out_ch[id.0][2],
                            policy,
                        ),
                    };
                    sim.add_block(Box::new(block));
                }
                NodeKind::CoordDropper { .. } => {
                    sim.add_block(Box::new(CoordDropper::new(
                        label,
                        slot(0),
                        slot(1),
                        out_ch[id.0][0],
                        out_ch[id.0][1],
                    )));
                }
                NodeKind::LevelWriter { vals, .. } => {
                    if *vals {
                        let sink = val_sink();
                        sim.add_block(Box::new(ValWriter::new(label, slot(0), sink.clone())));
                        vals_sink = Some(sink);
                    } else {
                        let sink = level_sink();
                        sim.add_block(Box::new(LevelWriter::new(
                            label,
                            plan.writer_dim(id),
                            slot(0),
                            sink.clone(),
                        )));
                        level_sinks.insert(id.0, sink);
                    }
                }
                NodeKind::Parallelizer | NodeKind::Serializer | NodeKind::BitvectorConverter => {
                    unreachable!("rejected during planning")
                }
            }
        }

        let report = sim.run(self.max_cycles)?;

        if tracing {
            // Classify every recorded channel's full history back to the node
            // that produced it. All simulator channels (fork lanes included)
            // are recorded, so the per-node sums equal `report.total_tokens`.
            let mut counts: Vec<TokenCounts> = vec![TokenCounts::default(); nodes.len()];
            for &(ch, node, is_skip) in &chan_owner {
                for token in sim.history(ch) {
                    if is_skip {
                        counts[node].record_skip(token);
                    } else {
                        counts[node].record(token);
                    }
                }
            }
            for &id in plan.order() {
                trace.record_tokens(id.0, counts[id.0]);
                trace.record_invocations(id.0, 1);
                // The simulator ticks every block each cycle; spans are
                // coarse (one per block spanning the run, 1 cycle = 1 ns).
                trace.record_span("cycle", &plan.node_label(id), 0, report.cycles);
            }
        }

        let levels: Vec<_> = plan
            .level_writers()
            .iter()
            .map(|w| {
                level_sinks[&w.0]
                    .lock()
                    .expect("level sink")
                    .clone()
                    .ok_or(ExecError::IncompleteOutput { label: plan.node_label(*w) })
            })
            .collect::<Result<_, _>>()?;
        let vals = vals_sink
            .expect("plan guarantees a values writer")
            .lock()
            .expect("vals sink")
            .clone()
            .ok_or(ExecError::IncompleteOutput { label: plan.node_label(plan.vals_writer()) })?;
        let output = assemble_output(plan, levels, &vals)?;

        Ok(Execution {
            backend: self.name(),
            output,
            vals,
            cycles: Some(report.cycles),
            blocks: report.blocks,
            channels: report.channels,
            tokens: report.total_tokens,
            spills: 0,
            memory: None,
            elapsed: start.elapsed(),
            profile: trace.snapshot(),
        })
    }
}
