//! Fiber-boundary stream splitting for the work-stealing fast backend.
//!
//! Given a node's fully materialized input streams and its
//! [`FiberSplit`](crate::plan::FiberSplit) legality class, this module
//! plans a set of *cuts* — per-input token indices — that partition the
//! streams into segments the node's transfer function can evaluate
//! independently, such that concatenating the segment outputs reproduces
//! the serial output bit for bit. The rules are derived from the transfer
//! functions in the `node` module:
//!
//! * **Elementwise** (array loads, constant sources): the function maps
//!   one input token to one output token with no state; cut anywhere.
//! * **Lockstep** (ALUs, locators): as above but over several inputs
//!   advancing in lockstep; cut all inputs at one common index. The
//!   lockstep loops treat an exhausted source as a misalignment, so middle
//!   segments get a *synthetic* trailing done token, and the matching done
//!   each middle segment emits is stripped before concatenation.
//! * **Scanner**: the scanner holds no state between input tokens, but its
//!   trailing-stop rule peeks one token ahead: a stop directly after the
//!   fiber it just emitted is consumed and merged (level + 1). Cutting
//!   between a data/empty token and a following stop would hide the stop
//!   from the first segment, so exactly those positions are illegal
//!   ([`sam_streams::fiber::scanner_cut_is_safe`]).
//! * **Repeater**: its repeat-value state resets at every stop of the
//!   repeat-signal (crd) input, so the crd stream may be cut after any
//!   stop — but the matching ref-input cut is wherever the repeater's
//!   consumption has advanced to at that point, which this module derives
//!   by simulating the transfer function's consumption rules over the real
//!   streams. The rules consume a ref token only after peeking that it
//!   matches, so a segment boundary (peek = none) makes the same decision
//!   the serial run makes on the real token that sits beyond the cut.
//! * **AfterStop** (order-0 reducers): the accumulator flushes and resets
//!   at every stop; cut after any stop.
//! * **AfterStopPair** (order-1 reducers): the accumulator flushes at a
//!   crd/val stop *pair* only when the pair's maximum level is at least 1;
//!   cut both inputs right after such a pair. Middle segments synthesize
//!   the done pair (the accumulator is provably empty there, so no
//!   spurious flush) and strip the emitted dones.
//! * **StopOrdinal** (intersect/union): the merge loops advance both
//!   operands to their next stop and pair those stops 1:1 by ordinal,
//!   resetting all run state; cut each operand (its crd and ref streams at
//!   the same index — they move in lockstep) right after its k-th stop.
//!
//! The driver re-checks the contract at merge time (segments consumed
//! their inputs exactly; stripped tokens really were dones) and falls back
//! to inline serial evaluation of the node on any anomaly, so a malformed
//! stream produces the serial error, never a silently different output.

use crate::node::Source;
use crate::plan::FiberSplit;
use sam_sim::SimToken;
use sam_streams::fiber;
use sam_streams::Token;

/// A [`Source`] over one segment of a materialized stream, optionally
/// ending in a synthetic done token.
pub(crate) struct SegSource<'a> {
    tokens: &'a [SimToken],
    pos: usize,
    synth_done: bool,
    synth_emitted: bool,
}

impl<'a> SegSource<'a> {
    pub(crate) fn new(tokens: &'a [SimToken], synth_done: bool) -> Self {
        SegSource { tokens, pos: 0, synth_done, synth_emitted: false }
    }

    /// Whether the evaluation drained every real token of the segment —
    /// the driver's anomaly check.
    pub(crate) fn fully_consumed(&self) -> bool {
        self.pos >= self.tokens.len()
    }
}

impl Source for SegSource<'_> {
    fn next(&mut self) -> Option<SimToken> {
        if let Some(&t) = self.tokens.get(self.pos) {
            self.pos += 1;
            return Some(t);
        }
        if self.synth_done && !self.synth_emitted {
            self.synth_emitted = true;
            return Some(Token::Done);
        }
        None
    }

    fn peek(&mut self) -> Option<SimToken> {
        if let Some(&t) = self.tokens.get(self.pos) {
            return Some(t);
        }
        (self.synth_done && !self.synth_emitted).then_some(Token::Done)
    }
}

/// A planned segmentation of one node's inputs.
pub(crate) struct SplitPlan {
    /// `boundaries[s][i]` — the token index at which segment `s` ends on
    /// input `i`. Segment `s` spans `boundaries[s-1][i]..boundaries[s][i]`
    /// (from 0 for the first); the final segment runs to the end of each
    /// stream. There are `segments() - 1` boundary rows.
    pub(crate) boundaries: Vec<Vec<usize>>,
    /// Whether middle segments append a synthetic done to every input and
    /// strip the matching trailing done from every output.
    pub(crate) synth_done: bool,
}

impl SplitPlan {
    /// Total number of segments.
    pub(crate) fn segments(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The `(start, end)` token range of segment `s` on input `i`;
    /// `input_len` is that stream's total length.
    pub(crate) fn range(&self, s: usize, i: usize, input_len: usize) -> (usize, usize) {
        let start = if s == 0 { 0 } else { self.boundaries[s - 1][i] };
        let end = if s == self.boundaries.len() { input_len } else { self.boundaries[s][i] };
        (start, end)
    }
}

/// Plans cuts splitting `inputs` into about `segments` independently
/// evaluable pieces under the `kind` legality rule, with segment sizes on
/// an adaptive ramp (small early so every worker starts immediately, large
/// late so per-task overhead amortizes). Returns `None` when the streams
/// admit no legal cut (or the kind is [`FiberSplit::No`]).
pub(crate) fn plan_cuts(kind: FiberSplit, inputs: &[&[SimToken]], segments: usize) -> Option<SplitPlan> {
    if segments < 2 || inputs.is_empty() {
        return None;
    }
    let len = inputs[0].len();
    let targets = fiber::ramp_targets(len, segments);
    let plan = match kind {
        FiberSplit::No => return None,
        FiberSplit::Elementwise => {
            let legal: Vec<usize> = (1..len).collect();
            SplitPlan { boundaries: row_per_cut(fiber::snap_targets(&targets, &legal), 1), synth_done: false }
        }
        FiberSplit::Lockstep => {
            if inputs.iter().any(|s| s.len() != len) {
                return None;
            }
            let legal: Vec<usize> = (1..len).collect();
            SplitPlan {
                boundaries: row_per_cut(fiber::snap_targets(&targets, &legal), inputs.len()),
                synth_done: true,
            }
        }
        FiberSplit::Scanner => {
            let legal: Vec<usize> = (1..len).filter(|&p| fiber::scanner_cut_is_safe(inputs[0], p)).collect();
            SplitPlan { boundaries: row_per_cut(fiber::snap_targets(&targets, &legal), 1), synth_done: false }
        }
        FiberSplit::AfterStop => {
            let legal = fiber::after_stop_positions(inputs[0]);
            SplitPlan { boundaries: row_per_cut(fiber::snap_targets(&targets, &legal), 1), synth_done: false }
        }
        FiberSplit::AfterStopPair => {
            let [crd, val] = inputs else { return None };
            if crd.len() != val.len() {
                return None;
            }
            let legal: Vec<usize> = (1..len)
                .filter(|&p| match (&crd[p - 1], &val[p - 1]) {
                    (Token::Stop(nc), Token::Stop(nv)) => *nc.max(nv) >= 1,
                    _ => false,
                })
                .collect();
            SplitPlan { boundaries: row_per_cut(fiber::snap_targets(&targets, &legal), 2), synth_done: true }
        }
        FiberSplit::Repeater => plan_repeater(inputs, segments)?,
        FiberSplit::StopOrdinal => plan_stop_ordinal(inputs, segments)?,
    };
    (plan.segments() >= 2).then_some(plan)
}

/// Expands single-stream cut positions into per-input boundary rows for
/// kinds where every input is cut at the same index.
fn row_per_cut(cuts: Vec<usize>, inputs: usize) -> Vec<Vec<usize>> {
    cuts.into_iter().map(|p| vec![p; inputs]).collect()
}

/// Repeater cuts: the crd (repeat-signal) input is cut after stops; the
/// ref input cut is the number of ref tokens the transfer function has
/// consumed by that point, found by simulating its consumption rules once
/// over the full streams.
fn plan_repeater(inputs: &[&[SimToken]], segments: usize) -> Option<SplitPlan> {
    let [crd, rf] = inputs else { return None };
    // ref_pos_after[p] = ref tokens consumed by crd[..p].
    let mut ref_pos_after = Vec::with_capacity(crd.len() + 1);
    ref_pos_after.push(0usize);
    let mut rp = 0usize;
    let mut have_current = false;
    for t in *crd {
        match t {
            Token::Val(_) => {
                if !have_current {
                    // Serial fetches the fiber's reference unconditionally;
                    // a non-data token there is a misalignment — leave the
                    // node to the serial path so it reports the error.
                    match rf.get(rp) {
                        Some(Token::Val(_) | Token::Empty) => rp += 1,
                        _ => return None,
                    }
                    have_current = true;
                }
            }
            Token::Empty => {}
            Token::Stop(n) => {
                if !have_current {
                    if let Some(Token::Val(_) | Token::Empty) = rf.get(rp) {
                        rp += 1;
                    }
                }
                have_current = false;
                if *n > 0 {
                    if let Some(Token::Stop(_)) = rf.get(rp) {
                        rp += 1;
                    }
                }
            }
            Token::Done => {}
        }
        ref_pos_after.push(rp);
    }
    let legal = fiber::after_stop_positions(crd);
    let targets = fiber::ramp_targets(crd.len(), segments);
    let cuts = fiber::snap_targets(&targets, &legal);
    let boundaries = cuts.into_iter().map(|p| vec![p, ref_pos_after[p]]).collect();
    Some(SplitPlan { boundaries, synth_done: false })
}

/// Intersect/union cuts: each operand's crd and ref streams advance in
/// lockstep, and the merge pairs the operands' stops 1:1 by ordinal — so
/// segment `k` boundaries sit right after operand A's k-th stop and
/// operand B's k-th stop. Inputs arrive as `[crd_a, crd_b, ref_a, ref_b]`.
fn plan_stop_ordinal(inputs: &[&[SimToken]], segments: usize) -> Option<SplitPlan> {
    let [crd_a, crd_b, ref_a, ref_b] = inputs else { return None };
    let stops_a = fiber::after_stop_positions(crd_a);
    let stops_b = fiber::after_stop_positions(crd_b);
    // The crd/ref pair of an operand must be stop-aligned position for
    // position, or the serial merge would misalign; bail to serial if not.
    if fiber::after_stop_positions(ref_a) != stops_a || fiber::after_stop_positions(ref_b) != stops_b {
        return None;
    }
    let ordinals = stops_a.len().min(stops_b.len());
    if ordinals == 0 {
        return None;
    }
    // Ramp over stop ordinals instead of token positions: pick the k-th
    // stop boundaries so segments hold linearly growing fiber counts.
    let targets = fiber::ramp_targets(ordinals + 1, segments);
    let mut boundaries = Vec::new();
    let mut last = 0usize;
    for k in targets {
        let k = k.min(ordinals).max(last + 1);
        if k > ordinals {
            break;
        }
        boundaries.push(vec![stops_a[k - 1], stops_b[k - 1], stops_a[k - 1], stops_b[k - 1]]);
        last = k;
    }
    Some(SplitPlan { boundaries, synth_done: true })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_sim::payload::tok;

    #[test]
    fn elementwise_cuts_anywhere() {
        let s: Vec<SimToken> = (0..10).map(tok::rf).chain([tok::done()]).collect();
        let plan = plan_cuts(FiberSplit::Elementwise, &[&s], 4).expect("splittable");
        assert!(plan.segments() >= 2);
        assert!(!plan.synth_done);
        // Ranges tile the stream exactly.
        let mut covered = 0;
        for seg in 0..plan.segments() {
            let (start, end) = plan.range(seg, 0, s.len());
            assert_eq!(start, covered);
            covered = end;
        }
        assert_eq!(covered, s.len());
    }

    #[test]
    fn scanner_cuts_avoid_merged_stops() {
        // rf S0 rf S0 ... — a cut between rf and S0 is illegal.
        let mut s: Vec<SimToken> = Vec::new();
        for i in 0..20 {
            s.push(tok::rf(i));
            s.push(tok::stop(0));
        }
        s.push(tok::done());
        let plan = plan_cuts(FiberSplit::Scanner, &[&s], 4).expect("splittable");
        for row in &plan.boundaries {
            let p = row[0];
            assert!(
                !(matches!(s[p - 1], Token::Val(_) | Token::Empty) && s[p].is_stop()),
                "cut at {p} splits a merged stop"
            );
        }
    }

    #[test]
    fn stop_ordinal_aligns_both_operands() {
        // Operand A: 4 fibers of 2; operand B: 4 fibers of 1.
        let fibers = |per: usize| -> Vec<SimToken> {
            let mut s = Vec::new();
            for f in 0..4u32 {
                for e in 0..per as u32 {
                    s.push(tok::crd(f * 10 + e));
                }
                s.push(tok::stop(0));
            }
            s.push(tok::done());
            s
        };
        let (ca, cb) = (fibers(2), fibers(1));
        let (ra, rb) = (fibers(2), fibers(1));
        let plan = plan_cuts(FiberSplit::StopOrdinal, &[&ca, &cb, &ra, &rb], 3).expect("splittable");
        assert!(plan.synth_done);
        for row in &plan.boundaries {
            // Each operand's boundary sits right after one of its stops,
            // and both operands cut at the same stop ordinal.
            assert!(ca[row[0] - 1].is_stop());
            assert!(cb[row[1] - 1].is_stop());
            let ord_a = ca[..row[0]].iter().filter(|t| t.is_stop()).count();
            let ord_b = cb[..row[1]].iter().filter(|t| t.is_stop()).count();
            assert_eq!(ord_a, ord_b);
            assert_eq!(row[0], row[2]);
            assert_eq!(row[1], row[3]);
        }
    }

    #[test]
    fn repeater_ref_cut_tracks_consumption() {
        // crd: two fibers of 2 data tokens; ref: one data token per fiber.
        let crd: Vec<SimToken> =
            vec![tok::crd(0), tok::crd(1), tok::stop(0), tok::crd(2), tok::crd(3), tok::stop(1), tok::done()];
        let rf: Vec<SimToken> = vec![tok::rf(7), tok::rf(8), tok::stop(0), tok::done()];
        let plan = plan_cuts(FiberSplit::Repeater, &[&crd, &rf], 2).expect("splittable");
        // The only legal crd cut is after the first stop (position 3); by
        // then exactly one ref data token has been consumed.
        assert_eq!(plan.boundaries, vec![vec![3, 1]]);
    }

    #[test]
    fn degenerate_streams_refuse_to_split() {
        let tiny: Vec<SimToken> = vec![tok::done()];
        assert!(plan_cuts(FiberSplit::Elementwise, &[&tiny], 4).is_none());
        assert!(plan_cuts(FiberSplit::Scanner, &[&tiny], 4).is_none());
        let no_stops: Vec<SimToken> = vec![tok::crd(1), tok::crd(2), tok::done()];
        assert!(plan_cuts(FiberSplit::AfterStop, &[&no_stops], 4).is_none());
        assert!(plan_cuts(FiberSplit::No, &[&no_stops], 4).is_none());
    }

    #[test]
    fn seg_source_synthesizes_done_once() {
        let s: Vec<SimToken> = vec![tok::crd(1), tok::stop(0)];
        let mut src = SegSource::new(&s, true);
        assert_eq!(src.peek(), Some(tok::crd(1)));
        assert_eq!(src.next(), Some(tok::crd(1)));
        assert_eq!(src.next(), Some(tok::stop(0)));
        assert!(src.fully_consumed());
        assert_eq!(src.peek(), Some(tok::done()));
        assert_eq!(src.next(), Some(tok::done()));
        assert_eq!(src.next(), None);
        let mut bare = SegSource::new(&s, false);
        bare.next();
        bare.next();
        assert_eq!(bare.next(), None);
    }
}
