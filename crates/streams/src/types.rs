//! Payload newtypes carried by SAM streams.
//!
//! SAM distinguishes three stream types (paper Section 3.2): coordinate
//! streams (`crd`), reference streams (`ref`) and value streams (`vals`).
//! Section 4.3 adds bitvector streams as an alternative compression protocol.
//! Each payload gets its own newtype so graphs cannot accidentally wire a
//! value stream into a port expecting coordinates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A tensor coordinate along one dimension (paper Figure 1).
///
/// Coordinates are non-negative and bounded by the dimension size of the
/// level they belong to.
///
/// ```
/// use sam_streams::Crd;
/// let c = Crd(3);
/// assert_eq!(c.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Crd(pub u32);

impl Crd {
    /// The coordinate as a usable array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Crd {
    fn from(v: u32) -> Self {
        Crd(v)
    }
}

impl From<usize> for Crd {
    fn from(v: usize) -> Self {
        Crd(v as u32)
    }
}

impl fmt::Display for Crd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A reference to the location of a fiber (or value) in memory
/// (paper Section 3.2).
///
/// References returned by a level scanner are positions into the next level's
/// arrays; the reference stream emitted by the final level scanner indexes
/// the values array.
///
/// ```
/// use sam_streams::Ref;
/// assert_eq!(Ref(7).index(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Ref(pub u32);

impl Ref {
    /// The reference as a usable array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Ref {
    fn from(v: u32) -> Self {
        Ref(v)
    }
}

impl From<usize> for Ref {
    fn from(v: usize) -> Self {
        Ref(v as u32)
    }
}

impl fmt::Display for Ref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A scalar tensor value transmitted on a value stream.
///
/// Values use `f64` arithmetic; equality in tests uses an epsilon via
/// [`Val::approx_eq`].
///
/// ```
/// use sam_streams::Val;
/// assert!(Val(1.0).approx_eq(Val(1.0 + 1e-12)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Val(pub f64);

impl Val {
    /// Numerically tolerant equality used by functional-correctness checks.
    pub fn approx_eq(self, other: Val) -> bool {
        let scale = self.0.abs().max(other.0.abs()).max(1.0);
        (self.0 - other.0).abs() <= 1e-9 * scale
    }

    /// True when the value is exactly zero (used by coordinate droppers).
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl From<f64> for Val {
    fn from(v: f64) -> Self {
        Val(v)
    }
}

impl std::ops::Add for Val {
    type Output = Val;
    fn add(self, rhs: Val) -> Val {
        Val(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Val {
    type Output = Val;
    fn sub(self, rhs: Val) -> Val {
        Val(self.0 - rhs.0)
    }
}

impl std::ops::Mul for Val {
    type Output = Val;
    fn mul(self, rhs: Val) -> Val {
        Val(self.0 * rhs.0)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A bitvector token covering `width` coordinates starting at coordinate
/// `base` (paper Section 4.3).
///
/// Bit `i` of `bits` is set when coordinate `base + i` has a nonempty
/// sub-tree. The paper's bitvector converter packs `b` coordinates into one
/// such token, which lets downstream merge blocks process `b` positions per
/// cycle.
///
/// ```
/// use sam_streams::BitVec;
/// let bv = BitVec::from_coords(0, 4, [0u32, 2u32]);
/// assert_eq!(bv.popcount(), 2);
/// assert!(bv.is_set(0) && !bv.is_set(1) && bv.is_set(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct BitVec {
    /// First coordinate covered by this token.
    pub base: u32,
    /// Number of coordinates covered (at most 64).
    pub width: u8,
    /// Occupancy bits; bit `i` corresponds to coordinate `base + i`.
    pub bits: u64,
}

impl BitVec {
    /// Builds a bitvector token covering `[base, base + width)` from the
    /// coordinates in `coords` that fall inside that window.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64.
    pub fn from_coords<I>(base: u32, width: u8, coords: I) -> Self
    where
        I: IntoIterator<Item = u32>,
    {
        assert!(width > 0 && width <= 64, "bitvector width must be in 1..=64");
        let mut bits = 0u64;
        for c in coords {
            if c >= base && c < base + width as u32 {
                bits |= 1u64 << (c - base);
            }
        }
        BitVec { base, width, bits }
    }

    /// Number of occupied coordinates in this token.
    pub fn popcount(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Whether coordinate `crd` is occupied. Coordinates outside the window
    /// are reported as unoccupied.
    pub fn is_set(&self, crd: u32) -> bool {
        if crd < self.base || crd >= self.base + self.width as u32 {
            return false;
        }
        (self.bits >> (crd - self.base)) & 1 == 1
    }

    /// Iterator over the occupied coordinates, in increasing order.
    pub fn iter_coords(&self) -> impl Iterator<Item = u32> + '_ {
        let base = self.base;
        let bits = self.bits;
        (0..self.width as u32).filter_map(move |i| if (bits >> i) & 1 == 1 { Some(base + i) } else { None })
    }

    /// Bitwise intersection of two aligned tokens (same base and width).
    ///
    /// # Panics
    ///
    /// Panics when the tokens are not aligned.
    pub fn intersect(&self, other: &BitVec) -> BitVec {
        assert_eq!((self.base, self.width), (other.base, other.width), "misaligned bitvector tokens");
        BitVec { base: self.base, width: self.width, bits: self.bits & other.bits }
    }

    /// Bitwise union of two aligned tokens (same base and width).
    ///
    /// # Panics
    ///
    /// Panics when the tokens are not aligned.
    pub fn union(&self, other: &BitVec) -> BitVec {
        assert_eq!((self.base, self.width), (other.base, other.width), "misaligned bitvector tokens");
        BitVec { base: self.base, width: self.width, bits: self.bits | other.bits }
    }

    /// True when no coordinate in the window is occupied.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bv@{}[", self.base)?;
        for i in (0..self.width).rev() {
            write!(f, "{}", (self.bits >> i) & 1)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crd_and_ref_roundtrip() {
        assert_eq!(Crd::from(5u32).index(), 5);
        assert_eq!(Ref::from(9usize).index(), 9);
        assert_eq!(format!("{}", Crd(3)), "3");
        assert_eq!(format!("{}", Ref(4)), "4");
    }

    #[test]
    fn val_arithmetic() {
        assert_eq!(Val(2.0) + Val(3.0), Val(5.0));
        assert_eq!(Val(2.0) * Val(3.0), Val(6.0));
        assert_eq!(Val(2.0) - Val(3.0), Val(-1.0));
        assert!(Val(0.0).is_zero());
        assert!(!Val(0.5).is_zero());
    }

    #[test]
    fn val_approx_eq_scales() {
        assert!(Val(1e12).approx_eq(Val(1e12 + 1e-3)));
        assert!(!Val(1.0).approx_eq(Val(1.1)));
    }

    #[test]
    fn bitvec_from_coords_and_queries() {
        let bv = BitVec::from_coords(4, 8, [4u32, 6, 11, 20]);
        assert_eq!(bv.popcount(), 3);
        assert!(bv.is_set(4));
        assert!(bv.is_set(6));
        assert!(bv.is_set(11));
        assert!(!bv.is_set(5));
        assert!(!bv.is_set(20));
        assert_eq!(bv.iter_coords().collect::<Vec<_>>(), vec![4, 6, 11]);
    }

    #[test]
    fn bitvec_set_ops() {
        let a = BitVec::from_coords(0, 8, [0u32, 2, 4]);
        let b = BitVec::from_coords(0, 8, [2u32, 3, 4]);
        assert_eq!(a.intersect(&b).iter_coords().collect::<Vec<_>>(), vec![2, 4]);
        assert_eq!(a.union(&b).iter_coords().collect::<Vec<_>>(), vec![0, 2, 3, 4]);
        assert!(!a.is_empty());
        assert!(BitVec::from_coords(0, 8, std::iter::empty::<u32>()).is_empty());
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn bitvec_misaligned_intersect_panics() {
        let a = BitVec::from_coords(0, 8, [0u32]);
        let b = BitVec::from_coords(8, 8, [8u32]);
        let _ = a.intersect(&b);
    }

    #[test]
    fn bitvec_display() {
        let bv = BitVec::from_coords(0, 4, [0u32, 2]);
        assert_eq!(format!("{bv}"), "bv@0[0101]");
    }
}
