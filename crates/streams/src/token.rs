//! The SAM token algebra.

use crate::stats::TokenKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single token on a SAM stream (paper Section 3.2).
///
/// Streams are sequences of tokens transmitting one fibertree level, where
///
/// * [`Token::Val`] carries a payload (a coordinate, reference, value or
///   bitvector),
/// * [`Token::Stop`]`(n)` marks the end of a fiber; the level `n` encodes how
///   many enclosing fibers end at the same point (the "hierarchical stop
///   token" of Figure 1d),
/// * [`Token::Empty`] (the paper's `N` token) is produced by union merges for
///   operands that have no coordinate at an output position, and
/// * [`Token::Done`] terminates the stream.
///
/// ```
/// use sam_streams::{Token, Crd};
/// let t: Token<Crd> = Token::Stop(1);
/// assert!(t.is_control());
/// assert_eq!(Token::Val(Crd(2)).value(), Some(Crd(2)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Token<T> {
    /// A data (non-control) token.
    Val(T),
    /// Hierarchical fiber-boundary marker; `Stop(0)` ends the innermost fiber.
    Stop(u8),
    /// The empty token `N`, standing in for an absent operand.
    Empty,
    /// End of stream.
    Done,
}

impl<T> Token<T> {
    /// True for stop, empty and done tokens; false for data tokens.
    pub fn is_control(&self) -> bool {
        !matches!(self, Token::Val(_))
    }

    /// True only for [`Token::Done`].
    pub fn is_done(&self) -> bool {
        matches!(self, Token::Done)
    }

    /// True only for [`Token::Stop`].
    pub fn is_stop(&self) -> bool {
        matches!(self, Token::Stop(_))
    }

    /// True only for [`Token::Empty`].
    pub fn is_empty_token(&self) -> bool {
        matches!(self, Token::Empty)
    }

    /// The stop level, if this is a stop token.
    pub fn stop_level(&self) -> Option<u8> {
        match self {
            Token::Stop(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload, if this is a data token.
    pub fn value(self) -> Option<T> {
        match self {
            Token::Val(v) => Some(v),
            _ => None,
        }
    }

    /// A reference to the payload, if this is a data token.
    pub fn value_ref(&self) -> Option<&T> {
        match self {
            Token::Val(v) => Some(v),
            _ => None,
        }
    }

    /// The statistics category of this token (Figure 14 breakdown).
    pub fn kind(&self) -> TokenKind {
        match self {
            Token::Val(_) => TokenKind::NonControl,
            Token::Stop(_) => TokenKind::Stop,
            Token::Empty => TokenKind::Empty,
            Token::Done => TokenKind::Done,
        }
    }

    /// Maps the payload type while preserving control tokens.
    ///
    /// ```
    /// use sam_streams::{Token, Crd, Ref};
    /// let t = Token::Val(Crd(3)).map(|c: Crd| Ref(c.0));
    /// assert_eq!(t, Token::Val(Ref(3)));
    /// assert_eq!(Token::<Crd>::Stop(2).map(|c| Ref(c.0)), Token::Stop(2));
    /// ```
    pub fn map<U, F: FnOnce(T) -> U>(self, f: F) -> Token<U> {
        match self {
            Token::Val(v) => Token::Val(f(v)),
            Token::Stop(n) => Token::Stop(n),
            Token::Empty => Token::Empty,
            Token::Done => Token::Done,
        }
    }

    /// Reinterprets a control token as a token of another payload type.
    ///
    /// # Panics
    ///
    /// Panics when called on a data token.
    pub fn as_control<U>(&self) -> Token<U> {
        match self {
            Token::Val(_) => panic!("as_control called on a data token"),
            Token::Stop(n) => Token::Stop(*n),
            Token::Empty => Token::Empty,
            Token::Done => Token::Done,
        }
    }

    /// Increments the level of a stop token, leaving every other token
    /// unchanged. Level scanners use this to add one level of fiber
    /// hierarchy to the stop tokens that flow through them (Section 3.3).
    pub fn bump_stop(self) -> Token<T> {
        match self {
            Token::Stop(n) => Token::Stop(n + 1),
            other => other,
        }
    }
}

impl<T: fmt::Display> fmt::Display for Token<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Val(v) => write!(f, "{v}"),
            Token::Stop(n) => write!(f, "S{n}"),
            Token::Empty => write!(f, "N"),
            Token::Done => write!(f, "D"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Crd, Val};

    #[test]
    fn classification() {
        let v: Token<Crd> = Token::Val(Crd(1));
        assert!(!v.is_control());
        assert!(Token::<Crd>::Stop(0).is_control());
        assert!(Token::<Crd>::Empty.is_control());
        assert!(Token::<Crd>::Done.is_control());
        assert!(Token::<Crd>::Done.is_done());
        assert!(Token::<Crd>::Stop(3).is_stop());
        assert!(Token::<Crd>::Empty.is_empty_token());
        assert_eq!(Token::<Crd>::Stop(3).stop_level(), Some(3));
        assert_eq!(v.stop_level(), None);
    }

    #[test]
    fn value_extraction() {
        assert_eq!(Token::Val(Val(2.5)).value(), Some(Val(2.5)));
        assert_eq!(Token::<Val>::Done.value(), None);
        assert_eq!(Token::Val(Crd(4)).value_ref(), Some(&Crd(4)));
    }

    #[test]
    fn kinds() {
        assert_eq!(Token::Val(Crd(0)).kind(), TokenKind::NonControl);
        assert_eq!(Token::<Crd>::Stop(0).kind(), TokenKind::Stop);
        assert_eq!(Token::<Crd>::Empty.kind(), TokenKind::Empty);
        assert_eq!(Token::<Crd>::Done.kind(), TokenKind::Done);
    }

    #[test]
    fn bump_stop_only_touches_stops() {
        assert_eq!(Token::<Crd>::Stop(0).bump_stop(), Token::Stop(1));
        assert_eq!(Token::Val(Crd(1)).bump_stop(), Token::Val(Crd(1)));
        assert_eq!(Token::<Crd>::Done.bump_stop(), Token::Done);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(format!("{}", Token::Val(Crd(7))), "7");
        assert_eq!(format!("{}", Token::<Crd>::Stop(1)), "S1");
        assert_eq!(format!("{}", Token::<Crd>::Empty), "N");
        assert_eq!(format!("{}", Token::<Crd>::Done), "D");
    }

    #[test]
    #[should_panic(expected = "as_control")]
    fn as_control_rejects_data() {
        let _: Token<Val> = Token::Val(Crd(1)).as_control();
    }
}
