//! Fiber-boundary analysis for splitting finished token streams.
//!
//! The work-stealing fast backend parallelizes *within* a node by cutting
//! its input streams into segments at fiber boundaries (stop tokens) and
//! evaluating the segments as independent stealable tasks. This module
//! holds the stream-level machinery: finding candidate cut positions,
//! checking per-operator legality predicates, and laying out an adaptive
//! ramp of segment sizes (small segments early so workers start quickly,
//! large segments late so per-task overhead amortizes).
//!
//! A *cut position* `p` splits `tokens` into `tokens[..p]` and
//! `tokens[p..]`. Valid cuts always satisfy `1 <= p <= len - 1`, so the
//! stream-terminating [`Token::Done`] stays in the final segment.

use crate::token::Token;

/// Positions immediately after each stop token, in stream order.
///
/// The `k`-th entry (0-based) is the cut position right after the `k`-th
/// [`Token::Stop`] — which is also the ordinal used to align cuts across
/// the operands of a co-iterating merger. Positions at or past the end of
/// the stream are excluded.
///
/// ```
/// use sam_streams::{fiber, Token};
/// let s: Vec<Token<u32>> = vec![
///     Token::Val(1), Token::Stop(0), Token::Val(2), Token::Stop(1), Token::Done,
/// ];
/// assert_eq!(fiber::after_stop_positions(&s), vec![2, 4]);
/// ```
pub fn after_stop_positions<T>(tokens: &[Token<T>]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(i, t)| t.is_stop() && i + 1 < tokens.len())
        .map(|(i, _)| i + 1)
        .collect()
}

/// Whether cutting a level scanner's reference input at `p` is safe.
///
/// A scanner that has just emitted a fiber peeks at its next input token:
/// if that token is a stop, the scanner consumes it and re-emits it with
/// the level bumped, *merging* the fiber boundary into its own. Cutting
/// between a data (or empty) token and the following stop would hide the
/// stop from the first segment — the scanner would emit `Stop(0)` then a
/// separate `Stop(n+1)` instead of the single merged stop the serial run
/// produces. Every other position is safe: the scanner's state is empty
/// between input tokens.
pub fn scanner_cut_is_safe<T>(tokens: &[Token<T>], p: usize) -> bool {
    if p == 0 || p >= tokens.len() {
        return false;
    }
    let prev_opens_merge = matches!(tokens[p - 1], Token::Val(_) | Token::Empty);
    !(prev_opens_merge && tokens[p].is_stop())
}

/// Cut targets implementing the adaptive ramp: `segments` cuts over a
/// stream of `len` tokens, with segment sizes growing linearly (the first
/// segment is the smallest, the last the largest). Returns the cumulative
/// positions *between* segments — `segments - 1` values, each in
/// `1..len` — suitable for snapping forward to the nearest legal cut.
///
/// ```
/// use sam_streams::fiber;
/// // 4 segments over 100 tokens: sizes 10, 20, 30, 40.
/// assert_eq!(fiber::ramp_targets(100, 4), vec![10, 30, 60]);
/// assert!(fiber::ramp_targets(100, 1).is_empty());
/// ```
pub fn ramp_targets(len: usize, segments: usize) -> Vec<usize> {
    if segments < 2 || len < 2 {
        return Vec::new();
    }
    let total_weight = segments * (segments + 1) / 2;
    let mut targets = Vec::with_capacity(segments - 1);
    let mut cum_weight = 0usize;
    for i in 0..segments - 1 {
        cum_weight += i + 1;
        let p = (len * cum_weight / total_weight).clamp(1, len - 1);
        targets.push(p);
    }
    targets
}

/// Snaps each ramp target forward to the first legal cut at or after it,
/// deduplicating and keeping the result strictly increasing. `legal` is
/// the sorted list of legal cut positions (each in `1..len`).
///
/// ```
/// use sam_streams::fiber;
/// assert_eq!(fiber::snap_targets(&[3, 8, 12], &[5, 9, 10, 20]), vec![5, 9, 20]);
/// assert_eq!(fiber::snap_targets(&[15], &[5, 9]), Vec::<usize>::new());
/// ```
pub fn snap_targets(targets: &[usize], legal: &[usize]) -> Vec<usize> {
    let mut cuts = Vec::with_capacity(targets.len());
    let mut last = 0usize;
    for &t in targets {
        let want = t.max(last + 1);
        if let Some(&p) = legal.iter().find(|&&p| p >= want) {
            cuts.push(p);
            last = p;
        }
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Crd;

    fn v(c: u32) -> Token<Crd> {
        Token::Val(Crd(c))
    }

    #[test]
    fn after_stop_positions_skip_trailing_stop() {
        // Stop right before Done still yields a position (Done is in range),
        // but a stop that *is* the last token yields none.
        let s = vec![v(1), Token::Stop(0), v(2), Token::Stop(1)];
        assert_eq!(after_stop_positions(&s), vec![2]);
        let with_done = vec![v(1), Token::Stop(0), Token::Done];
        assert_eq!(after_stop_positions(&with_done), vec![2]);
    }

    #[test]
    fn scanner_safety_rejects_val_then_stop() {
        let s = vec![v(1), Token::Stop(0), v(2), Token::Stop(1), Token::Done];
        // p=1: prev Val, cur Stop — the scanner would merge them. Unsafe.
        assert!(!scanner_cut_is_safe(&s, 1));
        // p=2: prev Stop, cur Val. Safe.
        assert!(scanner_cut_is_safe(&s, 2));
        // p=3: prev Val, cur Stop. Unsafe.
        assert!(!scanner_cut_is_safe(&s, 3));
        // p=4: prev Stop, cur Done. Safe.
        assert!(scanner_cut_is_safe(&s, 4));
        // Bounds: 0 and len are never cuts.
        assert!(!scanner_cut_is_safe(&s, 0));
        assert!(!scanner_cut_is_safe(&s, 5));
    }

    #[test]
    fn scanner_safety_rejects_empty_then_stop() {
        let s: Vec<Token<Crd>> = vec![Token::Empty, Token::Stop(0), Token::Done];
        assert!(!scanner_cut_is_safe(&s, 1));
        assert!(scanner_cut_is_safe(&s, 2));
    }

    #[test]
    fn ramp_is_monotone_and_in_range() {
        for len in [2usize, 7, 100, 4096] {
            for segments in [2usize, 3, 8] {
                let t = ramp_targets(len, segments);
                assert_eq!(t.len(), segments - 1);
                for w in t.windows(2) {
                    assert!(w[0] <= w[1]);
                }
                assert!(t.iter().all(|&p| p >= 1 && p < len), "len={len} segs={segments}: {t:?}");
            }
        }
        assert!(ramp_targets(0, 4).is_empty());
        assert!(ramp_targets(100, 0).is_empty());
    }

    #[test]
    fn ramp_segments_grow() {
        let t = ramp_targets(1000, 5);
        let mut sizes = Vec::new();
        let mut prev = 0;
        for &p in &t {
            sizes.push(p - prev);
            prev = p;
        }
        sizes.push(1000 - prev);
        for w in sizes.windows(2) {
            assert!(w[0] <= w[1], "sizes not nondecreasing: {sizes:?}");
        }
    }

    #[test]
    fn snapping_dedups_and_stays_increasing() {
        // Two targets snapping to the same legal cut keep only one of it.
        assert_eq!(snap_targets(&[2, 3], &[10, 20]), vec![10, 20]);
        assert_eq!(snap_targets(&[2, 3], &[10]), vec![10]);
        assert!(snap_targets(&[5], &[]).is_empty());
    }
}
