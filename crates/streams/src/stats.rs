//! Token-kind statistics.
//!
//! The Figure 14 experiment breaks coordinate streams down into idle, done,
//! stop and non-control slots. Streams themselves only contain real tokens;
//! *idle* slots are cycles where a channel carried nothing, which the
//! simulator records separately and folds into the same [`TokenStats`]
//! structure.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// The statistics category of a token or channel slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// A data token (coordinate, reference, value or bitvector).
    NonControl,
    /// A hierarchical stop token.
    Stop,
    /// An empty (`N`) token.
    Empty,
    /// The done token.
    Done,
    /// A cycle where the channel carried no token at all.
    Idle,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TokenKind::NonControl => "non-control",
            TokenKind::Stop => "stop",
            TokenKind::Empty => "empty",
            TokenKind::Done => "done",
            TokenKind::Idle => "idle",
        };
        f.write_str(name)
    }
}

/// Counts of channel slots by [`TokenKind`].
///
/// ```
/// use sam_streams::{TokenStats, TokenKind};
/// let mut s = TokenStats::default();
/// s.record(TokenKind::NonControl);
/// s.record(TokenKind::Stop);
/// s.record(TokenKind::Idle);
/// assert_eq!(s.total(), 3);
/// assert!((s.fraction(TokenKind::Stop) - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenStats {
    /// Data tokens.
    pub non_control: u64,
    /// Stop tokens.
    pub stop: u64,
    /// Empty tokens.
    pub empty: u64,
    /// Done tokens.
    pub done: u64,
    /// Idle channel slots (no token this cycle).
    pub idle: u64,
}

impl TokenStats {
    /// Records one slot of the given kind.
    pub fn record(&mut self, kind: TokenKind) {
        match kind {
            TokenKind::NonControl => self.non_control += 1,
            TokenKind::Stop => self.stop += 1,
            TokenKind::Empty => self.empty += 1,
            TokenKind::Done => self.done += 1,
            TokenKind::Idle => self.idle += 1,
        }
    }

    /// Total number of recorded slots.
    pub fn total(&self) -> u64 {
        self.non_control + self.stop + self.empty + self.done + self.idle
    }

    /// Total number of real tokens (excludes idle slots).
    pub fn total_tokens(&self) -> u64 {
        self.non_control + self.stop + self.empty + self.done
    }

    /// Control tokens excluding idle slots (stop + empty + done), the
    /// "non-idle control overhead" quoted in Section 6.4.
    pub fn control_tokens(&self) -> u64 {
        self.stop + self.empty + self.done
    }

    /// The count for one kind.
    pub fn count(&self, kind: TokenKind) -> u64 {
        match kind {
            TokenKind::NonControl => self.non_control,
            TokenKind::Stop => self.stop,
            TokenKind::Empty => self.empty,
            TokenKind::Done => self.done,
            TokenKind::Idle => self.idle,
        }
    }

    /// Fraction of all slots (including idle) of the given kind; zero when no
    /// slots have been recorded.
    pub fn fraction(&self, kind: TokenKind) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(kind) as f64 / total as f64
        }
    }

    /// Fraction of real tokens (excluding idle) that are control tokens.
    pub fn control_fraction_non_idle(&self) -> f64 {
        let total = self.total_tokens();
        if total == 0 {
            0.0
        } else {
            self.control_tokens() as f64 / total as f64
        }
    }
}

impl Add for TokenStats {
    type Output = TokenStats;
    fn add(self, rhs: TokenStats) -> TokenStats {
        TokenStats {
            non_control: self.non_control + rhs.non_control,
            stop: self.stop + rhs.stop,
            empty: self.empty + rhs.empty,
            done: self.done + rhs.done,
            idle: self.idle + rhs.idle,
        }
    }
}

impl AddAssign for TokenStats {
    fn add_assign(&mut self, rhs: TokenStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for TokenStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "non-control={} stop={} empty={} done={} idle={}",
            self.non_control, self.stop, self.empty, self.done, self.idle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = TokenStats::default();
        for _ in 0..5 {
            s.record(TokenKind::NonControl);
        }
        s.record(TokenKind::Stop);
        s.record(TokenKind::Stop);
        s.record(TokenKind::Done);
        s.record(TokenKind::Idle);
        assert_eq!(s.total(), 9);
        assert_eq!(s.total_tokens(), 8);
        assert_eq!(s.control_tokens(), 3);
        assert_eq!(s.count(TokenKind::Stop), 2);
        assert!((s.control_fraction_non_idle() - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_fractions() {
        let s = TokenStats::default();
        assert_eq!(s.fraction(TokenKind::Idle), 0.0);
        assert_eq!(s.control_fraction_non_idle(), 0.0);
    }

    #[test]
    fn add_combines_counts() {
        let mut a = TokenStats::default();
        a.record(TokenKind::NonControl);
        let mut b = TokenStats::default();
        b.record(TokenKind::Idle);
        b.record(TokenKind::Empty);
        let c = a + b;
        assert_eq!(c.total(), 3);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn display_names() {
        assert_eq!(TokenKind::NonControl.to_string(), "non-control");
        assert_eq!(TokenKind::Idle.to_string(), "idle");
        let s = TokenStats { non_control: 1, stop: 2, empty: 0, done: 1, idle: 3 };
        assert_eq!(s.to_string(), "non-control=1 stop=2 empty=0 done=1 idle=3");
    }
}
