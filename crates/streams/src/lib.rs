//! # sam-streams
//!
//! The token and stream substrate of the Sparse Abstract Machine (SAM).
//!
//! SAM transports tensors between dataflow blocks as *streams*: sequences of
//! tokens that carry one fibertree level at a time, with hierarchical *stop*
//! tokens marking fiber boundaries, *empty* tokens marking missing operands
//! produced by union merges, and a single *done* token terminating the stream
//! (paper Section 3.2).
//!
//! This crate defines:
//!
//! * [`Token`] — the token algebra shared by every stream type,
//! * the payload newtypes [`Crd`], [`Ref`], [`Val`] and [`BitVec`],
//! * [`Stream`] — an owned, finished stream with constructors from and
//!   conversions to nested lists ([`Nested`]),
//! * [`TokenStats`] — per-kind token counting used by the Figure 14
//!   experiment,
//! * [`analysis`] — the level-based vs. point-based encoding comparison of
//!   paper Section 3.8, and
//! * [`chunked`] — bounded chunked channels that move streams between
//!   concurrent operators in segments instead of whole `Vec`s (the
//!   transport behind `sam-exec`'s parallel fast backend).
//!
//! # Example
//!
//! ```
//! use sam_streams::{Stream, Token};
//!
//! // The coordinate stream for the two fibers (1,) and (0, 2):
//! let s: Stream<u32> = Stream::from_nested(&vec![vec![1u32], vec![0, 2]].into());
//! assert_eq!(
//!     s.tokens(),
//!     &[
//!         Token::Val(1),
//!         Token::Stop(0),
//!         Token::Val(0),
//!         Token::Val(2),
//!         Token::Stop(1),
//!         Token::Done,
//!     ]
//! );
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod chunked;
pub mod fiber;
pub mod nested;
pub mod stats;
pub mod stream;
pub mod token;
pub mod types;

pub use nested::Nested;
pub use stats::{TokenKind, TokenStats};
pub use stream::Stream;
pub use token::Token;
pub use types::{BitVec, Crd, Ref, Val};
