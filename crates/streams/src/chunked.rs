//! Chunked, bounded stream channels for pipelined execution.
//!
//! A SAM stream can be arbitrarily long — the whole point of the machine is
//! that operators process it incrementally. This module provides the
//! transport that makes incremental processing concrete: a single-producer,
//! single-consumer channel that moves tokens in fixed-size *chunks* instead
//! of whole `Vec`s, so a producer and its consumer can run concurrently
//! while only a bounded window of the stream is materialized between them.
//!
//! The channel is deliberately simple (a mutex-guarded deque of chunks plus
//! two condition variables) and deliberately forgiving:
//!
//! * **Chunking** amortizes synchronization: the lock is taken once per
//!   [`ChunkConfig::chunk_len`] items, not once per token.
//! * **Backpressure** bounds memory: once [`ChunkConfig::depth`] chunks are
//!   queued, [`ChunkSender::push`] blocks until the consumer drains one —
//!   but only when the consumer has [`ChunkReceiver::attach`]ed. Sends into
//!   a channel whose consumer has not started yet *spill* (the queue grows
//!   past `depth`) rather than stall the producer, which lets a scheduler
//!   run more stream operators than it has threads without deadlocking.
//! * **Deadlock escape**: even an attached consumer can participate in a
//!   wait cycle (two paths of a fork re-joining with more skew than the
//!   channel capacity holds, the classic bounded-Kahn-network hazard). A
//!   blocked sender therefore waits at most [`SPILL_TIMEOUT`] before
//!   spilling the chunk anyway; progress is always possible, at worst at
//!   the memory cost the serial evaluator would have paid.
//!
//! Dropping the sender finishes the stream ([`ChunkReceiver::next`] returns
//! `None` once the queue drains); dropping the receiver detaches it, after
//! which sends are silently discarded so an abandoned producer can wind
//! down without error plumbing.
//!
//! ```
//! use sam_streams::chunked::{channel, ChunkConfig};
//! use std::thread;
//!
//! let (mut tx, mut rx) = channel::<u32>(ChunkConfig::default());
//! rx.attach();
//! thread::scope(|s| {
//!     s.spawn(move || {
//!         for i in 0..10_000 {
//!             tx.push(i);
//!         }
//!         // Dropping `tx` flushes the tail chunk and finishes the stream.
//!     });
//!     let mut sum = 0u64;
//!     while let Some(i) = rx.next() {
//!         sum += u64::from(i);
//!     }
//!     assert_eq!(sum, 10_000 * 9_999 / 2);
//! });
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default number of tokens per chunk.
pub const DEFAULT_CHUNK_LEN: usize = 1024;

/// Default number of in-flight chunks before a sender blocks.
pub const DEFAULT_DEPTH: usize = 8;

/// How long a blocked sender waits for the consumer before spilling the
/// chunk past the configured depth (the bounded-channel deadlock escape).
pub const SPILL_TIMEOUT: Duration = Duration::from_millis(50);

/// Sizing of one chunked channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkConfig {
    /// Tokens per chunk; the sender flushes automatically at this size.
    pub chunk_len: usize,
    /// Chunks buffered before the sender applies backpressure.
    pub depth: usize,
}

impl Default for ChunkConfig {
    fn default() -> Self {
        ChunkConfig { chunk_len: DEFAULT_CHUNK_LEN, depth: DEFAULT_DEPTH }
    }
}

impl ChunkConfig {
    /// A config with the given chunk length and the default depth.
    ///
    /// `chunk_len` is clamped to at least 1.
    pub fn with_chunk_len(chunk_len: usize) -> Self {
        ChunkConfig { chunk_len: chunk_len.max(1), ..ChunkConfig::default() }
    }
}

/// Stall statistics of one instrumented channel (see
/// [`channel_instrumented`]). All fields are atomics so the producer and
/// consumer sides update them without extra locking and an observer can
/// snapshot them after (or during) a run.
///
/// The two blocked durations attribute backpressure: `blocked_send_ns` is
/// time the *producer* spent waiting for queue space (the consumer is the
/// bottleneck), `blocked_recv_ns` is time the *consumer* spent waiting for
/// tokens (the producer is the bottleneck).
#[derive(Debug, Default)]
pub struct ChannelStats {
    /// Nanoseconds the sender spent blocked in [`ChunkSender::flush`]
    /// waiting for queue space.
    pub blocked_send_ns: AtomicU64,
    /// Nanoseconds the receiver spent blocked in [`ChunkReceiver::next`]
    /// waiting for a chunk.
    pub blocked_recv_ns: AtomicU64,
    /// High-water mark of queued chunks.
    pub occupancy_peak: AtomicU64,
    /// Chunks pushed past the configured depth (the deadlock escape).
    pub spills: AtomicU64,
}

impl ChannelStats {
    fn add_blocked_send(&self, since: Instant) {
        let ns = since.elapsed().as_nanos() as u64;
        self.blocked_send_ns.fetch_add(ns, Ordering::Relaxed);
    }

    fn add_blocked_recv(&self, since: Instant) {
        let ns = since.elapsed().as_nanos() as u64;
        self.blocked_recv_ns.fetch_add(ns, Ordering::Relaxed);
    }

    fn note_occupancy(&self, chunks: usize) {
        self.occupancy_peak.fetch_max(chunks as u64, Ordering::Relaxed);
    }
}

/// Queue state shared by one sender/receiver pair.
struct State<T> {
    chunks: VecDeque<Vec<T>>,
    /// The producer dropped its sender; the stream is complete.
    finished: bool,
    /// The consumer started pulling (see [`ChunkReceiver::attach`]).
    attached: bool,
    /// The consumer dropped its receiver; sends are discarded.
    receiver_gone: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled when queue space frees up or the receiver detaches.
    can_send: Condvar,
    /// Signalled when a chunk arrives or the stream finishes.
    can_recv: Condvar,
}

/// The producing half of a chunked channel; created by [`channel`].
///
/// Tokens accumulate in a local buffer and are flushed as one chunk when
/// the buffer fills or the sender is dropped, so pushing is lock-free in
/// the common case.
pub struct ChunkSender<T> {
    shared: Arc<Shared<T>>,
    buf: Vec<T>,
    chunk_len: usize,
    depth: usize,
    /// A previous flush already spilled past `depth` and the queue has not
    /// drained below it since: keep spilling without re-paying the
    /// [`SPILL_TIMEOUT`] wait (one stall per congestion episode, not one
    /// per chunk).
    spilling: bool,
    /// Optional shared spill counter (see [`channel_counted`]): incremented
    /// once per chunk pushed past the configured depth.
    spill_counter: Option<Arc<AtomicU64>>,
    /// Optional per-channel stall stats (see [`channel_instrumented`]).
    stats: Option<Arc<ChannelStats>>,
}

impl<T> ChunkSender<T> {
    /// Appends one token, flushing a full chunk downstream if needed.
    pub fn push(&mut self, item: T) {
        self.buf.push(item);
        if self.buf.len() >= self.chunk_len {
            self.flush();
        }
    }

    /// Sends the locally buffered tokens downstream as a (possibly short)
    /// chunk. A no-op when the buffer is empty.
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let chunk = std::mem::replace(&mut self.buf, Vec::with_capacity(self.chunk_len));
        let mut state = self.shared.state.lock().expect("channel state");
        loop {
            if state.receiver_gone {
                return; // Consumer abandoned the stream; discard.
            }
            if state.chunks.len() < self.depth {
                // The queue drained below depth: normal operation resumes.
                self.spilling = false;
                state.chunks.push_back(chunk);
                self.note_occupancy(state.chunks.len());
                self.shared.can_recv.notify_one();
                return;
            }
            if !state.attached || self.spilling {
                // The consumer has not started (blocking could stall the
                // whole schedule) or this congestion episode already paid
                // its timeout: spill instead of waiting.
                self.note_spill();
                state.chunks.push_back(chunk);
                self.note_occupancy(state.chunks.len());
                self.shared.can_recv.notify_one();
                return;
            }
            let wait_start = self.stats.as_deref().map(|_| Instant::now());
            let (next, timeout) =
                self.shared.can_send.wait_timeout(state, SPILL_TIMEOUT).expect("channel state");
            state = next;
            if let (Some(stats), Some(start)) = (self.stats.as_deref(), wait_start) {
                stats.add_blocked_send(start);
            }
            if timeout.timed_out() {
                // Deadlock escape: accept unbounded growth over a stall.
                self.spilling = true;
                self.note_spill();
                state.chunks.push_back(chunk);
                self.note_occupancy(state.chunks.len());
                self.shared.can_recv.notify_one();
                return;
            }
        }
    }
}

impl<T> ChunkSender<T> {
    /// Records one spill-past-depth escape on the shared counter, if one was
    /// attached at construction.
    fn note_spill(&self) {
        if let Some(counter) = &self.spill_counter {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(stats) = &self.stats {
            stats.spills.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the queue's occupancy high-water mark after a push.
    fn note_occupancy(&self, chunks: usize) {
        if let Some(stats) = &self.stats {
            stats.note_occupancy(chunks);
        }
    }
}

impl<T> std::fmt::Debug for ChunkSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkSender")
            .field("chunk_len", &self.chunk_len)
            .field("depth", &self.depth)
            .field("buffered", &self.buf.len())
            .field("spilling", &self.spilling)
            .finish_non_exhaustive()
    }
}

impl<T> Drop for ChunkSender<T> {
    fn drop(&mut self) {
        self.flush();
        let mut state = self.shared.state.lock().expect("channel state");
        state.finished = true;
        drop(state);
        self.shared.can_recv.notify_one();
    }
}

/// The consuming half of a chunked channel; created by [`channel`].
pub struct ChunkReceiver<T> {
    shared: Arc<Shared<T>>,
    cur: std::vec::IntoIter<T>,
    peeked: Option<T>,
    /// Optional per-channel stall stats (see [`channel_instrumented`]).
    stats: Option<Arc<ChannelStats>>,
}

impl<T> std::fmt::Debug for ChunkReceiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkReceiver")
            .field("buffered", &self.cur.len())
            .field("peeked", &self.peeked.is_some())
            .finish_non_exhaustive()
    }
}

impl<T> ChunkReceiver<T> {
    /// Marks the consumer as running, switching the sender from
    /// spill-on-full to block-on-full. Call when the task that will drain
    /// this receiver actually starts; until then the producer never blocks
    /// on it.
    pub fn attach(&self) {
        let mut state = self.shared.state.lock().expect("channel state");
        state.attached = true;
    }

    /// The next token, blocking until the producer sends one or finishes.
    /// Returns `None` once the stream is complete and drained.
    #[allow(clippy::should_implement_trait)] // mirrors Iterator::next; an Iterator impl is provided too
    pub fn next(&mut self) -> Option<T> {
        if let Some(t) = self.peeked.take() {
            return Some(t);
        }
        if let Some(t) = self.cur.next() {
            return Some(t);
        }
        let mut state = self.shared.state.lock().expect("channel state");
        loop {
            if let Some(chunk) = state.chunks.pop_front() {
                drop(state);
                self.shared.can_send.notify_one();
                self.cur = chunk.into_iter();
                return self.cur.next();
            }
            if state.finished {
                return None;
            }
            let wait_start = self.stats.as_deref().map(|_| Instant::now());
            state = self.shared.can_recv.wait(state).expect("channel state");
            if let (Some(stats), Some(start)) = (self.stats.as_deref(), wait_start) {
                stats.add_blocked_recv(start);
            }
        }
    }

    /// The next token without consuming it, blocking like [`Self::next`].
    pub fn peek(&mut self) -> Option<&T> {
        if self.peeked.is_none() {
            self.peeked = self.next();
        }
        self.peeked.as_ref()
    }
}

impl<T> Iterator for ChunkReceiver<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        ChunkReceiver::next(self)
    }
}

impl<T> Drop for ChunkReceiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel state");
        state.receiver_gone = true;
        state.chunks.clear();
        drop(state);
        self.shared.can_send.notify_one();
    }
}

/// Creates a chunked single-producer single-consumer channel.
pub fn channel<T>(config: ChunkConfig) -> (ChunkSender<T>, ChunkReceiver<T>) {
    channel_inner(config, None, None)
}

/// Like [`channel`], but every chunk pushed past the configured depth (the
/// spill-past-depth deadlock escape, whether because the consumer has not
/// attached yet or because an attached consumer stalled past
/// [`SPILL_TIMEOUT`]) increments `spill_counter`. The counter is shared, so
/// one counter can aggregate the spill events of a whole channel topology —
/// the observability hook the executor's `Execution::spills` reports.
pub fn channel_counted<T>(
    config: ChunkConfig,
    spill_counter: Arc<AtomicU64>,
) -> (ChunkSender<T>, ChunkReceiver<T>) {
    channel_inner(config, Some(spill_counter), None)
}

/// Like [`channel_counted`], but additionally records per-channel stall
/// statistics into `stats`: how long the sender blocked waiting for queue
/// space, how long the receiver blocked waiting for tokens, the occupancy
/// high-water mark, and the channel's own spill count. This is the
/// executor's stall-attribution hook; the timing calls only happen on the
/// (rare) blocked paths plus one `fetch_max` per flushed chunk, so an
/// instrumented channel stays cheap even on hot streams.
pub fn channel_instrumented<T>(
    config: ChunkConfig,
    spill_counter: Arc<AtomicU64>,
    stats: Arc<ChannelStats>,
) -> (ChunkSender<T>, ChunkReceiver<T>) {
    channel_inner(config, Some(spill_counter), Some(stats))
}

fn channel_inner<T>(
    config: ChunkConfig,
    spill_counter: Option<Arc<AtomicU64>>,
    stats: Option<Arc<ChannelStats>>,
) -> (ChunkSender<T>, ChunkReceiver<T>) {
    let chunk_len = config.chunk_len.max(1);
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            chunks: VecDeque::new(),
            finished: false,
            attached: false,
            receiver_gone: false,
        }),
        can_send: Condvar::new(),
        can_recv: Condvar::new(),
    });
    let sender = ChunkSender {
        shared: Arc::clone(&shared),
        buf: Vec::with_capacity(chunk_len),
        chunk_len,
        depth: config.depth.max(1),
        spilling: false,
        spill_counter,
        stats: stats.clone(),
    };
    let receiver = ChunkReceiver { shared, cur: Vec::new().into_iter(), peeked: None, stats };
    (sender, receiver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn round_trips_in_order() {
        let (mut tx, mut rx) = channel::<usize>(ChunkConfig::with_chunk_len(4));
        for i in 0..11 {
            tx.push(i);
        }
        drop(tx);
        let got: Vec<usize> = rx.by_ref().collect();
        assert_eq!(got, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn receiver_sees_end_of_stream_once() {
        let (tx, mut rx) = channel::<u8>(ChunkConfig::default());
        drop(tx);
        assert_eq!(rx.next(), None);
        assert_eq!(rx.next(), None);
    }

    #[test]
    fn peek_does_not_consume() {
        let (mut tx, mut rx) = channel::<u8>(ChunkConfig::default());
        tx.push(7);
        tx.push(8);
        drop(tx);
        assert_eq!(rx.peek(), Some(&7));
        assert_eq!(rx.peek(), Some(&7));
        assert_eq!(rx.next(), Some(7));
        assert_eq!(rx.next(), Some(8));
        assert_eq!(rx.peek(), None);
        assert_eq!(rx.next(), None);
    }

    #[test]
    fn unattached_consumer_never_blocks_the_producer() {
        // depth 1, many chunks: without the spill rule this would deadlock.
        let (mut tx, mut rx) = channel::<usize>(ChunkConfig { chunk_len: 2, depth: 1 });
        for i in 0..100 {
            tx.push(i);
        }
        drop(tx);
        assert_eq!(rx.by_ref().count(), 100);
    }

    #[test]
    fn spill_counter_counts_past_depth_chunks() {
        let counter = Arc::new(AtomicU64::new(0));
        // depth 1, chunk 2: the first chunk fills the queue, every further
        // chunk (including the short tail flushed on drop) spills.
        let (mut tx, mut rx) =
            channel_counted::<usize>(ChunkConfig { chunk_len: 2, depth: 1 }, Arc::clone(&counter));
        for i in 0..9 {
            tx.push(i);
        }
        drop(tx);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
        assert_eq!(rx.by_ref().count(), 9);

        // A channel deep enough for the whole stream never spills,
        // regardless of consumer scheduling.
        let counter = Arc::new(AtomicU64::new(0));
        let (mut tx, mut rx) =
            channel_counted::<usize>(ChunkConfig { chunk_len: 2, depth: 512 }, Arc::clone(&counter));
        rx.attach();
        thread::scope(|s| {
            s.spawn(move || {
                for i in 0..1000 {
                    tx.push(i);
                }
            });
            assert_eq!(rx.by_ref().count(), 1000);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn instrumented_channel_records_occupancy_spills_and_recv_waits() {
        let counter = Arc::new(AtomicU64::new(0));
        let stats = Arc::new(ChannelStats::default());
        // Unattached consumer: chunks past depth spill and stack up, so the
        // occupancy peak exceeds the depth and spills are recorded in both
        // the shared counter and the channel's own stats.
        let (mut tx, mut rx) = channel_instrumented::<usize>(
            ChunkConfig { chunk_len: 2, depth: 1 },
            Arc::clone(&counter),
            Arc::clone(&stats),
        );
        for i in 0..8 {
            tx.push(i);
        }
        drop(tx);
        assert_eq!(rx.by_ref().count(), 8);
        assert_eq!(stats.spills.load(Ordering::Relaxed), 3);
        assert_eq!(counter.load(Ordering::Relaxed), 3);
        assert!(stats.occupancy_peak.load(Ordering::Relaxed) >= 2);
        // No one ever blocked: the producer spilled, the consumer always
        // found chunks queued.
        assert_eq!(stats.blocked_send_ns.load(Ordering::Relaxed), 0);

        // A consumer that outpaces its producer accumulates blocked-recv
        // time while it waits for the next chunk.
        let stats = Arc::new(ChannelStats::default());
        let (mut tx, mut rx) = channel_instrumented::<usize>(
            ChunkConfig { chunk_len: 1, depth: 4 },
            Arc::new(AtomicU64::new(0)),
            Arc::clone(&stats),
        );
        rx.attach();
        thread::scope(|s| {
            s.spawn(move || {
                thread::sleep(Duration::from_millis(5));
                tx.push(1);
            });
            assert_eq!(rx.next(), Some(1));
            assert_eq!(rx.next(), None);
        });
        assert!(stats.blocked_recv_ns.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn dropped_receiver_discards_sends() {
        let (mut tx, rx) = channel::<usize>(ChunkConfig { chunk_len: 1, depth: 1 });
        drop(rx);
        for i in 0..100 {
            tx.push(i); // Must neither block nor panic.
        }
    }

    #[test]
    fn pipelines_across_threads() {
        let (mut tx, mut rx) = channel::<u64>(ChunkConfig { chunk_len: 64, depth: 2 });
        rx.attach();
        thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100_000u64 {
                    tx.push(i);
                }
            });
            let mut expect = 0u64;
            while let Some(i) = rx.next() {
                assert_eq!(i, expect);
                expect += 1;
            }
            assert_eq!(expect, 100_000);
        });
    }
}
