//! Level-based versus point-based stream encoding analysis (paper
//! Section 3.8, "Level-Based Stream Representation").
//!
//! SAM streams tensors level by level with hierarchical stop tokens. The
//! alternative the paper analyzes is a *point-based* representation that
//! streams flattened coordinate tuples `(i, j, value)` with no control
//! tokens. This module implements both token-count models and the break-even
//! inequality the paper derives: for matrices, the level-based encoding
//! processes fewer tokens whenever the average number of nonzeros per
//! nonempty row exceeds roughly four.

use serde::{Deserialize, Serialize};

/// Shape statistics of a sparse matrix needed by the encoding comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatrixShapeStats {
    /// Number of rows in the matrix (`dim_Bi`).
    pub rows: u64,
    /// Number of rows that contain at least one nonzero (`nnr_B`).
    pub nonempty_rows: u64,
    /// Number of stored nonzeros (`nnz_B`).
    pub nnz: u64,
}

impl MatrixShapeStats {
    /// Creates shape statistics, validating basic consistency.
    ///
    /// # Panics
    ///
    /// Panics when `nonempty_rows > rows` or `nonempty_rows > nnz`.
    pub fn new(rows: u64, nonempty_rows: u64, nnz: u64) -> Self {
        assert!(nonempty_rows <= rows, "more nonempty rows than rows");
        assert!(nnz == 0 || nonempty_rows <= nnz, "more nonempty rows than nonzeros");
        MatrixShapeStats { rows, nonempty_rows, nnz }
    }

    /// Average number of nonzeros per nonempty row.
    pub fn avg_nnz_per_row(&self) -> f64 {
        if self.nonempty_rows == 0 {
            0.0
        } else {
            self.nnz as f64 / self.nonempty_rows as f64
        }
    }
}

/// Token-count estimate for both encodings of a matrix, using the paper's
/// worst-case control-token fraction `c`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncodingComparison {
    /// Tokens processed by the point-based `(i, j, value)` encoding:
    /// `3 * nnz`.
    pub point_based_tokens: f64,
    /// Tokens processed by the level-based encoding:
    /// `(1 + c) * nnr + 2 * (1 + c) * nnz`.
    pub level_based_tokens: f64,
    /// The control-token fraction `c` used for the level-based estimate.
    pub control_fraction: f64,
}

impl EncodingComparison {
    /// True when the level-based encoding processes no more tokens than the
    /// point-based one.
    pub fn level_based_wins(&self) -> bool {
        self.level_based_tokens <= self.point_based_tokens
    }
}

/// The worst-case control-token fraction measured in the paper's Figure 14
/// analysis (33.26% stop tokens, i.e. `c = 0.3326`).
pub const WORST_CASE_CONTROL_FRACTION: f64 = 0.3326;

/// Compares the two encodings for a matrix with the given shape statistics.
///
/// ```
/// use sam_streams::analysis::{compare_encodings, MatrixShapeStats, WORST_CASE_CONTROL_FRACTION};
/// // 5 nonzeros per row: comfortably above the ~4x break-even point.
/// let stats = MatrixShapeStats::new(1000, 1000, 5000);
/// let cmp = compare_encodings(stats, WORST_CASE_CONTROL_FRACTION);
/// assert!(cmp.level_based_wins());
/// ```
pub fn compare_encodings(stats: MatrixShapeStats, control_fraction: f64) -> EncodingComparison {
    let c = control_fraction;
    EncodingComparison {
        point_based_tokens: 3.0 * stats.nnz as f64,
        level_based_tokens: (1.0 + c) * stats.nonempty_rows as f64 + 2.0 * (1.0 + c) * stats.nnz as f64,
        control_fraction: c,
    }
}

/// The break-even average-nonzeros-per-row threshold derived in Section 3.8:
/// level-based streaming processes fewer tokens when
/// `nnz > threshold * rows`. With the worst-case control fraction the paper
/// reports the threshold as `3.98`.
pub fn break_even_nnz_per_row(control_fraction: f64) -> f64 {
    // 3 * nnz > (1 + c) * rows + 2 * (1 + c) * nnz
    //   =>  nnz * (3 - 2 * (1 + c)) > (1 + c) * rows
    //   =>  nnz / rows > (1 + c) / (1 - 2c)
    let c = control_fraction;
    let denom = 1.0 - 2.0 * c;
    assert!(denom > 0.0, "control fraction too large for a finite break-even point");
    (1.0 + c) / denom
}

/// Token counts for the exact (not worst-case-modelled) level-based encoding
/// of a two-level (matrix) fibertree: one token per nonempty row coordinate,
/// one per nonzero coordinate, one per nonzero value, plus stop and done
/// tokens on all three streams.
pub fn exact_level_based_tokens(stats: &MatrixShapeStats) -> u64 {
    // Outer coordinate stream: nnr data + 1 stop + 1 done.
    let outer = stats.nonempty_rows + 2;
    // Inner coordinate stream: nnz data + nnr stops (one per row fiber,
    // the last merged into a higher-level stop) + 1 done.
    let inner = stats.nnz + stats.nonempty_rows + 1;
    // Value stream mirrors the inner coordinate stream.
    let vals = stats.nnz + stats.nonempty_rows + 1;
    outer + inner + vals
}

/// Token counts for the point-based encoding of the same matrix:
/// three tokens per nonzero plus a done token.
pub fn exact_point_based_tokens(stats: &MatrixShapeStats) -> u64 {
    3 * stats.nnz + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_break_even_threshold() {
        let t = break_even_nnz_per_row(WORST_CASE_CONTROL_FRACTION);
        // The paper rounds this to 3.98.
        assert!((t - 3.98).abs() < 0.01, "threshold was {t}");
    }

    #[test]
    fn dense_rows_prefer_level_based() {
        let stats = MatrixShapeStats::new(100, 100, 1000); // 10 nnz/row
        let cmp = compare_encodings(stats, WORST_CASE_CONTROL_FRACTION);
        assert!(cmp.level_based_wins());
    }

    #[test]
    fn hypersparse_rows_prefer_point_based() {
        let stats = MatrixShapeStats::new(1000, 1000, 1000); // 1 nnz/row
        let cmp = compare_encodings(stats, WORST_CASE_CONTROL_FRACTION);
        assert!(!cmp.level_based_wins());
    }

    #[test]
    fn break_even_matches_comparison() {
        let c = WORST_CASE_CONTROL_FRACTION;
        let threshold = break_even_nnz_per_row(c);
        let rows = 1_000u64;
        let just_above = (threshold * rows as f64).ceil() as u64 + rows;
        let stats = MatrixShapeStats::new(rows, rows, just_above);
        assert!(compare_encodings(stats, c).level_based_wins());
        let just_below = (threshold * rows as f64 * 0.5) as u64;
        let stats = MatrixShapeStats::new(rows, rows, just_below.max(rows));
        assert!(!compare_encodings(stats, c).level_based_wins());
    }

    #[test]
    fn exact_counts_are_consistent() {
        let stats = MatrixShapeStats::new(4, 3, 5);
        // Outer: 3 + 2 = 5; inner: 5 + 3 + 1 = 9; vals: 9 => 23.
        assert_eq!(exact_level_based_tokens(&stats), 23);
        assert_eq!(exact_point_based_tokens(&stats), 16);
    }

    #[test]
    fn avg_nnz_per_row() {
        let stats = MatrixShapeStats::new(10, 4, 12);
        assert!((stats.avg_nnz_per_row() - 3.0).abs() < 1e-12);
        let empty = MatrixShapeStats::new(10, 0, 0);
        assert_eq!(empty.avg_nnz_per_row(), 0.0);
    }

    #[test]
    #[should_panic(expected = "more nonempty rows than rows")]
    fn invalid_shape_rejected() {
        let _ = MatrixShapeStats::new(3, 4, 10);
    }
}
