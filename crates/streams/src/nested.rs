//! Nested-list interpretation of SAM streams.
//!
//! Paper Section 3.2: "Streams can be interpreted as variable-length nested
//! lists where each stop token represents a parenthesis." [`Nested`] is that
//! interpretation; it is used for readable test fixtures and for converting
//! between streams and fibertree levels.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A variable-depth nested list of payloads.
///
/// A stream carrying a single flat fiber corresponds to [`Nested::List`] of
/// [`Nested::Leaf`] items; each extra level of stop-token hierarchy adds one
/// level of list nesting.
///
/// ```
/// use sam_streams::Nested;
/// let n: Nested<u32> = vec![vec![1, 2], vec![3]].into();
/// assert_eq!(n.depth(), 2);
/// assert_eq!(n.leaves(), vec![1, 2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Nested<T> {
    /// A single payload.
    Leaf(T),
    /// An ordered collection of sub-structures.
    List(Vec<Nested<T>>),
}

impl<T: Clone> Nested<T> {
    /// All leaf payloads in left-to-right order.
    pub fn leaves(&self) -> Vec<T> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<T>) {
        match self {
            Nested::Leaf(v) => out.push(v.clone()),
            Nested::List(items) => {
                for item in items {
                    item.collect_leaves(out);
                }
            }
        }
    }
}

impl<T> Nested<T> {
    /// Nesting depth: a leaf has depth 0, a list is one deeper than its
    /// deepest child (an empty list has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Nested::Leaf(_) => 0,
            Nested::List(items) => 1 + items.iter().map(Nested::depth).max().unwrap_or(0),
        }
    }

    /// Number of leaves.
    pub fn len_leaves(&self) -> usize {
        match self {
            Nested::Leaf(_) => 1,
            Nested::List(items) => items.iter().map(Nested::len_leaves).sum(),
        }
    }

    /// Whether this structure contains no leaves.
    pub fn is_empty(&self) -> bool {
        self.len_leaves() == 0
    }
}

impl<T> From<Vec<T>> for Nested<T> {
    fn from(v: Vec<T>) -> Self {
        Nested::List(v.into_iter().map(Nested::Leaf).collect())
    }
}

impl<T> From<Vec<Vec<T>>> for Nested<T> {
    fn from(v: Vec<Vec<T>>) -> Self {
        Nested::List(v.into_iter().map(Nested::from).collect())
    }
}

impl<T> From<Vec<Vec<Vec<T>>>> for Nested<T> {
    fn from(v: Vec<Vec<Vec<T>>>) -> Self {
        Nested::List(v.into_iter().map(Nested::from).collect())
    }
}

impl<T, const N: usize> From<[Vec<T>; N]> for Nested<T> {
    fn from(v: [Vec<T>; N]) -> Self {
        Nested::List(v.into_iter().map(Nested::from).collect())
    }
}

impl<T, const N: usize> From<&[Vec<T>; N]> for Nested<T>
where
    T: Clone,
{
    fn from(v: &[Vec<T>; N]) -> Self {
        Nested::List(v.iter().cloned().map(Nested::from).collect())
    }
}

impl<T: fmt::Display> fmt::Display for Nested<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Nested::Leaf(v) => write!(f, "{v}"),
            Nested::List(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_and_leaves() {
        let n: Nested<u32> = vec![vec![1, 2], vec![], vec![3]].into();
        assert_eq!(n.depth(), 2);
        assert_eq!(n.len_leaves(), 3);
        assert_eq!(n.leaves(), vec![1, 2, 3]);
        assert!(!n.is_empty());
        let empty: Nested<u32> = Nested::List(vec![]);
        assert!(empty.is_empty());
    }

    #[test]
    fn display_uses_parentheses() {
        // Matches the paper's value-level example ((1), (2, 3), (4, 5)).
        let n: Nested<u32> = vec![vec![1], vec![2, 3], vec![4, 5]].into();
        assert_eq!(format!("{n}"), "((1), (2, 3), (4, 5))");
    }

    #[test]
    fn three_level_conversion() {
        let n: Nested<u32> = vec![vec![vec![1], vec![2]], vec![vec![3]]].into();
        assert_eq!(n.depth(), 3);
        assert_eq!(n.leaves(), vec![1, 2, 3]);
    }
}
