//! Owned, finished SAM streams.

use crate::nested::Nested;
use crate::stats::TokenStats;
use crate::token::Token;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A complete SAM stream: a token sequence terminated by a single
/// [`Token::Done`].
///
/// [`Stream`] is the *at rest* representation used to build block inputs, to
/// check block outputs and to convert to and from the nested-list
/// interpretation. During simulation tokens flow through channels one at a
/// time (see the `sam-sim` crate); a [`Stream`] is what a channel has carried
/// once the graph has quiesced.
///
/// ```
/// use sam_streams::Stream;
/// let s: Stream<u32> = Stream::from_nested(&vec![vec![1u32], vec![0, 2]].into());
/// assert_eq!(s.to_nested(), vec![vec![1u32], vec![0, 2]].into());
/// assert_eq!(s.data_len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stream<T> {
    tokens: Vec<Token<T>>,
}

impl<T> Default for Stream<T> {
    fn default() -> Self {
        Stream { tokens: Vec::new() }
    }
}

impl<T> Stream<T> {
    /// An empty (zero-token) stream. Note this is *not* a valid finished
    /// stream: a finished stream ends with a done token — see
    /// [`Stream::empty_done`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The stream consisting of a single done token (an empty tensor level).
    pub fn empty_done() -> Self {
        Stream { tokens: vec![Token::Done] }
    }

    /// Builds a stream directly from tokens.
    pub fn from_tokens(tokens: Vec<Token<T>>) -> Self {
        Stream { tokens }
    }

    /// The underlying token sequence.
    pub fn tokens(&self) -> &[Token<T>] {
        &self.tokens
    }

    /// Consumes the stream, returning its tokens.
    pub fn into_tokens(self) -> Vec<Token<T>> {
        self.tokens
    }

    /// Appends a token.
    pub fn push(&mut self, token: Token<T>) {
        self.tokens.push(token);
    }

    /// Total number of tokens, including control tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the stream holds no tokens at all.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Number of data (non-control) tokens.
    pub fn data_len(&self) -> usize {
        self.tokens.iter().filter(|t| !t.is_control()).count()
    }

    /// Token-kind statistics for this stream (stop/empty/done/data counts).
    pub fn stats(&self) -> TokenStats {
        let mut stats = TokenStats::default();
        for t in &self.tokens {
            stats.record(t.kind());
        }
        stats
    }

    /// Checks structural validity: exactly one done token, placed last.
    pub fn is_finished(&self) -> bool {
        let dones = self.tokens.iter().filter(|t| t.is_done()).count();
        dones == 1 && self.tokens.last().map(Token::is_done).unwrap_or(false)
    }

    /// Iterator over data payloads, skipping control tokens.
    pub fn data_iter(&self) -> impl Iterator<Item = &T> {
        self.tokens.iter().filter_map(Token::value_ref)
    }

    /// The maximum stop level present, if any.
    pub fn max_stop_level(&self) -> Option<u8> {
        self.tokens.iter().filter_map(Token::stop_level).max()
    }

    /// Maps payloads to another type, preserving control tokens.
    pub fn map<U, F: FnMut(T) -> U>(self, mut f: F) -> Stream<U> {
        Stream { tokens: self.tokens.into_iter().map(|t| t.map(&mut f)).collect() }
    }
}

impl<T: Clone> Stream<T> {
    /// Encodes a nested list as a stream with hierarchical stop tokens and a
    /// final done token (paper Figure 1d).
    ///
    /// Fiber-closing rule: closing a fiber increments the trailing stop token
    /// produced by its last child when one exists; an empty fiber or a fiber
    /// ending in a data token appends a fresh `Stop(0)`. This reproduces both
    /// the hierarchical stops of Figure 1d and the consecutive `S0, S0`
    /// produced by empty fibers in Figure 8.
    pub fn from_nested(nested: &Nested<T>) -> Self {
        let mut tokens = Vec::new();
        match nested {
            Nested::Leaf(v) => {
                // A rank-0 (scalar) stream: a single value then done.
                tokens.push(Token::Val(v.clone()));
            }
            Nested::List(items) => {
                encode_fiber(items, &mut tokens);
            }
        }
        tokens.push(Token::Done);
        Stream { tokens }
    }

    /// Decodes the stream back into a nested list.
    ///
    /// The nesting depth is inferred from the maximum stop level; a stream
    /// with no stop tokens decodes to a flat list of its data tokens.
    ///
    /// # Panics
    ///
    /// Panics if the stream is not a structurally valid finished stream
    /// (mismatched stop levels or missing done token).
    pub fn to_nested(&self) -> Nested<T> {
        assert!(self.is_finished(), "to_nested requires a finished stream");
        let depth = self.max_stop_level().map(|l| l as usize + 1).unwrap_or(1);
        // stack[0] is a virtual root holder; stack[1..=depth] are open fibers.
        let mut stack: Vec<Vec<Nested<T>>> = vec![Vec::new(); depth + 1];
        for t in &self.tokens {
            match t {
                Token::Val(v) => stack.last_mut().expect("stack").push(Nested::Leaf(v.clone())),
                Token::Empty => {
                    // Empty tokens have no place in a materialized tensor level;
                    // they only appear on post-union operand streams. Represent
                    // them as an empty sub-list so round-trips stay lossless in
                    // shape.
                    stack.last_mut().expect("stack").push(Nested::List(Vec::new()));
                }
                Token::Stop(n) => {
                    let closes = *n as usize + 1;
                    assert!(closes < stack.len(), "stop level {n} exceeds stream depth");
                    for _ in 0..closes {
                        let fiber = stack.pop().expect("stack underflow");
                        stack.last_mut().expect("stack").push(Nested::List(fiber));
                    }
                    for _ in 0..closes {
                        stack.push(Vec::new());
                    }
                }
                Token::Done => break,
            }
        }
        // Discard the re-opened (and normally empty) fibers; a flat stream
        // with no trailing stop instead flushes its data downwards.
        while stack.len() > 1 {
            let top = stack.pop().expect("stack");
            if !top.is_empty() {
                stack.last_mut().expect("stack").push(Nested::List(top));
            }
        }
        let mut root = stack.pop().expect("root");
        if root.len() == 1 {
            root.pop().expect("single root")
        } else {
            // A stream with no stop tokens (flat data then done).
            Nested::List(root)
        }
    }
}

/// Encodes one fiber's children into `tokens` and closes the fiber.
fn encode_fiber<T: Clone>(items: &[Nested<T>], tokens: &mut Vec<Token<T>>) {
    let before = tokens.len();
    for item in items {
        match item {
            Nested::Leaf(v) => tokens.push(Token::Val(v.clone())),
            Nested::List(children) => encode_fiber(children, tokens),
        }
    }
    let emitted = tokens.len() > before;
    match tokens.last_mut() {
        Some(Token::Stop(n)) if emitted => *n += 1,
        _ => tokens.push(Token::Stop(0)),
    }
}

impl<T: fmt::Display> Stream<T> {
    /// Renders the stream in the paper's right-to-left figure notation, e.g.
    /// `"D, S1, 3, 1, S0, 2, 0, S0, 1"` (time increases from right to left).
    pub fn to_paper_string(&self) -> String {
        let mut parts: Vec<String> = self.tokens.iter().map(|t| t.to_string()).collect();
        parts.reverse();
        parts.join(", ")
    }
}

impl<T: FromStr> Stream<T> {
    /// Parses the paper's right-to-left figure notation, the inverse of
    /// [`Stream::to_paper_string`].
    ///
    /// # Errors
    ///
    /// Returns an error string naming the first token that failed to parse.
    ///
    /// ```
    /// use sam_streams::{Stream, Crd};
    /// let s: Stream<u32> = Stream::parse_paper("D, S0, 3, 1, 0").unwrap();
    /// assert_eq!(s.data_len(), 3);
    /// ```
    pub fn parse_paper(text: &str) -> Result<Self, String> {
        let mut tokens = Vec::new();
        for raw in text.split(',') {
            let piece = raw.trim();
            if piece.is_empty() {
                continue;
            }
            let token = if piece == "D" {
                Token::Done
            } else if piece == "N" {
                Token::Empty
            } else if let Some(level) = piece.strip_prefix('S') {
                let n: u8 = level.parse().map_err(|_| format!("bad stop token `{piece}`"))?;
                Token::Stop(n)
            } else {
                let v: T = piece.parse().map_err(|_| format!("bad data token `{piece}`"))?;
                Token::Val(v)
            };
            tokens.push(token);
        }
        tokens.reverse();
        Ok(Stream { tokens })
    }
}

impl<T> FromIterator<Token<T>> for Stream<T> {
    fn from_iter<I: IntoIterator<Item = Token<T>>>(iter: I) -> Self {
        Stream { tokens: iter.into_iter().collect() }
    }
}

impl<T> Extend<Token<T>> for Stream<T> {
    fn extend<I: IntoIterator<Item = Token<T>>>(&mut self, iter: I) {
        self.tokens.extend(iter);
    }
}

impl<T> IntoIterator for Stream<T> {
    type Item = Token<T>;
    type IntoIter = std::vec::IntoIter<Token<T>>;
    fn into_iter(self) -> Self::IntoIter {
        self.tokens.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a Stream<T> {
    type Item = &'a Token<T>;
    type IntoIter = std::slice::Iter<'a, Token<T>>;
    fn into_iter(self) -> Self::IntoIter {
        self.tokens.iter()
    }
}

impl<T: fmt::Display> fmt::Display for Stream<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_paper_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Crd, Val};

    fn crd_nested(v: Vec<Vec<u32>>) -> Nested<Crd> {
        Nested::List(
            v.into_iter()
                .map(|f| Nested::List(f.into_iter().map(|c| Nested::Leaf(Crd(c))).collect()))
                .collect(),
        )
    }

    #[test]
    fn figure1d_bi_stream() {
        // Outer level of the Figure 1 matrix: coordinates 0, 1, 3.
        let s = Stream::from_nested(&Nested::from(vec![Crd(0), Crd(1), Crd(3)]));
        assert_eq!(s.to_paper_string(), "D, S0, 3, 1, 0");
    }

    #[test]
    fn figure1d_bj_stream() {
        // Inner level: fibers (1), (0, 2), (1, 3).
        let s = Stream::from_nested(&crd_nested(vec![vec![1], vec![0, 2], vec![1, 3]]));
        assert_eq!(s.to_paper_string(), "D, S1, 3, 1, S0, 2, 0, S0, 1");
    }

    #[test]
    fn figure1d_value_stream() {
        let s = Stream::from_nested(&Nested::<Val>::from(vec![
            vec![Val(1.0)],
            vec![Val(2.0), Val(3.0)],
            vec![Val(4.0), Val(5.0)],
        ]));
        assert_eq!(s.to_paper_string(), "D, S1, 5, 4, S0, 3, 2, S0, 1");
    }

    #[test]
    fn empty_fiber_keeps_separate_stops() {
        // Figure 8's input has an empty inner fiber between two nonempty ones.
        let s = Stream::from_nested(&crd_nested(vec![vec![1], vec![0, 2], vec![], vec![1, 3]]));
        assert_eq!(s.to_paper_string(), "D, S1, 3, 1, S0, S0, 2, 0, S0, 1");
    }

    #[test]
    fn nested_roundtrip() {
        let n = crd_nested(vec![vec![1], vec![0, 2], vec![], vec![1, 3]]);
        let s = Stream::from_nested(&n);
        assert_eq!(s.to_nested(), n);
    }

    #[test]
    fn three_level_roundtrip() {
        let n: Nested<Crd> = Nested::List(vec![
            Nested::List(vec![
                Nested::List(vec![Nested::Leaf(Crd(1)), Nested::Leaf(Crd(2))]),
                Nested::List(vec![Nested::Leaf(Crd(3))]),
            ]),
            Nested::List(vec![Nested::List(vec![Nested::Leaf(Crd(4))])]),
        ]);
        let s = Stream::from_nested(&n);
        assert_eq!(s.max_stop_level(), Some(2));
        assert_eq!(s.to_nested(), n);
    }

    #[test]
    fn parse_paper_roundtrip() {
        let text = "D, S1, 3, 1, S0, 2, 0, S0, 1";
        let s: Stream<u32> = Stream::parse_paper(text).unwrap();
        assert_eq!(s.to_paper_string(), text);
        assert!(s.is_finished());
    }

    #[test]
    fn parse_paper_rejects_garbage() {
        assert!(Stream::<u32>::parse_paper("D, S0, x").is_err());
        assert!(Stream::<u32>::parse_paper("D, Sx, 1").is_err());
    }

    #[test]
    fn parse_paper_empty_token() {
        let s: Stream<u32> = Stream::parse_paper("D, S0, N, 4, 3").unwrap();
        assert_eq!(s.stats().empty, 1);
        assert_eq!(s.data_len(), 2);
    }

    #[test]
    fn stats_and_lengths() {
        let s: Stream<u32> = Stream::parse_paper("D, S1, 5, 4, S0, 3, 2, S0, 1").unwrap();
        let stats = s.stats();
        assert_eq!(stats.non_control, 5);
        assert_eq!(stats.stop, 3);
        assert_eq!(stats.done, 1);
        assert_eq!(s.len(), 9);
        assert_eq!(s.data_len(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn scalar_stream() {
        let s = Stream::from_nested(&Nested::Leaf(Val(5.0)));
        assert_eq!(s.tokens(), &[Token::Val(Val(5.0)), Token::Done]);
    }

    #[test]
    fn empty_done_is_finished() {
        let s = Stream::<Crd>::empty_done();
        assert!(s.is_finished());
        assert_eq!(s.data_len(), 0);
    }

    #[test]
    fn unfinished_stream_detected() {
        let mut s = Stream::<Crd>::new();
        s.push(Token::Val(Crd(1)));
        assert!(!s.is_finished());
        s.push(Token::Done);
        assert!(s.is_finished());
    }

    #[test]
    fn map_preserves_control() {
        let s: Stream<u32> = Stream::parse_paper("D, S0, 3, 1, 0").unwrap();
        let mapped: Stream<Crd> = s.map(Crd);
        assert_eq!(mapped.to_paper_string(), "D, S0, 3, 1, 0");
    }

    #[test]
    fn flat_no_stop_stream_decodes_to_flat_list() {
        let s = Stream::from_tokens(vec![Token::Val(Crd(7)), Token::Done]);
        assert_eq!(s.to_nested(), Nested::List(vec![Nested::Leaf(Crd(7))]));
    }
}
