//! Regenerates Figure 15 (finite-memory ExTensor study): the closed-form
//! model of `sam-memory` next to a *measured* sweep on the tiled executor
//! backend, plus the sparse-tile-skipping ablation.
//!
//! Modes:
//!
//! * default — the full analytic sweep, a measured sweep over the paper's
//!   dimension axis at two nonzero counts, and the skipping study;
//! * `--full` — the measured sweep at all four of the paper's nonzero
//!   counts (slow: millions of tile executions at the large dimensions);
//! * `--smoke` — a scaled-down measured sweep for CI; also merges the
//!   measured memory counters into `BENCH_exec.json` (next to the
//!   workspace `Cargo.lock`) so the benchmark artifact carries them.

use sam_bench::{merge_json_group, workspace_root};
use sam_memory::{MemoryConfig, MemoryCounters};

fn counter_metrics(prefix: &str, m: &MemoryCounters, out: &mut Vec<(String, f64)>) {
    out.push((format!("{prefix}_dram_bytes"), m.dram_bytes as f64));
    out.push((format!("{prefix}_llb_peak_bytes"), m.llb_peak_bytes as f64));
    out.push((format!("{prefix}_tiles_skipped"), m.tiles_skipped as f64));
    out.push((format!("{prefix}_tiles_executed"), m.tiles_executed as f64));
    out.push((format!("{prefix}_spill_events"), m.spill_events as f64));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let full = args.iter().any(|a| a == "--full");

    if smoke {
        // CI-sized: small dimensions, a tile and LLB scaled to match, and
        // an LLB smaller than the working set for the skipping study.
        let config = MemoryConfig { tile: 32, llb_bytes: 16 * 1024, ..MemoryConfig::default() };
        // One measured sweep serves both the table and the ratio gate.
        let points = sam_bench::figure15_measured_points(&[256, 512, 768], &[2000], &config);
        print!("{}", sam_bench::figure15_measured_table(&points, &config));
        // The gate on the refitted compute-cycle model: the analytic
        // estimate must track the measured machine within a sane band at
        // every smoke point (the pre-refit term undercounted ~20x here).
        for cmp in points {
            let r = cmp.cycle_ratio;
            if !(0.25..=4.0).contains(&r) {
                eprintln!(
                    "fig15 --smoke: measured/analytic cycle ratio {:.2} at dim={} escapes [0.25, 4]",
                    r, cmp.analytic.dim
                );
                std::process::exit(1);
            }
        }
        println!("\ncycle model check: all smoke points within 4x of measured");
        // Sparse enough that ~20% of tiles are empty, with an LLB smaller
        // than the operand working set so skipped fetches are real savings.
        let study_config = MemoryConfig { tile: 32, llb_bytes: 4096, ..MemoryConfig::default() };
        let (study, skip, noskip) = sam_bench::figure15_skipping_study(512, 400, &study_config);
        println!();
        print!("{study}");

        let mut metrics: Vec<(String, f64)> = Vec::new();
        counter_metrics("skip", &skip, &mut metrics);
        counter_metrics("noskip", &noskip, &mut metrics);
        let path = workspace_root().join("BENCH_exec.json");
        let refs: Vec<(&str, f64)> = metrics.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        match merge_json_group(&path, "fig15_memory", &refs) {
            Ok(()) => println!("\nmerged fig15 memory counters into {}", path.display()),
            Err(e) => {
                eprintln!("failed to update {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        return;
    }

    // The analytic sweep, exactly as the model produces it.
    print!("{}", sam_bench::figure15_report());
    println!();

    // The measured sweep on the paper's dimension axis. All four nonzero
    // counts take minutes (millions of effectual tile pairs at the top
    // dimensions); the default trims to two curves, `--full` runs all.
    let config = MemoryConfig::default();
    let dims: Vec<usize> = (0..12).map(|s| 1024 + 1336 * s).collect();
    let nnz: &[usize] = if full { &[5000, 10000, 25000, 50000] } else { &[5000, 25000] };
    print!("{}", sam_bench::figure15_measured_report(&dims, nnz, &config));
    println!();

    // Skipping ablation in the paper's falling regime (tiles emptying
    // out), under an LLB well below the operand working set so needless
    // tile fetches thrash it (≈28% DRAM saved at this configuration).
    let study_config = MemoryConfig { llb_bytes: 16 * 1024, ..MemoryConfig::default() };
    let (study, _, _) = sam_bench::figure15_skipping_study(8032, 5000, &study_config);
    print!("{study}");
}
