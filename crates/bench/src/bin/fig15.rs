//! Regenerates Figure 15 (finite-memory ExTensor study).
fn main() {
    print!("{}", sam_bench::figure15_report());
}
