//! `samlint`: rustc-style static diagnostics for SAM graphs.
//!
//! Runs the `sam-verify` analyses — stream-type/protocol checking, graph
//! lints, and (optionally) the bounded-channel deadlock classifier — over
//! catalog kernels and Custard-compiled Table 1 expressions, printing each
//! diagnostic in rustc style and exiting nonzero when any *error* fires
//! (warnings report but do not fail, mirroring the compiler).
//!
//! ```text
//! samlint spmv SpMV            # one catalog kernel, one compiled expression
//! samlint --all                # the whole catalog + all twelve expressions
//! samlint --all --deadlock 64:2
//! samlint --list
//! ```
//!
//! Named cases with standard operands (`samprof`'s kernel set and the
//! Table 1 expressions) verify *bound* — formats, ranks and scalars against
//! real tensors; the rest of the hand-written catalog verifies
//! structurally. `--deadlock LEN:DEPTH` additionally classifies every bound
//! case at a `LEN`-token x `DEPTH`-chunk channel budget.

use sam_bench::{graph_catalog, kernel_case, table1_case, table1_case_names, PROFILE_KERNELS};
use sam_core::graph::SamGraph;
use sam_exec::Inputs;
use sam_verify::{deadlock, verify, verify_bound, Bindings, ChannelBudget, Report};

fn usage() -> ! {
    eprintln!(
        "usage: samlint <kernel|expression>... [--deadlock LEN:DEPTH]\n       \
         samlint --all [--deadlock LEN:DEPTH]\n       samlint --list"
    );
    std::process::exit(2);
}

/// One case to lint: a graph, optionally with bound operands.
struct CaseReport {
    name: String,
    report: Report,
}

fn lint_bound(name: &str, graph: &SamGraph, inputs: &Inputs, budget: Option<ChannelBudget>) -> CaseReport {
    let bindings: Bindings<'_> = inputs.iter().collect();
    let mut report = verify_bound(graph, &bindings);
    if let Some(budget) = budget {
        if !report.has_errors() {
            for d in deadlock::analyze(graph, &bindings, budget).diagnostics {
                report.push(d);
            }
        }
    }
    CaseReport { name: name.to_string(), report }
}

fn lint_structural(name: &str, graph: &SamGraph) -> CaseReport {
    CaseReport { name: name.to_string(), report: verify(graph) }
}

/// Resolves one command-line name: a profiled kernel (bound), a Table 1
/// expression (bound), or any other catalog graph (structural).
fn lint_named(name: &str, budget: Option<ChannelBudget>) -> Option<CaseReport> {
    if let Some((graph, inputs)) = kernel_case(name) {
        return Some(lint_bound(name, &graph, &inputs, budget));
    }
    if let Some((graph, inputs)) = table1_case(name, 64) {
        return Some(lint_bound(name, &graph, &inputs, budget));
    }
    graph_catalog()
        .into_iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(n, graph)| lint_structural(n, &graph))
}

fn parse_budget(arg: &str) -> Option<ChannelBudget> {
    let (len, depth) = arg.split_once(':')?;
    Some(ChannelBudget { chunk_len: len.parse().ok()?, depth: depth.parse().ok()? })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut names: Vec<String> = Vec::new();
    let mut all = false;
    let mut budget: Option<ChannelBudget> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                println!("kernels (bound):     {}", PROFILE_KERNELS.join(", "));
                println!("expressions (bound): {}", table1_case_names().join(", "));
                println!(
                    "catalog (structural): {}",
                    graph_catalog().iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
                );
                return;
            }
            "--all" => all = true,
            "--deadlock" => match it.next().and_then(|a| parse_budget(a)) {
                Some(b) => budget = Some(b),
                None => usage(),
            },
            other if other.starts_with('-') => usage(),
            other => names.push(other.to_string()),
        }
    }
    if !all && names.is_empty() {
        usage();
    }

    let mut cases: Vec<CaseReport> = Vec::new();
    if all {
        for (name, graph) in graph_catalog() {
            cases.push(lint_structural(name, &graph));
        }
        for name in PROFILE_KERNELS {
            let (graph, inputs) = kernel_case(name).expect("profiled kernel");
            cases.push(lint_bound(name, &graph, &inputs, budget));
        }
        for name in table1_case_names() {
            let (graph, inputs) = table1_case(name, 64).expect("table1 expression");
            cases.push(lint_bound(name, &graph, &inputs, budget));
        }
    }
    for name in &names {
        match lint_named(name, budget) {
            Some(case) => cases.push(case),
            None => {
                eprintln!("unknown kernel or expression `{name}`; `samlint --list` shows all names");
                std::process::exit(2);
            }
        }
    }

    let (mut errors, mut warnings) = (0usize, 0usize);
    for case in &cases {
        errors += case.report.error_count();
        warnings += case.report.diagnostics.len() - case.report.error_count();
        if !case.report.diagnostics.is_empty() {
            println!("{}:", case.name);
            for line in case.report.render().lines() {
                println!("  {line}");
            }
        }
    }
    println!("samlint: {} case(s) checked, {errors} error(s), {warnings} warning(s)", cases.len());
    if errors > 0 {
        std::process::exit(1);
    }
}
