//! Regenerates Figure 11 (fused vs unfused SDDMM).
fn main() {
    print!("{}", sam_bench::figure11_report(1));
}
