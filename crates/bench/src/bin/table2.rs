//! Regenerates Table 2 (primitive-removal ablation).
fn main() {
    print!("{}", sam_bench::table2_report());
}
