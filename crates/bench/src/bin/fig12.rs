//! Regenerates Figure 12 (SpM*SpM dataflow orders).
fn main() {
    print!("{}", sam_bench::figure12_report(1));
}
