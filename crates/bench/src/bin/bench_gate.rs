//! The benchmark regression gate for CI's `bench-smoke` job.
//!
//! Reads the freshly measured `BENCH_exec.json` (written by
//! `cargo bench -p sam-bench --bench exec_backends -- --save-json`, plus
//! the memory-counter group `fig15 --smoke` merges in) and the checked-in
//! `BENCH_baseline.json`, and fails (exit code 1) when any fast-backend
//! serial benchmark (`fast` or `fast-skip`) regresses more than
//! [`THRESHOLD`]× against its baseline. Cycle-backend numbers are reported
//! but not gated against the baseline: they measure the simulator's model,
//! and wall-clock comparisons across CI runs are too noisy. Thread-pool
//! numbers are instead gated *intra-run*: within a single benchmark
//! session the work-stealing `threads4` entry must stay within
//! [`PARALLEL_THRESHOLD`]× of `serial` on the [`PARALLEL_GROUPS`] kernels
//! — parallel execution must never lose to serial. The service
//! `throughput` group (from `throughput --save-json`) is gated intra-run
//! the same way: warm rounds must stay within [`WARM_THRESHOLD`]× of the
//! cold round, the warm plan-cache hit rate must clear
//! [`WARM_HIT_RATE_FLOOR`], and the instrumented service must stay within
//! [`TELEMETRY_THRESHOLD`]× of a metrics-disabled one (the "telemetry is
//! cheap" invariant).
//!
//! Kernels (or individual entries) present in the current run but absent
//! from the baseline are reported as `new` and ignored — a freshly added
//! benchmark or counter must not fail the gate before its baseline lands.
//! A *gated* benchmark that exists in the baseline but vanished from the
//! current run still fails: that is a lost measurement, not a new one.
//!
//! Usage: `bench_gate [current.json] [baseline.json]` (defaults to
//! `BENCH_exec.json` and `BENCH_baseline.json` at the workspace root).

use sam_bench::workspace_root;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Maximum tolerated slowdown of a gated benchmark against its baseline.
const THRESHOLD: f64 = 2.0;

/// The gated backends: serial fast-mode rows, where wall-clock noise on a
/// dedicated step is smallest and the skip fusion must keep paying.
const GATED: &[&str] = &["fast", "fast-skip"];

/// Intra-run tracing-overhead bound: a counters-enabled serial run may cost
/// at most this much relative to the untraced run in the same benchmark
/// session.
const OVERHEAD_THRESHOLD: f64 = 1.10;

/// Intra-run bound for the `NullSink` path: tracing disabled must be
/// indistinguishable from `run` up to measurement noise.
const NULL_THRESHOLD: f64 = 1.05;

/// Intra-run bound for the work-stealing scheduler: a `threads4` run may
/// cost at most this much relative to the serial run measured in the same
/// benchmark session. The gate reads the `parallel_speedup` metric (the
/// best paired serial/threads4 wall-clock ratio over k rounds, recorded by
/// the bench next to its timings) rather than the mean-of-samples timing
/// entries: on a loaded single-core runner even two identical backends
/// jitter by several percent, while the best paired ratio only drops below
/// 1.0 when threads4 loses in *every* round — the signature of a real
/// scheduling regression. The scheduler clamps its worker count to the
/// host's available parallelism (delegating outright to the serial driver
/// when one worker remains), so on a single-core runner this asserts the
/// overhead is zero; on a multi-core runner a real speedup only widens the
/// margin.
const PARALLEL_THRESHOLD: f64 = 1.05;

/// The parallel-comparison groups the intra-run `parallel ≤ serial` check
/// covers (the flagship Table-1 kernels).
const PARALLEL_GROUPS: &[&str] = &["exec_spmv_parallel", "exec_spmm_parallel", "exec_mttkrp_parallel"];

/// Intra-run bound for the service throughput bench: warm rounds (plan and
/// compile caches hot) may run at most this much slower than the best cold
/// round measured in the same session. Like the parallel gate, this reads a
/// best-of ratio (`warm_speedup` = warm/cold qps), so it only trips when
/// the resident caches genuinely stop paying.
const WARM_THRESHOLD: f64 = 1.05;

/// Minimum plan-cache hit rate over the throughput bench's warm rounds:
/// a resident service replaying a fixed workload must be almost pure hits.
const WARM_HIT_RATE_FLOOR: f64 = 0.9;

/// Intra-run bound on the service telemetry: a fully instrumented service
/// may cost at most this much relative to a metrics-disabled one. Like the
/// other overhead gates this reads a best-paired ratio (the instrumented
/// service only "loses" if it loses every alternating round), so scheduler
/// noise cannot fake an overhead.
const TELEMETRY_THRESHOLD: f64 = 1.05;

/// Parses the two-level `{"group": {"bench": number, ...}, ...}` JSON the
/// bench harness emits. A hand-rolled scanner: the vendored serde stub has
/// no serde_json, and the schema is fixed.
fn parse(text: &str) -> Result<BTreeMap<String, BTreeMap<String, f64>>, String> {
    let mut out: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    let mut chars = text.char_indices().peekable();
    let mut group: Option<String> = None;
    let err = |pos: usize, what: &str| format!("byte {pos}: {what}");

    fn read_string(
        text: &str,
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Result<String, String> {
        let Some((start, '"')) = chars.next() else {
            return Err("expected a string".to_string());
        };
        for (i, c) in chars.by_ref() {
            match c {
                '\\' => return Err(format!("byte {i}: escapes are not supported")),
                '"' => return Ok(text[start + 1..i].to_string()),
                _ => {}
            }
        }
        Err("unterminated string".to_string())
    }

    while let Some(&(i, c)) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' | '{' | ',' | ':' => {
                chars.next();
            }
            '}' => {
                chars.next();
                group = match group {
                    Some(_) => None,
                    None => return Ok(out),
                };
            }
            '"' => {
                let key = read_string(text, &mut chars)?;
                // A key either opens a group object or maps to a number.
                let mut lookahead = chars.clone();
                while let Some(&(_, c2)) = lookahead.peek() {
                    match c2 {
                        ' ' | '\t' | '\n' | '\r' | ':' => {
                            lookahead.next();
                        }
                        '{' => {
                            group = Some(key.clone());
                            out.entry(key).or_default();
                            break;
                        }
                        _ => {
                            let g = group.clone().ok_or_else(|| err(i, "number outside a group"))?;
                            // Consume the skipped whitespace/colon for real.
                            chars = lookahead.clone();
                            let start = chars.peek().map(|&(p, _)| p).unwrap_or(text.len());
                            let mut end = start;
                            while let Some(&(p, c3)) = chars.peek() {
                                if c3.is_ascii_digit() || c3 == '.' || c3 == '-' || c3 == 'e' || c3 == '+' {
                                    end = p + c3.len_utf8();
                                    chars.next();
                                } else {
                                    break;
                                }
                            }
                            let ns: f64 =
                                text[start..end].parse().map_err(|_| err(start, "malformed number"))?;
                            out.entry(g).or_default().insert(key.clone(), ns);
                            break;
                        }
                    }
                }
            }
            _ => return Err(err(i, "unexpected character")),
        }
    }
    Err("unterminated object".to_string())
}

fn load(path: &Path) -> Result<BTreeMap<String, BTreeMap<String, f64>>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    let current_path = args.first().map(PathBuf::from).unwrap_or_else(|| root.join("BENCH_exec.json"));
    let baseline_path = args.get(1).map(PathBuf::from).unwrap_or_else(|| root.join("BENCH_baseline.json"));

    let (current, baseline) = match (load(&current_path), load(&baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut regressions = 0u32;
    let mut gated = 0u32;
    // Walk the union of kernels (baseline order first, then kernels only
    // the current run knows) so new benchmarks and counters are visible
    // but never gated.
    let mut kernels: Vec<&String> = baseline.keys().collect();
    kernels.extend(current.keys().filter(|k| !baseline.contains_key(*k)));
    println!("{:<28} {:<16} {:>14} {:>14} {:>8}", "kernel", "backend", "baseline", "current", "ratio");
    for kernel in kernels {
        let empty = BTreeMap::new();
        let base_benches = baseline.get(kernel).unwrap_or(&empty);
        let cur_benches = current.get(kernel).unwrap_or(&empty);
        let mut backends: Vec<&String> = base_benches.keys().collect();
        backends.extend(cur_benches.keys().filter(|b| !base_benches.contains_key(*b)));
        for backend in backends {
            match (base_benches.get(backend), cur_benches.get(backend)) {
                (Some(&base_ns), Some(&cur_ns)) => {
                    let ratio = cur_ns / base_ns;
                    let is_gated = GATED.contains(&backend.as_str());
                    let verdict = if is_gated && ratio > THRESHOLD { " REGRESSED" } else { "" };
                    println!(
                        "{kernel:<28} {backend:<16} {base_ns:>12.0}ns {cur_ns:>12.0}ns {ratio:>7.2}x{verdict}"
                    );
                    if is_gated {
                        gated += 1;
                        if ratio > THRESHOLD {
                            regressions += 1;
                        }
                    }
                }
                (Some(&base_ns), None) => {
                    println!("{kernel:<28} {backend:<16} {base_ns:>12.0}ns {:>14} {:>8}", "missing", "-");
                    if GATED.contains(&backend.as_str()) {
                        eprintln!("bench_gate: gated benchmark {kernel}/{backend} missing from current run");
                        regressions += 1;
                    }
                }
                (None, Some(&cur_ns)) => {
                    // No baseline yet (new benchmark or counter): report,
                    // never gate. Values may be counters, so no unit.
                    println!("{kernel:<28} {backend:<16} {:>14} {cur_ns:>14.0} {:>8}", "new", "-");
                }
                (None, None) => unreachable!("backend came from one of the maps"),
            }
        }
    }
    // The tracing-overhead gate compares within the current run — both
    // sides measured moments apart on the same machine — so it needs no
    // baseline: counters-enabled serial execution must stay within
    // OVERHEAD_THRESHOLD of the untraced run, and the NullSink path within
    // NULL_THRESHOLD (the zero-cost-when-disabled claim). Like the
    // parallelism gate below, it reads best-paired-ratio metrics the bench
    // records rather than the outlier-prone mean timing entries.
    if let Some(overhead) = current.get("exec_overhead") {
        for (metric, bound) in [("null_overhead", NULL_THRESHOLD), ("counters_overhead", OVERHEAD_THRESHOLD)]
        {
            match overhead.get(metric) {
                Some(&ratio) if ratio > 0.0 => {
                    gated += 1;
                    let verdict = if ratio > bound { " REGRESSED" } else { "" };
                    println!(
                        "{:<28} {metric:<16} {:>14} {:>14} {ratio:>7.2}x{verdict}",
                        "exec_overhead (intra-run)", "paired", "-"
                    );
                    if ratio > bound {
                        eprintln!(
                            "bench_gate: tracing overhead: `{metric}` is {ratio:.2}x of the \
                             untraced serial run (bound {bound:.2}x)"
                        );
                        regressions += 1;
                    }
                }
                _ => {
                    eprintln!("bench_gate: exec_overhead group is missing the `{metric}` metric");
                    regressions += 1;
                }
            }
        }
    }
    // The parallelism gate is likewise intra-run: the work-stealing
    // `threads4` entry must not lose to the `serial` entry measured in the
    // same session. This is the "parallel execution never costs you"
    // invariant — the scheduler's adaptive clamp makes it hold even on a
    // single-core runner, where both entries run the identical serial path.
    for group_name in PARALLEL_GROUPS {
        let Some(group) = current.get(*group_name) else {
            eprintln!("bench_gate: parallel group {group_name} missing from current run");
            regressions += 1;
            continue;
        };
        match group.get("parallel_speedup") {
            Some(&speedup) if speedup > 0.0 => {
                // `parallel_speedup` is serial/threads4, so losing to
                // serial shows up as a speedup *below* 1/threshold.
                let ratio = 1.0 / speedup;
                gated += 1;
                let verdict = if ratio > PARALLEL_THRESHOLD { " REGRESSED" } else { "" };
                println!(
                    "{:<28} {:<16} {:>14} {speedup:>13.2}x {ratio:>7.2}x{verdict}",
                    format!("{group_name} (intra-run)"),
                    "threads4/serial",
                    "speedup"
                );
                if ratio > PARALLEL_THRESHOLD {
                    eprintln!(
                        "bench_gate: {group_name}: `threads4` runs at {ratio:.2}x of the serial run \
                         (bound {PARALLEL_THRESHOLD:.2}x) — the work-stealing scheduler lost to serial"
                    );
                    regressions += 1;
                }
            }
            _ => {
                eprintln!("bench_gate: {group_name} is missing the `parallel_speedup` metric");
                regressions += 1;
            }
        }
    }

    // The service-throughput gate is intra-run as well: within one session
    // a warm plan/compile cache must never lose to a cold one, and the warm
    // rounds of a fixed workload must be nearly all plan-cache hits. The
    // group comes from `throughput --save-json`; a run that lost it is a
    // lost measurement and fails like a vanished gated benchmark.
    if let Some(throughput) = current.get("throughput") {
        match throughput.get("warm_speedup") {
            Some(&speedup) if speedup > 0.0 => {
                let ratio = 1.0 / speedup;
                gated += 1;
                let verdict = if ratio > WARM_THRESHOLD { " REGRESSED" } else { "" };
                println!(
                    "{:<28} {:<16} {:>14} {speedup:>13.2}x {ratio:>7.2}x{verdict}",
                    "throughput (intra-run)", "warm/cold", "speedup"
                );
                if ratio > WARM_THRESHOLD {
                    eprintln!(
                        "bench_gate: throughput: warm rounds run at {ratio:.2}x of the cold round \
                         (bound {WARM_THRESHOLD:.2}x) — the resident plan cache lost to fresh compiles"
                    );
                    regressions += 1;
                }
            }
            _ => {
                eprintln!("bench_gate: throughput group is missing the `warm_speedup` metric");
                regressions += 1;
            }
        }
        match throughput.get("warm_hit_rate") {
            Some(&rate) => {
                gated += 1;
                let verdict = if rate < WARM_HIT_RATE_FLOOR { " REGRESSED" } else { "" };
                println!(
                    "{:<28} {:<16} {:>14} {:>13.1}% {:>8}{verdict}",
                    "throughput (intra-run)",
                    "warm_hit_rate",
                    "hit rate",
                    100.0 * rate,
                    "-"
                );
                if rate < WARM_HIT_RATE_FLOOR {
                    eprintln!(
                        "bench_gate: throughput: warm plan-cache hit rate {:.1}% is below the \
                         {:.0}% floor — the service re-plans a fixed resident workload",
                        100.0 * rate,
                        100.0 * WARM_HIT_RATE_FLOOR
                    );
                    regressions += 1;
                }
            }
            None => {
                eprintln!("bench_gate: throughput group is missing the `warm_hit_rate` metric");
                regressions += 1;
            }
        }
        match throughput.get("telemetry_overhead") {
            Some(&ratio) if ratio > 0.0 => {
                gated += 1;
                let verdict = if ratio > TELEMETRY_THRESHOLD { " REGRESSED" } else { "" };
                println!(
                    "{:<28} {:<16} {:>14} {:>14} {ratio:>7.2}x{verdict}",
                    "throughput (intra-run)", "telemetry", "paired", "-"
                );
                if ratio > TELEMETRY_THRESHOLD {
                    eprintln!(
                        "bench_gate: throughput: instrumented service runs at {ratio:.2}x of the \
                         metrics-disabled service (bound {TELEMETRY_THRESHOLD:.2}x) — query-span \
                         telemetry is no longer cheap"
                    );
                    regressions += 1;
                }
            }
            _ => {
                eprintln!("bench_gate: throughput group is missing the `telemetry_overhead` metric");
                regressions += 1;
            }
        }
    } else {
        eprintln!("bench_gate: throughput group missing from current run");
        regressions += 1;
    }

    println!("\n{gated} gated benchmarks (fast-serial), threshold {THRESHOLD}x, {regressions} regression(s)");
    if regressions > 0 {
        eprintln!("bench_gate: fast-serial regressed more than {THRESHOLD}x against the baseline");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
