//! `samprof`: profile one kernel or Table 1 expression on any backend.
//!
//! Runs the chosen graph under a [`CountersSink`] (or a [`ChromeTraceSink`]
//! when `--trace` is given), prints the run's headline numbers and the
//! ranked per-node stall/token table, and names the node on the critical
//! path — the serial bottleneck the parallel backend is waiting on.
//!
//! ```text
//! samprof spmv_skew --backend threads4 --trace skew.json
//! samprof SpM*SpM --backend cycle
//! samprof --list
//! ```
//!
//! * `--backend cycle|fast-serial|fast-threads:N|tiled` (default
//!   `fast-threads:4`; the historical `serial`/`threadsN` spellings still
//!   parse);
//! * `--trace <path>` also writes a Chrome `trace_event` JSON timeline
//!   (load it at `ui.perfetto.dev` or `chrome://tracing`);
//! * `--save-json` merges `samprof_<name>` headline metrics (`blocked_ns`,
//!   `spills`, `tokens`) into the workspace `BENCH_exec.json` so the
//!   benchmark trajectory carries them;
//! * `--serve [--rounds N]` profiles the query *lifecycle* instead of one
//!   execution: it runs the Table 1 workload through a resident
//!   `sam-serve` service for N rounds and prints the per-stage breakdown
//!   (queue / compile / plan / batch / execute / resolve) with p50/p90/p99
//!   and max per stage, from the service telemetry.

use sam_bench::{
    kernel_case, merge_json_group, table1_case, table1_case_names, workspace_root, PROFILE_KERNELS,
};
use sam_exec::{BackendSpec, ChromeTraceSink, CountersSink, ExecProfile, Execution, Executor, Plan};
use sam_memory::MemoryConfig;

/// Builds the profiled backend from a [`BackendSpec`] label (stable labels
/// plus the historical `threadsN` spellings, all parsed by `sam-exec`).
/// `tiled` keeps samprof's historical 64-wide tiles so saved metrics stay
/// comparable across runs.
fn build_backend(arg: &str) -> Result<Box<dyn Executor>, sam_exec::ParseBackendError> {
    let spec: BackendSpec = arg.parse()?;
    Ok(spec.build_with_memory(Some(MemoryConfig { tile: 64, ..MemoryConfig::default() })))
}

fn usage() -> ! {
    eprintln!(
        "usage: samprof <kernel|expression> [--backend cycle|fast-serial|fast-threads:N|tiled] \
         [--trace out.json] [--save-json]\n       samprof --serve [--rounds N]\n       samprof --list"
    );
    std::process::exit(2);
}

/// `--serve`: run the Table 1 workload through a resident service and
/// print the query-lifecycle breakdown from the service telemetry.
fn serve_mode(rounds: usize) {
    use sam_exec::Stage;
    use sam_serve::Service;
    use std::sync::Arc;

    let (store, queries) = sam_serve::table1_workload(997);
    let service = Service::new(Arc::clone(&store));
    for _ in 0..rounds {
        let handles: Vec<_> = queries.iter().map(|w| (w.name, service.submit(w.query.clone()))).collect();
        for (name, handle) in handles {
            if let Err(e) = handle.wait() {
                eprintln!("samprof --serve: `{name}` failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let snap = service.metrics_snapshot();
    println!(
        "samprof --serve: {} queries ({} Table 1 expressions x {rounds} rounds) through sam-serve\n",
        snap.completed,
        queries.len()
    );
    println!(
        "{:<10} {:>7} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "p50 us", "p90 us", "p99 us", "max us"
    );
    let us = |ns: u64| ns as f64 / 1e3;
    for stage in Stage::ALL {
        let h = snap.stage(stage);
        println!(
            "{:<10} {:>7} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            stage.name(),
            h.count,
            us(h.p50()),
            us(h.p90()),
            us(h.p99()),
            us(h.max),
        );
    }
    let h = &snap.latency;
    println!(
        "{:<10} {:>7} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
        "total",
        h.count,
        us(h.p50()),
        us(h.p90()),
        us(h.p99()),
        us(h.max),
    );
    println!("\nexecute by backend:");
    for (backend, h) in &snap.execute_by_backend {
        println!(
            "  {backend:<16} {:>5} queries, p50 {:>8.1}us, p99 {:>8.1}us",
            h.count,
            us(h.p50()),
            us(h.p99())
        );
    }
    println!(
        "\ncompile cache {} hits / {} misses; plan cache {} hits / {} misses / {} evictions",
        snap.compile_hits, snap.compile_misses, snap.plans.hits, snap.plans.misses, snap.plans.evictions
    );
    println!(
        "batches {}, mean batch size {:.2}, same-plan rate {:.1}%, lane depth high-water {}",
        snap.batches,
        snap.batch_size.mean(),
        100.0 * snap.same_plan_rate,
        snap.lane_depth_high_water
    );
    let busiest = snap.workers.iter().map(|w| w.utilization).fold(0.0f64, f64::max);
    println!(
        "window qps {:.0}, {} workers (busiest {:.0}% utilized), store built {} tensors in {:.1}us",
        snap.window_qps,
        snap.workers.len(),
        100.0 * busiest,
        snap.store.builds,
        snap.store.build_ns as f64 / 1e3
    );
}

fn report(name: &str, backend: &dyn Executor, run: &Execution, profile: &ExecProfile) {
    println!("samprof: `{name}` on the `{}` backend", run.backend);
    let cycles = run.cycles.map_or("-".to_string(), |c| c.to_string());
    println!(
        "tokens={} spills={} cycles={} elapsed={:.2?} ({} nodes, {} channels)",
        run.tokens,
        run.spills,
        cycles,
        run.elapsed,
        profile.nodes.len(),
        profile.channels.len(),
    );
    println!(
        "critical path {:.1}us, total blocked {:.1}us\n",
        profile.critical_path_ns() as f64 / 1e3,
        profile.total_blocked_ns() as f64 / 1e3,
    );
    print!("{}", profile.stall_table());
    // The critical-path node — the longest-lived, busy or blocked — is the
    // stage the rest of the pipeline is waiting on.
    if let Some(top) = profile.nodes.iter().max_by_key(|n| (n.wall_ns(), n.tokens.total())) {
        println!(
            "\nbottleneck: n{}:{} ({} tokens, busy {:.1}us, blocked {:.1}us)",
            top.index,
            top.label,
            top.tokens.total(),
            top.busy_ns as f64 / 1e3,
            top.blocked_ns as f64 / 1e3,
        );
    }
    let _ = backend;
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name: Option<String> = None;
    let mut backend_arg = "fast-threads:4".to_string();
    let mut trace_path: Option<String> = None;
    let mut save_json = false;
    let mut serve = false;
    let mut rounds = 10usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                println!("kernels:     {}", PROFILE_KERNELS.join(", "));
                println!("expressions: {}", table1_case_names().join(", "));
                return;
            }
            "--backend" => backend_arg = it.next().cloned().unwrap_or_else(|| usage()),
            "--trace" => trace_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--save-json" => save_json = true,
            "--serve" => serve = true,
            "--rounds" => {
                rounds = it.next().and_then(|n| n.parse().ok()).unwrap_or_else(|| usage());
            }
            _ if a.starts_with("--") => usage(),
            _ if name.is_none() => name = Some(a.clone()),
            _ => usage(),
        }
    }
    if serve {
        if name.is_some() {
            usage();
        }
        serve_mode(rounds.max(1));
        return;
    }
    let Some(name) = name else { usage() };

    let (graph, inputs) = match kernel_case(&name).or_else(|| table1_case(&name, 200)) {
        Some(case) => case,
        None => {
            eprintln!("unknown kernel or expression `{name}`; `samprof --list` shows both sets");
            std::process::exit(2);
        }
    };
    let backend = match build_backend(&backend_arg) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let plan = match Plan::build(&graph, &inputs) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("planning `{name}` failed: {e}");
            std::process::exit(1);
        }
    };

    // One traced run; the sink doubles as the timeline recorder when a
    // trace path was requested.
    let run = if let Some(path) = &trace_path {
        let sink = ChromeTraceSink::new();
        let run = backend.run_traced(&plan, &inputs, &sink);
        if run.is_ok() {
            if let Err(e) = sink.write_json(std::path::Path::new(path)) {
                eprintln!("failed to write trace to `{path}`: {e}");
                std::process::exit(1);
            }
            println!("wrote {} spans to {path} (load at ui.perfetto.dev)\n", sink.span_count());
        }
        run
    } else {
        backend.run_traced(&plan, &inputs, &CountersSink::new())
    };
    let run = match run {
        Ok(r) => r,
        Err(e) => {
            eprintln!("running `{name}` on `{}` failed: {e}", backend.name());
            std::process::exit(1);
        }
    };
    let profile = run.profile.clone().expect("traced runs attach a profile");
    report(&name, backend.as_ref(), &run, &profile);

    if save_json {
        let group = format!("samprof_{}", name.replace(|c: char| !c.is_ascii_alphanumeric(), "_"));
        let metrics: Vec<(&str, f64)> = vec![
            ("blocked_ns", profile.total_blocked_ns() as f64),
            ("spills", run.spills as f64),
            ("tokens", run.tokens as f64),
        ];
        let path = workspace_root().join("BENCH_exec.json");
        match merge_json_group(&path, &group, &metrics) {
            Ok(()) => println!("\nmerged `{group}` metrics into {}", path.display()),
            Err(e) => {
                eprintln!("failed to update {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
