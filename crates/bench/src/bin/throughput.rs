//! `throughput`: queries/sec of the resident tensor service on the mixed
//! Table 1 workload.
//!
//! Each round submits all twelve Table 1 expressions to a [`Service`]
//! asynchronously (submit first, wait after, so the coordinator batches
//! same-plan queries) and measures end-to-end queries per second. Two
//! passes:
//!
//! * **cold** — a fresh service per trial, so the first round pays custard
//!   compilation and planning for every expression (best of a few trials);
//! * **warm** — one resident service, primed with a round, then best-of
//!   over repeated rounds: every lookup hits the compile and plan caches.
//!
//! `--save-json` merges the headline metrics into the workspace
//! `BENCH_exec.json` as the `throughput` group: `cold_qps`, `warm_qps`,
//! `warm_speedup` (warm/cold — the value the plan cache pays), and
//! `warm_hit_rate` (plan-cache hit rate over the warm rounds alone).
//! `bench_gate` checks both intra-run: warm must not lose to cold, and the
//! warm rounds must be nearly all hits.
//!
//! Usage: `throughput [--smoke] [--save-json]`.

use sam_bench::{merge_json_group, workspace_root};
use sam_serve::{Service, WorkloadQuery};
use std::sync::Arc;
use std::time::Instant;

/// Submits the whole workload, waits for every handle, and returns the
/// round's queries/sec.
fn round_qps(service: &Service, queries: &[WorkloadQuery]) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = queries.iter().map(|w| (w.name, service.submit(w.query.clone()))).collect();
    for (name, handle) in handles {
        if let Err(e) = handle.wait() {
            eprintln!("throughput: `{name}` failed: {e}");
            std::process::exit(1);
        }
    }
    queries.len() as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    let mut smoke = false;
    let mut save_json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--save-json" => save_json = true,
            _ => {
                eprintln!("usage: throughput [--smoke] [--save-json]");
                std::process::exit(2);
            }
        }
    }
    let (cold_trials, warm_rounds) = if smoke { (2, 5) } else { (5, 30) };
    let (store, queries) = sam_serve::table1_workload(997);

    // Cold: every trial starts a fresh service, so its first round compiles
    // and plans all twelve expressions from scratch. (The store's
    // materialized-tensor cache is shared across trials — operand loading
    // is resident-corpus state, not per-query work.)
    let mut cold_qps = 0.0f64;
    for _ in 0..cold_trials {
        let service = Service::new(Arc::clone(&store));
        cold_qps = cold_qps.max(round_qps(&service, &queries));
    }

    // Warm: one resident service; a priming round fills both caches, then
    // the measured rounds are pure cache-hit traffic.
    let service = Service::new(Arc::clone(&store));
    round_qps(&service, &queries);
    let primed = service.stats();
    let mut warm_qps = 0.0f64;
    for _ in 0..warm_rounds {
        warm_qps = warm_qps.max(round_qps(&service, &queries));
    }
    let after = service.stats();
    let warm_hits = after.plans.hits - primed.plans.hits;
    let warm_misses = after.plans.misses - primed.plans.misses;
    let warm_hit_rate = warm_hits as f64 / ((warm_hits + warm_misses) as f64).max(1.0);
    let warm_speedup = warm_qps / cold_qps.max(1e-9);

    println!("throughput: mixed Table 1 workload ({} queries/round) through sam-serve", queries.len());
    println!(
        "cold  {cold_qps:>10.1} qps  (best of {cold_trials} fresh-service trials: compile + plan + run)"
    );
    println!("warm  {warm_qps:>10.1} qps  (best of {warm_rounds} rounds on a resident service)");
    println!("warm/cold speedup {warm_speedup:.2}x, warm plan-cache hit rate {:.1}%", 100.0 * warm_hit_rate);
    println!(
        "plan cache after warm rounds: {} hits / {} misses / {} evictions, {} entries",
        after.plans.hits, after.plans.misses, after.plans.evictions, after.plans.entries
    );

    if save_json {
        let metrics: Vec<(&str, f64)> = vec![
            ("cold_qps", cold_qps),
            ("warm_qps", warm_qps),
            ("warm_speedup", warm_speedup),
            ("warm_hit_rate", warm_hit_rate),
        ];
        let path = workspace_root().join("BENCH_exec.json");
        match merge_json_group(&path, "throughput", &metrics) {
            Ok(()) => println!("\nmerged `throughput` metrics into {}", path.display()),
            Err(e) => {
                eprintln!("failed to update {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
