//! `throughput`: queries/sec of the resident tensor service on the mixed
//! Table 1 workload.
//!
//! Each round submits all twelve Table 1 expressions to a [`Service`]
//! asynchronously (submit first, wait after, so the coordinator batches
//! same-plan queries) and measures end-to-end queries per second. Two
//! passes:
//!
//! * **cold** — a fresh service per trial, so the first round pays custard
//!   compilation and planning for every expression (best of a few trials);
//! * **warm** — one resident service, primed with a round, then best-of
//!   over repeated rounds: every lookup hits the compile and plan caches.
//!
//! `--save-json` merges the headline metrics into the workspace
//! `BENCH_exec.json` as the `throughput` group: `cold_qps`, `warm_qps`,
//! `warm_speedup` (warm/cold — the value the plan cache pays), and
//! `warm_hit_rate` (plan-cache hit rate over the warm rounds alone),
//! plus the latency trajectory from the warm service's telemetry —
//! `p50_latency_us`, `p99_latency_us`, `mean_batch_size` — and
//! `telemetry_overhead`: the best-paired qps ratio of a metrics-disabled
//! service over an instrumented one (alternating rounds on two otherwise
//! identical services; the instrumented service only "loses" if it loses
//! every pairing). `bench_gate` checks warm ≥ cold, a >90% warm hit rate,
//! and `telemetry_overhead` ≤ 1.05.
//!
//! `--prom PATH` dumps the warm service's Prometheus text exposition after
//! the measured rounds; `--events PATH` runs the warm service with a zero
//! slow-query threshold teeing every query span to PATH as JSONL.
//!
//! Usage: `throughput [--smoke] [--save-json] [--prom PATH] [--events PATH]`.

use sam_bench::{merge_json_group, workspace_root};
use sam_serve::{Service, ServiceConfig, TelemetryConfig, WorkloadQuery};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Submits the whole workload, waits for every handle, and returns the
/// round's queries/sec.
fn round_qps(service: &Service, queries: &[WorkloadQuery]) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = queries.iter().map(|w| (w.name, service.submit(w.query.clone()))).collect();
    for (name, handle) in handles {
        if let Err(e) = handle.wait() {
            eprintln!("throughput: `{name}` failed: {e}");
            std::process::exit(1);
        }
    }
    queries.len() as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    let mut smoke = false;
    let mut save_json = false;
    let mut prom_path: Option<String> = None;
    let mut events_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    let usage = || -> ! {
        eprintln!("usage: throughput [--smoke] [--save-json] [--prom PATH] [--events PATH]");
        std::process::exit(2);
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--save-json" => save_json = true,
            "--prom" => prom_path = Some(args.next().unwrap_or_else(|| usage())),
            "--events" => events_path = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let (cold_trials, warm_rounds) = if smoke { (2, 5) } else { (5, 30) };
    let (store, queries) = sam_serve::table1_workload(997);

    // Cold: every trial starts a fresh service, so its first round compiles
    // and plans all twelve expressions from scratch. (The store's
    // materialized-tensor cache is shared across trials — operand loading
    // is resident-corpus state, not per-query work.)
    let mut cold_qps = 0.0f64;
    for _ in 0..cold_trials {
        let service = Service::new(Arc::clone(&store));
        cold_qps = cold_qps.max(round_qps(&service, &queries));
    }

    // Warm: one resident service; a priming round fills both caches, then
    // the measured rounds are pure cache-hit traffic. With `--events`, the
    // warm service tees every query span to a JSONL event log.
    let warm_telemetry = TelemetryConfig {
        slow_query: events_path.as_ref().map(|_| Duration::ZERO),
        event_log: events_path.as_ref().map(Into::into),
        ..TelemetryConfig::default()
    };
    let service = Service::with_config(
        Arc::clone(&store),
        ServiceConfig { telemetry: warm_telemetry, ..ServiceConfig::default() },
    );
    round_qps(&service, &queries);
    let primed = service.stats();
    let mut warm_qps = 0.0f64;
    for _ in 0..warm_rounds {
        warm_qps = warm_qps.max(round_qps(&service, &queries));
    }
    let after = service.stats();
    let warm_delta = after.plans.delta_since(&primed.plans);
    let warm_hit_rate = warm_delta.hits as f64 / ((warm_delta.hits + warm_delta.misses) as f64).max(1.0);
    let warm_speedup = warm_qps / cold_qps.max(1e-9);

    // The warm service's telemetry: the latency trajectory behind the qps
    // headline, from the per-query lifecycle spans.
    let snapshot = service.metrics_snapshot();
    let p50_latency_us = snapshot.latency.p50() as f64 / 1e3;
    let p99_latency_us = snapshot.latency.p99() as f64 / 1e3;
    let mean_batch_size = snapshot.batch_size.mean();

    // Telemetry overhead, best-paired: two fresh services over the same
    // store — metrics disabled versus fully instrumented — primed, then
    // measured in alternating rounds. The ratio only rises above 1 if the
    // instrumented service loses *every* pairing, so scheduler noise in a
    // single round cannot fake an overhead.
    let disabled_config = ServiceConfig {
        telemetry: TelemetryConfig { enabled: false, ..TelemetryConfig::default() },
        ..ServiceConfig::default()
    };
    let disabled = Service::with_config(Arc::clone(&store), disabled_config);
    let instrumented = Service::new(Arc::clone(&store));
    round_qps(&disabled, &queries);
    round_qps(&instrumented, &queries);
    let paired_rounds = if smoke { 5 } else { 12 };
    let telemetry_overhead = (0..paired_rounds)
        .map(|_| {
            let off = round_qps(&disabled, &queries);
            let on = round_qps(&instrumented, &queries);
            off / on.max(1e-9)
        })
        .fold(f64::INFINITY, f64::min);

    println!("throughput: mixed Table 1 workload ({} queries/round) through sam-serve", queries.len());
    println!(
        "cold  {cold_qps:>10.1} qps  (best of {cold_trials} fresh-service trials: compile + plan + run)"
    );
    println!("warm  {warm_qps:>10.1} qps  (best of {warm_rounds} rounds on a resident service)");
    println!("warm/cold speedup {warm_speedup:.2}x, warm plan-cache hit rate {:.1}%", 100.0 * warm_hit_rate);
    println!(
        "plan cache after warm rounds: {} hits / {} misses / {} evictions, {} entries",
        after.plans.hits, after.plans.misses, after.plans.evictions, after.plans.entries
    );
    println!(
        "warm latency p50 {p50_latency_us:.1}us / p99 {p99_latency_us:.1}us, mean batch {mean_batch_size:.2}"
    );
    println!(
        "telemetry overhead {telemetry_overhead:.3}x (best of {paired_rounds} paired disabled/instrumented rounds)"
    );

    if let Some(path) = &prom_path {
        match std::fs::write(path, service.render_prometheus()) {
            Ok(()) => println!("wrote Prometheus exposition to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &events_path {
        // Every span so far hit the zero slow-query threshold and was teed
        // to the file (the in-memory ring only keeps the most recent).
        println!("wrote {} JSONL query events to {path}", service.metrics_snapshot().slow_queries);
    }

    if save_json {
        let metrics: Vec<(&str, f64)> = vec![
            ("cold_qps", cold_qps),
            ("warm_qps", warm_qps),
            ("warm_speedup", warm_speedup),
            ("warm_hit_rate", warm_hit_rate),
            ("p50_latency_us", p50_latency_us),
            ("p99_latency_us", p99_latency_us),
            ("mean_batch_size", mean_batch_size),
            ("telemetry_overhead", telemetry_overhead),
        ];
        let path = workspace_root().join("BENCH_exec.json");
        match merge_json_group(&path, "throughput", &metrics) {
            Ok(()) => println!("\nmerged `throughput` metrics into {}", path.display()),
            Err(e) => {
                eprintln!("failed to update {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
