//! Regenerates the Section 3.8 stream-encoding analysis.
fn main() {
    print!("{}", sam_bench::stream_analysis_report());
}
