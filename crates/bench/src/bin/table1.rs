//! Regenerates Table 1 (primitive composition per expression) and
//! cross-checks the core expressions end-to-end through the `sam-exec`
//! pipeline on both backends.
fn main() {
    print!("{}", sam_bench::table1_report());
    println!();
    print!("{}", sam_bench::executor_report(1));
}
