//! Regenerates Table 1 (primitive composition per expression).
fn main() {
    print!("{}", sam_bench::table1_report());
}
