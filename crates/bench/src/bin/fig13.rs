//! Regenerates Figure 13 (vector multiply acceleration structures).
fn main() {
    print!("{}", sam_bench::figure13_report(2000));
}
