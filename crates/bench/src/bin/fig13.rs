//! Regenerates Figure 13 (vector multiply acceleration structures) with the
//! hand-scheduled kernels, then replays the coordinate and dense
//! configurations through the `sam-exec` graph pipeline.
fn main() {
    print!("{}", sam_bench::figure13_report(2000));
    println!();
    print!("{}", sam_bench::figure13_exec_report(2000));
}
