//! Regenerates Figure 14 (stream token composition).
fn main() {
    print!("{}", sam_bench::figure14_report(usize::MAX));
}
