//! Criterion benchmarks comparing the two `sam-exec` backends on the same
//! planned graphs: the cycle-approximate simulator pays per-cycle
//! scheduling for its performance model, while the fast functional backend
//! evaluates whole streams per node. SpMV, SpM*SpM (Gustavson) and SDDMM
//! are each planned once and re-run per sample.
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sam_core::graphs;
use sam_exec::{CycleBackend, Executor, FastBackend, Inputs, Plan};
use sam_tensor::{synth, TensorFormat};

fn bench_pair(c: &mut Criterion, group_name: &str, plan: &Plan, inputs: &Inputs) {
    let cycle = CycleBackend::default();
    let fast = FastBackend;
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.bench_function("cycle", |b| {
        b.iter(|| black_box(cycle.run(plan, inputs).expect("cycle run").tokens))
    });
    group.bench_function("fast", |b| b.iter(|| black_box(fast.run(plan, inputs).expect("fast run").tokens)));
    group.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let graph = graphs::spmv();
    let b = synth::random_matrix_sparsity(300, 200, 0.95, 41);
    let v = synth::random_vector(200, 200, 42);
    let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("c", &v, TensorFormat::dense_vec());
    let plan = Plan::build(&graph, &inputs).expect("plan");
    bench_pair(c, "exec_spmv", &plan, &inputs);
}

fn bench_spmm(c: &mut Criterion) {
    let graph = graphs::spmm(sam_core::kernels::spmm::SpmmDataflow::LinearCombination);
    let b = synth::random_matrix_sparsity(120, 80, 0.95, 43);
    let m = synth::random_matrix_sparsity(80, 120, 0.95, 44);
    let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &m, TensorFormat::dcsr());
    let plan = Plan::build(&graph, &inputs).expect("plan");
    bench_pair(c, "exec_spmm_gustavson", &plan, &inputs);
}

fn bench_sddmm(c: &mut Criterion) {
    let graph = graphs::sddmm_coiteration();
    let b = synth::random_matrix_sparsity(80, 80, 0.95, 45);
    let cm = synth::dense_matrix(80, 10, 46);
    let d = synth::dense_matrix(80, 10, 47);
    let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &cm, TensorFormat::dense(2)).coo(
        "D",
        &d,
        TensorFormat::dense(2),
    );
    let plan = Plan::build(&graph, &inputs).expect("plan");
    bench_pair(c, "exec_sddmm", &plan, &inputs);
}

criterion_group!(benches, bench_spmv, bench_spmm, bench_sddmm);
criterion_main!(benches);
