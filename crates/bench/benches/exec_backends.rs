//! Criterion benchmarks comparing the `sam-exec` backends on the same
//! planned graphs.
//!
//! Two axes are measured per kernel:
//!
//! * **cycle vs fast** — the cycle-approximate simulator pays per-cycle
//!   scheduling for its performance model, while the fast functional
//!   backend evaluates transfer functions directly.
//! * **serial vs parallel fast** — the serial mode evaluates whole streams
//!   one node at a time; `Threads(n)` runs the work-stealing scheduler,
//!   which splits heavy node evaluations at fiber boundaries into
//!   stealable tasks (the pipelined per-node engine remains available via
//!   `FastBackend::pipelined`). The scheduler clamps its worker count to
//!   the host's available parallelism, so on a single-core CI runner the
//!   `threads*` entries degenerate to the serial path plus negligible
//!   dispatch overhead — which is exactly what `bench_gate`'s intra-run
//!   `parallel ≤ serial` check locks in. The multi-operand kernels (SpMM,
//!   SDDMM, MTTKRP) use larger operands where splitting has room to pay
//!   off on real multi-core hosts.
//!
//! Each graph is planned once and re-run per sample.
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use custard::{lower_exec_with, parse, ConcreteIndexNotation, Formats, LowerOptions, Schedule};
use sam_core::graphs;
use sam_exec::{CountersSink, CycleBackend, Executor, FastBackend, Inputs, NullSink, Plan};
use sam_tensor::{synth, CooTensor, TensorFormat};

fn bench_pair(c: &mut Criterion, group_name: &str, plan: &Plan, inputs: &Inputs) {
    let cycle = CycleBackend::default();
    let fast = FastBackend::serial();
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.bench_function("cycle", |b| {
        b.iter(|| black_box(cycle.run(plan, inputs).expect("cycle run").tokens))
    });
    group.bench_function("fast", |b| b.iter(|| black_box(fast.run(plan, inputs).expect("fast run").tokens)));
    group.finish();
}

fn bench_parallelism(c: &mut Criterion, group_name: &str, plan: &Plan, inputs: &Inputs) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for (name, backend) in [
        ("serial", FastBackend::serial()),
        ("threads2", FastBackend::threads(2)),
        ("threads4", FastBackend::threads(4)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(backend.run(plan, inputs).expect("fast run").tokens))
        });
    }
    group.finish();
    // Surface the bounded-channel spill counter next to the timings. The
    // work-stealing engine has no channels, so the counter now tracks the
    // pipelined engine at planner-derived depths — held at zero by the
    // max-fiber-length stream estimate (`threads4_spills` in older
    // baselines measured the same thing when `threads` still pipelined).
    let spills = FastBackend::pipelined(4).run(plan, inputs).expect("fast run").spills;
    criterion::record_metric(group_name, "pipelined4_spills", spills as f64);
    // A directly-computed speedup next to the raw timings: serial vs the
    // 4-worker stealing scheduler, recorded as serial/threads4 (>= 1.0
    // means parallel at least breaks even). The vendored criterion exposes
    // no measured durations to bench code, so this is an independent
    // measurement. The statistic is the *best paired ratio* over k
    // back-to-back rounds: on a loaded single-core runner the noise floor
    // between two identical backends is several percent, so minima and
    // means both produce false regressions, while a single clean round
    // where threads4 matches serial proves the scheduler adds no
    // structural overhead — and a genuine regression (threads4 slower in
    // every round) still drags every pair, and thus the maximum, down.
    let serial = FastBackend::serial();
    let threads4 = FastBackend::threads(4);
    let wall = |backend: &FastBackend| {
        let t0 = std::time::Instant::now();
        black_box(backend.run(plan, inputs).expect("fast run").tokens);
        t0.elapsed().as_secs_f64()
    };
    let mut speedup = 0.0f64;
    for _ in 0..7 {
        let s = wall(&serial);
        let t = wall(&threads4);
        speedup = speedup.max(s / t);
    }
    criterion::record_metric(group_name, "parallel_speedup", speedup);
}

fn bench_spmv(c: &mut Criterion) {
    let graph = graphs::spmv();
    let b = synth::random_matrix_sparsity(300, 200, 0.95, 41);
    let v = synth::random_vector(200, 200, 42);
    let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("c", &v, TensorFormat::dense_vec());
    let plan = Plan::build(&graph, &inputs).expect("plan");
    bench_pair(c, "exec_spmv", &plan, &inputs);
    bench_parallelism(c, "exec_spmv_parallel", &plan, &inputs);
}

fn bench_spmm(c: &mut Criterion) {
    let graph = graphs::spmm(sam_core::kernels::spmm::SpmmDataflow::LinearCombination);
    let b = synth::random_matrix_sparsity(120, 80, 0.95, 43);
    let m = synth::random_matrix_sparsity(80, 120, 0.95, 44);
    let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &m, TensorFormat::dcsr());
    let plan = Plan::build(&graph, &inputs).expect("plan");
    bench_pair(c, "exec_spmm_gustavson", &plan, &inputs);

    // Larger operands for the parallelism comparison (no cycle run here, so
    // the streams can be long enough for pipelining to amortize).
    let b = synth::random_matrix_sparsity(500, 400, 0.95, 45);
    let m = synth::random_matrix_sparsity(400, 500, 0.95, 46);
    let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &m, TensorFormat::dcsr());
    let plan = Plan::build(&graph, &inputs).expect("plan");
    bench_parallelism(c, "exec_spmm_parallel", &plan, &inputs);
}

fn bench_sddmm(c: &mut Criterion) {
    let graph = graphs::sddmm_coiteration();
    let b = synth::random_matrix_sparsity(80, 80, 0.95, 47);
    let cm = synth::dense_matrix(80, 10, 48);
    let d = synth::dense_matrix(80, 10, 49);
    let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &cm, TensorFormat::dense(2)).coo(
        "D",
        &d,
        TensorFormat::dense(2),
    );
    let plan = Plan::build(&graph, &inputs).expect("plan");
    bench_pair(c, "exec_sddmm", &plan, &inputs);

    let b = synth::random_matrix_sparsity(300, 300, 0.95, 50);
    let cm = synth::dense_matrix(300, 16, 51);
    let d = synth::dense_matrix(300, 16, 52);
    let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &cm, TensorFormat::dense(2)).coo(
        "D",
        &d,
        TensorFormat::dense(2),
    );
    let plan = Plan::build(&graph, &inputs).expect("plan");
    bench_parallelism(c, "exec_sddmm_parallel", &plan, &inputs);
}

/// The Section 4.2 coordinate-skipping win: one dense-ish operand against a
/// hypersparse one. The skip graphs' fused galloping scanners should beat
/// their skip-free twins by orders of magnitude here, on both fast modes.
fn bench_skip_skew(c: &mut Criterion) {
    // Skewed element-wise vector multiply: 180k nonzeros against 100.
    let vb = synth::random_vector(200_000, 180_000, 56);
    let vc = synth::random_vector(200_000, 100, 57);
    let inputs =
        Inputs::new().coo("b", &vb, TensorFormat::sparse_vec()).coo("c", &vc, TensorFormat::sparse_vec());
    let plain = Plan::build(&graphs::vec_elem_mul(true), &inputs).expect("plan");
    let skip = Plan::build(&graphs::vec_elem_mul_with_skip(true), &inputs).expect("plan");
    let mut group = c.benchmark_group("exec_vecmul_skew");
    group.sample_size(10);
    let serial = FastBackend::serial();
    let mt = FastBackend::threads(4);
    group.bench_function("fast", |b| b.iter(|| black_box(serial.run(&plain, &inputs).expect("run").tokens)));
    group.bench_function("fast-skip", |b| {
        b.iter(|| black_box(serial.run(&skip, &inputs).expect("run").tokens))
    });
    group.bench_function("threads4-skip", |b| {
        b.iter(|| black_box(mt.run(&skip, &inputs).expect("run").tokens))
    });
    group.finish();

    // Skewed co-iteration SpMV: dense-ish rows against a hypersparse vector.
    let m = synth::random_matrix_sparsity(400, 2_000, 0.2, 58);
    let sv = synth::random_vector(2_000, 12, 59);
    let inputs = Inputs::new().coo("B", &m, TensorFormat::dcsr()).coo("c", &sv, TensorFormat::sparse_vec());
    let plain = Plan::build(&graphs::spmv_coiteration(), &inputs).expect("plan");
    let skip = Plan::build(&graphs::spmv_with_skip(), &inputs).expect("plan");
    let mut group = c.benchmark_group("exec_spmv_skew");
    group.sample_size(10);
    group.bench_function("fast", |b| b.iter(|| black_box(serial.run(&plain, &inputs).expect("run").tokens)));
    group.bench_function("fast-skip", |b| {
        b.iter(|| black_box(serial.run(&skip, &inputs).expect("run").tokens))
    });
    group.finish();
}

/// Lowers an expression with `custard::lower_exec_with`.
fn lower(text: &str, formats: Formats, skip_edges: bool) -> custard::ExecutableKernel {
    let assignment = parse(text).expect("valid expression");
    let cin = ConcreteIndexNotation::new(assignment, &Schedule::new(), formats);
    lower_exec_with(&cin, LowerOptions { skip_edges }).expect("executable lowering")
}

/// Compiles an expression and binds its operands with the formats the
/// lowering derived (scalars as single-value tensors).
fn compile(
    text: &str,
    formats: Formats,
    operands: &[(&str, &CooTensor)],
    scalars: &[(&str, f64)],
    skip_edges: bool,
) -> (Plan, Inputs) {
    let kernel = lower(text, formats, skip_edges);
    let mut inputs = Inputs::new();
    for (name, coo) in operands {
        let fmt = kernel.formats.iter().find(|(n, _)| n == name).expect("operand format").1.clone();
        inputs = inputs.coo(name, coo, fmt);
    }
    for &(name, value) in scalars {
        inputs = inputs.scalar(name, value);
    }
    let plan = Plan::build(&kernel.graph, &inputs).expect("plan");
    (plan, inputs)
}

/// The previously Table-1-only mixed and n-ary kernels, now compiled by
/// `lower_exec` and tracked by the gate (new entries land as `new` until a
/// baseline refresh picks them up).
fn bench_compiled_mixed(c: &mut Criterion) {
    let b = synth::random_vector(600, 260, 61);
    let cm = synth::random_matrix_sparsity(600, 400, 0.95, 62);
    let d = synth::random_vector(400, 220, 63);
    let (plan, inputs) = compile(
        "x(i) = b(i) - C(i,j) * d(j)",
        Formats::new(),
        &[("b", &b), ("C", &cm), ("d", &d)],
        &[],
        true,
    );
    bench_pair(c, "exec_residual", &plan, &inputs);

    // B is accessed transposed: its logical shape is (j, i).
    let bt = synth::random_matrix_sparsity(500, 300, 0.95, 64);
    let cv = synth::random_vector(500, 240, 65);
    let dv = synth::random_vector(300, 150, 66);
    let (plan, inputs) = compile(
        "x(i) = alpha * B(j,i) * c(j) + beta * d(i)",
        Formats::new(),
        &[("B", &bt), ("c", &cv), ("d", &dv)],
        &[("alpha", 2.0), ("beta", -3.0)],
        true,
    );
    bench_pair(c, "exec_mat_trans_mul", &plan, &inputs);

    let mb = synth::random_matrix_sparsity(200, 200, 0.95, 67);
    let mc = synth::random_matrix_sparsity(200, 200, 0.95, 68);
    let md = synth::random_matrix_sparsity(200, 200, 0.95, 69);
    let (plan, inputs) = compile(
        "X(i,j) = B(i,j) + C(i,j) + D(i,j)",
        Formats::new(),
        &[("B", &mb), ("C", &mc), ("D", &md)],
        &[],
        true,
    );
    bench_pair(c, "exec_plus3", &plan, &inputs);
}

/// The skip-heuristic ablation: the same compiled sparse-x-dense SpMV with
/// and without the lowering's emitted Section 4.2 skip edges, timed on the
/// serial fast backend with the moved-token counts recorded next to the
/// timings.
fn bench_compiled_skip_ablation(c: &mut Criterion) {
    let b = synth::random_matrix_nnz(200, 8000, 900, 70);
    let v = synth::random_vector(8000, 8000, 71);
    let formats = || Formats::new().set("c", TensorFormat::dense_vec());
    let operands: &[(&str, &CooTensor)] = &[("B", &b), ("c", &v)];
    let (skip_plan, inputs) = compile("x(i) = B(i,j) * c(j)", formats(), operands, &[], true);
    // The ablated lowering is planned over the SAME bound inputs, so both
    // plans run against identical operands.
    let plain_kernel = lower("x(i) = B(i,j) * c(j)", formats(), false);
    let plain_plan = Plan::build(&plain_kernel.graph, &inputs).expect("plan");

    // The moved-token metrics ride out of the timed iterations themselves —
    // no extra executor runs after the group closes.
    let serial = FastBackend::serial();
    let skip_tokens = std::cell::Cell::new(0u64);
    let noskip_tokens = std::cell::Cell::new(0u64);
    let mut group = c.benchmark_group("exec_compiled_spmv_skew");
    group.sample_size(10);
    group.bench_function("fast", |b| {
        b.iter(|| {
            noskip_tokens.set(serial.run(&plain_plan, &inputs).expect("run").tokens);
            black_box(noskip_tokens.get())
        })
    });
    group.bench_function("fast-skip", |b| {
        b.iter(|| {
            skip_tokens.set(serial.run(&skip_plan, &inputs).expect("run").tokens);
            black_box(skip_tokens.get())
        })
    });
    group.finish();
    criterion::record_metric("exec_compiled_spmv_skew", "skip_tokens", skip_tokens.get() as f64);
    criterion::record_metric("exec_compiled_spmv_skew", "noskip_tokens", noskip_tokens.get() as f64);
}

/// The tracing layer's zero-cost-when-disabled claim, measured: the same
/// serial plan run through the plain `run` path (which routes through a
/// `NullSink`), through `run_traced` with an explicit `NullSink`, and with
/// a live `CountersSink`. `bench_gate` holds the counters-enabled run
/// within 10% of `fast` and the NullSink run within noise of it, inside
/// the same benchmark run — no baseline needed.
fn bench_trace_overhead(c: &mut Criterion) {
    let graph = graphs::spmm(sam_core::kernels::spmm::SpmmDataflow::LinearCombination);
    let b = synth::random_matrix_sparsity(300, 250, 0.95, 72);
    let m = synth::random_matrix_sparsity(250, 300, 0.95, 73);
    let inputs = Inputs::new().coo("B", &b, TensorFormat::dcsr()).coo("C", &m, TensorFormat::dcsr());
    let plan = Plan::build(&graph, &inputs).expect("plan");
    let serial = FastBackend::serial();
    let mut group = c.benchmark_group("exec_overhead");
    group.sample_size(10);
    group.bench_function("fast", |b| b.iter(|| black_box(serial.run(&plan, &inputs).expect("run").tokens)));
    group.bench_function("fast-null", |b| {
        b.iter(|| black_box(serial.run_traced(&plan, &inputs, &NullSink).expect("run").tokens))
    });
    group.bench_function("fast-counters", |b| {
        b.iter(|| {
            let sink = CountersSink::new();
            black_box(serial.run_traced(&plan, &inputs, &sink).expect("run").tokens)
        })
    });
    group.finish();
    // Best-paired overhead ratios for the gate, measured like
    // `parallel_speedup` in `bench_parallelism`: the mean-of-samples
    // timing entries carry multi-x outliers on a virtualized runner, so
    // the gate instead bounds the cleanest of k back-to-back rounds — a
    // real overhead regression inflates every round, a noise burst only
    // some.
    let wall = |run: &mut dyn FnMut() -> u64| {
        let t0 = std::time::Instant::now();
        black_box(run());
        t0.elapsed().as_secs_f64()
    };
    let (mut null_ratio, mut counters_ratio) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..7 {
        let base = wall(&mut || serial.run(&plan, &inputs).expect("run").tokens);
        let null = wall(&mut || serial.run_traced(&plan, &inputs, &NullSink).expect("run").tokens);
        let counters = wall(&mut || {
            let sink = CountersSink::new();
            serial.run_traced(&plan, &inputs, &sink).expect("run").tokens
        });
        null_ratio = null_ratio.min(null / base);
        counters_ratio = counters_ratio.min(counters / base);
    }
    criterion::record_metric("exec_overhead", "null_overhead", null_ratio);
    criterion::record_metric("exec_overhead", "counters_overhead", counters_ratio);
}

fn bench_mttkrp(c: &mut Criterion) {
    let graph = graphs::mttkrp();
    let b = synth::random_tensor3([60, 40, 40], 12_000, 53);
    let fc = synth::random_matrix_sparsity(30, 40, 0.5, 54);
    let fd = synth::random_matrix_sparsity(30, 40, 0.5, 55);
    let inputs = Inputs::new().coo("B", &b, TensorFormat::csf(3)).coo("C", &fc, TensorFormat::dcsc()).coo(
        "D",
        &fd,
        TensorFormat::dcsc(),
    );
    let plan = Plan::build(&graph, &inputs).expect("plan");
    bench_parallelism(c, "exec_mttkrp_parallel", &plan, &inputs);
}

criterion_group!(
    benches,
    bench_spmv,
    bench_spmm,
    bench_sddmm,
    bench_skip_skew,
    bench_compiled_mixed,
    bench_compiled_skip_ablation,
    bench_trace_overhead,
    bench_mttkrp
);
criterion_main!(benches);
