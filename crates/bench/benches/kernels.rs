//! Criterion micro-benchmarks over the SAM kernels: one benchmark per
//! evaluation axis (vector-multiply format, SpM*SpM dataflow, SDDMM variant)
//! at laptop-friendly sizes. The full paper-scale sweeps are produced by the
//! `fig*` binaries in `src/bin/`.
use criterion::{criterion_group, criterion_main, Criterion};
use sam_core::kernels::sddmm::{sddmm, SddmmVariant};
use sam_core::kernels::spmm::{spmm, SpmmDataflow};
use sam_core::kernels::spmv::spmv;
use sam_core::kernels::vecmul::{vec_elem_mul, VecFormat};
use sam_tensor::synth;

fn bench_vecmul(c: &mut Criterion) {
    let dim = 2000;
    let b = synth::random_vector(dim, 400, 1);
    let v = synth::random_vector(dim, 400, 2);
    let mut group = c.benchmark_group("fig13_vecmul");
    group.sample_size(10);
    for fmt in VecFormat::figure13_set() {
        group.bench_function(fmt.label(), |bench| bench.iter(|| vec_elem_mul(&b, &v, dim, fmt).cycles));
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let b = synth::random_matrix_sparsity(100, 60, 0.95, 3);
    let m = synth::random_matrix_sparsity(60, 100, 0.95, 4);
    let mut group = c.benchmark_group("fig12_spmm");
    group.sample_size(10);
    for (name, flow) in [
        ("inner", SpmmDataflow::InnerProduct),
        ("gustavson", SpmmDataflow::LinearCombination),
        ("outer", SpmmDataflow::OuterProduct),
    ] {
        group.bench_function(name, |bench| bench.iter(|| spmm(&b, &m, flow).cycles));
    }
    group.finish();
}

fn bench_sddmm_and_spmv(c: &mut Criterion) {
    let b = synth::random_matrix_sparsity(80, 80, 0.95, 5);
    let cm = synth::dense_matrix(80, 10, 6);
    let d = synth::dense_matrix(80, 10, 7);
    let mut group = c.benchmark_group("fig11_sddmm");
    group.sample_size(10);
    for variant in [SddmmVariant::FusedLocating, SddmmVariant::FusedCoiteration, SddmmVariant::Unfused] {
        group.bench_function(variant.label(), |bench| bench.iter(|| sddmm(&b, &cm, &d, variant).cycles));
    }
    group.finish();

    let vb = synth::random_matrix_sparsity(200, 150, 0.95, 8);
    let vc = synth::random_vector(150, 150, 9);
    c.bench_function("spmv_dcsr_dense", |bench| bench.iter(|| spmv(&vb, &vc).cycles));
}

criterion_group!(benches, bench_vecmul, bench_spmm, bench_sddmm_and_spmv);
criterion_main!(benches);
