//! The simulation engine: block scheduling, cycle counting and reporting.

use crate::channel::{Channel, ChannelId};
use crate::payload::SimToken;
use sam_streams::TokenStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a block reports after one cycle of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockStatus {
    /// The block may still produce or consume tokens.
    Busy,
    /// The block has propagated its done tokens and will never act again.
    Done,
}

/// A SAM dataflow block as seen by the simulator.
///
/// A block is ticked once per cycle until it reports [`BlockStatus::Done`].
/// During a tick it should consume at most one token per input port and
/// produce at most one token per output port (the paper's fully pipelined
/// model); blocks that need to emit bursts spread them over several cycles.
pub trait Block: Send {
    /// Diagnostic name shown in error messages and reports.
    fn name(&self) -> &str;

    /// Performs one cycle of work.
    fn tick(&mut self, ctx: &mut Context) -> BlockStatus;
}

/// The per-cycle view a block gets of its channels.
pub struct Context<'a> {
    channels: &'a mut [Channel],
    /// The current cycle number.
    pub cycle: u64,
    /// Number of push/pop operations performed this cycle (progress tracking).
    ops: u64,
}

impl fmt::Debug for Context<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("channels", &self.channels.len())
            .field("cycle", &self.cycle)
            .field("ops", &self.ops)
            .finish()
    }
}

impl<'a> Context<'a> {
    fn new(channels: &'a mut [Channel], cycle: u64) -> Self {
        Context { channels, cycle, ops: 0 }
    }

    /// Looks at the next token of a channel without consuming it.
    pub fn peek(&self, id: ChannelId) -> Option<&SimToken> {
        self.channels[id.0].peek()
    }

    /// Looks `n` tokens ahead on a channel.
    pub fn peek_nth(&self, id: ChannelId, n: usize) -> Option<&SimToken> {
        self.channels[id.0].peek_nth(n)
    }

    /// Consumes the next token of a channel.
    pub fn pop(&mut self, id: ChannelId) -> Option<SimToken> {
        let t = self.channels[id.0].pop();
        if t.is_some() {
            self.ops += 1;
        }
        t
    }

    /// Whether a channel can accept another token this cycle.
    pub fn can_push(&self, id: ChannelId) -> bool {
        self.channels[id.0].can_push()
    }

    /// Pushes a token into a channel.
    ///
    /// # Panics
    ///
    /// Panics when the channel is a full bounded channel.
    pub fn push(&mut self, id: ChannelId, token: SimToken) {
        self.channels[id.0].push(token);
        self.ops += 1;
    }

    /// Number of tokens currently queued on a channel.
    pub fn queued(&self, id: ChannelId) -> usize {
        self.channels[id.0].len()
    }
}

/// An error terminating a simulation abnormally.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimulationError {
    /// The graph stopped making progress before every block finished —
    /// usually a wiring bug or an unsatisfiable bounded-channel cycle.
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
        /// Names of blocks that were still busy.
        busy_blocks: Vec<String>,
    },
    /// The cycle limit was reached.
    CycleLimit {
        /// The limit that was hit.
        limit: u64,
    },
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::Deadlock { cycle, busy_blocks } => {
                write!(f, "deadlock at cycle {cycle}; busy blocks: {}", busy_blocks.join(", "))
            }
            SimulationError::CycleLimit { limit } => write!(f, "cycle limit of {limit} reached"),
        }
    }
}

impl std::error::Error for SimulationError {}

/// Summary of a completed simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimReport {
    /// Total cycles until every block reported done.
    pub cycles: u64,
    /// Number of blocks simulated.
    pub blocks: usize,
    /// Number of channels simulated.
    pub channels: usize,
    /// Total tokens pushed across all channels.
    pub total_tokens: u64,
}

/// The streaming dataflow simulator.
///
/// ```
/// use sam_sim::{Simulator, Block, BlockStatus, Context, ChannelId};
/// use sam_sim::payload::tok;
///
/// // A block that copies its input to its output.
/// struct Copy { input: ChannelId, output: ChannelId, done: bool }
/// impl Block for Copy {
///     fn name(&self) -> &str { "copy" }
///     fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
///         if self.done { return BlockStatus::Done; }
///         if let Some(t) = ctx.pop(self.input) {
///             self.done = t.is_done();
///             ctx.push(self.output, t);
///         }
///         if self.done { BlockStatus::Done } else { BlockStatus::Busy }
///     }
/// }
///
/// let mut sim = Simulator::new();
/// let a = sim.add_channel("a");
/// let b = sim.add_channel("b");
/// sim.record(b);
/// sim.add_block(Box::new(Copy { input: a, output: b, done: false }));
/// sim.preload(a, [tok::crd(1), tok::stop(0), tok::done()]);
/// let report = sim.run(1000).unwrap();
/// assert_eq!(report.cycles, 3);
/// assert_eq!(sim.history(b).len(), 3);
/// ```
#[derive(Default)]
pub struct Simulator {
    channels: Vec<Channel>,
    histories: Vec<Option<Vec<SimToken>>>,
    blocks: Vec<(Box<dyn Block>, bool)>,
    cycles: u64,
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("channels", &self.channels.len())
            .field("blocks", &self.blocks.len())
            .field("cycles", &self.cycles)
            .finish()
    }
}

impl Simulator {
    /// Creates an empty simulator.
    pub fn new() -> Self {
        Simulator::default()
    }

    /// Adds an unbounded channel and returns its id.
    pub fn add_channel(&mut self, name: impl Into<String>) -> ChannelId {
        self.channels.push(Channel::new(name));
        self.histories.push(None);
        ChannelId(self.channels.len() - 1)
    }

    /// Adds a bounded channel with the given capacity.
    pub fn add_bounded_channel(&mut self, name: impl Into<String>, capacity: usize) -> ChannelId {
        self.channels.push(Channel::bounded(name, capacity));
        self.histories.push(None);
        ChannelId(self.channels.len() - 1)
    }

    /// Enables full token recording on a channel (see [`Simulator::history`]).
    pub fn record(&mut self, id: ChannelId) {
        self.histories[id.0] = Some(Vec::new());
    }

    /// Adds a block to the schedule.
    pub fn add_block(&mut self, block: Box<dyn Block>) {
        self.blocks.push((block, false));
    }

    /// Pre-loads tokens into a channel before the simulation starts (used for
    /// root reference streams and for testing blocks in isolation).
    pub fn preload<I: IntoIterator<Item = SimToken>>(&mut self, id: ChannelId, tokens: I) {
        for t in tokens {
            if self.histories[id.0].is_some() {
                self.histories[id.0].as_mut().expect("recording").push(t);
            }
            self.channels[id.0].push(t);
        }
    }

    /// Number of blocks added so far.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of channels added so far.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Cycles elapsed in the last [`Simulator::run`].
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Immutable access to a channel (for statistics).
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.0]
    }

    /// The recorded token history of a channel.
    ///
    /// # Panics
    ///
    /// Panics if [`Simulator::record`] was not called for the channel.
    pub fn history(&self, id: ChannelId) -> &[SimToken] {
        self.histories[id.0]
            .as_deref()
            .unwrap_or_else(|| panic!("channel `{}` was not recorded", self.channels[id.0].name()))
    }

    /// Token statistics of a channel including idle slots for the elapsed
    /// cycle count.
    pub fn channel_stats(&self, id: ChannelId) -> TokenStats {
        self.channels[id.0].stats_with_idle(self.cycles)
    }

    /// Runs until every block reports done.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::Deadlock`] when no progress is made during
    /// a cycle while blocks are still busy, or
    /// [`SimulationError::CycleLimit`] when `max_cycles` elapse first.
    pub fn run(&mut self, max_cycles: u64) -> Result<SimReport, SimulationError> {
        let mut cycle = 0u64;
        let mut idle_cycles = 0u32;
        loop {
            if self.blocks.iter().all(|(_, done)| *done) {
                break;
            }
            if cycle >= max_cycles {
                self.cycles = cycle;
                return Err(SimulationError::CycleLimit { limit: max_cycles });
            }
            let mut progress = 0u64;
            let mut transitions = 0u64;
            for (block, done) in &mut self.blocks {
                if *done {
                    continue;
                }
                let recorded_before: Vec<u64> = self.channels.iter().map(Channel::total_pushed).collect();
                let mut ctx = Context::new(&mut self.channels, cycle);
                let status = block.tick(&mut ctx);
                progress += ctx.ops;
                // Append newly pushed tokens to recorded histories.
                for (idx, history) in self.histories.iter_mut().enumerate() {
                    if let Some(hist) = history {
                        let new_total = self.channels[idx].total_pushed();
                        let before = recorded_before[idx];
                        if new_total > before {
                            let n_new = (new_total - before) as usize;
                            let len = self.channels[idx].len();
                            for k in (len - n_new)..len {
                                hist.push(*self.channels[idx].peek_nth(k).expect("just pushed"));
                            }
                        }
                    }
                }
                if status == BlockStatus::Done {
                    *done = true;
                    transitions += 1;
                }
            }
            cycle += 1;
            if progress == 0 && transitions == 0 && !self.blocks.iter().all(|(_, done)| *done) {
                // Blocks may legitimately spend a bounded number of cycles in
                // internal state transitions; a long run of cycles with no
                // channel activity at all means the graph is wedged.
                idle_cycles += 1;
                if idle_cycles > 16 {
                    self.cycles = cycle;
                    return Err(SimulationError::Deadlock {
                        cycle,
                        busy_blocks: self
                            .blocks
                            .iter()
                            .filter(|(_, done)| !done)
                            .map(|(b, _)| b.name().to_string())
                            .collect(),
                    });
                }
            } else {
                idle_cycles = 0;
            }
        }
        self.cycles = cycle;
        Ok(SimReport {
            cycles: cycle,
            blocks: self.blocks.len(),
            channels: self.channels.len(),
            total_tokens: self.channels.iter().map(Channel::total_pushed).sum(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::tok;

    /// Forwards tokens from input to output, one per cycle.
    struct Forward {
        input: ChannelId,
        output: ChannelId,
        done: bool,
    }

    impl Block for Forward {
        fn name(&self) -> &str {
            "forward"
        }
        fn tick(&mut self, ctx: &mut Context) -> BlockStatus {
            if self.done {
                return BlockStatus::Done;
            }
            if ctx.can_push(self.output) {
                if let Some(t) = ctx.pop(self.input) {
                    self.done = t.is_done();
                    ctx.push(self.output, t);
                }
            }
            if self.done {
                BlockStatus::Done
            } else {
                BlockStatus::Busy
            }
        }
    }

    /// A block that never finishes and never touches a channel.
    struct Stuck;
    impl Block for Stuck {
        fn name(&self) -> &str {
            "stuck"
        }
        fn tick(&mut self, _ctx: &mut Context) -> BlockStatus {
            BlockStatus::Busy
        }
    }

    #[test]
    fn pipeline_of_two_forwards() {
        let mut sim = Simulator::new();
        let a = sim.add_channel("a");
        let b = sim.add_channel("b");
        let c = sim.add_channel("c");
        sim.record(c);
        sim.add_block(Box::new(Forward { input: a, output: b, done: false }));
        sim.add_block(Box::new(Forward { input: b, output: c, done: false }));
        sim.preload(a, [tok::crd(0), tok::crd(1), tok::stop(0), tok::done()]);
        let report = sim.run(100).unwrap();
        assert_eq!(sim.history(c), &[tok::crd(0), tok::crd(1), tok::stop(0), tok::done()]);
        // Fully pipelined: 4 tokens, back-to-back blocks scheduled in order
        // finish in 4 cycles (the second block sees each token the same cycle).
        assert_eq!(report.cycles, 4);
        assert_eq!(report.blocks, 2);
        assert_eq!(report.channels, 3);
        assert!(report.total_tokens >= 8);
    }

    #[test]
    fn deadlock_detection() {
        let mut sim = Simulator::new();
        sim.add_block(Box::new(Stuck));
        let err = sim.run(100).unwrap_err();
        assert!(matches!(err, SimulationError::Deadlock { .. }));
        assert!(err.to_string().contains("stuck"));
    }

    #[test]
    fn cycle_limit() {
        let mut sim = Simulator::new();
        let a = sim.add_channel("a");
        let b = sim.add_channel("b");
        sim.add_block(Box::new(Forward { input: a, output: b, done: false }));
        // Keep the block busy forever by never sending done.
        sim.preload(a, (0..1000).map(tok::crd));
        let err = sim.run(10).unwrap_err();
        assert_eq!(err, SimulationError::CycleLimit { limit: 10 });
    }

    #[test]
    fn channel_stats_include_idle() {
        let mut sim = Simulator::new();
        let a = sim.add_channel("a");
        let b = sim.add_channel("b");
        sim.add_block(Box::new(Forward { input: a, output: b, done: false }));
        sim.preload(a, [tok::crd(0), tok::done()]);
        sim.run(100).unwrap();
        let stats = sim.channel_stats(b);
        assert_eq!(stats.non_control, 1);
        assert_eq!(stats.done, 1);
        assert_eq!(stats.total(), sim.cycles());
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let mut sim = Simulator::new();
        let a = sim.add_channel("a");
        let b = sim.add_bounded_channel("b", 1);
        let c = sim.add_channel("c");
        sim.record(c);
        sim.add_block(Box::new(Forward { input: a, output: b, done: false }));
        sim.add_block(Box::new(Forward { input: b, output: c, done: false }));
        sim.preload(a, [tok::crd(0), tok::crd(1), tok::crd(2), tok::done()]);
        sim.run(100).unwrap();
        assert_eq!(sim.history(c).len(), 4);
    }

    #[test]
    #[should_panic(expected = "was not recorded")]
    fn history_requires_record() {
        let mut sim = Simulator::new();
        let a = sim.add_channel("a");
        let _ = sim.history(a);
    }
}
