//! # sam-sim
//!
//! The cycle-approximate streaming dataflow simulator that SAM graphs are
//! lowered onto (paper Section 6).
//!
//! The simulator models a SAM graph as a set of [`Block`]s connected by
//! [`Channel`]s. Every simulated cycle each block gets one [`Block::tick`]
//! call during which it may consume at most one token per input port and
//! produce at most one token per output port — the paper's "fully pipelined,
//! every primitive produces one token each cycle" model. Channels are
//! unbounded by default (the paper's infinite-queue assumption); bounded
//! channels can be requested to study finite hardware.
//!
//! Per-channel token statistics ([`sam_streams::TokenStats`]) are collected
//! for the Figure 14 stream-composition study; idle slots are cycles during
//! which a channel carried no token.

pub mod channel;
pub mod engine;
pub mod payload;

pub use channel::{Channel, ChannelId};
pub use engine::{Block, BlockStatus, Context, SimReport, SimulationError, Simulator};
pub use payload::{Payload, SimToken};
