//! Dynamically typed token payloads used inside the simulator.
//!
//! SAM distinguishes coordinate, reference, value and bitvector streams. The
//! simulator keeps all channels homogeneous by carrying a [`Payload`] sum
//! type; blocks assert the payload kind they expect, so wiring mistakes fail
//! loudly during simulation rather than silently producing wrong data.

use sam_streams::{BitVec, Token};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The payload of one simulator token.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// A coordinate.
    Crd(u32),
    /// A reference (position in the next level or the values array).
    Ref(u32),
    /// A tensor value.
    Val(f64),
    /// A bitvector word (Section 4.3 stream protocol).
    Bits(BitVec),
}

impl Payload {
    /// The coordinate carried by this payload.
    ///
    /// # Panics
    ///
    /// Panics when the payload is not a coordinate.
    pub fn expect_crd(self) -> u32 {
        match self {
            Payload::Crd(c) => c,
            other => panic!("expected a coordinate payload, found {other:?}"),
        }
    }

    /// The reference carried by this payload.
    ///
    /// # Panics
    ///
    /// Panics when the payload is not a reference.
    pub fn expect_ref(self) -> u32 {
        match self {
            Payload::Ref(r) => r,
            other => panic!("expected a reference payload, found {other:?}"),
        }
    }

    /// The value carried by this payload.
    ///
    /// # Panics
    ///
    /// Panics when the payload is not a value.
    pub fn expect_val(self) -> f64 {
        match self {
            Payload::Val(v) => v,
            other => panic!("expected a value payload, found {other:?}"),
        }
    }

    /// The bitvector word carried by this payload.
    ///
    /// # Panics
    ///
    /// Panics when the payload is not a bitvector word.
    pub fn expect_bits(self) -> BitVec {
        match self {
            Payload::Bits(b) => b,
            other => panic!("expected a bitvector payload, found {other:?}"),
        }
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Crd(c) => write!(f, "c{c}"),
            Payload::Ref(r) => write!(f, "r{r}"),
            Payload::Val(v) => write!(f, "{v}"),
            Payload::Bits(b) => write!(f, "{b}"),
        }
    }
}

/// A simulator token: the SAM token algebra over dynamic payloads.
pub type SimToken = Token<Payload>;

/// Convenience constructors for simulator tokens.
pub mod tok {
    use super::{Payload, SimToken};
    use sam_streams::{BitVec, Token};

    /// A coordinate data token.
    pub fn crd(c: u32) -> SimToken {
        Token::Val(Payload::Crd(c))
    }

    /// A reference data token.
    pub fn rf(r: u32) -> SimToken {
        Token::Val(Payload::Ref(r))
    }

    /// A value data token.
    pub fn val(v: f64) -> SimToken {
        Token::Val(Payload::Val(v))
    }

    /// A bitvector data token.
    pub fn bits(b: BitVec) -> SimToken {
        Token::Val(Payload::Bits(b))
    }

    /// A stop token of the given level.
    pub fn stop(level: u8) -> SimToken {
        Token::Stop(level)
    }

    /// The empty token.
    pub fn empty() -> SimToken {
        Token::Empty
    }

    /// The done token.
    pub fn done() -> SimToken {
        Token::Done
    }
}

#[cfg(test)]
mod tests {
    use super::tok;
    use super::*;

    #[test]
    fn expect_accessors() {
        assert_eq!(Payload::Crd(3).expect_crd(), 3);
        assert_eq!(Payload::Ref(4).expect_ref(), 4);
        assert_eq!(Payload::Val(2.5).expect_val(), 2.5);
        let b = BitVec::from_coords(0, 8, [1u32, 2]);
        assert_eq!(Payload::Bits(b).expect_bits(), b);
    }

    #[test]
    #[should_panic(expected = "expected a coordinate")]
    fn expect_crd_panics_on_val() {
        Payload::Val(1.0).expect_crd();
    }

    #[test]
    #[should_panic(expected = "expected a reference")]
    fn expect_ref_panics_on_crd() {
        Payload::Crd(1).expect_ref();
    }

    #[test]
    #[should_panic(expected = "expected a value")]
    fn expect_val_panics_on_ref() {
        Payload::Ref(1).expect_val();
    }

    #[test]
    fn token_constructors() {
        assert!(tok::done().is_done());
        assert!(tok::stop(2).is_stop());
        assert!(tok::empty().is_empty_token());
        assert_eq!(tok::crd(7).value(), Some(Payload::Crd(7)));
        assert_eq!(tok::val(1.5).value(), Some(Payload::Val(1.5)));
        assert_eq!(tok::rf(2).value(), Some(Payload::Ref(2)));
    }

    #[test]
    fn display() {
        assert_eq!(Payload::Crd(1).to_string(), "c1");
        assert_eq!(Payload::Ref(2).to_string(), "r2");
        assert_eq!(Payload::Val(0.5).to_string(), "0.5");
    }
}
