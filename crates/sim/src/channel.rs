//! Channels: the simulator's model of SAM streams on wires.

use crate::payload::SimToken;
use sam_streams::TokenStats;
use std::collections::VecDeque;

/// Identifier of a channel within a [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub usize);

/// A single-producer single-consumer token queue connecting two blocks.
///
/// Channels record how many tokens of each kind they have carried; combined
/// with the number of elapsed cycles this yields the idle/stop/done/data
/// breakdown of Figure 14.
#[derive(Debug, Clone)]
pub struct Channel {
    name: String,
    queue: VecDeque<SimToken>,
    capacity: Option<usize>,
    stats: TokenStats,
    total_pushed: u64,
    done_seen: bool,
}

impl Channel {
    /// Creates an unbounded channel.
    pub fn new(name: impl Into<String>) -> Self {
        Channel {
            name: name.into(),
            queue: VecDeque::new(),
            capacity: None,
            stats: TokenStats::default(),
            total_pushed: 0,
            done_seen: false,
        }
    }

    /// Creates a bounded channel holding at most `capacity` queued tokens.
    pub fn bounded(name: impl Into<String>, capacity: usize) -> Self {
        let mut c = Channel::new(name);
        c.capacity = Some(capacity);
        c
    }

    /// The channel's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether another token can currently be pushed.
    pub fn can_push(&self) -> bool {
        match self.capacity {
            Some(cap) => self.queue.len() < cap,
            None => true,
        }
    }

    /// Pushes a token.
    ///
    /// # Panics
    ///
    /// Panics when a bounded channel is full; blocks must check
    /// [`Channel::can_push`] first.
    pub fn push(&mut self, token: SimToken) {
        assert!(self.can_push(), "push into full channel `{}`", self.name);
        self.stats.record(token.kind());
        self.total_pushed += 1;
        if token.is_done() {
            self.done_seen = true;
        }
        self.queue.push_back(token);
    }

    /// Looks at the next token without consuming it.
    pub fn peek(&self) -> Option<&SimToken> {
        self.queue.front()
    }

    /// Looks `n` tokens ahead (0 = front).
    pub fn peek_nth(&self, n: usize) -> Option<&SimToken> {
        self.queue.get(n)
    }

    /// Consumes and returns the next token.
    pub fn pop(&mut self) -> Option<SimToken> {
        self.queue.pop_front()
    }

    /// Number of queued (not yet consumed) tokens.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether a done token has been pushed into this channel.
    pub fn done_seen(&self) -> bool {
        self.done_seen
    }

    /// Total number of tokens ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Token statistics of everything pushed so far. Idle slots are not
    /// recorded here; [`Channel::stats_with_idle`] folds them in.
    pub fn stats(&self) -> TokenStats {
        self.stats
    }

    /// Statistics including idle slots for a run of `cycles` cycles: a cycle
    /// during which no token was pushed counts as idle, matching the
    /// Figure 14 accounting.
    pub fn stats_with_idle(&self, cycles: u64) -> TokenStats {
        let mut s = self.stats;
        s.idle = cycles.saturating_sub(self.total_pushed);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::tok;

    #[test]
    fn push_pop_and_stats() {
        let mut c = Channel::new("crd");
        c.push(tok::crd(1));
        c.push(tok::stop(0));
        c.push(tok::done());
        assert_eq!(c.len(), 3);
        assert!(c.done_seen());
        assert_eq!(c.pop(), Some(tok::crd(1)));
        assert_eq!(c.peek(), Some(&tok::stop(0)));
        assert_eq!(c.peek_nth(1), Some(&tok::done()));
        let stats = c.stats();
        assert_eq!(stats.non_control, 1);
        assert_eq!(stats.stop, 1);
        assert_eq!(stats.done, 1);
        assert_eq!(c.total_pushed(), 3);
    }

    #[test]
    fn idle_accounting() {
        let mut c = Channel::new("x");
        c.push(tok::crd(0));
        c.push(tok::done());
        let s = c.stats_with_idle(10);
        assert_eq!(s.idle, 8);
        assert_eq!(s.total(), 10);
    }

    #[test]
    fn bounded_capacity() {
        let mut c = Channel::bounded("b", 1);
        assert!(c.can_push());
        c.push(tok::crd(0));
        assert!(!c.can_push());
        c.pop();
        assert!(c.can_push());
    }

    #[test]
    #[should_panic(expected = "full channel")]
    fn overfull_push_panics() {
        let mut c = Channel::bounded("b", 1);
        c.push(tok::crd(0));
        c.push(tok::crd(1));
    }

    #[test]
    fn empty_checks() {
        let c = Channel::new("e");
        assert!(c.is_empty());
        assert_eq!(c.name(), "e");
        assert!(!c.done_seen());
    }
}
