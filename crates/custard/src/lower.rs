//! Lowering concrete index notation to SAM dataflow graphs
//! (paper Section 5, Figure 10).
//!
//! The lowering follows the paper's three phases:
//!
//! 1. **Tensor iteration and merging** — for every index variable in a
//!    tensor's path a level scanner is placed; index variables absent from a
//!    tensor's path (that the tensor must nonetheless be broadcast over) get
//!    repeaters; index variables shared by several tensor paths get
//!    intersecters (multiplication) or unioners (addition).
//! 2. **Computation** — one ALU per arithmetic operator and one reducer per
//!    reduced index variable.
//! 3. **Tensor construction** — coordinate droppers where intersections can
//!    empty outer fibers, then level writers for every result level plus the
//!    values writer.

use crate::cin::ConcreteIndexNotation;
use sam_core::graph::{NodeId, NodeKind, SamGraph, StreamKind};
use sam_tensor::expr::{Expr, IndexVar};
use sam_tensor::LevelFormat;

/// Describes one operand tensor's path through the index variables.
#[derive(Debug, Clone)]
struct TensorPath {
    name: String,
    indices: Vec<IndexVar>,
}

/// Collects one path per *access* (a tensor read twice yields two paths,
/// mirroring the paper's per-access scanners).
fn tensor_paths(expr: &Expr) -> Vec<TensorPath> {
    expr.accesses()
        .into_iter()
        .map(|(name, idx)| TensorPath { name: name.to_string(), indices: idx.to_vec() })
        .collect()
}

/// True when `access` sits underneath a reduction over `var` (so it must be
/// broadcast over `var`) — used for repeater placement.
pub(crate) fn access_under_reduction(expr: &Expr, access_ordinal: usize, var: IndexVar) -> bool {
    fn walk(expr: &Expr, var: IndexVar, inside: bool, counter: &mut usize, target: usize, found: &mut bool) {
        match expr {
            Expr::Access { .. } => {
                if *counter == target && inside {
                    *found = true;
                }
                *counter += 1;
            }
            Expr::Literal(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                walk(a, var, inside, counter, target, found);
                walk(b, var, inside, counter, target, found);
            }
            Expr::Reduce { vars, body } => {
                let now_inside = inside || vars.contains(&var);
                walk(body, var, now_inside, counter, target, found);
            }
        }
    }
    let mut counter = 0;
    let mut found = false;
    walk(expr, var, false, &mut counter, access_ordinal, &mut found);
    found
}

/// The merge operator combining multiple operands at one index variable.
fn merge_is_union(expr: &Expr) -> bool {
    // Additive expressions require union merges; purely multiplicative ones
    // intersect. Mixed expressions (residual, MatTransMul) union at the
    // shared output variable and intersect at reduction variables, which the
    // per-variable logic below approximates by checking whether more than one
    // additive term mentions the variable.
    expr.has_additive_op() && !expr.has_multiplicative_op()
}

/// Number of top-level additive terms that mention `var`.
fn additive_terms_with(expr: &Expr, var: IndexVar) -> usize {
    match expr {
        Expr::Add(a, b) | Expr::Sub(a, b) => additive_terms_with(a, var) + additive_terms_with(b, var),
        other => usize::from(other.index_vars().contains(&var)),
    }
}

/// Lowers concrete index notation to a SAM graph.
///
/// ```
/// use custard::{parse, lower, Schedule, Formats, ConcreteIndexNotation};
/// let a = parse("X(i,j) = B(i,k) * C(k,j)").unwrap();
/// let cin = ConcreteIndexNotation::new(a, &Schedule::new().reorder("ikj"), Formats::new());
/// let graph = lower(&cin);
/// let counts = graph.primitive_counts();
/// assert_eq!(counts.level_scan, 4);
/// assert_eq!(counts.repeat, 2);
/// assert_eq!(counts.intersect, 1);
/// ```
pub fn lower(cin: &ConcreteIndexNotation) -> SamGraph {
    let assignment = &cin.assignment;
    let mut graph = SamGraph::new(assignment.to_string());
    let paths = tensor_paths(&assignment.rhs);
    let reduction_vars = assignment.reduction_vars();

    // Phase 1: tensor iteration and merging.
    let mut roots: Vec<NodeId> = Vec::new();
    let mut last_node: Vec<NodeId> = Vec::new();
    for path in &paths {
        let root = graph.add_node(NodeKind::Root { tensor: path.name.clone() });
        roots.push(root);
        last_node.push(root);
    }
    let mut last_merge_per_var: Vec<(IndexVar, NodeId)> = Vec::new();
    for (&var, position) in cin.loop_order.iter().zip(0..) {
        let _ = position;
        // Scanners and repeaters per tensor path.
        let mut producers: Vec<(usize, NodeId)> = Vec::new();
        for (ordinal, path) in paths.iter().enumerate() {
            if path.indices.contains(&var) {
                let compressed = cin
                    .formats
                    .get(&path.name)
                    .map(|f| {
                        let level = path.indices.iter().position(|&v| v == var).unwrap_or(0);
                        !matches!(f.levels().get(level), Some(LevelFormat::Dense))
                    })
                    .unwrap_or(true);
                let scan = graph.add_node(NodeKind::LevelScanner {
                    tensor: path.name.clone(),
                    index: var,
                    compressed,
                });
                graph.add_edge(last_node[ordinal], scan, StreamKind::Ref, format!("{} ref", path.name));
                last_node[ordinal] = scan;
                producers.push((ordinal, scan));
            } else {
                let broadcast_needed = assignment.target_indices.contains(&var)
                    || (reduction_vars.contains(&var)
                        && access_under_reduction(&assignment.rhs, ordinal, var));
                if broadcast_needed {
                    let rep = graph.add_node(NodeKind::Repeater { tensor: path.name.clone(), index: var });
                    graph.add_edge(last_node[ordinal], rep, StreamKind::Ref, format!("{} ref", path.name));
                    last_node[ordinal] = rep;
                }
            }
        }
        // Merging: m producers need m-1 binary mergers.
        if producers.len() > 1 {
            let union = if merge_is_union(&assignment.rhs) {
                true
            } else {
                assignment.rhs.has_additive_op() && additive_terms_with(&assignment.rhs, var) > 1
            };
            let mut merged = producers[0].1;
            for other in &producers[1..] {
                let node = if union {
                    graph.add_node(NodeKind::Unioner { index: var })
                } else {
                    graph.add_node(NodeKind::Intersecter { index: var })
                };
                graph.add_edge(merged, node, StreamKind::Crd, format!("{var} crd"));
                graph.add_edge(other.1, node, StreamKind::Crd, format!("{var} crd"));
                merged = node;
            }
            last_merge_per_var.push((var, merged));
        } else if let Some(&(_, scan)) = producers.first() {
            last_merge_per_var.push((var, scan));
        }
    }

    // Phase 2: computation (value arrays, ALUs, reducers).
    let mut arrays = Vec::new();
    for (ordinal, path) in paths.iter().enumerate() {
        let arr = graph.add_node(NodeKind::Array { tensor: path.name.clone() });
        graph.add_edge(last_node[ordinal], arr, StreamKind::Ref, "val ref");
        arrays.push(arr);
    }
    let mut compute_tail = arrays.first().copied();
    let add_alu = |graph: &mut SamGraph, op: &str, tail: &mut Option<NodeId>, rhs: NodeId| {
        let alu = graph.add_node(NodeKind::Alu { op: op.to_string() });
        if let Some(prev) = *tail {
            graph.add_edge(prev, alu, StreamKind::Val, "val");
        }
        graph.add_edge(rhs, alu, StreamKind::Val, "val");
        *tail = Some(alu);
    };
    // One ALU per binary operator, chained in evaluation order.
    let mut op_stack = Vec::new();
    collect_ops(&assignment.rhs, &mut op_stack);
    for (idx, op) in op_stack.iter().enumerate() {
        let rhs_array = arrays.get(idx + 1).copied().unwrap_or_else(|| arrays[arrays.len() - 1]);
        add_alu(&mut graph, op, &mut compute_tail, rhs_array);
    }
    for &var in reduction_vars.iter() {
        let red = graph.add_node(NodeKind::Reducer {
            order: usize::from(var == *reduction_vars.first().expect("nonempty")),
        });
        if let Some(prev) = compute_tail {
            graph.add_edge(prev, red, StreamKind::Val, "val");
        }
        compute_tail = Some(red);
    }

    // Phase 3: output construction.
    let multiplicative = assignment.rhs.has_multiplicative_op();
    let mut previous_writer: Option<NodeId> = None;
    for &var in &assignment.target_indices {
        let source = last_merge_per_var.iter().find(|(v, _)| *v == var).map(|(_, n)| *n);
        let mut crd_source = source;
        if multiplicative {
            let drop = graph.add_node(NodeKind::CoordDropper { index: var });
            if let Some(src) = source {
                graph.add_edge(src, drop, StreamKind::Crd, format!("{var} crd"));
            }
            crd_source = Some(drop);
        }
        let writer = graph.add_node(NodeKind::LevelWriter {
            tensor: assignment.target.clone(),
            index: var,
            vals: false,
        });
        if let Some(src) = crd_source {
            graph.add_edge(src, writer, StreamKind::Crd, format!("{var} crd"));
        }
        previous_writer = Some(writer);
    }
    let vals_writer =
        graph.add_node(NodeKind::LevelWriter { tensor: assignment.target.clone(), index: 'v', vals: true });
    if let Some(tail) = compute_tail {
        graph.add_edge(tail, vals_writer, StreamKind::Val, "vals");
    }
    if let Some(w) = previous_writer {
        let _ = w;
    }
    graph
}

/// Collects binary operator mnemonics in evaluation order.
fn collect_ops(expr: &Expr, out: &mut Vec<&'static str>) {
    match expr {
        Expr::Access { .. } | Expr::Literal(_) => {}
        Expr::Add(a, b) => {
            collect_ops(a, out);
            collect_ops(b, out);
            out.push("add");
        }
        Expr::Sub(a, b) => {
            collect_ops(a, out);
            collect_ops(b, out);
            out.push("sub");
        }
        Expr::Mul(a, b) => {
            collect_ops(a, out);
            collect_ops(b, out);
            out.push("mul");
        }
        Expr::Reduce { body, .. } => collect_ops(body, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cin::{Formats, Schedule};
    use crate::parser::parse;
    use sam_core::graph::PrimitiveCounts;

    fn counts(text: &str, order: Option<&str>) -> PrimitiveCounts {
        let a = parse(text).unwrap();
        let schedule = match order {
            Some(o) => Schedule::new().reorder(o),
            None => Schedule::new(),
        };
        let cin = ConcreteIndexNotation::new(a, &schedule, Formats::new());
        lower(&cin).primitive_counts()
    }

    #[test]
    fn spmv_counts_match_table1() {
        let c = counts("x(i) = B(i,j) * c(j)", None);
        assert_eq!(c.level_scan, 3);
        assert_eq!(c.repeat, 1);
        assert_eq!(c.intersect, 1);
        assert_eq!(c.union, 0);
        assert_eq!(c.alu, 1);
        assert_eq!(c.reduce, 1);
        assert_eq!(c.crd_drop, 1);
        assert_eq!(c.level_write, 2);
        assert_eq!(c.array, 2);
    }

    #[test]
    fn spmm_counts_match_table1() {
        let c = counts("X(i,j) = B(i,k) * C(k,j)", Some("ikj"));
        assert_eq!(c.level_scan, 4);
        assert_eq!(c.repeat, 2);
        assert_eq!(c.intersect, 1);
        assert_eq!(c.alu, 1);
        assert_eq!(c.reduce, 1);
        assert_eq!(c.level_write, 3);
        assert_eq!(c.array, 2);
    }

    #[test]
    fn sddmm_counts_match_table1() {
        let c = counts("X(i,j) = B(i,j) * C(i,k) * D(j,k)", None);
        assert_eq!(c.level_scan, 6);
        assert_eq!(c.repeat, 3);
        assert_eq!(c.intersect, 3);
        assert_eq!(c.alu, 2);
        assert_eq!(c.reduce, 1);
        assert_eq!(c.level_write, 3);
        assert_eq!(c.array, 3);
    }

    #[test]
    fn additions_use_unions_and_no_droppers() {
        let c = counts("X(i,j) = B(i,j) + C(i,j)", None);
        assert_eq!(c.union, 2);
        assert_eq!(c.intersect, 0);
        assert_eq!(c.crd_drop, 0);
        assert_eq!(c.level_scan, 4);
        assert_eq!(c.level_write, 3);
        let p3 = counts("X(i,j) = B(i,j) + C(i,j) + D(i,j)", None);
        assert_eq!(p3.union, 4);
        assert_eq!(p3.alu, 2);
        assert_eq!(p3.level_scan, 6);
    }

    #[test]
    fn mttkrp_counts() {
        let c = counts("X(i,j) = B(i,k,l) * C(j,k) * D(j,l)", None);
        assert_eq!(c.level_scan, 7);
        assert_eq!(c.repeat, 5);
        assert_eq!(c.intersect, 3);
        assert_eq!(c.alu, 2);
        assert_eq!(c.reduce, 2);
        assert_eq!(c.array, 3);
    }

    #[test]
    fn residual_mixes_union_and_intersect() {
        let c = counts("x(i) = b(i) - C(i,j) * d(j)", None);
        assert_eq!(c.level_scan, 4);
        assert_eq!(c.union, 1);
        assert_eq!(c.intersect, 1);
        assert_eq!(c.repeat, 1);
        assert_eq!(c.array, 3);
        assert_eq!(c.alu, 2);
    }

    #[test]
    fn dot_export_for_lowered_graph() {
        let a = parse("X(i,j) = B(i,k) * C(k,j)").unwrap();
        let cin = ConcreteIndexNotation::new(a, &Schedule::new().reorder("ikj"), Formats::new());
        let dot = lower(&cin).to_dot();
        assert!(dot.contains("scan Bi"));
        assert!(dot.contains("intersect k"));
        assert!(dot.contains("repeat C over i"));
    }
}
